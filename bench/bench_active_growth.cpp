/// A8 — the active-set dynamics "figure". The predecessor paper [13]
/// analyzed the cobra walk in two phases: exponential growth of |S_t| up
/// to a constant fraction of n, then a coverage sweep. Our paper's §4
/// bypasses phase 1 via Walt, but the dynamics remain the intuition behind
/// everything; this bench prints the growth curves the way a figure would:
///
///   1. |S_t| vs t on an expander (exponential then plateau at ~delta n),
///      grid (polynomial front growth ~t^d... bounded by (2t)^d), and cycle
///      (bounded by a constant — the active set cannot spread);
///   2. plateau levels: the equilibrium fraction |S_t|/n per family;
///   3. time to reach half the plateau (the "growth phase length"),
///      which is O(log n) on expanders.
///
/// Usage: bench_active_growth [--trials T] [--horizon H] [--graph <spec>]
///        [--out path] [--smoke]
///   Case graphs are built through the spec registry. --graph replaces
///   the case list with one growth curve; --smoke shrinks graph sizes,
///   the horizon, and the trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "sim/observers.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

void growth_curve(bench::Harness& h, const bench::BuiltCase& c,
                  std::uint64_t horizon, std::uint32_t trials,
                  std::uint64_t seed) {
  const graph::Graph& g = c.graph;
  // Median active-set size across trials at exponentially spaced rounds.
  std::vector<std::uint64_t> checkpoints;
  for (std::uint64_t t = 1; t <= horizon; t *= 2) checkpoints.push_back(t);

  std::vector<std::vector<double>> sizes(checkpoints.size());
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = trials;
  // One trial returns nothing usable scalar-wise; each trial records its
  // whole growth curve (the sim::GrowthCurve observer) into its own slot.
  std::vector<std::vector<double>> per_trial(trials);
  par::run_trials(par::global_pool(), opts,
                  [&](core::Engine& gen, std::uint32_t trial) {
                    core::CobraWalk walk(g, 0, 2);
                    sim::GrowthCurve curve;
                    sim::Runner(horizon).run(walk, gen,
                                             sim::FixedRounds(horizon), curve);
                    std::vector<double>& mine = per_trial[trial];
                    mine.resize(checkpoints.size());
                    for (std::size_t ck = 0; ck < checkpoints.size(); ++ck) {
                      mine[ck] = static_cast<double>(curve.at(checkpoints[ck]));
                    }
                    return 0.0;
                  });
  for (std::size_t ck = 0; ck < checkpoints.size(); ++ck) {
    for (std::uint32_t trial = 0; trial < trials; ++trial) {
      sizes[ck].push_back(per_trial[trial][ck]);
    }
  }

  io::Table table({"round t", "median |S_t|", "|S_t| / n"});
  const double n = g.num_vertices();
  for (std::size_t ck = 0; ck < checkpoints.size(); ++ck) {
    const auto s = stats::summarize(sizes[ck]);
    table.add_row({io::Table::fmt_int(static_cast<long long>(checkpoints[ck])),
                   io::Table::fmt(s.median, 1),
                   io::Table::fmt(s.median / n, 3)});
    h.json()
        .record(c.name + "/t" + std::to_string(checkpoints[ck]))
        .field("spec", c.spec)
        .field("n", n)
        .field("t", static_cast<double>(checkpoints[ck]))
        .field("active_median", s.median)
        .field("active_fraction", s.median / n);
  }
  std::cout << c.name << "  (n = " << g.num_vertices() << ")\n" << table
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("active_growth",
                   bench::parse_bench_args(argc, argv, {"trials", "horizon"}));
  const std::uint32_t trials = h.trials(50, 10);
  const std::uint64_t horizon =
      bench::uint_flag(h.args(), "horizon", h.smoke() ? 64 : 256);
  h.json().context("trials", static_cast<double>(trials));
  h.json().context("horizon", static_cast<double>(horizon));

  bench::print_header(
      "A8  (active-set dynamics)",
      "|S_t| growth curves: the two-phase picture behind §4's analysis");

  const std::vector<bench::SuiteCase> cases = {
      {"random 6-regular", "rreg:n=4096,d=6,seed=168", "rreg:n=256,d=6,seed=168"},
      {"hypercube", "hypercube:dims=12", "hypercube:dims=7"},
      {"grid 2d", "grid:side=64,dims=2", "grid:side=16,dims=2"},
      {"cycle", "ring:n=4096", "ring:n=256"},
  };

  std::uint64_t seed = 0xA8100;
  for (const auto& c : h.suite(cases)) {
    growth_curve(h, c, horizon, trials, seed);
    seed += 0x100;
  }

  std::cout
      << "reading: on expanders |S_t| doubles per round until it saturates\n"
         "at a constant fraction of n (the 'delta n' phase-1 endpoint [13]\n"
         "needed); on the grid the active set grows like the area reached\n"
         "by the spreading front (the drift argument of s3 handles this\n"
         "regime); on the cycle growth is merely diffusive — the occupied\n"
         "interval widens like a random walk and only a vanishing fraction\n"
         "of n is active, which is why the cycle sits at the extremal end\n"
         "of the conductance and hitting-time bounds (Thm 8, Thm 15).\n";
  return h.finish();
}
