/// A8 — the active-set dynamics "figure". The predecessor paper [13]
/// analyzed the cobra walk in two phases: exponential growth of |S_t| up
/// to a constant fraction of n, then a coverage sweep. Our paper's §4
/// bypasses phase 1 via Walt, but the dynamics remain the intuition behind
/// everything; this bench prints the growth curves the way a figure would:
///
///   1. |S_t| vs t on an expander (exponential then plateau at ~delta n),
///      grid (polynomial front growth ~t^d... bounded by (2t)^d), and cycle
///      (bounded by a constant — the active set cannot spread);
///   2. plateau levels: the equilibrium fraction |S_t|/n per family;
///   3. time to reach half the plateau (the "growth phase length"),
///      which is O(log n) on expanders.

#include <cmath>

#include "bench_common.hpp"

#include "core/cobra_walk.hpp"
#include "core/trajectory.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

void growth_curve(const std::string& name, const graph::Graph& g,
                  std::uint64_t horizon, std::uint64_t seed) {
  // Median active-set size across trials at exponentially spaced rounds.
  constexpr std::uint32_t kTrials = 50;
  std::vector<std::uint64_t> checkpoints;
  for (std::uint64_t t = 1; t <= horizon; t *= 2) checkpoints.push_back(t);

  std::vector<std::vector<double>> sizes(checkpoints.size());
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = kTrials;
  // One trial returns nothing usable scalar-wise; collect via side vectors
  // guarded per-trial (each trial writes its own slot).
  std::vector<std::vector<double>> per_trial(kTrials);
  par::run_trials(par::global_pool(), opts,
                  [&](core::Engine& gen, std::uint32_t trial) {
                    core::CobraWalk walk(g, 0, 2);
                    std::vector<double>& mine = per_trial[trial];
                    mine.resize(checkpoints.size());
                    std::size_t next = 0;
                    for (std::uint64_t t = 1;
                         t <= horizon && next < checkpoints.size(); ++t) {
                      walk.step(gen);
                      if (t == checkpoints[next]) {
                        mine[next++] = static_cast<double>(walk.active().size());
                      }
                    }
                    return 0.0;
                  });
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    for (std::uint32_t trial = 0; trial < kTrials; ++trial) {
      sizes[c].push_back(per_trial[trial][c]);
    }
  }

  io::Table table({"round t", "median |S_t|", "|S_t| / n"});
  const double n = g.num_vertices();
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    const auto s = stats::summarize(sizes[c]);
    table.add_row({io::Table::fmt_int(static_cast<long long>(checkpoints[c])),
                   io::Table::fmt(s.median, 1),
                   io::Table::fmt(s.median / n, 3)});
  }
  std::cout << name << "  (n = " << g.num_vertices() << ")\n" << table << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "A8  (active-set dynamics)",
      "|S_t| growth curves: the two-phase picture behind §4's analysis");

  core::Engine graph_gen(0xA8);
  growth_curve("random 6-regular n=4096",
               graph::make_random_regular(graph_gen, 4096, 6), 256, 0xA8100);
  growth_curve("hypercube Q_12", graph::make_hypercube(12), 256, 0xA8200);
  growth_curve("grid 64x64", graph::make_grid(2, 64), 256, 0xA8300);
  growth_curve("cycle n=4096", graph::make_cycle(4096), 256, 0xA8400);

  std::cout
      << "reading: on expanders |S_t| doubles per round until it saturates\n"
         "at a constant fraction of n (the 'delta n' phase-1 endpoint [13]\n"
         "needed); on the grid the active set grows like the area reached\n"
         "by the spreading front (the drift argument of s3 handles this\n"
         "regime); on the cycle growth is merely diffusive — the occupied\n"
         "interval widens like a random walk and only a vanishing fraction\n"
         "of n is active, which is why the cycle sits at the extremal end\n"
         "of the conductance and hitting-time bounds (Thm 8, Thm 15).\n";
  return 0;
}
