/// E8 — Theorem 13 (Azar et al., the engine of §5): an epsilon-biased walk
/// can concentrate stationary mass on a target set, and the
/// inverse-degree-biased walk's hitting time upper-bounds the cobra
/// walk's (Lemma 14).
///
/// Three tables:
///   1. occupancy boost: long-run fraction of time at the target vertex for
///      the greedy epsilon-biased walk vs the Theorem 13 lower bound
///      d(v) / (d(v) + sum_x beta^{dist-1} d(x)), on cycle and torus;
///   2. epsilon sweep of hitting times (more bias -> faster hitting);
///   3. Lemma 14 check: cobra H(u,v) <= inverse-degree-biased H*(u,v) on
///      assorted graphs.

#include <cmath>

#include "bench_common.hpp"

#include "core/biased_walk.hpp"
#include "core/hitting_time.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

/// Theorem 13 lower bound on stationary mass at {v} for bias epsilon.
double thm13_bound(const graph::Graph& g, graph::Vertex v, double epsilon) {
  const double beta = 1.0 - epsilon;
  const auto dist = graph::bfs_distances(g, v);
  double denom = g.degree(v);
  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x == v) continue;
    denom += std::pow(beta, static_cast<double>(dist[x]) - 1.0) * g.degree(x);
  }
  return g.degree(v) / denom;
}

/// Long-run occupancy of the target under the greedy epsilon-biased walk.
double measure_occupancy(const graph::Graph& g, graph::Vertex target,
                         double epsilon, std::uint64_t steps,
                         core::Engine& gen) {
  core::BiasedWalk walk(g, 0, target, core::BiasSchedule::EpsilonBias, epsilon);
  // Burn-in, then count visits.
  for (std::uint64_t t = 0; t < steps / 4; ++t) walk.step(gen);
  std::uint64_t visits = 0;
  for (std::uint64_t t = 0; t < steps; ++t) {
    walk.step(gen);
    if (walk.at_target()) ++visits;
  }
  return static_cast<double>(visits) / static_cast<double>(steps);
}

void occupancy_table() {
  std::cout << "1) stationary occupancy at the target vs Theorem 13 bound\n";
  io::Table table({"graph", "epsilon", "measured occupancy", "Thm 13 bound",
                   "uniform 1/n"});
  table.set_align(0, io::Align::Left);
  core::Engine gen(0xE81);
  struct Case {
    std::string name;
    graph::Graph g;
    graph::Vertex target;
  };
  const std::vector<Case> cases = {
      {"cycle n=64", graph::make_cycle(64), 32},
      {"torus 8x8", graph::make_grid(2, 8, true), 27},
      {"random 4-regular n=64",
       [] {
         core::Engine gg(0xE810);
         return graph::make_random_regular(gg, 64, 4);
       }(),
       11},
  };
  for (const auto& [name, g, target] : cases) {
    for (const double eps : {0.1, 0.3, 0.5}) {
      const double occupancy = measure_occupancy(g, target, eps, 400000, gen);
      table.add_row({name, io::Table::fmt(eps, 1),
                     io::Table::fmt(occupancy, 4),
                     io::Table::fmt(thm13_bound(g, target, eps), 4),
                     io::Table::fmt(1.0 / g.num_vertices(), 4)});
    }
  }
  std::cout << table
            << "reading: measured occupancy >= the Thm 13 bound and far\n"
               "above the uniform 1/n - the controller concentrates mass.\n\n";
}

void epsilon_sweep() {
  std::cout << "2) hitting time vs bias strength (cycle n=128, antipode)\n";
  const graph::Graph g = graph::make_cycle(128);
  io::Table table({"epsilon", "hit time"});
  for (const double eps : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    const auto hit = bench::measure(
        60, 0xE8200 + static_cast<std::uint64_t>(eps * 100),
        [&](core::Engine& gen) {
          core::BiasedWalk walk(g, 0, 64, core::BiasSchedule::EpsilonBias, eps);
          return static_cast<double>(
              core::run_to_hit(walk, 64, gen, 1u << 24).steps);
        });
    table.add_row({io::Table::fmt(eps, 2), bench::mean_ci(hit)});
  }
  std::cout << table
            << "reading: monotone collapse from the diffusive ~n^2/4 at\n"
               "eps=0 toward the ballistic n/2 as bias grows.\n\n";
}

void lemma14_table() {
  std::cout << "3) Lemma 14: cobra H(u,v) <= inverse-degree-biased H*(u,v)\n";
  io::Table table({"graph", "pair dist", "cobra H", "inv-degree H*", "ratio"});
  table.set_align(0, io::Align::Left);
  core::Engine graph_gen(0xE83);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  const std::vector<Case> cases = {
      {"cycle n=64", graph::make_cycle(64)},
      {"grid 8x8", graph::make_grid(2, 8)},
      {"lollipop n=60", graph::make_lollipop(40, 20)},
      {"binary tree 6 levels", graph::make_kary_tree(2, 6)},
      {"random 4-regular n=64", graph::make_random_regular(graph_gen, 64, 4)},
  };
  for (const auto& [name, g] : cases) {
    const graph::Vertex u = 0;
    const graph::Vertex v = g.num_vertices() - 1;
    const auto dist = graph::bfs_distances(g, u);
    const auto cobra =
        bench::measure(80, 0xE8300 ^ std::hash<std::string>{}(name),
                       [&](core::Engine& gen) {
                         return static_cast<double>(
                             core::cobra_hit(g, u, v, 2, gen).steps);
                       });
    const auto biased =
        bench::measure(80, 0xE8400 ^ std::hash<std::string>{}(name),
                       [&](core::Engine& gen) {
                         return static_cast<double>(
                             core::inverse_degree_hit(g, u, v, gen).steps);
                       });
    table.add_row({name, io::Table::fmt_int(dist[v]), bench::mean_ci(cobra),
                   bench::mean_ci(biased),
                   io::Table::fmt(cobra.mean / biased.mean, 2)});
  }
  std::cout << table
            << "reading: every ratio is <= 1 (within CI noise): the\n"
               "inverse-degree-biased walk upper-bounds the cobra walk,\n"
               "exactly the dominance Section 5 builds Theorems 15/20 on.\n";
}

}  // namespace

int main() {
  bench::print_header("E8  (Theorem 13 / Lemma 14)",
                      "biased walks: occupancy boost and the dominance that "
                      "drives Section 5");
  occupancy_table();
  epsilon_sweep();
  lemma14_table();
  return 0;
}
