/// E8 — Theorem 13 (Azar et al., the engine of §5): an epsilon-biased walk
/// can concentrate stationary mass on a target set, and the
/// inverse-degree-biased walk's hitting time upper-bounds the cobra
/// walk's (Lemma 14).
///
/// Three tables:
///   1. occupancy boost: long-run fraction of time at the target vertex for
///      the greedy epsilon-biased walk vs the Theorem 13 lower bound
///      d(v) / (d(v) + sum_x beta^{dist-1} d(x)), on cycle and torus;
///   2. epsilon sweep of hitting times (more bias -> faster hitting);
///   3. Lemma 14 check: cobra H(u,v) <= inverse-degree-biased H*(u,v) on
///      assorted graphs.
///
/// Usage: bench_biased_walk [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Case graphs are built through the spec registry. --graph replaces
///   every table's case list with that one graph (targets default to the
///   far vertex); --smoke shrinks occupancy step counts and trials for CI.

#include <cmath>

#include "harness.hpp"

#include "core/biased_walk.hpp"
#include "core/cobra_walk.hpp"
#include "graph/algorithms.hpp"
#include "sim/observers.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

/// Theorem 13 lower bound on stationary mass at {v} for bias epsilon.
double thm13_bound(const graph::Graph& g, graph::Vertex v, double epsilon) {
  const double beta = 1.0 - epsilon;
  const auto dist = graph::bfs_distances(g, v);
  double denom = g.degree(v);
  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    if (x == v) continue;
    denom += std::pow(beta, static_cast<double>(dist[x]) - 1.0) * g.degree(x);
  }
  return g.degree(v) / denom;
}

/// Long-run occupancy of the target under the greedy epsilon-biased walk:
/// a fixed-horizon burn-in run followed by a fixed-horizon run carrying
/// the occupancy observer.
double measure_occupancy(const graph::Graph& g, graph::Vertex target,
                         double epsilon, std::uint64_t steps,
                         core::Engine& gen) {
  core::BiasedWalk walk(g, 0, target, core::BiasSchedule::EpsilonBias, epsilon);
  const sim::Runner runner;
  runner.run(walk, gen, sim::FixedRounds(steps / 4));  // burn-in
  sim::OccupancyCounter occupancy(target);
  runner.run(walk, gen, sim::FixedRounds(steps), occupancy);
  return occupancy.fraction();
}

/// The occupancy/epsilon-sweep target: the mid-id vertex — the antipode on
/// the built-in ring/torus cases, an arbitrary interior vertex elsewhere.
graph::Vertex pick_target(const graph::Graph& g) {
  return g.num_vertices() / 2;
}

void occupancy_table(bench::Harness& h, std::uint64_t steps) {
  std::cout << "1) stationary occupancy at the target vs Theorem 13 bound\n";
  io::Table table({"graph", "epsilon", "measured occupancy", "Thm 13 bound",
                   "uniform 1/n"});
  table.set_align(0, io::Align::Left);
  core::Engine gen(0xE81);
  const std::vector<bench::SuiteCase> cases = {
      {"cycle n=64", "ring:n=64"},
      {"torus 8x8", "torus:side=8,dims=2"},
      {"random 4-regular n=64", "rreg:n=64,d=4,seed=166"},
  };
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    const graph::Vertex target = pick_target(g);
    for (const double eps : {0.1, 0.3, 0.5}) {
      const double occupancy = measure_occupancy(g, target, eps, steps, gen);
      const double bound = thm13_bound(g, target, eps);
      table.add_row({c.name, io::Table::fmt(eps, 1),
                     io::Table::fmt(occupancy, 4), io::Table::fmt(bound, 4),
                     io::Table::fmt(1.0 / g.num_vertices(), 4)});
      h.json()
          .record("occupancy/" + c.name + "/eps" + io::Table::fmt(eps, 1))
          .field("spec", c.spec)
          .field("n", static_cast<double>(g.num_vertices()))
          .field("epsilon", eps)
          .field("occupancy", occupancy)
          .field("thm13_bound", bound);
    }
  }
  std::cout << table
            << "reading: measured occupancy >= the Thm 13 bound and far\n"
               "above the uniform 1/n - the controller concentrates mass.\n\n";
}

void epsilon_sweep(bench::Harness& h, std::uint32_t trials) {
  std::cout << "2) hitting time vs bias strength (antipodal pair)\n";
  const std::vector<bench::SuiteCase> cases = {
      {"cycle n=128", "ring:n=128", "ring:n=48"}};
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    const graph::Vertex target = pick_target(g);
    std::cout << c.name << " (target " << target << ")\n";
    io::Table table({"epsilon", "hit time"});
    for (const double eps : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
      const auto hit = bench::measure(
          trials, 0xE8200 + static_cast<std::uint64_t>(eps * 100),
          [&](core::Engine& gen) {
            core::BiasedWalk walk(g, 0, target, core::BiasSchedule::EpsilonBias,
                                  eps);
            return static_cast<double>(
                sim::run_hit(walk, target, gen, 1u << 24).rounds);
          });
      table.add_row({io::Table::fmt(eps, 2), bench::mean_ci(hit)});
      h.json()
          .record("eps_sweep/" + c.name + "/eps" + io::Table::fmt(eps, 2))
          .field("spec", c.spec)
          .field("epsilon", eps)
          .field("hit_mean", hit.mean)
          .field("hit_ci95", hit.ci95_half);
    }
    std::cout << table
              << "reading: monotone collapse from the diffusive ~n^2/4 at\n"
                 "eps=0 toward the ballistic n/2 as bias grows.\n\n";
  }
}

void lemma14_table(bench::Harness& h, std::uint32_t trials) {
  std::cout << "3) Lemma 14: cobra H(u,v) <= inverse-degree-biased H*(u,v)\n";
  io::Table table({"graph", "pair dist", "cobra H", "inv-degree H*", "ratio"});
  table.set_align(0, io::Align::Left);
  const std::vector<bench::SuiteCase> cases = {
      {"cycle n=64", "ring:n=64"},
      {"grid 8x8", "grid:side=8,dims=2"},
      {"lollipop n=60", "lollipop:clique=40,path=20"},
      {"binary tree 6 levels", "tree:levels=6,arity=2", "tree:levels=4,arity=2"},
      {"random 4-regular n=64", "rreg:n=64,d=4,seed=163"},
  };
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    const graph::Vertex u = 0;
    const graph::Vertex v = g.num_vertices() - 1;
    const auto dist = graph::bfs_distances(g, u);
    const auto cobra =
        bench::measure(trials, 0xE8300 ^ std::hash<std::string>{}(c.spec),
                       [&](core::Engine& gen) {
                         return sim::hit_rounds<core::CobraWalk>(gen, v, g, u, 2u);
                       });
    const auto biased =
        bench::measure(trials, 0xE8400 ^ std::hash<std::string>{}(c.spec),
                       [&](core::Engine& gen) {
                         return sim::hit_rounds<core::BiasedWalk>(
                             gen, v, g, u, v,
                             core::BiasSchedule::InverseDegreeBias);
                       });
    table.add_row({c.name, io::Table::fmt_int(dist[v]), bench::mean_ci(cobra),
                   bench::mean_ci(biased),
                   io::Table::fmt(cobra.mean / biased.mean, 2)});
    h.json()
        .record("lemma14/" + c.name)
        .field("spec", c.spec)
        .field("n", static_cast<double>(g.num_vertices()))
        .field("pair_dist", static_cast<double>(dist[v]))
        .field("cobra_hit_mean", cobra.mean)
        .field("inv_degree_hit_mean", biased.mean)
        .field("ratio", cobra.mean / biased.mean);
  }
  std::cout << table
            << "reading: every ratio is <= 1 (within CI noise): the\n"
               "inverse-degree-biased walk upper-bounds the cobra walk,\n"
               "exactly the dominance Section 5 builds Theorems 15/20 on.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("biased_walk",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(60, 8);
  const std::uint64_t occupancy_steps = h.smoke() ? 40000 : 400000;
  h.json().context("trials", static_cast<double>(trials));
  h.json().context("occupancy_steps", static_cast<double>(occupancy_steps));

  bench::print_header("E8  (Theorem 13 / Lemma 14)",
                      "biased walks: occupancy boost and the dominance that "
                      "drives Section 5");
  occupancy_table(h, occupancy_steps);
  epsilon_sweep(h, trials);
  lemma14_table(h, trials);
  return h.finish();
}
