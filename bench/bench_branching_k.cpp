/// A1 — ablation: the branching factor k. The paper fixes k = 2 for its
/// main results and notes (§3) that larger constant k only changes
/// constants on grids; k = 1 is exactly the simple random walk.
///
/// Table: per graph family, cover time vs k in {1, 2, 3, 4, 8}. The jump
/// from k=1 to k=2 is the qualitative one (polynomial -> near-optimal);
/// further k buys only constants — the paper's justification for studying
/// 2-cobra walks.

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

void sweep(const std::string& name, const graph::Graph& g,
           std::uint32_t trials, std::uint64_t seed) {
  io::Table table({"k", "cover", "speedup vs k=1", "speedup vs k=2"});
  double k1_mean = 0.0, k2_mean = 0.0;
  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 8u}) {
    const auto cover = bench::measure(trials, seed + k, [&](core::Engine& gen) {
      return static_cast<double>(core::cobra_cover(g, 0, k, gen).steps);
    });
    if (k == 1) k1_mean = cover.mean;
    if (k == 2) k2_mean = cover.mean;
    table.add_row({io::Table::fmt_int(k), bench::mean_ci(cover),
                   io::Table::fmt(k1_mean / cover.mean, 1) + "x",
                   k >= 2 ? io::Table::fmt(k2_mean / cover.mean, 2) + "x" : "-"});
  }
  std::cout << name << "  (n = " << g.num_vertices() << ")\n" << table << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "A1  (ablation)",
      "branching factor k: k=1 is the plain random walk; k=2 is the paper's "
      "process;\nlarger k buys only constant factors");

  core::Engine graph_gen(0xA1);
  sweep("grid 24x24", graph::make_grid(2, 24), 30, 0xA1100);
  sweep("cycle n=256", graph::make_cycle(256), 30, 0xA1200);
  sweep("random 4-regular n=512",
        graph::make_random_regular(graph_gen, 512, 4), 30, 0xA1300);
  sweep("lollipop n=120", graph::make_lollipop(80, 40), 30, 0xA1400);
  sweep("binary tree 8 levels", graph::make_kary_tree(2, 8), 30, 0xA1500);

  std::cout
      << "reading: the k=1 -> k=2 jump is one-to-two orders of magnitude on\n"
         "grids/cycles/lollipops (branching defeats diffusive backtracking);\n"
         "k=2 -> k=8 is a small constant. This is the ablation behind the\n"
         "paper's choice to analyze 2-cobra walks only.\n";
  return 0;
}
