/// A1 — ablation: the branching factor k. The paper fixes k = 2 for its
/// main results and notes (§3) that larger constant k only changes
/// constants on grids; k = 1 is exactly the simple random walk.
///
/// Table: per graph family, cover time vs k in {1, 2, 3, 4, 8}. The jump
/// from k=1 to k=2 is the qualitative one (polynomial -> near-optimal);
/// further k buys only constants — the paper's justification for studying
/// 2-cobra walks.
///
/// Usage: bench_branching_k [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Sweep graphs are built through the spec registry. --graph replaces
///   the sweep with one registry-built graph; --smoke shrinks the trial
///   count for CI; --out writes the JSON records.

#include "harness.hpp"

#include "core/cover_time.hpp"

namespace {

using namespace cobra;

void sweep(const std::string& name, const std::string& spec,
           const graph::Graph& g, std::uint32_t trials, std::uint64_t seed,
           bench::JsonReporter& json) {
  io::Table table({"k", "cover", "speedup vs k=1", "speedup vs k=2"});
  double k1_mean = 0.0, k2_mean = 0.0;
  for (const std::uint32_t k : {1u, 2u, 3u, 4u, 8u}) {
    const auto cover = bench::measure(trials, seed + k, [&](core::Engine& gen) {
      return static_cast<double>(core::cobra_cover(g, 0, k, gen).steps);
    });
    if (k == 1) k1_mean = cover.mean;
    if (k == 2) k2_mean = cover.mean;
    table.add_row({io::Table::fmt_int(k), bench::mean_ci(cover),
                   io::Table::fmt(k1_mean / cover.mean, 1) + "x",
                   k >= 2 ? io::Table::fmt(k2_mean / cover.mean, 2) + "x" : "-"});
    json.record(name + "/k" + std::to_string(k))
        .field("graph", name)
        .field("spec", spec)
        .field("n", static_cast<double>(g.num_vertices()))
        .field("k", static_cast<double>(k))
        .field("cover_mean", cover.mean)
        .field("cover_ci95", cover.ci95_half)
        .field("speedup_vs_k1", k1_mean / cover.mean);
  }
  std::cout << name << "  (n = " << g.num_vertices() << ")\n" << table << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args = bench::parse_bench_args(argc, argv, {"trials"});
  const bool smoke = args.get_bool("smoke", false);
  const auto trials =
      static_cast<std::uint32_t>(bench::uint_flag(args, "trials", smoke ? 5 : 30));

  bench::print_header(
      "A1  (ablation)",
      "branching factor k: k=1 is the plain random walk; k=2 is the paper's "
      "process;\nlarger k buys only constant factors");

  bench::JsonReporter json("branching_k");
  json.context("trials", static_cast<double>(trials));
  if (smoke) json.context("smoke", 1.0);

  if (args.has("graph")) {
    const std::string spec = io::graph_spec_from_args(args, "");
    sweep(spec, spec, bench::bench_graph(args, spec), trials, 0xA1900, json);
  } else {
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"grid 24x24", smoke ? "grid:side=8,dims=2" : "grid:side=24,dims=2"},
        {"cycle", smoke ? "ring:n=64" : "ring:n=256"},
        {"random 4-regular",
         smoke ? "rreg:n=128,d=4,seed=10" : "rreg:n=512,d=4,seed=10"},
        {"lollipop", smoke ? "lollipop:clique=20,path=10"
                           : "lollipop:clique=80,path=40"},
        {"binary tree", smoke ? "tree:levels=5" : "tree:levels=8"},
    };
    std::uint64_t seed = 0xA1100;
    for (const auto& [name, spec] : cases) {
      sweep(name, spec, gen::build_graph(spec), trials, seed, json);
      seed += 0x100;
    }
  }

  std::cout
      << "reading: the k=1 -> k=2 jump is one-to-two orders of magnitude on\n"
         "grids/cycles/lollipops (branching defeats diffusive backtracking);\n"
         "k=2 -> k=8 is a small constant. This is the ablation behind the\n"
         "paper's choice to analyze 2-cobra walks only.\n";
  if (args.has("out")) return json.write(args.get("out", "")) ? 0 : 1;
  return 0;
}
