#pragma once

/// Shared helpers for the experiment benches. Every bench binary prints one
/// or more tables (the repo's equivalent of the paper's tables/figures —
/// the paper itself is theory-only, so each table validates one theorem's
/// *shape*: growth exponent, bounded ratio, or ordering). See DESIGN.md §3
/// for the experiment index and EXPERIMENTS.md for recorded results.

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/cover_time.hpp"
#include "core/types.hpp"
#include "io/table.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace cobra::bench {

/// A Monte-Carlo measurement: run `trial` `trials` times on the global pool
/// with deterministic seeding and summarize.
inline stats::Summary measure(
    std::uint32_t trials, std::uint64_t seed,
    const std::function<double(core::Engine&)>& trial) {
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = trials;
  const auto samples = par::run_trials(
      par::global_pool(), opts,
      [&](core::Engine& gen, std::uint32_t) { return trial(gen); });
  return stats::summarize(samples);
}

/// Pretty "mean +- ci" cell.
inline std::string mean_ci(const stats::Summary& s, int precision = 1) {
  return io::Table::fmt(s.mean, precision) + " +- " +
         io::Table::fmt(s.ci95_half, precision);
}

/// Print a fitted exponent line under a sweep table.
inline void print_fit(const std::string& label, const stats::PowerLawFit& fit,
                      const std::string& expectation) {
  std::cout << label << ": fitted exponent = " << io::Table::fmt(fit.exponent, 3)
            << " +- " << io::Table::fmt(2.0 * fit.exponent_stderr, 3)
            << "  (R^2 = " << io::Table::fmt(fit.r_squared, 4) << ")"
            << "   [" << expectation << "]\n";
}

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "==================================================================\n"
            << experiment_id << "\n" << claim << "\n"
            << "==================================================================\n";
}

}  // namespace cobra::bench
