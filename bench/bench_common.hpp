#pragma once

/// Shared helpers for the experiment benches. Every bench binary prints one
/// or more tables (the repo's equivalent of the paper's tables/figures —
/// the paper itself is theory-only, so each table validates one theorem's
/// *shape*: growth exponent, bounded ratio, or ordering). See DESIGN.md §3
/// for the experiment index and EXPERIMENTS.md for recorded results.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/cover_time.hpp"
#include "core/types.hpp"
#include "gen/registry.hpp"
#include "io/args.hpp"
#include "io/graph_flag.hpp"
#include "io/table.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace cobra::bench {

/// Shared bench flags. Every migrated bench accepts:
///   --graph <spec>   construct the benched graph through the gen registry
///                    (one construction path for benches/examples/tests)
///   --out <path>     JSON output path (benches that record baselines)
///   --smoke          tiny sizes / few trials — the CI bit-rot guard; must
///                    finish in seconds and exercise the full code path
/// Bench-specific flags ride in `extra`. On a malformed flag or spec the
/// process prints the error plus the GraphSpec grammar and exits 1, so a
/// typo'd sweep script fails with usage text.
inline io::Args parse_bench_args(int argc, const char* const* argv,
                                 std::vector<std::string> extra = {}) {
  extra.emplace_back("graph");
  extra.emplace_back("out");
  extra.emplace_back("smoke");
  try {
    io::Args args(argc, argv, extra);
    if (!args.positional().empty()) {
      // The pre-migration benches took positional [out.json] [n]; silently
      // ignoring those would overwrite recorded baselines in the cwd.
      throw std::invalid_argument("positional argument '" +
                                  args.positional().front() +
                                  "' not accepted (use --out / --graph)");
    }
    return args;
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\nflags: ";
    for (const auto& flag : extra) std::cerr << "--" << flag << " ";
    std::cerr << "\ngraph specs:\n" << gen::grammar_help();
    std::exit(1);
  }
}

/// Build --graph (or the fallback spec) through the registry, exiting with
/// the grammar table on a bad spec (same contract as parse_bench_args).
inline graph::Graph bench_graph(const io::Args& args,
                                const std::string& fallback_spec) {
  try {
    return io::graph_from_args(args, fallback_spec);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    std::exit(1);
  }
}

/// Machine-readable twin of the console tables: collects flat records and
/// writes one BENCH_<name>.json file. This is how the perf trajectory is
/// recorded across PRs — each bench that matters appends its numbers here
/// so later optimization work has a baseline to beat (EXPERIMENTS.md holds
/// the human-readable commentary).
///
/// Schema:
///   {
///     "benchmark": "<name>",
///     "context": { "<key>": <string|number>, ... },
///     "records": [ { "name": "...", "<field>": <number|string>, ... } ]
///   }
class JsonReporter {
 public:
  /// `benchmark` names the suite; the file is written by `write(path)`.
  explicit JsonReporter(std::string benchmark)
      : benchmark_(std::move(benchmark)) {
    context("hardware_concurrency",
            static_cast<double>(std::thread::hardware_concurrency()));
  }

  void context(const std::string& key, const std::string& value) {
    context_.emplace_back(key, quote(value));
  }
  void context(const std::string& key, double value) {
    context_.emplace_back(key, number(value));
  }

  /// Start a record; fill it with the returned handle.
  class Record {
   public:
    Record& field(const std::string& key, double value) {
      fields_.emplace_back(key, JsonReporter::number(value));
      return *this;
    }
    Record& field(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, JsonReporter::quote(value));
      return *this;
    }

   private:
    friend class JsonReporter;
    explicit Record(std::string name) : name_(std::move(name)) {}
    std::string name_;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// The returned reference stays valid for the reporter's lifetime
  /// (records live in a deque), so handles may be kept across later
  /// record() calls.
  Record& record(std::string name) {
    records_.push_back(Record(std::move(name)));
    return records_.back();
  }

  /// Serialize to `path`; reports and returns failure instead of silently
  /// losing the baseline file.
  bool write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "[json] ERROR: cannot open " << path << " for writing\n";
      return false;
    }
    out << render();
    out.flush();
    if (!out) {
      std::cerr << "[json] ERROR: write to " << path << " failed\n";
      return false;
    }
    std::cout << "[json] wrote " << path << "\n";
    return true;
  }

  [[nodiscard]] std::string render() const {
    std::ostringstream os;
    os << "{\n  \"benchmark\": " << quote(benchmark_) << ",\n  \"context\": {";
    for (std::size_t i = 0; i < context_.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    " << quote(context_[i].first)
         << ": " << context_[i].second;
    }
    os << "\n  },\n  \"records\": [";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      const Record& rec = records_[r];
      os << (r == 0 ? "\n" : ",\n") << "    { \"name\": " << quote(rec.name_);
      for (const auto& [key, value] : rec.fields_) {
        os << ", " << quote(key) << ": " << value;
      }
      os << " }";
    }
    os << "\n  ]\n}\n";
    return os.str();
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      const auto u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (u < 0x20) {  // RFC 8259: control chars must be escaped
        constexpr char kHex[] = "0123456789abcdef";
        out += "\\u00";
        out += kHex[u >> 4];
        out += kHex[u & 0xf];
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  static std::string number(double value) {
    if (!std::isfinite(value)) return "null";
    std::ostringstream os;
    os.precision(15);
    os << value;
    return os.str();
  }

  std::string benchmark_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::deque<Record> records_;  // stable references across record() calls
};

/// A Monte-Carlo measurement: run `trial` `trials` times on the global pool
/// with deterministic seeding and summarize.
inline stats::Summary measure(
    std::uint32_t trials, std::uint64_t seed,
    const std::function<double(core::Engine&)>& trial) {
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = trials;
  const auto samples = par::run_trials(
      par::global_pool(), opts,
      [&](core::Engine& gen, std::uint32_t) { return trial(gen); });
  return stats::summarize(samples);
}

/// Pretty "mean +- ci" cell.
inline std::string mean_ci(const stats::Summary& s, int precision = 1) {
  return io::Table::fmt(s.mean, precision) + " +- " +
         io::Table::fmt(s.ci95_half, precision);
}

/// Print a fitted exponent line under a sweep table.
inline void print_fit(const std::string& label, const stats::PowerLawFit& fit,
                      const std::string& expectation) {
  std::cout << label << ": fitted exponent = " << io::Table::fmt(fit.exponent, 3)
            << " +- " << io::Table::fmt(2.0 * fit.exponent_stderr, 3)
            << "  (R^2 = " << io::Table::fmt(fit.r_squared, 4) << ")"
            << "   [" << expectation << "]\n";
}

inline void print_header(const std::string& experiment_id,
                         const std::string& claim) {
  std::cout << "==================================================================\n"
            << experiment_id << "\n" << claim << "\n"
            << "==================================================================\n";
}

}  // namespace cobra::bench
