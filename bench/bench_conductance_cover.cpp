/// E2 — Theorem 8: a 2-cobra walk on a d-regular graph with conductance
/// Phi covers in O(d^4 Phi^-2 log^2 n) rounds w.h.p.
///
/// Table: for each d-regular family (hypercube, random d-regular, 2-D
/// torus, cycle) sweep n, measure the cover time AND the conductance
/// (sweep-cut point estimate), and report the ratio
///
///      T_cover / (Phi^-2 log^2 n)
///
/// The theorem predicts the ratio stays bounded as n grows within each
/// family (the d^4 factor is absorbed into the per-family constant).
///
/// Usage: bench_conductance_cover [--trials T] [--graph <spec>]
///        [--out path] [--smoke]
///   Sweep graphs are built through the spec registry. --graph replaces
///   the sweeps with one row on that graph; --smoke shrinks the size
///   lists and trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "graph/spectral.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

void add_row(bench::Harness& h, io::Table& table, const std::string& family,
             const bench::BuiltCase& c, std::uint32_t trials,
             std::uint64_t seed) {
  const graph::Graph& g = c.graph;
  const auto est = graph::estimate_conductance(g);
  const double phi = est.point();
  const auto cover = bench::measure(
      trials, seed ^ std::hash<std::string>{}(c.spec), [&](core::Engine& gen) {
        return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, 2u);
      });
  const double ln_n = std::log(static_cast<double>(g.num_vertices()));
  const double bound_shape = (1.0 / (phi * phi)) * ln_n * ln_n;
  table.add_row({c.name, io::Table::fmt_int(g.num_vertices()),
                 io::Table::fmt_int(g.degree(0)), io::Table::fmt(phi, 4),
                 bench::mean_ci(cover),
                 io::Table::fmt(cover.mean / bound_shape, 4)});
  h.json()
      .record(family + "/" + c.name)
      .field("spec", c.spec)
      .field("family", family)
      .field("n", static_cast<double>(g.num_vertices()))
      .field("degree", static_cast<double>(g.degree(0)))
      .field("phi_sweep", phi)
      .field("cover_mean", cover.mean)
      .field("cover_ci95", cover.ci95_half)
      .field("cover_over_bound_shape", cover.mean / bound_shape);
}

void sweep_family(bench::Harness& h, const std::string& label,
                  const std::string& family,
                  const std::vector<bench::SuiteCase>& cases,
                  std::uint32_t trials, std::uint64_t seed) {
  io::Table table({"graph", "n", "d", "Phi (sweep)", "cover",
                   "cover / (Phi^-2 ln^2 n)"});
  table.set_align(0, io::Align::Left);
  for (const auto& c : h.suite(cases)) {
    add_row(h, table, family, c, trials, seed);
  }
  std::cout << label << "\n" << table << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("conductance_cover",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(40, 6);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "E2  (Theorem 8)",
      "2-cobra cover on d-regular graphs is O(d^4 Phi^-2 log^2 n); the final\n"
      "column must stay bounded (not grow) with n within each family");

  if (h.has_graph()) {
    io::Table table({"graph", "n", "d", "Phi (sweep)", "cover",
                     "cover / (Phi^-2 ln^2 n)"});
    table.set_align(0, io::Align::Left);
    for (const auto& c : h.suite({})) {
      add_row(h, table, "graph", c, trials, 0xE20);
    }
    std::cout << table << "\n";
    return h.finish();
  }

  const bool smoke = h.smoke();

  {
    std::vector<bench::SuiteCase> cases;
    for (const std::uint32_t d :
         smoke ? std::vector<std::uint32_t>{4, 6}
               : std::vector<std::uint32_t>{6, 8, 10, 12}) {
      cases.push_back({"hypercube Q_" + std::to_string(d),
                       "hypercube:dims=" + std::to_string(d)});
    }
    sweep_family(h, "hypercube family (Phi = 1/d shrinks with n)",
                 "hypercube", cases, trials, 0xE21);
  }
  {
    std::vector<bench::SuiteCase> cases;
    for (const std::uint32_t n :
         smoke ? std::vector<std::uint32_t>{128, 256}
               : std::vector<std::uint32_t>{256, 512, 1024, 2048}) {
      cases.push_back({"random 6-regular n=" + std::to_string(n),
                       "rreg:n=" + std::to_string(n) + ",d=6,seed=" +
                           std::to_string(0xE2 + n)});
    }
    sweep_family(h, "random 6-regular family (Phi = Theta(1))", "rreg",
                 cases, trials, 0xE22);
  }
  {
    std::vector<bench::SuiteCase> cases;
    for (const std::uint32_t side :
         smoke ? std::vector<std::uint32_t>{6, 8}
               : std::vector<std::uint32_t>{8, 16, 24, 32}) {
      cases.push_back(
          {"torus " + std::to_string(side) + "x" + std::to_string(side),
           "torus:side=" + std::to_string(side) + ",dims=2"});
    }
    sweep_family(h, "2-D torus family (Phi ~ 1/side)", "torus", cases, trials,
                 0xE23);
  }
  {
    std::vector<bench::SuiteCase> cases;
    for (const std::uint32_t n :
         smoke ? std::vector<std::uint32_t>{32, 64}
               : std::vector<std::uint32_t>{64, 128, 256}) {
      cases.push_back({"cycle n=" + std::to_string(n),
                       "ring:n=" + std::to_string(n)});
    }
    sweep_family(h, "cycle family (Phi ~ 1/n: the bound's weak regime)",
                 "ring", cases, trials, 0xE24);
  }

  std::cout
      << "reading: within each family the last column stays of the same\n"
         "order as n grows - the conductance term, not n itself, drives the\n"
         "cover time, which is the content of Theorem 8. (On the cycle the\n"
         "bound is loose, as the paper notes for very low conductance.)\n";
  return h.finish();
}
