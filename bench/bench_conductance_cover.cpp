/// E2 — Theorem 8: a 2-cobra walk on a d-regular graph with conductance
/// Phi covers in O(d^4 Phi^-2 log^2 n) rounds w.h.p.
///
/// Table: for each d-regular family (hypercube, random d-regular, 2-D
/// torus, cycle) sweep n, measure the cover time AND the conductance
/// (sweep-cut point estimate), and report the ratio
///
///      T_cover / (Phi^-2 log^2 n)
///
/// The theorem predicts the ratio stays bounded as n grows within each
/// family (the d^4 factor is absorbed into the per-family constant).

#include <cmath>

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"

namespace {

using namespace cobra;

struct FamilyPoint {
  std::string label;
  graph::Graph graph;
};

void sweep_family(const std::string& name,
                  const std::vector<FamilyPoint>& points,
                  std::uint32_t trials, std::uint64_t seed) {
  io::Table table({"graph", "n", "d", "Phi (sweep)", "cover",
                   "cover / (Phi^-2 ln^2 n)"});
  table.set_align(0, io::Align::Left);
  for (const auto& [label, g] : points) {
    const auto est = graph::estimate_conductance(g);
    const double phi = est.point();
    const auto cover = bench::measure(
        trials, seed ^ std::hash<std::string>{}(label),
        [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    const double ln_n = std::log(static_cast<double>(g.num_vertices()));
    const double bound_shape = (1.0 / (phi * phi)) * ln_n * ln_n;
    table.add_row({label, io::Table::fmt_int(g.num_vertices()),
                   io::Table::fmt_int(g.degree(0)), io::Table::fmt(phi, 4),
                   bench::mean_ci(cover),
                   io::Table::fmt(cover.mean / bound_shape, 4)});
  }
  std::cout << name << "\n" << table << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "E2  (Theorem 8)",
      "2-cobra cover on d-regular graphs is O(d^4 Phi^-2 log^2 n); the final\n"
      "column must stay bounded (not grow) with n within each family");

  core::Engine gen(0xE2);

  {
    std::vector<FamilyPoint> pts;
    for (const std::uint32_t d : {6u, 8u, 10u, 12u}) {
      pts.push_back({"hypercube Q_" + std::to_string(d),
                     graph::make_hypercube(d)});
    }
    sweep_family("hypercube family (Phi = 1/d shrinks with n)", pts, 40, 0xE21);
  }
  {
    std::vector<FamilyPoint> pts;
    for (const std::uint32_t n : {256u, 512u, 1024u, 2048u}) {
      pts.push_back({"random 6-regular n=" + std::to_string(n),
                     graph::make_random_regular(gen, n, 6)});
    }
    sweep_family("random 6-regular family (Phi = Theta(1))", pts, 40, 0xE22);
  }
  {
    std::vector<FamilyPoint> pts;
    for (const std::uint32_t side : {8u, 16u, 24u, 32u}) {
      pts.push_back({"torus " + std::to_string(side) + "x" + std::to_string(side),
                     graph::make_grid(2, side, true)});
    }
    sweep_family("2-D torus family (Phi ~ 1/side)", pts, 40, 0xE23);
  }
  {
    std::vector<FamilyPoint> pts;
    for (const std::uint32_t n : {64u, 128u, 256u}) {
      pts.push_back({"cycle n=" + std::to_string(n), graph::make_cycle(n)});
    }
    sweep_family("cycle family (Phi ~ 1/n: the bound's weak regime)", pts, 40,
                 0xE24);
  }

  std::cout
      << "reading: within each family the last column stays of the same\n"
         "order as n grows - the conductance term, not n itself, drives the\n"
         "cover time, which is the content of Theorem 8. (On the cycle the\n"
         "bound is loose, as the paper notes for very low conductance.)\n";
  return 0;
}
