/// A9 — Theorem 8's epoch-length step: the proof divides Walt into epochs
/// of s = O(Phi^-2 log n) lazy steps, long enough that each pebble's
/// marginal distribution is within 1/2n of stationarity coordinate-wise.
/// This bench measures, per family:
///
///   * the exact lazy mixing time to TV 1/4 and to coordinate error 1/2n,
///   * the paper's spectral prescription s* = 2 ln(2n) / Phi^2 with the
///     measured sweep-cut Phi,
///   * their ratio — s* must upper-bound the measured epoch (it does,
///     generously; conductance-squared is conservative vs the true gap).
///
/// Usage: bench_epoch_mixing [--graph <spec>] [--out path] [--smoke]
///   Sweep graphs are built through the spec registry. --graph replaces
///   the sweep with one registry-built row; --smoke shrinks the case list
///   and the doubling-scan cap for CI.

#include <cmath>

#include "harness.hpp"

#include "graph/mixing.hpp"
#include "graph/spectral.hpp"

namespace {

using namespace cobra;

void add_row(io::Table& table, bench::JsonReporter& json,
             const std::string& name, const std::string& spec,
             const graph::Graph& g, std::uint64_t cap) {
  const std::uint32_t n = g.num_vertices();
  const double phi = graph::estimate_conductance(g).point();
  const std::uint64_t t_tv = graph::lazy_mixing_time(g, 0, 0.25, cap);
  // Coordinate criterion: max_v |p_t - pi_v| <= 1/(2n), by doubling scan.
  std::uint64_t t_coord = cap;
  for (std::uint64_t t = 1; t <= cap; t *= 2) {
    if (graph::max_coordinate_deviation(g, 0, t) <= 0.5 / n) {
      // refine down within [t/2, t]
      std::uint64_t lo = t / 2, hi = t;
      while (lo + 1 < hi) {
        const std::uint64_t mid = (lo + hi) / 2;
        (graph::max_coordinate_deviation(g, 0, mid) <= 0.5 / n ? hi : lo) = mid;
      }
      t_coord = hi;
      break;
    }
  }
  const double s_star = 2.0 * std::log(2.0 * n) / (phi * phi);
  const double ratio = s_star / static_cast<double>(t_coord);
  table.add_row({name, io::Table::fmt_int(n), io::Table::fmt(phi, 4),
                 io::Table::fmt_int(static_cast<long long>(t_tv)),
                 io::Table::fmt_int(static_cast<long long>(t_coord)),
                 io::Table::fmt(s_star, 0), io::Table::fmt(ratio, 1)});
  json.record(name)
      .field("spec", spec)
      .field("n", static_cast<double>(n))
      .field("phi_sweep", phi)
      .field("t_mix_tv_quarter", static_cast<double>(t_tv))
      .field("t_coord_half_over_n", static_cast<double>(t_coord))
      .field("s_star", s_star)
      .field("s_star_over_t", ratio);
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args = bench::parse_bench_args(argc, argv, {});
  const bool smoke = args.get_bool("smoke", false);

  bench::print_header(
      "A9  (Theorem 8's epoch length)",
      "measured lazy mixing vs the s = O(Phi^-2 log n) prescription");

  bench::JsonReporter json("epoch_mixing");
  if (smoke) json.context("smoke", 1.0);
  const std::uint64_t cap = smoke ? (1u << 16) : (1u << 22);

  io::Table table({"graph", "n", "Phi (sweep)", "t_mix(TV<=1/4)",
                   "t(coord<=1/2n)", "s* = 2 ln(2n)/Phi^2", "s*/t"});
  table.set_align(0, io::Align::Left);

  if (args.has("graph")) {
    const std::string spec = io::graph_spec_from_args(args, "");
    add_row(table, json, spec, spec, bench::bench_graph(args, spec), cap);
  } else {
    const std::vector<std::pair<std::string, std::string>> cases =
        smoke ? std::vector<std::pair<std::string, std::string>>{
                    {"complete n=32", "complete:n=32"},
                    {"hypercube Q_6", "hypercube:dims=6"},
                    {"cycle n=32", "ring:n=32"},
                }
              : std::vector<std::pair<std::string, std::string>>{
                    {"complete n=64", "complete:n=64"},
                    {"hypercube Q_8", "hypercube:dims=8"},
                    {"random 6-regular n=256", "rreg:n=256,d=6,seed=169"},
                    {"torus 16x16", "torus:side=16,dims=2"},
                    {"cycle n=64", "ring:n=64"},
                };
    for (const auto& [name, spec] : cases) {
      add_row(table, json, name, spec, gen::build_graph(spec), cap);
    }
  }
  std::cout << table << "\n";
  std::cout
      << "reading: the spectral prescription s* dominates the measured\n"
         "epoch length on every family (final column >= 1): Theorem 8's\n"
         "epochs are long enough, with the Cheeger-squared slack the paper\n"
         "accepts for generality. (On the cycle both are Theta(n^2), the\n"
         "regime where the theorem's bound goes weak.)\n";
  if (args.has("out")) return json.write(args.get("out", "")) ? 0 : 1;
  return 0;
}
