/// A9 — Theorem 8's epoch-length step: the proof divides Walt into epochs
/// of s = O(Phi^-2 log n) lazy steps, long enough that each pebble's
/// marginal distribution is within 1/2n of stationarity coordinate-wise.
/// This bench measures, per family:
///
///   * the exact lazy mixing time to TV 1/4 and to coordinate error 1/2n,
///   * the paper's spectral prescription s* = 2 ln(2n) / Phi^2 with the
///     measured sweep-cut Phi,
///   * their ratio — s* must upper-bound the measured epoch (it does,
///     generously; conductance-squared is conservative vs the true gap).

#include <cmath>

#include "bench_common.hpp"

#include "graph/generators.hpp"
#include "graph/mixing.hpp"
#include "graph/spectral.hpp"

namespace {

using namespace cobra;

}  // namespace

int main() {
  bench::print_header(
      "A9  (Theorem 8's epoch length)",
      "measured lazy mixing vs the s = O(Phi^-2 log n) prescription");

  core::Engine graph_gen(0xA9);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  const std::vector<Case> cases = {
      {"complete n=64", graph::make_complete(64)},
      {"hypercube Q_8", graph::make_hypercube(8)},
      {"random 6-regular n=256", graph::make_random_regular(graph_gen, 256, 6)},
      {"torus 16x16", graph::make_grid(2, 16, true)},
      {"cycle n=64", graph::make_cycle(64)},
  };

  io::Table table({"graph", "n", "Phi (sweep)", "t_mix(TV<=1/4)",
                   "t(coord<=1/2n)", "s* = 2 ln(2n)/Phi^2", "s*/t"});
  table.set_align(0, io::Align::Left);
  for (const auto& [name, g] : cases) {
    const std::uint32_t n = g.num_vertices();
    const double phi = graph::estimate_conductance(g).point();
    const std::uint64_t cap = 1u << 22;
    const std::uint64_t t_tv = graph::lazy_mixing_time(g, 0, 0.25, cap);
    // Coordinate criterion: max_v |p_t - pi_v| <= 1/(2n), by doubling scan.
    std::uint64_t t_coord = cap;
    for (std::uint64_t t = 1; t <= cap; t *= 2) {
      if (graph::max_coordinate_deviation(g, 0, t) <= 0.5 / n) {
        // refine down within [t/2, t]
        std::uint64_t lo = t / 2, hi = t;
        while (lo + 1 < hi) {
          const std::uint64_t mid = (lo + hi) / 2;
          (graph::max_coordinate_deviation(g, 0, mid) <= 0.5 / n ? hi : lo) =
              mid;
        }
        t_coord = hi;
        break;
      }
    }
    const double s_star = 2.0 * std::log(2.0 * n) / (phi * phi);
    table.add_row({name, io::Table::fmt_int(n), io::Table::fmt(phi, 4),
                   io::Table::fmt_int(static_cast<long long>(t_tv)),
                   io::Table::fmt_int(static_cast<long long>(t_coord)),
                   io::Table::fmt(s_star, 0),
                   io::Table::fmt(s_star / static_cast<double>(t_coord), 1)});
  }
  std::cout << table << "\n";
  std::cout
      << "reading: the spectral prescription s* dominates the measured\n"
         "epoch length on every family (final column >= 1): Theorem 8's\n"
         "epochs are long enough, with the Cheeger-squared slack the paper\n"
         "accepts for generality. (On the cycle both are Theta(n^2), the\n"
         "regime where the theorem's bound goes weak.)\n";
  return 0;
}
