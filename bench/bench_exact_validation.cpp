/// A10 — calibration certificate: the Monte-Carlo estimators used by every
/// other experiment, validated against EXACT expectations computed from
/// the walk's subset Markov chain (core/exact_cobra.hpp) and the dense RW
/// solver (graph/exact_hitting.hpp). If these tables agree, the
/// statistical machinery of E1–E10 is trustworthy.
///
///   1. exact vs simulated 2-cobra cover time on all <= 8-vertex families;
///   2. exact vs simulated 2-cobra hitting times;
///   3. exact cobra-vs-RW speedup factors (the paper's object, with zero
///      statistical noise).
///
/// Usage: bench_exact_validation [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Case graphs are built through the spec registry. --graph replaces
///   the case list with that one graph — it must have n <= 8 (the exact
///   subset chain is exponential in n); --smoke shrinks the simulated
///   trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cover_time.hpp"
#include "core/exact_cobra.hpp"
#include "core/hitting_time.hpp"

namespace {

using namespace cobra;

/// The exact cover chain enumerates (active, covered) subset pairs, so
/// anything past 8 vertices is out of reach by design.
constexpr std::uint32_t kMaxExactVertices = 8;

std::vector<bench::SuiteCase> tiny_cases() {
  return {
      {"cycle n=7", "ring:n=7"},
      {"path n=7", "path:n=7"},
      {"star n=8", "star:n=8"},
      {"complete n=7", "complete:n=7"},
      {"grid 2x2x2", "grid:side=2,dims=3"},
      {"binary tree 3 lvls", "tree:levels=3,arity=2"},
  };
}

void cover_table(bench::Harness& h, const std::vector<bench::BuiltCase>& cases,
                 std::uint32_t trials) {
  std::cout << "1) expected 2-cobra cover time: exact vs Monte Carlo ("
            << trials << " trials)\n";
  io::Table table({"graph", "exact", "simulated", "z-score"});
  table.set_align(0, io::Align::Left);
  for (const auto& c : cases) {
    const graph::Graph& g = c.graph;
    const core::ExactCobra exact(g, 2);
    const double truth = exact.expected_cover_time(0);
    const auto sim = bench::measure(
        trials, 0xA100 ^ std::hash<std::string>{}(c.spec),
        [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    const double z = sim.sem > 0 ? (sim.mean - truth) / sim.sem : 0.0;
    table.add_row({c.name, io::Table::fmt(truth, 4), bench::mean_ci(sim, 3),
                   io::Table::fmt(z, 2)});
    h.json()
        .record("cover/" + c.name)
        .field("spec", c.spec)
        .field("exact_cover", truth)
        .field("sim_cover_mean", sim.mean)
        .field("sim_cover_sem", sim.sem)
        .field("z_score", z);
  }
  std::cout << table
            << "reading: every |z| < 3 — the simulator is unbiased against\n"
               "the exact subset-chain expectation.\n\n";
}

void hitting_table(bench::Harness& h,
                   const std::vector<bench::BuiltCase>& cases,
                   std::uint32_t trials) {
  std::cout << "2) expected 2-cobra hitting time: exact vs Monte Carlo\n";
  io::Table table({"graph", "pair", "exact", "simulated", "z-score"});
  table.set_align(0, io::Align::Left);
  for (const auto& c : cases) {
    const graph::Graph& g = c.graph;
    const core::ExactCobra exact(g, 2);
    const graph::Vertex target = g.num_vertices() - 1;
    const double truth = exact.expected_hitting_time(0, target);
    const auto sim = bench::measure(
        trials, 0xA200 ^ std::hash<std::string>{}(c.spec),
        [&](core::Engine& gen) {
          return static_cast<double>(
              core::cobra_hit(g, 0, target, 2, gen).steps);
        });
    const double z = sim.sem > 0 ? (sim.mean - truth) / sim.sem : 0.0;
    table.add_row({c.name, "0 -> " + std::to_string(target),
                   io::Table::fmt(truth, 4), bench::mean_ci(sim, 3),
                   io::Table::fmt(z, 2)});
    h.json()
        .record("hitting/" + c.name)
        .field("spec", c.spec)
        .field("target", static_cast<double>(target))
        .field("exact_hit", truth)
        .field("sim_hit_mean", sim.mean)
        .field("z_score", z);
  }
  std::cout << table << "\n";
}

void speedup_table(bench::Harness& h,
                   const std::vector<bench::BuiltCase>& cases) {
  std::cout << "3) exact speedup of branching (zero statistical noise)\n";
  io::Table table({"graph", "RW cover (k=1)", "cobra cover (k=2)", "speedup"});
  table.set_align(0, io::Align::Left);
  for (const auto& c : cases) {
    const core::ExactCobra rw(c.graph, 1);
    const core::ExactCobra cobra(c.graph, 2);
    const double t1 = rw.expected_cover_time(0);
    const double t2 = cobra.expected_cover_time(0);
    table.add_row({c.name, io::Table::fmt(t1, 3), io::Table::fmt(t2, 3),
                   io::Table::fmt(t1 / t2, 2) + "x"});
    h.json()
        .record("speedup/" + c.name)
        .field("spec", c.spec)
        .field("exact_rw_cover", t1)
        .field("exact_cobra_cover", t2)
        .field("speedup", t1 / t2);
  }
  std::cout << table
            << "reading: branching helps everywhere, even at n = 7-8, and\n"
               "most where the walk is most diffusive (path/cycle) - the\n"
               "tiny-n exact shadow of every large-n experiment above.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("exact_validation",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(5000, 500);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "A10  (calibration)",
      "exact subset-chain expectations vs the Monte-Carlo estimators");

  const auto cases = h.suite(tiny_cases());
  for (const auto& c : cases) {
    if (c.graph.num_vertices() > kMaxExactVertices) {
      std::cerr << "bench_exact_validation: graph '" << c.spec << "' has "
                << c.graph.num_vertices() << " vertices; the exact subset "
                << "chain needs n <= " << kMaxExactVertices << "\n";
      return 1;
    }
  }
  cover_table(h, cases, trials);
  hitting_table(h, cases, trials);
  speedup_table(h, cases);
  return h.finish();
}
