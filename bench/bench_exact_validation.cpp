/// A10 — calibration certificate: the Monte-Carlo estimators used by every
/// other experiment, validated against EXACT expectations computed from
/// the walk's subset Markov chain (core/exact_cobra.hpp) and the dense RW
/// solver (graph/exact_hitting.hpp). If these tables agree, the
/// statistical machinery of E1–E10 is trustworthy.
///
///   1. exact vs simulated 2-cobra cover time on all <= 8-vertex families;
///   2. exact vs simulated 2-cobra hitting times;
///   3. exact cobra-vs-RW speedup factors (the paper's object, with zero
///      statistical noise).

#include <cmath>

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "core/exact_cobra.hpp"
#include "core/hitting_time.hpp"
#include "graph/builder.hpp"
#include "graph/exact_hitting.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

struct Case {
  std::string name;
  graph::Graph g;
};

std::vector<Case> tiny_cases() {
  return {
      {"cycle n=7", graph::make_cycle(7)},
      {"path n=7", graph::make_path(7)},
      {"star n=8", graph::make_star(8)},
      {"complete n=7", graph::make_complete(7)},
      {"grid 2x4", [] {
         // 2 x 4 grid via generic generator: dimensions (2, 4).
         graph::GraphBuilder b(8);
         for (graph::Vertex r = 0; r < 2; ++r) {
           for (graph::Vertex c = 0; c < 4; ++c) {
             const graph::Vertex v = r * 4 + c;
             if (c + 1 < 4) b.add_edge(v, v + 1);
             if (r + 1 < 2) b.add_edge(v, v + 4);
           }
         }
         return b.build();
       }()},
      {"binary tree 3 lvls", graph::make_kary_tree(2, 3)},
  };
}

void cover_table() {
  std::cout << "1) expected 2-cobra cover time: exact vs Monte Carlo (5000 "
               "trials)\n";
  io::Table table({"graph", "exact", "simulated", "z-score"});
  table.set_align(0, io::Align::Left);
  for (const auto& [name, g] : tiny_cases()) {
    const core::ExactCobra exact(g, 2);
    const double truth = exact.expected_cover_time(0);
    const auto sim = bench::measure(
        5000, 0xA100 ^ std::hash<std::string>{}(name), [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    const double z = sim.sem > 0 ? (sim.mean - truth) / sim.sem : 0.0;
    table.add_row({name, io::Table::fmt(truth, 4), bench::mean_ci(sim, 3),
                   io::Table::fmt(z, 2)});
  }
  std::cout << table
            << "reading: every |z| < 3 — the simulator is unbiased against\n"
               "the exact subset-chain expectation.\n\n";
}

void hitting_table() {
  std::cout << "2) expected 2-cobra hitting time: exact vs Monte Carlo\n";
  io::Table table({"graph", "pair", "exact", "simulated", "z-score"});
  table.set_align(0, io::Align::Left);
  for (const auto& [name, g] : tiny_cases()) {
    const core::ExactCobra exact(g, 2);
    const graph::Vertex target = g.num_vertices() - 1;
    const double truth = exact.expected_hitting_time(0, target);
    const auto sim = bench::measure(
        5000, 0xA200 ^ std::hash<std::string>{}(name), [&](core::Engine& gen) {
          return static_cast<double>(
              core::cobra_hit(g, 0, target, 2, gen).steps);
        });
    const double z = sim.sem > 0 ? (sim.mean - truth) / sim.sem : 0.0;
    table.add_row({name,
                   "0 -> " + std::to_string(target),
                   io::Table::fmt(truth, 4), bench::mean_ci(sim, 3),
                   io::Table::fmt(z, 2)});
  }
  std::cout << table << "\n";
}

void speedup_table() {
  std::cout << "3) exact speedup of branching (zero statistical noise)\n";
  io::Table table({"graph", "RW cover (k=1)", "cobra cover (k=2)", "speedup"});
  table.set_align(0, io::Align::Left);
  for (const auto& [name, g] : tiny_cases()) {
    const core::ExactCobra rw(g, 1);
    const core::ExactCobra cobra(g, 2);
    const double t1 = rw.expected_cover_time(0);
    const double t2 = cobra.expected_cover_time(0);
    table.add_row({name, io::Table::fmt(t1, 3), io::Table::fmt(t2, 3),
                   io::Table::fmt(t1 / t2, 2) + "x"});
  }
  std::cout << table
            << "reading: branching helps everywhere, even at n = 7-8, and\n"
               "most where the walk is most diffusive (path/cycle) - the\n"
               "tiny-n exact shadow of every large-n experiment above.\n";
}

}  // namespace

int main() {
  bench::print_header(
      "A10  (calibration)",
      "exact subset-chain expectations vs the Monte-Carlo estimators");
  cover_table();
  hitting_table();
  speedup_table();
  return 0;
}
