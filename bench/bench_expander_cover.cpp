/// E3 — Corollary 9: on bounded-degree expanders the 2-cobra walk covers in
/// O(log^2 n) rounds.
///
/// Table: random d-regular graphs (d = 6, 10) over a geometric n sweep;
/// report cover time, cover / ln^2 n, and fit cover = a * (ln n)^c
/// expecting c <= 2. Also reports the measured spectral gap to certify each
/// instance really is an expander.
///
/// Usage: bench_expander_cover [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Sweep graphs are built through the spec registry
///   ("rreg:n=<N>,d=<D>,seed=<S>"). --graph replaces the sweep with one
///   registry-built graph (one table row, no fit); --smoke shrinks the
///   sweep and trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "graph/spectral.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

/// One sweep row: spectral gap + 2-cobra cover statistics for `c`.
void add_row(bench::Harness& h, io::Table& table, const std::string& family,
             const bench::BuiltCase& c, std::uint32_t trials,
             std::uint64_t seed, std::vector<double>* ns,
             std::vector<double>* covers) {
  const graph::Graph& g = c.graph;
  const double gap = graph::lazy_walk_spectrum(g).spectral_gap;
  const auto cover = bench::measure(trials, seed, [&](core::Engine& gen) {
    return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, 2u);
  });
  const double ln_n = std::log(static_cast<double>(g.num_vertices()));
  table.add_row({io::Table::fmt_int(g.num_vertices()), io::Table::fmt(gap, 4),
                 bench::mean_ci(cover),
                 io::Table::fmt(cover.mean / (ln_n * ln_n), 3)});
  if (ns != nullptr) {
    ns->push_back(g.num_vertices());
    covers->push_back(cover.mean);
  }
  h.json()
      .record(family + "/" + c.name)
      .field("spec", c.spec)
      .field("n", static_cast<double>(g.num_vertices()))
      .field("spectral_gap", gap)
      .field("cover_mean", cover.mean)
      .field("cover_ci95", cover.ci95_half)
      .field("cover_over_ln2_n", cover.mean / (ln_n * ln_n));
}

void sweep_degree(bench::Harness& h, std::uint32_t degree,
                  const std::vector<std::uint32_t>& sizes,
                  std::uint32_t trials) {
  std::vector<bench::SuiteCase> cases;
  for (const std::uint32_t n : sizes) {
    cases.push_back({"n=" + std::to_string(n),
                     "rreg:n=" + std::to_string(n) + ",d=" +
                         std::to_string(degree) + ",seed=" +
                         std::to_string(0xE30 + degree + n)});
  }
  io::Table table({"n", "spectral gap", "cover", "cover / ln^2 n"});
  std::vector<double> ns, covers;
  const std::string family = "d" + std::to_string(degree);
  for (const auto& c : h.suite(cases)) {
    add_row(h, table, family, c, trials, 0xE31000 + c.graph.num_vertices(),
            &ns, &covers);
  }
  std::cout << "random " << degree << "-regular expanders\n" << table;
  const auto fit = stats::fit_polylog(ns, covers);
  bench::print_fit("  cover vs ln n", fit, "Corollary 9 predicts exponent <= 2");
  h.json()
      .record(family + "/fit")
      .field("degree", static_cast<double>(degree))
      .field("polylog_exponent", fit.exponent)
      .field("polylog_exponent_stderr", fit.exponent_stderr);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("expander_cover",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(50, 10);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "E3  (Corollary 9)",
      "2-cobra cover on bounded-degree expanders is O(log^2 n)");

  if (h.has_graph()) {
    io::Table table({"n", "spectral gap", "cover", "cover / ln^2 n"});
    for (const auto& c : h.suite({})) {
      add_row(h, table, "graph", c, trials, 0xE31000, nullptr, nullptr);
      std::cout << "graph: " << c.spec << "\n" << table << "\n";
    }
    return h.finish();
  }

  const std::vector<std::uint32_t> sizes =
      h.smoke() ? std::vector<std::uint32_t>{128, 256, 512, 1024}
                : std::vector<std::uint32_t>{128, 256, 512, 1024, 2048, 4096,
                                             8192};
  sweep_degree(h, 6, sizes, trials);
  sweep_degree(h, 10, sizes, trials);

  std::cout
      << "reading: cover/ln^2 n is flat-to-falling and the polylog exponent\n"
         "lands at or below 2. The paper's own result for [13] held only for\n"
         "Ramanujan-grade expansion; Theorem 8 extends it to any d-regular\n"
         "graph, which this sweep instantiates with ordinary random regular\n"
         "graphs (gap ~ 0.1-0.3, far below Ramanujan).\n";
  return h.finish();
}
