/// E3 — Corollary 9: on bounded-degree expanders the 2-cobra walk covers in
/// O(log^2 n) rounds.
///
/// Table: random d-regular graphs (d = 6, 10) over a geometric n sweep;
/// report cover time, cover / ln^2 n, and fit cover = a * (ln n)^c
/// expecting c <= 2. Also reports the measured spectral gap to certify each
/// instance really is an expander.

#include <cmath>

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"

namespace {

using namespace cobra;

void sweep_degree(std::uint32_t degree, const std::vector<std::uint32_t>& sizes,
                  std::uint32_t trials) {
  io::Table table({"n", "spectral gap", "cover", "cover / ln^2 n"});
  std::vector<double> ns, covers;
  core::Engine graph_gen(0xE30 + degree);
  for (const std::uint32_t n : sizes) {
    const graph::Graph g = graph::make_random_regular(graph_gen, n, degree);
    const double gap = graph::lazy_walk_spectrum(g).spectral_gap;
    const auto cover = bench::measure(
        trials, 0xE31000 + n + degree, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    const double ln_n = std::log(static_cast<double>(n));
    table.add_row({io::Table::fmt_int(n), io::Table::fmt(gap, 4),
                   bench::mean_ci(cover),
                   io::Table::fmt(cover.mean / (ln_n * ln_n), 3)});
    ns.push_back(n);
    covers.push_back(cover.mean);
  }
  std::cout << "random " << degree << "-regular expanders\n" << table;
  bench::print_fit("  cover vs ln n", stats::fit_polylog(ns, covers),
                   "Corollary 9 predicts exponent <= 2");
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "E3  (Corollary 9)",
      "2-cobra cover on bounded-degree expanders is O(log^2 n)");

  sweep_degree(6, {128, 256, 512, 1024, 2048, 4096, 8192}, 50);
  sweep_degree(10, {128, 256, 512, 1024, 2048, 4096, 8192}, 50);

  std::cout
      << "reading: cover/ln^2 n is flat-to-falling and the polylog exponent\n"
         "lands at or below 2. The paper's own result for [13] held only for\n"
         "Ramanujan-grade expansion; Theorem 8 extends it to any d-regular\n"
         "graph, which this sweep instantiates with ordinary random regular\n"
         "graphs (gap ~ 0.1-0.3, far below Ramanujan).\n";
  return 0;
}
