/// E5 — Theorem 20: on ANY n-vertex graph the 2-cobra cover time is
/// O(n^{11/4} log n), beating the random walk's worst-case Theta(n^3).
///
/// Table: the classical RW-worst-case witnesses — lollipop graphs (clique
/// of 2n/3 + path of n/3) and barbells — sweeping n. Fit both processes'
/// growth exponents: the random walk must show ~3 on the lollipop; the
/// cobra walk must stay clearly below 11/4 = 2.75 (in practice far below:
/// the bound is not tight, as the paper suspects).

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

void sweep(const std::string& label,
           const std::function<graph::Graph(std::uint32_t)>& make,
           const std::vector<std::uint32_t>& sizes, std::uint32_t trials,
           bool include_rw, std::uint64_t seed) {
  io::Table table({"n", "cobra cover", "cobra/n", "rw cover", "rw/n^3"});
  std::vector<double> ns, cobra_means, rw_means;
  for (const std::uint32_t n : sizes) {
    const graph::Graph g = make(n);
    const auto cobra =
        bench::measure(trials, seed + n, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    ns.push_back(g.num_vertices());
    cobra_means.push_back(cobra.mean);
    stats::Summary rw;
    if (include_rw) {
      rw = bench::measure(trials, seed + 7777 + n, [&](core::Engine& gen) {
        return static_cast<double>(core::random_walk_cover(g, 0, gen).steps);
      });
      rw_means.push_back(rw.mean);
    }
    const double nd = g.num_vertices();
    table.add_row({io::Table::fmt_int(g.num_vertices()), bench::mean_ci(cobra),
                   io::Table::fmt(cobra.mean / nd, 2),
                   include_rw ? bench::mean_ci(rw) : "-",
                   include_rw ? io::Table::fmt_sci(rw.mean / (nd * nd * nd), 2)
                              : "-"});
  }
  std::cout << label << "\n" << table;
  bench::print_fit("  cobra", stats::fit_power_law(ns, cobra_means),
                   "Theorem 20 predicts exponent <= 2.75");
  if (include_rw) {
    bench::print_fit("  random walk", stats::fit_power_law(ns, rw_means),
                     "worst case ~3");
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "E5  (Theorem 20)",
      "general graphs: 2-cobra cover is O(n^{11/4} log n) vs RW Theta(n^3)");

  sweep("lollipop L(n): clique 2n/3 + path n/3 (RW's Theta(n^3) witness)",
        [](std::uint32_t n) { return graph::make_lollipop(2 * n / 3, n / 3); },
        {30, 60, 90, 120, 180}, 30, /*include_rw=*/true, 0xE51000);

  sweep("barbell: two cliques n/3 + path n/3",
        [](std::uint32_t n) { return graph::make_barbell(n / 3, n / 3); },
        {30, 60, 90, 120, 180}, 30, /*include_rw=*/true, 0xE52000);

  sweep("double clique (cut vertex)",
        [](std::uint32_t n) { return graph::make_double_clique(n / 2); },
        {40, 80, 160, 320}, 30, /*include_rw=*/false, 0xE53000);

  std::cout
      << "reading: the random walk exponent approaches 3 on the lollipop -\n"
         "the classical worst case - while the 2-cobra walk's exponent stays\n"
         "well under 11/4, confirming the first sub-n^3 worst-case bound for\n"
         "branching walks (and suggesting, as s6 conjectures, that the truth\n"
         "is closer to n log n).\n";
  return 0;
}
