/// E5 — Theorem 20: on ANY n-vertex graph the 2-cobra cover time is
/// O(n^{11/4} log n), beating the random walk's worst-case Theta(n^3).
///
/// Table: the classical RW-worst-case witnesses — lollipop graphs (clique
/// of 2n/3 + path of n/3) and barbells — sweeping n. Fit both processes'
/// growth exponents: the random walk must show ~3 on the lollipop; the
/// cobra walk must stay clearly below 11/4 = 2.75 (in practice far below:
/// the bound is not tight, as the paper suspects).
///
/// Usage: bench_general_graphs [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Sweep graphs are built through the spec registry ("lollipop:n=<N>",
///   "barbell:n=<N>", "dclique:n=<N>"). --graph replaces the sweeps with
///   one registry-built graph; --smoke shrinks sizes/trials for CI.

#include "harness.hpp"

#include "core/cover_time.hpp"

namespace {

using namespace cobra;

void sweep(bench::Harness& h, const std::string& label,
           const std::string& family, const std::vector<std::uint32_t>& sizes,
           std::uint32_t trials, bool include_rw, std::uint64_t seed) {
  std::vector<bench::SuiteCase> cases;
  for (const std::uint32_t n : sizes) {
    cases.push_back({"n=" + std::to_string(n),
                     family + ":n=" + std::to_string(n)});
  }
  io::Table table({"n", "cobra cover", "cobra/n", "rw cover", "rw/n^3"});
  std::vector<double> ns, cobra_means, rw_means;
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    const std::uint32_t n = g.num_vertices();
    const auto cobra =
        bench::measure(trials, seed + n, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    ns.push_back(n);
    cobra_means.push_back(cobra.mean);
    stats::Summary rw;
    if (include_rw) {
      rw = bench::measure(trials, seed + 7777 + n, [&](core::Engine& gen) {
        return static_cast<double>(core::random_walk_cover(g, 0, gen).steps);
      });
      rw_means.push_back(rw.mean);
    }
    const double nd = n;
    table.add_row({io::Table::fmt_int(n), bench::mean_ci(cobra),
                   io::Table::fmt(cobra.mean / nd, 2),
                   include_rw ? bench::mean_ci(rw) : "-",
                   include_rw ? io::Table::fmt_sci(rw.mean / (nd * nd * nd), 2)
                              : "-"});
    auto& rec = h.json()
                    .record(family + "/" + c.name)
                    .field("spec", c.spec)
                    .field("family", family)
                    .field("n", nd)
                    .field("cobra_cover_mean", cobra.mean)
                    .field("cobra_cover_ci95", cobra.ci95_half);
    if (include_rw) rec.field("rw_cover_mean", rw.mean);
  }
  std::cout << label << "\n" << table;
  const auto cobra_fit = stats::fit_power_law(ns, cobra_means);
  bench::print_fit("  cobra", cobra_fit,
                   "Theorem 20 predicts exponent <= 2.75");
  auto& fit_rec = h.json()
                      .record(family + "/fit")
                      .field("family", family)
                      .field("cobra_exponent", cobra_fit.exponent)
                      .field("cobra_exponent_stderr", cobra_fit.exponent_stderr);
  if (include_rw) {
    const auto rw_fit = stats::fit_power_law(ns, rw_means);
    bench::print_fit("  random walk", rw_fit, "worst case ~3");
    fit_rec.field("rw_exponent", rw_fit.exponent);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("general_graphs",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(30, 8);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "E5  (Theorem 20)",
      "general graphs: 2-cobra cover is O(n^{11/4} log n) vs RW Theta(n^3)");

  if (h.has_graph()) {
    for (const auto& c : h.suite({})) {
      const auto cobra = bench::measure(trials, 0xE51000, [&](core::Engine& gen) {
        return static_cast<double>(core::cobra_cover(c.graph, 0, 2, gen).steps);
      });
      const auto rw = bench::measure(trials, 0xE52000, [&](core::Engine& gen) {
        return static_cast<double>(
            core::random_walk_cover(c.graph, 0, gen).steps);
      });
      io::Table table({"n", "cobra cover", "rw cover"});
      table.add_row({io::Table::fmt_int(c.graph.num_vertices()),
                     bench::mean_ci(cobra), bench::mean_ci(rw)});
      std::cout << "graph: " << c.spec << "\n" << table << "\n";
      h.json()
          .record(c.spec)
          .field("spec", c.spec)
          .field("n", static_cast<double>(c.graph.num_vertices()))
          .field("cobra_cover_mean", cobra.mean)
          .field("rw_cover_mean", rw.mean);
    }
    return h.finish();
  }

  const bool smoke = h.smoke();
  const std::vector<std::uint32_t> sweep_sizes =
      smoke ? std::vector<std::uint32_t>{30, 60}
            : std::vector<std::uint32_t>{30, 60, 90, 120, 180};
  sweep(h, "lollipop L(n): clique 2n/3 + path n/3 (RW's Theta(n^3) witness)",
        "lollipop", sweep_sizes, trials, /*include_rw=*/true, 0xE51000);

  sweep(h, "barbell: two cliques n/3 + path n/3", "barbell", sweep_sizes,
        trials, /*include_rw=*/true, 0xE52000);

  sweep(h, "double clique (cut vertex)", "dclique",
        smoke ? std::vector<std::uint32_t>{40, 80}
              : std::vector<std::uint32_t>{40, 80, 160, 320},
        trials, /*include_rw=*/false, 0xE53000);

  std::cout
      << "reading: the random walk exponent approaches 3 on the lollipop -\n"
         "the classical worst case - while the 2-cobra walk's exponent stays\n"
         "well under 11/4, confirming the first sub-n^3 worst-case bound for\n"
         "branching walks (and suggesting, as s6 conjectures, that the truth\n"
         "is closer to n log n).\n";
  return h.finish();
}
