/// A7 — the §1 extension the paper names and leaves open: branching that
/// "varied based on the vertex or the time step, or was governed by a
/// random distribution". Cover-time comparison of branching schedules with
/// equal MEAN branching (2), plus failure injection:
///
///   * fixed k=2 (the paper's process)
///   * Bernoulli mixture 1/3 (mean 2)
///   * shifted geometric (mean 2)
///   * degree-proportional (alpha tuned to mean ~2)
///   * faulty k=2 with 10% / 25% message-drop
///
/// The interesting finding: at equal mean, variance in the branching has
/// little effect on expander/grid cover, but failure injection bites
/// hardest on low-degree graphs where the active set is small.
///
/// Usage: bench_generalized_branching [--trials T] [--graph <spec>]
///        [--out path] [--smoke]
///   Case graphs are built through the spec registry. --graph replaces
///   the case list (the schedule sweep still runs); --smoke shrinks graph
///   sizes and the trial count for CI.

#include "harness.hpp"

#include "core/generalized_cobra.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

double cover_with_schedule(const graph::Graph& g,
                           const core::BranchingSchedule& schedule,
                           core::Engine& gen, std::uint64_t budget) {
  core::GeneralizedCobraWalk walk(g, 0, schedule);
  sim::CoverStop cover;
  sim::Extinction extinct;
  const auto r =
      sim::Runner(budget).run(walk, gen, sim::any_of(cover, extinct));
  // Extinction before coverage counts as the full budget (failed broadcast).
  return cover.complete() ? static_cast<double>(r.rounds)
                          : static_cast<double>(budget);
}

void sweep(bench::Harness& h, const bench::BuiltCase& c, std::uint32_t trials,
           std::uint64_t seed) {
  const graph::Graph& g = c.graph;
  struct Row {
    std::string label;
    core::BranchingSchedule schedule;
  };
  const std::vector<Row> rows = {
      {"fixed k=2", core::schedules::fixed(2)},
      {"bernoulli 1+Ber(1) mean 2", core::schedules::bernoulli_mixture(1, 1.0)},
      {"bernoulli 2+Ber(0) mean 2", core::schedules::bernoulli_mixture(2, 0.0)},
      {"shifted geometric mean 2", core::schedules::shifted_geometric(0.5)},
      {"phased k=1 then k=3 @10", core::schedules::phased(1, 3, 10)},
      {"faulty k=2, 10% drop", core::schedules::faulty(2, 0.10)},
      {"faulty k=2, 25% drop", core::schedules::faulty(2, 0.25)},
  };
  io::Table table({"schedule", "mean cover", "median", "budget hits"});
  table.set_align(0, io::Align::Left);
  const std::uint64_t budget = 512ull * g.num_vertices();
  for (const auto& [label, schedule] : rows) {
    par::MonteCarloOptions opts;
    opts.base_seed = seed ^ std::hash<std::string>{}(label);
    opts.trials = trials;
    const auto samples = par::run_trials(
        par::global_pool(), opts, [&](core::Engine& gen, std::uint32_t) {
          return cover_with_schedule(g, schedule, gen, budget);
        });
    const auto s = stats::summarize(samples);
    std::uint32_t budget_hits = 0;
    for (const double x : samples) {
      if (x >= static_cast<double>(budget)) ++budget_hits;
    }
    table.add_row({label, bench::mean_ci(s), io::Table::fmt(s.median, 1),
                   io::Table::fmt_int(budget_hits)});
    h.json()
        .record(c.name + "/" + label)
        .field("spec", c.spec)
        .field("schedule", label)
        .field("n", static_cast<double>(g.num_vertices()))
        .field("cover_mean", s.mean)
        .field("cover_median", s.median)
        .field("budget_hits", static_cast<double>(budget_hits));
  }
  std::cout << c.name << "  (n = " << g.num_vertices() << ", budget " << budget
            << ")\n"
            << table << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("generalized_branching",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(40, 6);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "A7  (extension: §1's open branching variations)",
      "equal-mean branching schedules and failure injection");

  const std::vector<bench::SuiteCase> cases = {
      {"grid", "grid:side=16,dims=2", "grid:side=8,dims=2"},
      {"random 4-regular", "rreg:n=256,d=4,seed=167", "rreg:n=64,d=4,seed=167"},
      {"cycle", "ring:n=128", "ring:n=48"},
  };

  std::uint64_t seed = 0xA7100;
  for (const auto& c : h.suite(cases)) {
    sweep(h, c, trials, seed);
    seed += 0x100;
  }

  std::cout
      << "reading: with the mean fixed at 2, branching variance barely\n"
         "moves the cover time (coalescence absorbs the fluctuations);\n"
         "mild failure injection costs little on dense graphs but the\n"
         "walk can go extinct on sparse ones (budget hits > 0), which is\n"
         "why the paper's k >= 2 floor matters for robustness claims.\n";
  return h.finish();
}
