/// E10 — §6 conjecture & §1.2: push gossip completes in O(n log n) on every
/// connected graph [17], and the paper conjectures the same worst-case
/// bound for 2-cobra walks (star shows Omega(n log n)).
///
/// Table: across topologies (including the adversarial ones), compare
/// 2-cobra cover, push gossip, push-pull, and coalescing walks; report
/// each normalized by n ln n. The conjecture holds iff the cobra column
/// stays O(1) on every row — the paper's open problem, checked empirically.
///
/// Usage: bench_gossip_comparison [--trials T] [--graph <spec>]
///        [--out path] [--smoke]
///   Case graphs are built through the spec registry. --graph replaces the
///   case list with one registry-built row; --smoke shrinks the case list
///   and trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "core/gossip.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

}  // namespace

int main(int argc, char** argv) {
  const io::Args args = bench::parse_bench_args(argc, argv, {"trials"});
  const bool smoke = args.get_bool("smoke", false);
  const auto trials =
      static_cast<std::uint32_t>(bench::uint_flag(args, "trials", smoke ? 5 : 30));

  bench::print_header(
      "E10  (s6 conjecture, s1.2)",
      "is worst-case 2-cobra cover O(n log n), like push gossip?");

  bench::JsonReporter json("gossip_comparison");
  json.context("trials", static_cast<double>(trials));
  if (smoke) json.context("smoke", 1.0);

  std::vector<std::pair<std::string, std::string>> cases;
  if (args.has("graph")) {
    const std::string spec = io::graph_spec_from_args(args, "");
    cases.emplace_back(spec, spec);
  } else if (smoke) {
    cases = {
        {"star n=64", "star:n=64"},
        {"cycle n=64", "ring:n=64"},
        {"grid 8x8", "grid:side=8,dims=2"},
        {"random 6-regular n=64", "rreg:n=64,d=6,seed=234"},
    };
  } else {
    cases = {
        {"star n=256", "star:n=256"},
        {"path n=256", "path:n=256"},
        {"cycle n=256", "ring:n=256"},
        {"lollipop n=240", "lollipop:clique=160,path=80"},
        {"barbell n=240", "barbell:clique=80,path=80"},
        {"binary tree n=255", "tree:levels=8"},
        {"grid 16x16", "grid:side=16,dims=2"},
        {"random 6-regular n=256", "rreg:n=256,d=6,seed=234"},
        {"power-law n~256", "chunglu:n=256,gamma=2.5,min_deg=3,seed=234,lcc=1"},
    };
  }

  io::Table table({"graph", "n", "cobra", "cobra/(n ln n)", "push",
                   "push/(n ln n)", "push-pull"});
  table.set_align(0, io::Align::Left);
  double worst_cobra_ratio = 0.0;
  std::string worst_case;
  for (const auto& [name, spec] : cases) {
    const graph::Graph g = gen::build_graph(spec);
    const std::uint64_t h = std::hash<std::string>{}(name);
    const auto cobra = bench::measure(trials, 0xEA100 ^ h, [&](core::Engine& gen) {
      return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, 2u);
    });
    const auto push = bench::measure(trials, 0xEA200 ^ h, [&](core::Engine& gen) {
      return sim::cover_rounds<core::Gossip>(gen, g, 0u, core::GossipMode::Push);
    });
    const auto pushpull =
        bench::measure(trials, 0xEA300 ^ h, [&](core::Engine& gen) {
          core::Gossip gossip(g, 0, core::GossipMode::PushPull);
          return static_cast<double>(
              sim::run_cover(gossip, gen, 1u << 26).rounds);
        });
    const double n_ln_n = static_cast<double>(g.num_vertices()) *
                          std::log(static_cast<double>(g.num_vertices()));
    const double ratio = cobra.mean / n_ln_n;
    if (ratio > worst_cobra_ratio) {
      worst_cobra_ratio = ratio;
      worst_case = name;
    }
    table.add_row({name, io::Table::fmt_int(g.num_vertices()),
                   bench::mean_ci(cobra), io::Table::fmt(ratio, 3),
                   bench::mean_ci(push), io::Table::fmt(push.mean / n_ln_n, 3),
                   bench::mean_ci(pushpull)});
    json.record(name)
        .field("spec", spec)
        .field("n", static_cast<double>(g.num_vertices()))
        .field("cobra_cover_mean", cobra.mean)
        .field("cobra_over_nlnn", ratio)
        .field("push_cover_mean", push.mean)
        .field("push_over_nlnn", push.mean / n_ln_n)
        .field("pushpull_cover_mean", pushpull.mean);
  }
  std::cout << table << "\n";
  std::cout << "worst cobra/(n ln n) ratio: "
            << io::Table::fmt(worst_cobra_ratio, 3) << "  on " << worst_case
            << "\n\n"
            << "reading: push stays O(1) per [17]; the cobra column also\n"
               "stays bounded across every adversarial topology tried here,\n"
               "consistent with (not proving) the s6 conjecture that the\n"
               "worst-case 2-cobra cover time is O(n log n). The star is the\n"
               "extremal row, matching its Omega(n log n) lower bound.\n";
  if (args.has("out")) return json.write(args.get("out", "")) ? 0 : 1;
  return 0;
}
