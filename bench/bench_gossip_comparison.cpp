/// E10 — §6 conjecture & §1.2: push gossip completes in O(n log n) on every
/// connected graph [17], and the paper conjectures the same worst-case
/// bound for 2-cobra walks (star shows Omega(n log n)).
///
/// Table: across topologies (including the adversarial ones), compare
/// 2-cobra cover, push gossip, push-pull, and coalescing walks; report
/// each normalized by n ln n. The conjecture holds iff the cobra column
/// stays O(1) on every row — the paper's open problem, checked empirically.

#include <cmath>

#include "bench_common.hpp"

#include "core/coalescing_walk.hpp"
#include "core/cover_time.hpp"
#include "core/gossip.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

}  // namespace

int main() {
  bench::print_header(
      "E10  (s6 conjecture, s1.2)",
      "is worst-case 2-cobra cover O(n log n), like push gossip?");

  core::Engine graph_gen(0xEA);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  const std::vector<Case> cases = {
      {"star n=256", graph::make_star(256)},
      {"path n=256", graph::make_path(256)},
      {"cycle n=256", graph::make_cycle(256)},
      {"lollipop n=240", graph::make_lollipop(160, 80)},
      {"barbell n=240", graph::make_barbell(80, 80)},
      {"binary tree n=255", graph::make_kary_tree(2, 8)},
      {"grid 16x16", graph::make_grid(2, 16)},
      {"random 6-regular n=256",
       graph::make_random_regular(graph_gen, 256, 6)},
      {"power-law n~256",
       graph::largest_component(
           graph::make_chung_lu_power_law(graph_gen, 256, 2.5, 3.0))
           .graph},
  };

  io::Table table({"graph", "n", "cobra", "cobra/(n ln n)", "push",
                   "push/(n ln n)", "push-pull"});
  table.set_align(0, io::Align::Left);
  double worst_cobra_ratio = 0.0;
  std::string worst_case;
  for (const auto& [name, g] : cases) {
    const std::uint64_t h = std::hash<std::string>{}(name);
    const auto cobra = bench::measure(30, 0xEA100 ^ h, [&](core::Engine& gen) {
      return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
    });
    const auto push = bench::measure(30, 0xEA200 ^ h, [&](core::Engine& gen) {
      return static_cast<double>(core::gossip_push_cover(g, 0, gen).steps);
    });
    const auto pushpull =
        bench::measure(30, 0xEA300 ^ h, [&](core::Engine& gen) {
          core::Gossip gossip(g, 0, core::GossipMode::PushPull);
          return static_cast<double>(
              core::run_to_cover(gossip, gen, 1u << 26).steps);
        });
    const double n_ln_n = static_cast<double>(g.num_vertices()) *
                          std::log(static_cast<double>(g.num_vertices()));
    const double ratio = cobra.mean / n_ln_n;
    if (ratio > worst_cobra_ratio) {
      worst_cobra_ratio = ratio;
      worst_case = name;
    }
    table.add_row({name, io::Table::fmt_int(g.num_vertices()),
                   bench::mean_ci(cobra), io::Table::fmt(ratio, 3),
                   bench::mean_ci(push), io::Table::fmt(push.mean / n_ln_n, 3),
                   bench::mean_ci(pushpull)});
  }
  std::cout << table << "\n";
  std::cout << "worst cobra/(n ln n) ratio: "
            << io::Table::fmt(worst_cobra_ratio, 3) << "  on " << worst_case
            << "\n\n"
            << "reading: push stays O(1) per [17]; the cobra column also\n"
               "stays bounded across every adversarial topology tried here,\n"
               "consistent with (not proving) the s6 conjecture that the\n"
               "worst-case 2-cobra cover time is O(n log n). The star is the\n"
               "extremal row, matching its Omega(n log n) lower bound.\n";
  return 0;
}
