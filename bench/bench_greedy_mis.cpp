/// A11 — related-work process zoo (§1.2's MPC/LLL neighborhood): parallel
/// randomized greedy MIS on the frontier engine. Each round every active
/// vertex draws a seeded priority; local minima join the MIS and leave the
/// frontier together with their neighbors (Luby-style, the
/// priority-ordered variant whose round complexity Fischer & Noever
/// [SODA 2018] pin at Theta(log n) on every graph). Tables:
///   1. per family: rounds to extinction, |MIS|, and the verified
///      independence/maximality certificates;
///   2. round-complexity sweep on gnp / rmat with a polylog fit — the
///      measured exponent should sit near 1 (rounds ~ log n).
///
/// Usage: bench_greedy_mis [--trials T] [--graph <spec>] [--out path]
///        [--smoke] [--threads N] [--caps] [--metrics path] [--trace path]
///   Case graphs are built through the spec registry; --graph replaces the
///   family table with that one case (the scaling sweep keeps its own
///   specs). --smoke shrinks sizes and trial counts for CI.

#include <cmath>
#include <string>
#include <vector>

#include "harness.hpp"

#include "core/greedy_mis.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"

namespace {

using namespace cobra;

/// Brute certificate over the final set: no adjacent pair inside, and no
/// outside vertex with an MIS-free neighborhood. O(n + m), run once per
/// table row on the pinned seed.
struct MisCertificate {
  bool independent = true;
  bool maximal = true;
};

MisCertificate certify(const graph::Graph& g, const core::GreedyMIS& mis) {
  MisCertificate cert;
  for (core::Vertex v = 0; v < g.num_vertices(); ++v) {
    bool dominated = mis.in_mis(v);
    for (const core::Vertex u : g.neighbors(v)) {
      if (u == v) continue;
      if (mis.in_mis(u)) {
        dominated = true;
        if (mis.in_mis(v)) cert.independent = false;
      }
    }
    if (!dominated) cert.maximal = false;
  }
  return cert;
}

double rounds_to_extinction(const graph::Graph& g, core::Engine& gen) {
  core::GreedyMIS mis(g);
  sim::Extinction done;
  const auto run = sim::Runner(std::uint64_t{1} << 20).run(mis, gen, done);
  return static_cast<double>(run.rounds);
}

void family_table(bench::Harness& h, std::uint32_t trials) {
  std::cout << "1) greedy MIS per family: rounds, |MIS|, certificates\n";
  io::Table table({"graph", "n", "rounds", "|MIS|", "independent", "maximal"});
  table.set_align(0, io::Align::Left);
  const std::vector<bench::SuiteCase> cases = {
      {"cycle n=4096", "ring:n=4096", "ring:n=256"},
      {"torus 64x64", "torus:side=64,dims=2", "torus:side=16,dims=2"},
      {"hypercube Q_12", "hypercube:dims=12", "hypercube:dims=8"},
      {"complete n=512", "complete:n=512", "complete:n=64"},
      {"rreg n=4096 d=8", "rreg:n=4096,d=8,seed=1101",
       "rreg:n=256,d=8,seed=1101"},
      {"gnp n=4096 avg_deg=8", "gnp:n=4096,avg_deg=8,seed=1102",
       "gnp:n=256,avg_deg=8,seed=1102"},
      {"rmat n=4096 deg=8", "rmat:n=4096,deg=8,seed=1103",
       "rmat:n=256,deg=8,seed=1103"},
      {"star n=1024", "star:n=1024", "star:n=64"},
  };
  for (const auto& c : h.suite(cases)) {
    const auto seed = 0xA11100 ^ std::hash<std::string>{}(c.spec);
    const auto rounds = bench::measure(
        trials, seed, [&](core::Engine& gen) {
          return rounds_to_extinction(c.graph, gen);
        });
    // One pinned run for the size and the certificates (the property
    // suite re-verifies these across thread counts and representations).
    core::GreedyMIS mis(c.graph);
    core::Engine gen(seed);
    sim::Extinction done;
    sim::Runner(std::uint64_t{1} << 20).run(mis, gen, done);
    const auto cert = certify(c.graph, mis);
    table.add_row({c.name, io::Table::fmt_int(c.graph.num_vertices()),
                   bench::mean_ci(rounds, 2),
                   io::Table::fmt_int(static_cast<long long>(mis.mis().size())),
                   cert.independent ? "yes" : "NO",
                   cert.maximal ? "yes" : "NO"});
    h.json()
        .record("family/" + c.name)
        .field("spec", c.spec)
        .field("n", static_cast<double>(c.graph.num_vertices()))
        .field("rounds_mean", rounds.mean)
        .field("rounds_ci95", rounds.ci95_half)
        .field("mis_size", static_cast<double>(mis.mis().size()))
        .field("independent", cert.independent ? 1.0 : 0.0)
        .field("maximal", cert.maximal ? 1.0 : 0.0);
  }
  std::cout << table
            << "reading: every certificate column must read yes - the MIS is\n"
               "independent and maximal on every family; rounds stay small\n"
               "even on the complete graph (one round: the global minimum\n"
               "swallows everything).\n\n";
}

void scaling_table(bench::Harness& h, bool smoke, std::uint32_t trials,
                   const std::string& family, const std::string& key) {
  io::Table table({"n", "rounds"});
  std::vector<double> ns, rounds_means;
  const std::uint32_t lo = smoke ? 8 : 10;
  const std::uint32_t hi = smoke ? 10 : 16;
  std::vector<bench::SuiteCase> cases;
  for (std::uint32_t p = lo; p <= hi; ++p) {
    const auto n = std::uint32_t{1} << p;
    cases.push_back({family + " n=" + std::to_string(n),
                     key + ":n=" + std::to_string(n) +
                         ",avg_deg=8,seed=" + std::to_string(0xA11 + p)});
  }
  if (key == "rmat") {
    for (auto& c : cases) {
      // rmat keys degree as deg=, not avg_deg=.
      const auto pos = c.spec.find("avg_deg=");
      c.spec.replace(pos, 8, "deg=");
    }
  }
  for (const auto& c : h.suite(cases)) {
    const auto n = c.graph.num_vertices();
    const auto rounds = bench::measure(
        trials, 0xA11200 ^ std::hash<std::string>{}(c.spec),
        [&](core::Engine& gen) { return rounds_to_extinction(c.graph, gen); });
    table.add_row({io::Table::fmt_int(n), bench::mean_ci(rounds, 2)});
    ns.push_back(static_cast<double>(n));
    rounds_means.push_back(rounds.mean);
    h.json()
        .record(family + "/n" + std::to_string(n))
        .field("spec", c.spec)
        .field("n", static_cast<double>(n))
        .field("rounds_mean", rounds.mean)
        .field("rounds_ci95", rounds.ci95_half);
  }
  std::cout << family << "\n" << table;
  const auto fit = stats::fit_polylog(ns, rounds_means);
  bench::print_fit("  rounds vs ln n", fit,
                   "Fischer-Noever: Theta(log n) => exponent ~ 1");
  h.json()
      .record(family + "/fit")
      .field("polylog_exponent", fit.exponent)
      .field("polylog_exponent_stderr", fit.exponent_stderr)
      .field("r_squared", fit.r_squared);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("greedy_mis",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(20, 4);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "A11  (related work: Fischer-Noever greedy MIS)",
      "parallel randomized greedy MIS rounds are Theta(log n) on the "
      "frontier engine");
  family_table(h, trials);
  if (!h.has_graph()) {
    std::cout << "2) round-complexity sweep (polylog fit)\n";
    const std::uint32_t sweep_trials = h.smoke() ? 2 : 8;
    scaling_table(h, h.smoke(), sweep_trials, "gnp avg_deg=8", "gnp");
    scaling_table(h, h.smoke(), sweep_trials, "rmat deg=8", "rmat");
  }
  return h.finish();
}
