/// E1 — Theorem 3 / Lemma 2: the 2-cobra walk covers [0, n]^d in O(n)
/// rounds (constants depending on d), versus the simple random walk's
/// ~n^2 log n on the same grids.
///
/// Table: per dimension d in {1, 2, 3}, sweep the side length n and report
/// mean cover time; fit T = a * n^c and check c ~ 1 for the cobra walk
/// (the paper's O(n)) and c ~ 2 for the random walk baseline on d = 1, 2.
///
/// Usage: bench_grid_cover [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Sweep graphs are built through the spec registry
///   ("grid:side=<S>,dims=<D>"). --graph replaces the sweeps with one
///   cobra-vs-RW row on that graph (no fit); --smoke shrinks the side
///   lists and trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "core/random_walk.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

/// Cover rounds of a fresh process through the shared sim::Runner (the
/// bespoke per-process cover loops this bench used to call).
double cobra_cover_rounds(const graph::Graph& g, core::Engine& gen) {
  return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, 2u);
}

double rw_cover_rounds(const graph::Graph& g, core::Engine& gen) {
  return sim::cover_rounds<core::RandomWalk>(gen, g, 0u);
}

/// "d<dims><suffix>" built by append — the operator+ chain form trips
/// GCC 12's -Wrestrict false positive (PR 105329) when inlined.
std::string dim_record(std::uint32_t d, const std::string& suffix) {
  std::string name = "d";
  name += std::to_string(d);
  name += suffix;
  return name;
}

void sweep_dimension(bench::Harness& h, std::uint32_t d,
                     const std::vector<std::uint32_t>& sides,
                     std::uint32_t trials, bool include_rw) {
  std::vector<bench::SuiteCase> cases;
  for (const std::uint32_t side : sides) {
    cases.push_back({"side " + std::to_string(side),
                     "grid:side=" + std::to_string(side) +
                         ",dims=" + std::to_string(d)});
  }
  io::Table table({"side n", "vertices", "cobra cover", "cover/n",
                   "rw cover", "rw/(n^2)"});
  std::vector<double> ns, cobra_means, rw_means;
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    // side recovers exactly from n = side^d for these specs.
    const auto side = static_cast<std::uint32_t>(std::llround(
        std::pow(static_cast<double>(g.num_vertices()), 1.0 / d)));
    const auto cobra = bench::measure(
        trials, 0xE1000 + side + d * 1000,
        [&](core::Engine& gen) { return cobra_cover_rounds(g, gen); });
    ns.push_back(side);
    cobra_means.push_back(cobra.mean);

    stats::Summary rw;
    if (include_rw) {
      rw = bench::measure(trials, 0xE1500 + side + d * 1000,
                          [&](core::Engine& gen) {
                            return rw_cover_rounds(g, gen);
                          });
      rw_means.push_back(rw.mean);
    }
    table.add_row(
        {io::Table::fmt_int(side), io::Table::fmt_int(g.num_vertices()),
         bench::mean_ci(cobra), io::Table::fmt(cobra.mean / side, 2),
         include_rw ? bench::mean_ci(rw) : "-",
         include_rw
             ? io::Table::fmt(rw.mean / (static_cast<double>(side) * side), 3)
             : "-"});
    auto& rec =
        h.json()
            .record(dim_record(d, "/side" + std::to_string(side)))
            .field("spec", c.spec)
            .field("dims", static_cast<double>(d))
            .field("side", static_cast<double>(side))
            .field("n", static_cast<double>(g.num_vertices()))
            .field("cobra_cover_mean", cobra.mean)
            .field("cobra_cover_ci95", cobra.ci95_half)
            .field("cobra_cover_over_side", cobra.mean / side);
    if (include_rw) rec.field("rw_cover_mean", rw.mean);
  }
  std::cout << "d = " << d << " (2-cobra walk vs simple random walk)\n"
            << table;
  const auto cobra_fit = stats::fit_power_law(ns, cobra_means);
  bench::print_fit("  cobra", cobra_fit, "Theorem 3 predicts exponent 1");
  h.json()
      .record(dim_record(d, "/fit"))
      .field("dims", static_cast<double>(d))
      .field("cobra_exponent", cobra_fit.exponent)
      .field("cobra_exponent_stderr", cobra_fit.exponent_stderr);
  if (include_rw) {
    bench::print_fit("  random walk", stats::fit_power_law(ns, rw_means),
                     "classical ~2 (x log factors)");
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("grid_cover",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(60, 8);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "E1  (Theorem 3, Lemma 2)",
      "2-cobra cover time on [0,n]^d is O(n); random walk needs ~n^2 polylog");

  if (h.has_graph()) {
    for (const auto& c : h.suite({})) {
      const auto cobra = bench::measure(trials, 0xE1000, [&](core::Engine& gen) {
        return cobra_cover_rounds(c.graph, gen);
      });
      const auto rw = bench::measure(trials, 0xE1500, [&](core::Engine& gen) {
        return rw_cover_rounds(c.graph, gen);
      });
      io::Table table({"n", "cobra cover", "rw cover"});
      table.add_row({io::Table::fmt_int(c.graph.num_vertices()),
                     bench::mean_ci(cobra), bench::mean_ci(rw)});
      std::cout << "graph: " << c.spec << "\n" << table << "\n";
      h.json()
          .record(c.spec)
          .field("spec", c.spec)
          .field("n", static_cast<double>(c.graph.num_vertices()))
          .field("cobra_cover_mean", cobra.mean)
          .field("rw_cover_mean", rw.mean);
    }
    return h.finish();
  }

  const bool smoke = h.smoke();
  sweep_dimension(h, 1,
                  smoke ? std::vector<std::uint32_t>{16, 32, 64}
                        : std::vector<std::uint32_t>{64, 128, 256, 512, 1024},
                  trials, /*include_rw=*/true);
  sweep_dimension(h, 2,
                  smoke ? std::vector<std::uint32_t>{4, 8}
                        : std::vector<std::uint32_t>{8, 16, 32, 64},
                  trials, /*include_rw=*/true);
  sweep_dimension(h, 3,
                  smoke ? std::vector<std::uint32_t>{3, 4}
                        : std::vector<std::uint32_t>{4, 6, 8, 12, 16},
                  trials, /*include_rw=*/false);

  std::cout << "reading: cobra exponents should sit near 1 in every "
               "dimension;\nthe RW exponent near 2 shows the baseline the "
               "theorem beats.\n";
  return h.finish();
}
