/// E1 — Theorem 3 / Lemma 2: the 2-cobra walk covers [0, n]^d in O(n)
/// rounds (constants depending on d), versus the simple random walk's
/// ~n^2 log n on the same grids.
///
/// Table: per dimension d in {1, 2, 3}, sweep the side length n and report
/// mean cover time; fit T = a * n^c and check c ~ 1 for the cobra walk
/// (the paper's O(n)) and c ~ 2 for the random walk baseline on d = 1, 2.

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

void sweep_dimension(std::uint32_t d, const std::vector<std::uint32_t>& sides,
                     std::uint32_t trials, bool include_rw) {
  io::Table table({"side n", "vertices", "cobra cover", "cover/n",
                   "rw cover", "rw/(n^2)"});
  std::vector<double> ns, cobra_means, rw_means;
  for (const std::uint32_t side : sides) {
    const graph::Graph g = graph::make_grid(d, side);
    const auto cobra = bench::measure(
        trials, 0xE1000 + side + d * 1000, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    ns.push_back(side);
    cobra_means.push_back(cobra.mean);

    stats::Summary rw;
    if (include_rw) {
      rw = bench::measure(trials, 0xE1500 + side + d * 1000,
                          [&](core::Engine& gen) {
                            return static_cast<double>(
                                core::random_walk_cover(g, 0, gen).steps);
                          });
      rw_means.push_back(rw.mean);
    }
    table.add_row(
        {io::Table::fmt_int(side), io::Table::fmt_int(g.num_vertices()),
         bench::mean_ci(cobra), io::Table::fmt(cobra.mean / side, 2),
         include_rw ? bench::mean_ci(rw) : "-",
         include_rw
             ? io::Table::fmt(rw.mean / (static_cast<double>(side) * side), 3)
             : "-"});
  }
  std::cout << "d = " << d << " (2-cobra walk vs simple random walk)\n"
            << table;
  bench::print_fit("  cobra", stats::fit_power_law(ns, cobra_means),
                   "Theorem 3 predicts exponent 1");
  if (include_rw) {
    bench::print_fit("  random walk", stats::fit_power_law(ns, rw_means),
                     "classical ~2 (x log factors)");
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "E1  (Theorem 3, Lemma 2)",
      "2-cobra cover time on [0,n]^d is O(n); random walk needs ~n^2 polylog");

  sweep_dimension(1, {64, 128, 256, 512, 1024}, 60, /*include_rw=*/true);
  sweep_dimension(2, {8, 16, 32, 64}, 60, /*include_rw=*/true);
  sweep_dimension(3, {4, 6, 8, 12, 16}, 40, /*include_rw=*/false);

  std::cout << "reading: cobra exponents should sit near 1 in every "
               "dimension;\nthe RW exponent near 2 shows the baseline the "
               "theorem beats.\n";
  return 0;
}
