/// A5 — the §3 drift engine behind Theorem 3 (Lemmas 4, 5, 6). The proof
/// tracks one cobra pebble's per-dimension distances z = (z_1..z_d) under
/// a pessimistic clone-selection rule; this bench measures the three
/// quantities the lemmas assert:
///
///   1. Lemma 4's transition probabilities (change rate, conditional
///      decrease bias, increase-at-zero rate) per dimension count d;
///   2. Lemma 5's time for a dimension to hit 0: O(d^2 n) — fitted
///      exponent in n should be ~1 with a d^2-ish prefactor trend;
///   3. Lemma 6's excursion cap: after hitting 0, the max distance over a
///      long horizon grows like log(horizon), not polynomially.

#include <cmath>

#include "bench_common.hpp"

#include "core/grid_drift.hpp"

namespace {

using namespace cobra;

void lemma4_table() {
  std::cout << "1) Lemma 4 transition probabilities (400k single-step trials "
               "per cell)\n";
  io::Table table({"d", "P[dim changes | z!=0]", ">= 1/(2d-1)",
                   "P[decrease | change]", ">= 1/2+1/(8d-4)",
                   "P[increase at 0]", "<= 2/(d+1)"});
  for (const std::uint32_t d : {1u, 2u, 3u, 4u, 6u}) {
    core::Engine gen(0xA50 + d);
    std::uint64_t changes = 0, decreases = 0, zero_increases = 0;
    constexpr int kTrials = 400000;
    for (int t = 0; t < kTrials; ++t) {
      core::GridDriftWalk walk(d, 10, 1000);  // all dims nonzero, interior
      const auto event = walk.step(gen);
      if (event.dimension == 0 && event.delta != 0) {
        ++changes;
        if (event.delta < 0) ++decreases;
      }
    }
    for (int t = 0; t < kTrials; ++t) {
      std::vector<std::uint32_t> z(d, 10);
      z[0] = 0;
      core::GridDriftWalk walk(z, 1000);
      const auto event = walk.step(gen);
      if (event.dimension == 0 && event.delta > 0) ++zero_increases;
    }
    const double p_change = static_cast<double>(changes) / kTrials;
    const double p_dec =
        changes > 0 ? static_cast<double>(decreases) / changes : 0.0;
    const double p_zero_inc = static_cast<double>(zero_increases) / kTrials;
    table.add_row({io::Table::fmt_int(d), io::Table::fmt(p_change, 4),
                   io::Table::fmt(1.0 / (2.0 * d - 1.0), 4),
                   io::Table::fmt(p_dec, 4),
                   io::Table::fmt(0.5 + 1.0 / (8.0 * d - 4.0), 4),
                   io::Table::fmt(p_zero_inc, 4),
                   io::Table::fmt(2.0 / (d + 1.0), 4)});
  }
  std::cout << table
            << "reading: measured change rate >= the lemma's lower bound,\n"
               "conditional decrease >= 1/2 + 1/(8d-4), increase-at-zero <=\n"
               "2/(d+1) — every clause of Lemma 4, at every d.\n\n";
}

void lemma5_table() {
  std::cout << "2) Lemma 5: rounds until ALL dimensions reach 0, from "
               "distance n\n";
  for (const std::uint32_t d : {1u, 2u, 3u}) {
    io::Table table({"n", "rounds to origin", "rounds / (d^2 n)"});
    std::vector<double> ns, times;
    for (const std::uint32_t n : {16u, 32u, 64u, 128u, 256u}) {
      const auto s = bench::measure(
          60, 0xA5200 + d * 1000 + n, [&](core::Engine& gen) {
            core::GridDriftWalk walk(d, n, n);
            const std::uint64_t budget = 4096ull * d * d * n;
            return static_cast<double>(walk.run_to_origin(gen, budget));
          });
      table.add_row({io::Table::fmt_int(n), bench::mean_ci(s),
                     io::Table::fmt(s.mean / (static_cast<double>(d) * d * n),
                                    3)});
      ns.push_back(n);
      times.push_back(s.mean);
    }
    std::cout << "d = " << d << "\n" << table;
    bench::print_fit("  origin time", stats::fit_power_law(ns, times),
                     "Lemma 5 predicts exponent ~1 in n");
    std::cout << "\n";
  }
}

void lemma6_table() {
  std::cout << "3) Lemma 6: max excursion from the origin over horizon T\n";
  io::Table table({"T", "max total distance (d=3)", "ln T"});
  core::Engine gen(0xA53);
  for (const std::uint64_t horizon : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    core::GridDriftWalk walk(3, 0, 1u << 20);
    std::uint64_t max_dist = 0;
    for (std::uint64_t t = 0; t < horizon; ++t) {
      walk.step(gen);
      max_dist = std::max<std::uint64_t>(max_dist, walk.total_distance());
    }
    table.add_row({io::Table::fmt_int(static_cast<long long>(horizon)),
                   io::Table::fmt_int(static_cast<long long>(max_dist)),
                   io::Table::fmt(std::log(static_cast<double>(horizon)), 1)});
  }
  std::cout << table
            << "reading: the deepest excursion grows like ln T (equilibrium\n"
               "tail of a geometrically-distributed biased walk), which is\n"
               "Lemma 6's 'stays below c_d ln n' in horizon form.\n";
}

}  // namespace

int main() {
  bench::print_header(
      "A5  (Lemmas 4, 5, 6 — the §3 drift engine)",
      "per-dimension drift, origin-hitting time, and excursion control");
  lemma4_table();
  lemma5_table();
  lemma6_table();
  return 0;
}
