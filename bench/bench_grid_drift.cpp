/// A5 — the §3 drift engine behind Theorem 3 (Lemmas 4, 5, 6). The proof
/// tracks one cobra pebble's per-dimension distances z = (z_1..z_d) under
/// a pessimistic clone-selection rule; this bench measures the three
/// quantities the lemmas assert:
///
///   1. Lemma 4's transition probabilities (change rate, conditional
///      decrease bias, increase-at-zero rate) per dimension count d;
///   2. Lemma 5's time for a dimension to hit 0: O(d^2 n) — fitted
///      exponent in n should be ~1 with a d^2-ish prefactor trend;
///   3. Lemma 6's excursion cap: after hitting 0, the max distance over a
///      long horizon grows like log(horizon), not polynomially.
///
/// Usage: bench_grid_drift [--trials T] [--out path] [--smoke] [--caps]
///        [--metrics path] [--trace path]
///   This bench walks the Z^d drift chain directly, not a generated
///   graph, so --graph is accepted (shared CLI) but has no effect — it
///   declares `graph=no` in its --caps metadata, which is how sweep
///   drivers (cobra_sweep) know to skip it instead of keeping a hardcoded
///   list. --smoke shrinks the per-cell single-step trial counts, the
///   Lemma 5 distance sweep, and the Lemma 6 horizon for CI. --metrics
///   still snapshots the registry (timers, gen counters) on exit, but
///   --trace stays EMPTY here: the drift chain never runs through the
///   FrontierEngine, and only engine rounds emit trace lines.

#include <cmath>

#include "harness.hpp"

#include "core/grid_drift.hpp"

namespace {

using namespace cobra;

void lemma4_table(bench::Harness& h, int step_trials) {
  std::cout << "1) Lemma 4 transition probabilities (" << step_trials / 1000
            << "k single-step trials per cell)\n";
  io::Table table({"d", "P[dim changes | z!=0]", ">= 1/(2d-1)",
                   "P[decrease | change]", ">= 1/2+1/(8d-4)",
                   "P[increase at 0]", "<= 2/(d+1)"});
  for (const std::uint32_t d : {1u, 2u, 3u, 4u, 6u}) {
    core::Engine gen(0xA50 + d);
    std::uint64_t changes = 0, decreases = 0, zero_increases = 0;
    for (int t = 0; t < step_trials; ++t) {
      core::GridDriftWalk walk(d, 10, 1000);  // all dims nonzero, interior
      const auto event = walk.step(gen);
      if (event.dimension == 0 && event.delta != 0) {
        ++changes;
        if (event.delta < 0) ++decreases;
      }
    }
    for (int t = 0; t < step_trials; ++t) {
      std::vector<std::uint32_t> z(d, 10);
      z[0] = 0;
      core::GridDriftWalk walk(z, 1000);
      const auto event = walk.step(gen);
      if (event.dimension == 0 && event.delta > 0) ++zero_increases;
    }
    const double p_change = static_cast<double>(changes) / step_trials;
    const double p_dec =
        changes > 0 ? static_cast<double>(decreases) / static_cast<double>(changes) : 0.0;
    const double p_zero_inc =
        static_cast<double>(zero_increases) / step_trials;
    table.add_row({io::Table::fmt_int(d), io::Table::fmt(p_change, 4),
                   io::Table::fmt(1.0 / (2.0 * d - 1.0), 4),
                   io::Table::fmt(p_dec, 4),
                   io::Table::fmt(0.5 + 1.0 / (8.0 * d - 4.0), 4),
                   io::Table::fmt(p_zero_inc, 4),
                   io::Table::fmt(2.0 / (d + 1.0), 4)});
    h.json()
        .record("lemma4/d" + std::to_string(d))
        .field("d", static_cast<double>(d))
        .field("p_change", p_change)
        .field("p_change_bound", 1.0 / (2.0 * d - 1.0))
        .field("p_decrease_given_change", p_dec)
        .field("p_decrease_bound", 0.5 + 1.0 / (8.0 * d - 4.0))
        .field("p_increase_at_zero", p_zero_inc)
        .field("p_increase_bound", 2.0 / (d + 1.0));
  }
  std::cout << table
            << "reading: measured change rate >= the lemma's lower bound,\n"
               "conditional decrease >= 1/2 + 1/(8d-4), increase-at-zero <=\n"
               "2/(d+1) — every clause of Lemma 4, at every d.\n\n";
}

void lemma5_table(bench::Harness& h, const std::vector<std::uint32_t>& dims,
                  const std::vector<std::uint32_t>& distances,
                  std::uint32_t trials) {
  std::cout << "2) Lemma 5: rounds until ALL dimensions reach 0, from "
               "distance n\n";
  for (const std::uint32_t d : dims) {
    io::Table table({"n", "rounds to origin", "rounds / (d^2 n)"});
    std::vector<double> ns, times;
    for (const std::uint32_t n : distances) {
      const auto s = bench::measure(
          trials, 0xA5200 + d * 1000 + n, [&](core::Engine& gen) {
            core::GridDriftWalk walk(d, n, n);
            const std::uint64_t budget = 4096ull * d * d * n;
            return static_cast<double>(walk.run_to_origin(gen, budget));
          });
      table.add_row({io::Table::fmt_int(n), bench::mean_ci(s),
                     io::Table::fmt(s.mean / (static_cast<double>(d) * d * n),
                                    3)});
      ns.push_back(n);
      times.push_back(s.mean);
      h.json()
          .record("lemma5/d" + std::to_string(d) + "/n" + std::to_string(n))
          .field("d", static_cast<double>(d))
          .field("n", static_cast<double>(n))
          .field("origin_time_mean", s.mean)
          .field("origin_time_over_d2n",
                 s.mean / (static_cast<double>(d) * d * n));
    }
    std::cout << "d = " << d << "\n" << table;
    const auto fit = stats::fit_power_law(ns, times);
    bench::print_fit("  origin time", fit,
                     "Lemma 5 predicts exponent ~1 in n");
    h.json()
        .record("lemma5/d" + std::to_string(d) + "/fit")
        .field("d", static_cast<double>(d))
        .field("exponent", fit.exponent)
        .field("exponent_stderr", fit.exponent_stderr);
    std::cout << "\n";
  }
}

void lemma6_table(bench::Harness& h, std::uint64_t max_horizon) {
  std::cout << "3) Lemma 6: max excursion from the origin over horizon T\n";
  io::Table table({"T", "max total distance (d=3)", "ln T"});
  core::Engine gen(0xA53);
  for (std::uint64_t horizon = 1000; horizon <= max_horizon; horizon *= 10) {
    core::GridDriftWalk walk(3, 0, 1u << 20);
    std::uint64_t max_dist = 0;
    for (std::uint64_t t = 0; t < horizon; ++t) {
      walk.step(gen);
      max_dist = std::max<std::uint64_t>(max_dist, walk.total_distance());
    }
    table.add_row({io::Table::fmt_int(static_cast<long long>(horizon)),
                   io::Table::fmt_int(static_cast<long long>(max_dist)),
                   io::Table::fmt(std::log(static_cast<double>(horizon)), 1)});
    h.json()
        .record("lemma6/T" + std::to_string(horizon))
        .field("horizon", static_cast<double>(horizon))
        .field("max_total_distance", static_cast<double>(max_dist))
        .field("ln_horizon", std::log(static_cast<double>(horizon)));
  }
  std::cout << table
            << "reading: the deepest excursion grows like ln T (equilibrium\n"
               "tail of a geometrically-distributed biased walk), which is\n"
               "Lemma 6's 'stays below c_d ln n' in horizon form.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("grid_drift",
                   bench::parse_bench_args(
                       argc, argv, {"trials"},
                       {.graph = bench::BenchCaps::Graph::NoOp}));
  const std::uint32_t trials = h.trials(60, 10);
  h.json().context("trials", static_cast<double>(trials));
  if (h.has_graph()) {
    std::cout << "note: bench_grid_drift walks the Z^d drift chain "
                 "directly; --graph has no effect here\n";
  }

  bench::print_header(
      "A5  (Lemmas 4, 5, 6 — the §3 drift engine)",
      "per-dimension drift, origin-hitting time, and excursion control");

  const bool smoke = h.smoke();
  lemma4_table(h, smoke ? 40000 : 400000);
  lemma5_table(h,
               smoke ? std::vector<std::uint32_t>{1, 2}
                     : std::vector<std::uint32_t>{1, 2, 3},
               smoke ? std::vector<std::uint32_t>{16, 32, 64}
                     : std::vector<std::uint32_t>{16, 32, 64, 128, 256},
               trials);
  lemma6_table(h, smoke ? 10000ull : 1000000ull);
  return h.finish();
}
