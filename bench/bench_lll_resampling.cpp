/// A12 — related-work process zoo (§1.2's MPC/LLL neighborhood): parallel
/// Moser–Tardos resampling for random k-SAT, run as a violated-clause
/// frontier process (constructive Lovász Local Lemma, Moser & Tardos
/// JACM 2010; round-compressed variants in Harris & Srinivasan). Tables:
///   1. sweep of instance size at fixed clause density m/n: rounds to
///      all-satisfied, witness length (total resampled clauses), and
///      variable redraws, with a power-law fit of witness length vs m —
///      Moser–Tardos bounds expected resamples LINEARLY in m under the
///      LLL condition, so the exponent should sit near 1;
///   2. density ladder at fixed n: how rounds/witness grow as m/n climbs
///      toward the k-SAT threshold region.
///
/// Usage: bench_lll_resampling [--trials T] [--k K] [--out path] [--smoke]
///        [--threads N] [--caps] [--metrics path] [--trace path]
///   The measured object is a random constraint system, not a graph, so
///   --graph is accepted (shared CLI) but has no effect and the bench
///   declares `graph=no` in its --caps metadata (like grid_drift's Z^d
///   chain). --smoke shrinks sizes and trial counts for CI.

#include <string>
#include <vector>

#include "harness.hpp"

#include "core/lll_resampler.hpp"
#include "rng/splitmix64.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"

namespace {

using namespace cobra;

struct MtRun {
  double rounds = 0.0;
  double witness = 0.0;
  double resamples = 0.0;
  bool satisfied = false;
};

MtRun run_once(const gen::ClauseSystem& sys, const graph::Graph& deps,
               std::uint64_t init_seed, core::Engine& gen) {
  core::LLLResampler mt(sys, deps, init_seed);
  auto stop = sim::until(
      [](const core::LLLResampler& p) { return p.satisfied(); });
  const auto run = sim::Runner(std::uint64_t{1} << 20).run(mt, gen, stop);
  return {static_cast<double>(run.rounds),
          static_cast<double>(mt.witness().size()),
          static_cast<double>(mt.var_resamples()), mt.satisfied()};
}

void size_sweep(bench::Harness& h, bool smoke, std::uint32_t trials,
                std::uint32_t k) {
  std::cout << "1) size sweep at density m/n = 1.5 (k = " << k << ")\n";
  io::Table table({"vars", "clauses", "rounds", "witness", "var redraws",
                   "all satisfied"});
  std::vector<double> ms, witnesses;
  for (const std::uint32_t p : smoke ? std::vector<std::uint32_t>{7, 8, 9}
                                     : std::vector<std::uint32_t>{8, 10, 12,
                                                                  14, 16}) {
    const auto n = std::uint32_t{1} << p;
    const auto m = n + n / 2;
    const auto sys = gen::random_ksat(n, m, k, 0xA12000 + p);
    const graph::Graph deps = gen::dependency_graph(sys);
    bool all_satisfied = true;
    std::vector<double> rounds, witness, resamples;
    for (std::uint32_t t = 0; t < trials; ++t) {
      core::Engine gen(rng::derive_seed(0xA12100 + p, t));
      const auto run = run_once(sys, deps, /*init_seed=*/0xA12200 + t, gen);
      rounds.push_back(run.rounds);
      witness.push_back(run.witness);
      resamples.push_back(run.resamples);
      all_satisfied = all_satisfied && run.satisfied;
    }
    const auto rounds_s = stats::summarize(rounds);
    const auto witness_s = stats::summarize(witness);
    const auto resamples_s = stats::summarize(resamples);
    table.add_row({io::Table::fmt_int(n), io::Table::fmt_int(m),
                   bench::mean_ci(rounds_s, 2), bench::mean_ci(witness_s, 1),
                   bench::mean_ci(resamples_s, 1),
                   all_satisfied ? "yes" : "NO"});
    ms.push_back(static_cast<double>(m));
    witnesses.push_back(witness_s.mean);
    h.json()
        .record("size/n" + std::to_string(n))
        .field("vars", static_cast<double>(n))
        .field("clauses", static_cast<double>(m))
        .field("rounds_mean", rounds_s.mean)
        .field("witness_mean", witness_s.mean)
        .field("var_resamples_mean", resamples_s.mean)
        .field("all_satisfied", all_satisfied ? 1.0 : 0.0);
  }
  std::cout << table;
  const auto fit = stats::fit_power_law(ms, witnesses);
  bench::print_fit("  witness vs m", fit,
                   "Moser-Tardos: E[resamples] = O(m) => exponent ~ 1");
  h.json()
      .record("size/fit")
      .field("power_exponent", fit.exponent)
      .field("power_exponent_stderr", fit.exponent_stderr)
      .field("r_squared", fit.r_squared);
  std::cout << "\n";
}

void density_ladder(bench::Harness& h, bool smoke, std::uint32_t trials,
                    std::uint32_t k) {
  std::cout << "2) density ladder at fixed n (k = " << k << ")\n";
  const std::uint32_t n = smoke ? 256 : 4096;
  io::Table table({"m/n", "clauses", "rounds", "witness", "all satisfied"});
  // Capped at 2.5: past that the LLL condition is long gone and the walk
  // into the satisfiable-but-hard regime has heavy-tailed runtimes.
  const std::vector<double> densities =
      smoke ? std::vector<double>{1.0, 1.5, 2.0}
            : std::vector<double>{1.0, 1.5, 2.0, 2.5};
  for (const double density : densities) {
    const auto m = static_cast<std::uint32_t>(density * n);
    const auto sys = gen::random_ksat(n, m, k, 0xA12300 + m);
    const graph::Graph deps = gen::dependency_graph(sys);
    bool all_satisfied = true;
    std::vector<double> rounds, witness;
    for (std::uint32_t t = 0; t < trials; ++t) {
      core::Engine gen(rng::derive_seed(0xA12400 + m, t));
      const auto run = run_once(sys, deps, /*init_seed=*/0xA12500 + t, gen);
      rounds.push_back(run.rounds);
      witness.push_back(run.witness);
      all_satisfied = all_satisfied && run.satisfied;
    }
    const auto rounds_s = stats::summarize(rounds);
    const auto witness_s = stats::summarize(witness);
    table.add_row({io::Table::fmt(density, 1), io::Table::fmt_int(m),
                   bench::mean_ci(rounds_s, 2), bench::mean_ci(witness_s, 1),
                   all_satisfied ? "yes" : "NO"});
    h.json()
        .record("density/" + io::Table::fmt(density, 1))
        .field("density", density)
        .field("clauses", static_cast<double>(m))
        .field("rounds_mean", rounds_s.mean)
        .field("witness_mean", witness_s.mean)
        .field("all_satisfied", all_satisfied ? 1.0 : 0.0);
  }
  std::cout << table
            << "reading: well below the k-SAT threshold (~4.27 for k=3) every\n"
               "run terminates satisfied in a handful of rounds; witness\n"
               "length climbs with density as the dependency graph thickens\n"
               "- the regime where Harris-Srinivasan's partial resampling\n"
               "sharpens the constant.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("lll_resampling",
                   bench::parse_bench_args(
                       argc, argv, {"trials", "k"},
                       {.graph = bench::BenchCaps::Graph::NoOp}));
  const std::uint32_t trials = h.trials(12, 3);
  const auto k = static_cast<std::uint32_t>(
      bench::uint_flag(h.args(), "k", 3));
  h.json().context("trials", static_cast<double>(trials));
  h.json().context("k", static_cast<double>(k));

  bench::print_header(
      "A12  (related work: Moser-Tardos LLL)",
      "parallel Moser-Tardos resampling terminates with O(m) witness "
      "length on the violated-clause frontier");
  size_sweep(h, h.smoke(), trials, k);
  density_ladder(h, h.smoke(), trials, k);
  return h.finish();
}
