/// E6 — Theorem 1 (Matthews-type bound, proven in [13] and used throughout
/// the paper): the cobra cover time is O(h_max log n).
///
/// Table: across structurally diverse graphs, estimate h_max (sampled
/// worst-pair mean hitting time) and the cover time, and report the
/// implied Matthews constant  c = cover / (h_max ln n).  The theorem says
/// c stays O(1) across all of them.

#include <cmath>

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "core/hitting_time.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

struct Case {
  std::string name;
  graph::Graph graph;
};

}  // namespace

int main() {
  using namespace cobra;

  bench::print_header("E6  (Theorem 1)",
                      "cobra cover time <= O(h_max log n) on every graph");

  core::Engine graph_gen(0xE6);
  const std::vector<Case> cases = {
      {"cycle n=128", graph::make_cycle(128)},
      {"grid 12x12", graph::make_grid(2, 12)},
      {"hypercube Q_8", graph::make_hypercube(8)},
      {"random 4-regular n=128", graph::make_random_regular(graph_gen, 128, 4)},
      {"binary tree 7 levels", graph::make_kary_tree(2, 7)},
      {"star n=128", graph::make_star(128)},
      {"lollipop n=120", graph::make_lollipop(80, 40)},
      {"complete n=128", graph::make_complete(128)},
  };

  io::Table table({"graph", "n", "h_max (est)", "cover", "c = cover/(h_max ln n)"});
  table.set_align(0, io::Align::Left);
  for (const auto& [name, g] : cases) {
    core::Engine gen(0xE6100 ^ std::hash<std::string>{}(name));
    const auto hmax = core::estimate_cobra_hmax(g, 2, gen,
                                                /*pair_samples=*/60,
                                                /*trials_per_pair=*/8);
    const auto cover = bench::measure(
        40, 0xE6200 ^ std::hash<std::string>{}(name), [&](core::Engine& e) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, e).steps);
        });
    const double ln_n = std::log(static_cast<double>(g.num_vertices()));
    table.add_row({name, io::Table::fmt_int(g.num_vertices()),
                   io::Table::fmt(hmax.hmax, 1), bench::mean_ci(cover),
                   io::Table::fmt(cover.mean / (hmax.hmax * ln_n), 3)});
  }
  std::cout << table << "\n";
  std::cout
      << "reading: the Matthews constant c stays O(1) (in fact < 1 here,\n"
         "since sampled h_max underestimates slightly and the log factor is\n"
         "generous) across every topology - the workhorse bound behind the\n"
         "paper's Theorems 15 and 20.\n";
  return 0;
}
