/// E6 — Theorem 1 (Matthews-type bound, proven in [13] and used throughout
/// the paper): the cobra cover time is O(h_max log n).
///
/// Table: across structurally diverse graphs, estimate h_max (sampled
/// worst-pair mean hitting time) and the cover time, and report the
/// implied Matthews constant  c = cover / (h_max ln n).  The theorem says
/// c stays O(1) across all of them.
///
/// Usage: bench_matthews [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Case graphs are built through the spec registry. --graph replaces
///   the case list with one row; --smoke shrinks graph sizes, the pair
///   sample budget, and the trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "core/hitting_time.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace cobra;

  bench::Harness h("matthews",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(40, 6);
  const std::uint32_t pair_samples = h.smoke() ? 12 : 60;
  const std::uint32_t trials_per_pair = h.smoke() ? 3 : 8;
  h.json().context("trials", static_cast<double>(trials));
  h.json().context("pair_samples", static_cast<double>(pair_samples));

  bench::print_header("E6  (Theorem 1)",
                      "cobra cover time <= O(h_max log n) on every graph");

  const std::vector<bench::SuiteCase> cases = {
      {"cycle", "ring:n=128", "ring:n=32"},
      {"grid 2d", "grid:side=12,dims=2", "grid:side=6,dims=2"},
      {"hypercube", "hypercube:dims=8", "hypercube:dims=5"},
      {"random 4-regular", "rreg:n=128,d=4,seed=230", "rreg:n=32,d=4,seed=230"},
      {"binary tree", "tree:levels=7,arity=2", "tree:levels=4,arity=2"},
      {"star", "star:n=128", "star:n=32"},
      {"lollipop", "lollipop:clique=80,path=40", "lollipop:clique=20,path=10"},
      {"complete", "complete:n=128", "complete:n=32"},
  };

  io::Table table(
      {"graph", "n", "h_max (est)", "cover", "c = cover/(h_max ln n)"});
  table.set_align(0, io::Align::Left);
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    core::Engine gen(0xE6100 ^ std::hash<std::string>{}(c.spec));
    const auto hmax =
        core::estimate_cobra_hmax(g, 2, gen, pair_samples, trials_per_pair);
    const auto cover = bench::measure(
        trials, 0xE6200 ^ std::hash<std::string>{}(c.spec),
        [&](core::Engine& e) {
          return sim::cover_rounds<core::CobraWalk>(e, g, 0u, 2u);
        });
    const double ln_n = std::log(static_cast<double>(g.num_vertices()));
    const double matthews_c = cover.mean / (hmax.hmax * ln_n);
    table.add_row({c.name, io::Table::fmt_int(g.num_vertices()),
                   io::Table::fmt(hmax.hmax, 1), bench::mean_ci(cover),
                   io::Table::fmt(matthews_c, 3)});
    h.json()
        .record(c.name)
        .field("spec", c.spec)
        .field("n", static_cast<double>(g.num_vertices()))
        .field("hmax_est", hmax.hmax)
        .field("cover_mean", cover.mean)
        .field("cover_ci95", cover.ci95_half)
        .field("matthews_constant", matthews_c);
  }
  std::cout << table << "\n";
  std::cout
      << "reading: the Matthews constant c stays O(1) (in fact < 1 here,\n"
         "since sampled h_max underestimates slightly and the log factor is\n"
         "generous) across every topology - the workhorse bound behind the\n"
         "paper's Theorems 15 and 20.\n";
  return h.finish();
}
