/// A6 — Lemma 16 / Corollary 17 (§5.3's engine): the Metropolis chain
/// targeting pi_M(x) = gamma sigma_hat(x, v) d(x) is a legal
/// inverse-degree-biased walk whose return time to v is exactly
///
///     R(v) = (d(v) + sum_{x != v} sigma_hat(x, v) d(x)) / d(v).
///
/// Tables: per graph, the Corollary 17 bound vs the measured return time;
/// the minimum transition margin certifying the §5.3 inequality
/// M(x,y) >= (1-1/d(x))/d(x); and the Theorem 15 chain: on delta-regular
/// graphs the bound evaluates to <= 1 + n^{1-1/delta}, which drives the
/// O(n^{2-1/delta}) hitting time.

#include <cmath>

#include "bench_common.hpp"

#include "core/metropolis_walk.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

void return_time_table() {
  std::cout << "1) Corollary 17 return-time bound vs measurement\n";
  io::Table table({"graph", "bound", "measured return", "margin >= 0?"});
  table.set_align(0, io::Align::Left);
  core::Engine graph_gen(0xA61);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  const std::vector<Case> cases = {
      {"cycle n=32", graph::make_cycle(32)},
      {"cycle n=128", graph::make_cycle(128)},
      {"torus 8x8", graph::make_grid(2, 8, true)},
      {"hypercube Q_6", graph::make_hypercube(6)},
      {"complete n=32", graph::make_complete(32)},
      {"random 4-regular n=64", graph::make_random_regular(graph_gen, 64, 4)},
  };
  for (const auto& [name, g] : cases) {
    core::MetropolisWalk walk(g, 0);
    core::Engine gen(0xA6100 ^ std::hash<std::string>{}(name));
    const double measured = walk.measure_return_time(gen, 3000, 1u << 24);
    table.add_row({name, io::Table::fmt(walk.return_time_bound(), 3),
                   io::Table::fmt(measured, 3),
                   walk.min_transition_margin() >= -1e-9 ? "yes" : "NO"});
  }
  std::cout << table
            << "reading: measured return time sits at the bound (it is an\n"
               "equality for the Metropolis chain: R = 1/pi_M(v)), and the\n"
               "margin column certifies every transition respects the\n"
               "inverse-degree floor (1 - 1/d)/d - the two facts s5.3\n"
               "combines into Theorem 20.\n\n";
}

void theorem15_scaling_table() {
  std::cout << "2) the Theorem 15 chain: bound vs 1 + n^{1-1/delta} on "
               "delta-regular graphs\n";
  io::Table table({"graph", "delta", "n", "Cor 17 bound", "1 + n^(1-1/delta)"});
  table.set_align(0, io::Align::Left);
  for (const std::uint32_t n : {32u, 64u, 128u, 256u, 512u}) {
    const graph::Graph g = graph::make_cycle(n);
    const core::MetropolisWalk walk(g, 0);
    table.add_row({"cycle", "2", io::Table::fmt_int(n),
                   io::Table::fmt(walk.return_time_bound(), 2),
                   io::Table::fmt(1.0 + std::sqrt(static_cast<double>(n)), 2)});
  }
  core::Engine gen(0xA62);
  for (const std::uint32_t n : {32u, 64u, 128u, 256u}) {
    const graph::Graph g = graph::make_random_regular(gen, n, 4);
    const core::MetropolisWalk walk(g, 0);
    table.add_row({"random 4-regular", "4", io::Table::fmt_int(n),
                   io::Table::fmt(walk.return_time_bound(), 2),
                   io::Table::fmt(1.0 + std::pow(n, 0.75), 2)});
  }
  std::cout << table
            << "reading: the cycle's bound is Theta(1) - its BFS balls grow\n"
               "linearly, so the geometric sigma_hat mass concentrates near\n"
               "the target and the envelope is wildly loose there. The\n"
               "random 4-regular bound grows ~n^0.74, tracking the envelope's\n"
               "n^{1-1/delta} = n^0.75 rate (the envelope's constant C is\n"
               "family-specific; Theorem 15 only needs the growth rate).\n";
}

}  // namespace

int main() {
  bench::print_header("A6  (Lemma 16 / Corollary 17)",
                      "Metropolis return times: the engine of Theorems 15 "
                      "and 20");
  return_time_table();
  theorem15_scaling_table();
  return 0;
}
