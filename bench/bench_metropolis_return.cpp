/// A6 — Lemma 16 / Corollary 17 (§5.3's engine): the Metropolis chain
/// targeting pi_M(x) = gamma sigma_hat(x, v) d(x) is a legal
/// inverse-degree-biased walk whose return time to v is exactly
///
///     R(v) = (d(v) + sum_{x != v} sigma_hat(x, v) d(x)) / d(v).
///
/// Tables: per graph, the Corollary 17 bound vs the measured return time;
/// the minimum transition margin certifying the §5.3 inequality
/// M(x,y) >= (1-1/d(x))/d(x); and the Theorem 15 chain: on delta-regular
/// graphs the bound evaluates to <= 1 + n^{1-1/delta}, which drives the
/// O(n^{2-1/delta}) hitting time.
///
/// Usage: bench_metropolis_return [--returns R] [--graph <spec>]
///        [--out path] [--smoke]
///   Case graphs are built through the spec registry. --graph replaces
///   the case list with one return-time row; --smoke shrinks the measured
///   return count and the scaling sweep for CI.

#include <cmath>
#include <limits>

#include "harness.hpp"

#include "core/metropolis_walk.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"

namespace {

using namespace cobra;

void return_time_table(bench::Harness& h,
                       const std::vector<bench::SuiteCase>& cases,
                       std::uint32_t returns) {
  std::cout << "1) Corollary 17 return-time bound vs measurement\n";
  io::Table table({"graph", "bound", "measured return", "margin >= 0?"});
  table.set_align(0, io::Align::Left);
  for (const auto& c : h.suite(cases)) {
    core::MetropolisWalk walk(c.graph, 0);
    core::Engine gen(0xA6100 ^ std::hash<std::string>{}(c.spec));
    // The excursion counter on sim::Runner replaces the walk's internal
    // return-time loop — same draws, same accounting (the crosscheck suite
    // pins the two against each other per seed).
    sim::ExcursionStop excursions(0, returns);
    const auto run =
        sim::Runner(std::uint64_t{1} << 24).run(walk, gen, excursions);
    const double measured =
        excursions.completed() == 0
            ? std::numeric_limits<double>::infinity()
            : static_cast<double>(run.rounds) /
                  static_cast<double>(excursions.completed());
    const bool margin_ok = walk.min_transition_margin() >= -1e-9;
    table.add_row({c.name, io::Table::fmt(walk.return_time_bound(), 3),
                   io::Table::fmt(measured, 3), margin_ok ? "yes" : "NO"});
    h.json()
        .record("return/" + c.name)
        .field("spec", c.spec)
        .field("n", static_cast<double>(c.graph.num_vertices()))
        .field("cor17_bound", walk.return_time_bound())
        .field("measured_return", measured)
        .field("min_transition_margin", walk.min_transition_margin());
  }
  std::cout << table
            << "reading: measured return time sits at the bound (it is an\n"
               "equality for the Metropolis chain: R = 1/pi_M(v)), and the\n"
               "margin column certifies every transition respects the\n"
               "inverse-degree floor (1 - 1/d)/d - the two facts s5.3\n"
               "combines into Theorem 20.\n\n";
}

void theorem15_scaling_table(bench::Harness& h, bool smoke) {
  std::cout << "2) the Theorem 15 chain: bound vs 1 + n^{1-1/delta} on "
               "delta-regular graphs\n";
  io::Table table({"graph", "delta", "n", "Cor 17 bound", "1 + n^(1-1/delta)"});
  table.set_align(0, io::Align::Left);
  auto add_scaling_row = [&](const std::string& family, std::uint32_t delta,
                             const bench::BuiltCase& c, double envelope) {
    const core::MetropolisWalk walk(c.graph, 0);
    table.add_row({family, io::Table::fmt_int(delta),
                   io::Table::fmt_int(c.graph.num_vertices()),
                   io::Table::fmt(walk.return_time_bound(), 2),
                   io::Table::fmt(envelope, 2)});
    h.json()
        .record("thm15/" + c.name)
        .field("spec", c.spec)
        .field("delta", static_cast<double>(delta))
        .field("n", static_cast<double>(c.graph.num_vertices()))
        .field("cor17_bound", walk.return_time_bound())
        .field("envelope", envelope);
  };

  {
    std::vector<bench::SuiteCase> cases;
    for (const std::uint32_t n :
         smoke ? std::vector<std::uint32_t>{32, 64}
               : std::vector<std::uint32_t>{32, 64, 128, 256, 512}) {
      cases.push_back({"cycle n=" + std::to_string(n),
                       "ring:n=" + std::to_string(n)});
    }
    for (const auto& c : h.suite(cases)) {
      add_scaling_row("cycle", 2, c,
                      1.0 + std::sqrt(static_cast<double>(c.graph.num_vertices())));
    }
  }
  {
    std::vector<bench::SuiteCase> cases;
    for (const std::uint32_t n :
         smoke ? std::vector<std::uint32_t>{32, 64}
               : std::vector<std::uint32_t>{32, 64, 128, 256}) {
      cases.push_back({"rreg n=" + std::to_string(n),
                       "rreg:n=" + std::to_string(n) + ",d=4,seed=" +
                           std::to_string(0xA62 + n)});
    }
    for (const auto& c : h.suite(cases)) {
      add_scaling_row(
          "random 4-regular", 4, c,
          1.0 + std::pow(static_cast<double>(c.graph.num_vertices()), 0.75));
    }
  }
  std::cout << table
            << "reading: the cycle's bound is Theta(1) - its BFS balls grow\n"
               "linearly, so the geometric sigma_hat mass concentrates near\n"
               "the target and the envelope is wildly loose there. The\n"
               "random 4-regular bound grows ~n^0.74, tracking the envelope's\n"
               "n^{1-1/delta} = n^0.75 rate (the envelope's constant C is\n"
               "family-specific; Theorem 15 only needs the growth rate).\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("metropolis_return",
                   bench::parse_bench_args(argc, argv, {"returns"}));
  const auto returns = static_cast<std::uint32_t>(
      bench::uint_flag(h.args(), "returns", h.smoke() ? 300 : 3000));
  h.json().context("returns", static_cast<double>(returns));

  bench::print_header("A6  (Lemma 16 / Corollary 17)",
                      "Metropolis return times: the engine of Theorems 15 "
                      "and 20");

  const std::vector<bench::SuiteCase> cases = {
      {"cycle n=32", "ring:n=32"},
      {"cycle n=128", "ring:n=128", "ring:n=64"},
      {"torus 8x8", "torus:side=8,dims=2"},
      {"hypercube Q_6", "hypercube:dims=6"},
      {"complete n=32", "complete:n=32"},
      {"random 4-regular n=64", "rreg:n=64,d=4,seed=161"},
  };
  return_time_table(h, cases, returns);
  if (!h.has_graph()) theorem15_scaling_table(h, h.smoke());
  return h.finish();
}
