/// A4 — Lemma 11 (the heart of Theorem 8's second-moment bound): after the
/// coupled two-pebble Walt walk mixes, the probability that pebbles i and
/// j sit on the SAME arbitrary vertex v at time s satisfies
///
///     Pr[E_i ∩ E_j] <= 2/(n^2 + n) + 1/n^4,
///
/// because the walk on the Eulerian digraph D(G x G) has stationary mass
/// exactly 2/(n^2+n) on each diagonal state. Tables:
///   1. exact stationary check: D(G x G) out-weight distribution vs the
///      closed form (machine-precision identity, printed as max error);
///   2. simulated collision probability at time s vs the Lemma 11 bound,
///      per family, with the paper's lazy pairing;
///   3. TV-mixing of the matrix walk: distance to stationarity vs s,
///      showing the O(Phi^-2 log n) decay Theorem 12 (Chung) provides.
///
/// Usage: bench_pair_collision [--trials T] [--graph <spec>] [--out path]
///        [--smoke] [--caps] [--metrics path] [--trace path]
///   Case graphs are built through the spec registry. --graph replaces
///   the simulated-collision case list with that one graph ONLY — the
///   exact D(G x G) tables keep their tiny built-in cases (they
///   materialize n^2 states), so this bench declares `graph=partial` in
///   its --caps metadata and sweep drivers skip it rather than hardcoding
///   the exception. --smoke shrinks the trial count for CI (the graph
///   suite is already tiny; no sizes change under --smoke). --metrics
///   snapshots the registry (gen.build.* timers and the rest) on exit;
///   --trace records only the rounds that run through the FrontierEngine
///   (the matrix pair walk steps outside it, so expect few or no lines).

#include <cmath>

#include "harness.hpp"

#include "core/pair_walk.hpp"
#include "graph/spectral.hpp"
#include "graph/tensor_product.hpp"
#include "sim/runner.hpp"
#include "sim/stop.hpp"

namespace {

using namespace cobra;

void stationary_identity_table(bench::Harness& h) {
  std::cout << "1) D(G x G) stationary vs closed form (Eulerian identity)\n";
  io::Table table({"graph", "n^2 states", "max |pi - closed|", "balanced"});
  table.set_align(0, io::Align::Left);
  // Tiny cases only: the pair digraph materializes n^2 states, so this
  // exact table never follows --graph.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"cycle n=8", "ring:n=8"},
      {"complete n=6", "complete:n=6"},
      {"hypercube Q_3", "hypercube:dims=3"},
      {"random 4-regular n=12", "rreg:n=12,d=4,seed=164"},
  };
  for (const auto& [name, spec] : cases) {
    const graph::Graph g = gen::build_graph(spec);
    const graph::Digraph d = graph::walt_pair_digraph(g);
    const auto closed = graph::walt_pair_stationary(g.num_vertices());
    double total = 0.0;
    for (graph::Vertex pv = 0; pv < d.num_vertices(); ++pv) {
      total += d.out_weight_total(pv);
    }
    double max_err = 0.0;
    for (graph::Vertex pv = 0; pv < d.num_vertices(); ++pv) {
      const double pi = d.out_weight_total(pv) / total;
      const double expect = graph::is_diagonal(pv, g.num_vertices())
                                ? closed.diagonal
                                : closed.off_diagonal;
      max_err = std::max(max_err, std::abs(pi - expect));
    }
    table.add_row({name, io::Table::fmt_int(d.num_vertices()),
                   io::Table::fmt_sci(max_err, 2),
                   d.is_weight_balanced() ? "yes" : "NO"});
    h.json()
        .record("stationary/" + name)
        .field("spec", spec)
        .field("pair_states", static_cast<double>(d.num_vertices()))
        .field("max_stationary_error", max_err)
        .field("weight_balanced", d.is_weight_balanced() ? 1.0 : 0.0);
  }
  std::cout << table << "\n";
}

void collision_table(bench::Harness& h, std::uint32_t trials) {
  std::cout << "2) simulated Pr[i, j co-located at time s] vs the Lemma 11 "
               "bound\n";
  io::Table table({"graph", "n", "s", "Pr[collision]", "n * pi(S1) = 2/(n+1)",
                   "Lemma 11 bound * n"});
  table.set_align(0, io::Align::Left);
  const std::vector<bench::SuiteCase> cases = {
      {"complete n=16", "complete:n=16"},
      {"hypercube Q_6", "hypercube:dims=6", "hypercube:dims=4"},
      {"random 6-regular n=64", "rreg:n=64,d=6,seed=165",
       "rreg:n=32,d=6,seed=165"},
      {"torus 8x8", "torus:side=8,dims=2"},
  };
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    const auto n = g.num_vertices();
    // Mixing horizon: generous multiple of Phi^-2 log^2 n.
    const auto est = graph::estimate_conductance(g);
    const double phi = est.point();
    const auto s = static_cast<std::uint64_t>(
        16.0 / (phi * phi) * std::log(static_cast<double>(n)) + 64);
    // Probability that the pair is co-located (summed over all v — the
    // per-v bound times n) at time s, over trials.
    const auto prob = bench::measure(
        trials, 0xA4200 ^ std::hash<std::string>{}(c.spec),
        [&, s](core::Engine& gen) {
          // The product walk as a sim::Process on D(G x G): a fixed-horizon
          // Runner schedule replaces the hand-rolled step loop (identical
          // draws — the Runner adds no randomness).
          core::PairWalk walk(g, 0, 0, /*lazy=*/true);
          sim::FixedRounds horizon(s);
          sim::Runner(s).run(walk, gen, horizon);
          return walk.collided() ? 1.0 : 0.0;
        });
    const double stationary_sum = 2.0 / (n + 1.0);
    const double bound_sum =
        n * (2.0 / (static_cast<double>(n) * n + n) +
             1.0 / std::pow(static_cast<double>(n), 4.0));
    table.add_row({c.name, io::Table::fmt_int(n),
                   io::Table::fmt_int(static_cast<long long>(s)),
                   io::Table::fmt(prob.mean, 4),
                   io::Table::fmt(stationary_sum, 4),
                   io::Table::fmt(bound_sum, 4)});
    h.json()
        .record("collision/" + c.name)
        .field("spec", c.spec)
        .field("n", static_cast<double>(n))
        .field("s", static_cast<double>(s))
        .field("collision_prob", prob.mean)
        .field("stationary_sum", stationary_sum)
        .field("lemma11_bound_times_n", bound_sum);
  }
  std::cout << table
            << "reading: the collision probability lands on the stationary\n"
               "value and under the bound x n (the bound is per-vertex; the\n"
               "collision event sums it over all n vertices).\n\n";
}

void mixing_table(bench::Harness& h) {
  std::cout << "3) TV mixing of the D(G x G) matrix walk\n";
  const graph::Graph g = gen::build_graph("complete:n=8");
  const graph::Digraph d = graph::walt_pair_digraph(g);
  const std::uint32_t n = g.num_vertices();
  const auto closed = graph::walt_pair_stationary(n);
  std::vector<double> pi(d.num_vertices());
  for (graph::Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    pi[pv] = graph::is_diagonal(pv, n) ? closed.diagonal : closed.off_diagonal;
  }
  // Lazy version of the chain: average with staying put (the paper's Walt
  // laziness), realized by mixing the pushed distribution 50/50.
  std::vector<double> current(d.num_vertices(), 0.0);
  current[graph::tensor_id(0, 0, n)] = 1.0;  // both pebbles at vertex 0
  std::vector<double> pushed(d.num_vertices());
  io::Table table({"s", "TV(P^s(x0, .), pi)"});
  for (std::uint32_t s = 0; s <= 32; ++s) {
    if (s % 4 == 0) {
      const double tv = graph::total_variation(current, pi);
      table.add_row({io::Table::fmt_int(s), io::Table::fmt_sci(tv, 3)});
      h.json()
          .record("mixing/s" + std::to_string(s))
          .field("s", static_cast<double>(s))
          .field("tv_distance", tv);
    }
    d.push_distribution(current, pushed);
    for (std::size_t i = 0; i < current.size(); ++i) {
      current[i] = 0.5 * current[i] + 0.5 * pushed[i];
    }
  }
  std::cout << table
            << "reading: geometric TV decay from a worst-case start — the\n"
               "rapid directed-chain mixing that Chung's Theorem 7.3 (the\n"
               "paper's Theorem 12) guarantees via the directed Cheeger\n"
               "constant, here visible directly.\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("pair_collision",
                   bench::parse_bench_args(
                       argc, argv, {"trials"},
                       {.graph = bench::BenchCaps::Graph::Partial}));
  const std::uint32_t trials = h.trials(4000, 400);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header("A4  (Lemma 11 / §4 machinery)",
                      "two-pebble collision probability and D(G x G) mixing");
  if (!h.has_graph()) stationary_identity_table(h);
  collision_table(h, trials);
  if (!h.has_graph()) mixing_table(h);
  return h.finish();
}
