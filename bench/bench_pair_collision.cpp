/// A4 — Lemma 11 (the heart of Theorem 8's second-moment bound): after the
/// coupled two-pebble Walt walk mixes, the probability that pebbles i and
/// j sit on the SAME arbitrary vertex v at time s satisfies
///
///     Pr[E_i ∩ E_j] <= 2/(n^2 + n) + 1/n^4,
///
/// because the walk on the Eulerian digraph D(G x G) has stationary mass
/// exactly 2/(n^2+n) on each diagonal state. Tables:
///   1. exact stationary check: D(G x G) out-weight distribution vs the
///      closed form (machine-precision identity, printed as max error);
///   2. simulated collision probability at time s vs the Lemma 11 bound,
///      per family, with the paper's lazy pairing;
///   3. TV-mixing of the matrix walk: distance to stationarity vs s,
///      showing the O(Phi^-2 log n) decay Theorem 12 (Chung) provides.

#include <cmath>

#include "bench_common.hpp"

#include "core/pair_walk.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"
#include "graph/tensor_product.hpp"

namespace {

using namespace cobra;

void stationary_identity_table() {
  std::cout << "1) D(G x G) stationary vs closed form (Eulerian identity)\n";
  io::Table table({"graph", "n^2 states", "max |pi - closed|", "balanced"});
  table.set_align(0, io::Align::Left);
  core::Engine gen(0xA41);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  const std::vector<Case> cases = {
      {"cycle n=8", graph::make_cycle(8)},
      {"complete n=6", graph::make_complete(6)},
      {"hypercube Q_3", graph::make_hypercube(3)},
      {"random 4-regular n=12", graph::make_random_regular(gen, 12, 4)},
  };
  for (const auto& [name, g] : cases) {
    const graph::Digraph d = graph::walt_pair_digraph(g);
    const auto closed = graph::walt_pair_stationary(g.num_vertices());
    double total = 0.0;
    for (graph::Vertex pv = 0; pv < d.num_vertices(); ++pv) {
      total += d.out_weight_total(pv);
    }
    double max_err = 0.0;
    for (graph::Vertex pv = 0; pv < d.num_vertices(); ++pv) {
      const double pi = d.out_weight_total(pv) / total;
      const double expect = graph::is_diagonal(pv, g.num_vertices())
                                ? closed.diagonal
                                : closed.off_diagonal;
      max_err = std::max(max_err, std::abs(pi - expect));
    }
    table.add_row({name, io::Table::fmt_int(d.num_vertices()),
                   io::Table::fmt_sci(max_err, 2),
                   d.is_weight_balanced() ? "yes" : "NO"});
  }
  std::cout << table << "\n";
}

void collision_table() {
  std::cout << "2) simulated Pr[i, j co-located at time s] vs the Lemma 11 "
               "bound\n";
  io::Table table({"graph", "n", "s", "Pr[collision]", "n * pi(S1) = 2/(n+1)",
                   "Lemma 11 bound * n"});
  table.set_align(0, io::Align::Left);
  core::Engine graph_gen(0xA42);
  struct Case {
    std::string name;
    graph::Graph g;
  };
  const std::vector<Case> cases = {
      {"complete n=16", graph::make_complete(16)},
      {"hypercube Q_6", graph::make_hypercube(6)},
      {"random 6-regular n=64", graph::make_random_regular(graph_gen, 64, 6)},
      {"torus 8x8", graph::make_grid(2, 8, true)},
  };
  for (const auto& [name, g] : cases) {
    const auto n = g.num_vertices();
    // Mixing horizon: generous multiple of Phi^-2 log^2 n.
    const auto est = graph::estimate_conductance(g);
    const double phi = est.point();
    const auto s = static_cast<std::uint64_t>(
        16.0 / (phi * phi) * std::log(static_cast<double>(n)) + 64);
    // Probability that the pair is co-located (summed over all v — the
    // per-v bound times n) at time s, over trials.
    const auto prob = bench::measure(
        4000, 0xA4200 ^ std::hash<std::string>{}(name),
        [&, s](core::Engine& gen) {
          core::PairWalk walk(g, 0, 0, /*lazy=*/true);
          for (std::uint64_t t = 0; t < s; ++t) walk.step(gen);
          return walk.collided() ? 1.0 : 0.0;
        });
    const double stationary_sum = 2.0 / (n + 1.0);
    const double bound_sum =
        n * (2.0 / (static_cast<double>(n) * n + n) +
             1.0 / std::pow(static_cast<double>(n), 4.0));
    table.add_row({name, io::Table::fmt_int(n),
                   io::Table::fmt_int(static_cast<long long>(s)),
                   io::Table::fmt(prob.mean, 4),
                   io::Table::fmt(stationary_sum, 4),
                   io::Table::fmt(bound_sum, 4)});
  }
  std::cout << table
            << "reading: the collision probability lands on the stationary\n"
               "value and under the bound x n (the bound is per-vertex; the\n"
               "collision event sums it over all n vertices).\n\n";
}

void mixing_table() {
  std::cout << "3) TV mixing of the D(G x G) matrix walk\n";
  const graph::Graph g = graph::make_complete(8);
  const graph::Digraph d = graph::walt_pair_digraph(g);
  const std::uint32_t n = g.num_vertices();
  const auto closed = graph::walt_pair_stationary(n);
  std::vector<double> pi(d.num_vertices());
  for (graph::Vertex pv = 0; pv < d.num_vertices(); ++pv) {
    pi[pv] = graph::is_diagonal(pv, n) ? closed.diagonal : closed.off_diagonal;
  }
  // Lazy version of the chain: average with staying put (the paper's Walt
  // laziness), realized by mixing the pushed distribution 50/50.
  std::vector<double> current(d.num_vertices(), 0.0);
  current[graph::tensor_id(0, 0, n)] = 1.0;  // both pebbles at vertex 0
  std::vector<double> pushed(d.num_vertices());
  io::Table table({"s", "TV(P^s(x0, .), pi)"});
  for (std::uint32_t s = 0; s <= 32; ++s) {
    if (s % 4 == 0) {
      table.add_row({io::Table::fmt_int(s),
                     io::Table::fmt_sci(graph::total_variation(current, pi), 3)});
    }
    d.push_distribution(current, pushed);
    for (std::size_t i = 0; i < current.size(); ++i) {
      current[i] = 0.5 * current[i] + 0.5 * pushed[i];
    }
  }
  std::cout << table
            << "reading: geometric TV decay from a worst-case start — the\n"
               "rapid directed-chain mixing that Chung's Theorem 7.3 (the\n"
               "paper's Theorem 12) guarantees via the directed Cheeger\n"
               "constant, here visible directly.\n";
}

}  // namespace

int main() {
  bench::print_header("A4  (Lemma 11 / §4 machinery)",
                      "two-pebble collision probability and D(G x G) mixing");
  stationary_identity_table();
  collision_table();
  mixing_table();
  return 0;
}
