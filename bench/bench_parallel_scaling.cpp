/// A3 — strong scaling of the Monte-Carlo driver: wall-clock speedup of a
/// fixed trial budget as the thread count grows. Trials are embarrassingly
/// parallel with heavy-tailed durations, so the dynamic schedule should
/// scale near-linearly until memory bandwidth saturates; the static
/// schedule shows the straggler penalty the dynamic one avoids.
/// Results go to BENCH_parallel_scaling.json for the perf trajectory.
///
/// Usage: bench_parallel_scaling [--out path] [--trials T]
///        [--graph <spec>] [--smoke]
///   Default graph: grid:side=48,dims=2 (the paper's E1 topology at a
///   size whose cover time is ~ms per trial). --smoke shrinks to a 16x16
///   grid and 48 trials for CI.

#include <chrono>
#include <cstdlib>
#include <string>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace cobra;

double timed_run(std::size_t threads, bool dynamic, const graph::Graph& g,
                 std::uint32_t trials) {
  par::ThreadPool pool(threads);
  par::MonteCarloOptions opts;
  opts.base_seed = 0xA3;
  opts.trials = trials;
  opts.dynamic_schedule = dynamic;
  const auto start = std::chrono::steady_clock::now();
  const auto results = par::run_trials(pool, opts, [&](core::Engine& gen,
                                                       std::uint32_t) {
    return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
  });
  const auto stop = std::chrono::steady_clock::now();
  // Guard against the optimizer and against silent wrong results.
  if (results.size() != trials) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args = bench::parse_bench_args(argc, argv, {"trials"});
  const bool smoke = args.get_bool("smoke", false);
  const std::string out_path = args.get("out", "BENCH_parallel_scaling.json");
  const auto trials_arg = bench::uint_flag(args, "trials", smoke ? 48 : 384);
  if (trials_arg < 1 || trials_arg > 1000000) {
    std::cerr << "bench_parallel_scaling: --trials must be in [1, 1000000]\n";
    return 1;
  }
  const auto trials = static_cast<std::uint32_t>(trials_arg);

  bench::print_header(
      "A3  (systems)",
      "strong scaling of the Monte-Carlo driver (fixed trial budget)");

  const std::string default_spec =
      smoke ? "grid:side=16,dims=2" : "grid:side=48,dims=2";
  const std::string spec = io::graph_spec_from_args(args, default_spec);
  const graph::Graph g = bench::bench_graph(args, default_spec);

  bench::JsonReporter json("parallel_scaling");
  json.context("graph", spec);
  json.context("vertices", static_cast<double>(g.num_vertices()));
  json.context("trials", static_cast<double>(trials));
  if (smoke) json.context("smoke", 1.0);

  // Representation probe: one cover run through a directly-held walk, so
  // the JSON records which frontier representations the trial workload
  // actually exercises on this graph (the Monte-Carlo rows construct their
  // walks internally and cannot expose the engine counters).
  {
    core::CobraWalk probe(g, 0, 2);
    core::Engine probe_gen(0xA3);
    (void)core::run_to_cover(probe, probe_gen, 1u << 22);
    json.record("representation_probe")
        .field("rounds", static_cast<double>(probe.round()))
        .field("dense_rounds",
               static_cast<double>(probe.engine().dense_rounds()))
        .field("sparse_rounds",
               static_cast<double>(probe.engine().sparse_rounds()))
        .field("switches", static_cast<double>(probe.engine().switches()))
        .field("parallel_rounds",
               static_cast<double>(probe.engine().parallel_rounds()));
  }

  // Warm-up run so first-touch page faults don't pollute the 1-thread row.
  (void)timed_run(2, true, g, trials / 6 + 1);

  const double serial_dynamic = timed_run(1, true, g, trials);
  io::Table table({"threads", "dynamic (s)", "speedup", "efficiency",
                   "static (s)", "static speedup"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double dyn = timed_run(threads, true, g, trials);
    const double sta = timed_run(threads, false, g, trials);
    table.add_row(
        {io::Table::fmt_int(static_cast<long long>(threads)),
         io::Table::fmt(dyn, 3),
         io::Table::fmt(serial_dynamic / dyn, 2) + "x",
         io::Table::fmt(serial_dynamic / dyn / static_cast<double>(threads) * 100.0, 0) + "%",
         io::Table::fmt(sta, 3),
         io::Table::fmt(serial_dynamic / sta, 2) + "x"});
    json.record("threads" + std::to_string(threads))
        .field("threads", static_cast<double>(threads))
        .field("dynamic_seconds", dyn)
        .field("dynamic_speedup", serial_dynamic / dyn)
        .field("dynamic_efficiency", serial_dynamic / dyn / static_cast<double>(threads))
        .field("static_seconds", sta)
        .field("static_speedup", serial_dynamic / sta);
  }
  std::cout << table << "\n";
  const bool wrote = json.write(out_path);
  std::cout
      << "reading: near-linear speedup for the dynamic schedule through the\n"
         "physical core count; the static schedule trails when trial\n"
         "durations are heavy-tailed (cover times are), which is why the\n"
         "experiment suite defaults to dynamic scheduling.\n";
  return wrote ? 0 : 1;
}
