/// A3 — strong scaling of the Monte-Carlo driver: wall-clock speedup of a
/// fixed trial budget as the thread count grows. Trials are embarrassingly
/// parallel with heavy-tailed durations, so the dynamic schedule should
/// scale near-linearly until memory bandwidth saturates; the static
/// schedule shows the straggler penalty the dynamic one avoids.
/// Results go to BENCH_parallel_scaling.json for the perf trajectory.
///
/// Usage: bench_parallel_scaling [out.json] [trials]

#include <chrono>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace cobra;

double timed_run(std::size_t threads, bool dynamic, const graph::Graph& g,
                 std::uint32_t trials) {
  par::ThreadPool pool(threads);
  par::MonteCarloOptions opts;
  opts.base_seed = 0xA3;
  opts.trials = trials;
  opts.dynamic_schedule = dynamic;
  const auto start = std::chrono::steady_clock::now();
  const auto results = par::run_trials(pool, opts, [&](core::Engine& gen,
                                                       std::uint32_t) {
    return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
  });
  const auto stop = std::chrono::steady_clock::now();
  // Guard against the optimizer and against silent wrong results.
  if (results.size() != trials) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_parallel_scaling.json");
  const int trials_arg = argc > 2 ? std::atoi(argv[2]) : 384;
  if (trials_arg < 1 || trials_arg > 1000000) {
    std::cerr << "bench_parallel_scaling: trials must be in [1, 1000000], got "
              << (argc > 2 ? argv[2] : "?") << "\n";
    return 1;
  }
  const auto trials = static_cast<std::uint32_t>(trials_arg);

  bench::print_header(
      "A3  (systems)",
      "strong scaling of the Monte-Carlo driver (fixed trial budget)");

  const graph::Graph g = graph::make_grid(2, 48);

  bench::JsonReporter json("parallel_scaling");
  json.context("graph", std::string("grid2d_48"));
  json.context("vertices", static_cast<double>(g.num_vertices()));
  json.context("trials", static_cast<double>(trials));

  // Warm-up run so first-touch page faults don't pollute the 1-thread row.
  (void)timed_run(2, true, g, trials / 6 + 1);

  const double serial_dynamic = timed_run(1, true, g, trials);
  io::Table table({"threads", "dynamic (s)", "speedup", "efficiency",
                   "static (s)", "static speedup"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double dyn = timed_run(threads, true, g, trials);
    const double sta = timed_run(threads, false, g, trials);
    table.add_row(
        {io::Table::fmt_int(static_cast<long long>(threads)),
         io::Table::fmt(dyn, 3),
         io::Table::fmt(serial_dynamic / dyn, 2) + "x",
         io::Table::fmt(serial_dynamic / dyn / threads * 100.0, 0) + "%",
         io::Table::fmt(sta, 3),
         io::Table::fmt(serial_dynamic / sta, 2) + "x"});
    json.record("threads" + std::to_string(threads))
        .field("threads", static_cast<double>(threads))
        .field("dynamic_seconds", dyn)
        .field("dynamic_speedup", serial_dynamic / dyn)
        .field("dynamic_efficiency", serial_dynamic / dyn / threads)
        .field("static_seconds", sta)
        .field("static_speedup", serial_dynamic / sta);
  }
  std::cout << table << "\n";
  const bool wrote = json.write(out_path);
  std::cout
      << "reading: near-linear speedup for the dynamic schedule through the\n"
         "physical core count; the static schedule trails when trial\n"
         "durations are heavy-tailed (cover times are), which is why the\n"
         "experiment suite defaults to dynamic scheduling.\n";
  return wrote ? 0 : 1;
}
