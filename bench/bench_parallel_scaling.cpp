/// A3 — strong scaling of the Monte-Carlo driver: wall-clock speedup of a
/// fixed trial budget as the thread count grows. Trials are embarrassingly
/// parallel with heavy-tailed durations, so the dynamic schedule should
/// scale near-linearly until memory bandwidth saturates; the static
/// schedule shows the straggler penalty the dynamic one avoids.

#include <chrono>

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace cobra;

double timed_run(std::size_t threads, bool dynamic, const graph::Graph& g,
                 std::uint32_t trials) {
  par::ThreadPool pool(threads);
  par::MonteCarloOptions opts;
  opts.base_seed = 0xA3;
  opts.trials = trials;
  opts.dynamic_schedule = dynamic;
  const auto start = std::chrono::steady_clock::now();
  const auto results = par::run_trials(pool, opts, [&](core::Engine& gen,
                                                       std::uint32_t) {
    return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
  });
  const auto stop = std::chrono::steady_clock::now();
  // Guard against the optimizer and against silent wrong results.
  if (results.size() != trials) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main() {
  bench::print_header(
      "A3  (systems)",
      "strong scaling of the Monte-Carlo driver (fixed 384-trial budget)");

  core::Engine graph_gen(0xA3);
  const graph::Graph g = graph::make_grid(2, 48);
  constexpr std::uint32_t kTrials = 384;

  // Warm-up run so first-touch page faults don't pollute the 1-thread row.
  (void)timed_run(2, true, g, 64);

  const double serial_dynamic = timed_run(1, true, g, kTrials);
  io::Table table({"threads", "dynamic (s)", "speedup", "efficiency",
                   "static (s)", "static speedup"});
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 16u, 24u}) {
    const double dyn = timed_run(threads, true, g, kTrials);
    const double sta = timed_run(threads, false, g, kTrials);
    table.add_row(
        {io::Table::fmt_int(static_cast<long long>(threads)),
         io::Table::fmt(dyn, 3),
         io::Table::fmt(serial_dynamic / dyn, 2) + "x",
         io::Table::fmt(serial_dynamic / dyn / threads * 100.0, 0) + "%",
         io::Table::fmt(sta, 3),
         io::Table::fmt(serial_dynamic / sta, 2) + "x"});
  }
  std::cout << table << "\n";
  std::cout
      << "reading: near-linear speedup for the dynamic schedule through the\n"
         "physical core count; the static schedule trails when trial\n"
         "durations are heavy-tailed (cover times are), which is why the\n"
         "experiment suite defaults to dynamic scheduling.\n";
  return 0;
}
