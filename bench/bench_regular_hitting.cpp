/// E4 — Theorem 15: on delta-regular graphs the 2-cobra hitting time is
/// O(n^{2 - 1/delta}).
///
/// Table: per delta in {2, 3, 4}, sweep n and measure the worst-pair mean
/// hitting time (for the cycle the antipodal pair is exactly the worst
/// pair; for random regular graphs we take the BFS-farthest pair). Fit
/// H = a * n^c; Theorem 15 predicts c <= 2 - 1/delta, i.e. 1.5, 1.67, 1.75.
/// The random walk baseline on the cycle shows the ~n^2 it improves on.

#include <cmath>

#include "bench_common.hpp"

#include "core/hitting_time.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

/// BFS-farthest pair from vertex 0 — a worst-case-ish hitting pair.
std::pair<graph::Vertex, graph::Vertex> far_pair(const graph::Graph& g) {
  const auto d0 = graph::bfs_distances(g, 0);
  graph::Vertex a = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (d0[v] != graph::kUnreachable && d0[v] > d0[a]) a = v;
  }
  const auto da = graph::bfs_distances(g, a);
  graph::Vertex b = a;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (da[v] != graph::kUnreachable && da[v] > da[b]) b = v;
  }
  return {a, b};
}

void sweep_cycle(const std::vector<std::uint32_t>& sizes, std::uint32_t trials) {
  io::Table table({"n", "cobra H(0, n/2)", "H / n^1.5", "rw H(0, n/2)",
                   "rw H / n^2"});
  std::vector<double> ns, cobra_means, rw_means;
  for (const std::uint32_t n : sizes) {
    const graph::Graph g = graph::make_cycle(n);
    const auto cobra =
        bench::measure(trials, 0xE4100 + n, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_hit(g, 0, n / 2, 2, gen).steps);
        });
    const auto rw = bench::measure(trials, 0xE4200 + n, [&](core::Engine& gen) {
      return static_cast<double>(core::random_walk_hit(g, 0, n / 2, gen).steps);
    });
    const double nd = n;
    table.add_row({io::Table::fmt_int(n), bench::mean_ci(cobra),
                   io::Table::fmt(cobra.mean / std::pow(nd, 1.5), 4),
                   bench::mean_ci(rw), io::Table::fmt(rw.mean / (nd * nd), 4)});
    ns.push_back(nd);
    cobra_means.push_back(cobra.mean);
    rw_means.push_back(rw.mean);
  }
  std::cout << "cycle (delta = 2): antipodal hitting time\n" << table;
  bench::print_fit("  cobra", stats::fit_power_law(ns, cobra_means),
                   "Theorem 15 predicts exponent <= 1.5");
  bench::print_fit("  random walk", stats::fit_power_law(ns, rw_means),
                   "classical exponent 2");
  std::cout << "\n";
}

void sweep_regular(std::uint32_t delta, const std::vector<std::uint32_t>& sizes,
                   std::uint32_t trials) {
  io::Table table({"n", "far pair dist", "cobra H(far pair)",
                   "H / n^(2-1/delta)"});
  std::vector<double> ns, means;
  core::Engine graph_gen(0xE43 + delta);
  const double target_exp = 2.0 - 1.0 / delta;
  for (const std::uint32_t n : sizes) {
    const graph::Graph g = graph::make_random_regular(graph_gen, n, delta);
    const auto [a, b] = far_pair(g);
    const auto dist = graph::bfs_distances(g, a);
    const auto hit =
        bench::measure(trials, 0xE4400 + n + delta, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_hit(g, a, b, 2, gen).steps);
        });
    table.add_row({io::Table::fmt_int(n), io::Table::fmt_int(dist[b]),
                   bench::mean_ci(hit),
                   io::Table::fmt(hit.mean / std::pow(n, target_exp), 4)});
    ns.push_back(n);
    means.push_back(hit.mean);
  }
  std::cout << "random " << delta << "-regular: farthest-pair hitting time\n"
            << table;
  bench::print_fit(
      "  cobra", stats::fit_power_law(ns, means),
      "Theorem 15 predicts exponent <= " + io::Table::fmt(target_exp, 2));
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_header("E4  (Theorem 15)",
                      "2-cobra hitting time on delta-regular graphs is "
                      "O(n^{2-1/delta})");

  sweep_cycle({32, 64, 128, 256, 512}, 60);
  sweep_regular(3, {64, 128, 256, 512}, 40);
  sweep_regular(4, {64, 128, 256, 512}, 40);

  std::cout
      << "reading: the cycle exponent sits at/below 1.5 while the random\n"
         "walk shows the quadratic it beats; on sparse random regular graphs\n"
         "hitting is polylogarithmic (expanders), far inside the bound -\n"
         "the theorem's extremal regime is the cycle.\n";
  return 0;
}
