/// E4 — Theorem 15: on delta-regular graphs the 2-cobra hitting time is
/// O(n^{2 - 1/delta}).
///
/// Table: per delta in {2, 3, 4}, sweep n and measure the worst-pair mean
/// hitting time (for the cycle the antipodal pair is exactly the worst
/// pair; for random regular graphs we take the BFS-farthest pair). Fit
/// H = a * n^c; Theorem 15 predicts c <= 2 - 1/delta, i.e. 1.5, 1.67, 1.75.
/// The random walk baseline on the cycle shows the ~n^2 it improves on.
///
/// Usage: bench_regular_hitting [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Sweep graphs are built through the spec registry
///   ("ring:n=<N>" / "rreg:n=<N>,d=<D>"). --graph replaces the sweeps with
///   one far-pair row on that graph (no fit); --smoke shrinks the sweeps
///   and trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "core/random_walk.hpp"
#include "graph/algorithms.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

/// First-hit rounds of a fresh process through the shared sim::Runner.
double cobra_hit_rounds(const graph::Graph& g, graph::Vertex from,
                        graph::Vertex to, core::Engine& gen) {
  return sim::hit_rounds<core::CobraWalk>(gen, to, g, from, 2u);
}

double rw_hit_rounds(const graph::Graph& g, graph::Vertex from,
                     graph::Vertex to, core::Engine& gen) {
  return sim::hit_rounds<core::RandomWalk>(gen, to, g, from);
}

/// BFS-farthest pair from vertex 0 — a worst-case-ish hitting pair.
std::pair<graph::Vertex, graph::Vertex> far_pair(const graph::Graph& g) {
  const auto d0 = graph::bfs_distances(g, 0);
  graph::Vertex a = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (d0[v] != graph::kUnreachable && d0[v] > d0[a]) a = v;
  }
  const auto da = graph::bfs_distances(g, a);
  graph::Vertex b = a;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    if (da[v] != graph::kUnreachable && da[v] > da[b]) b = v;
  }
  return {a, b};
}

void sweep_cycle(const std::vector<std::uint32_t>& sizes, std::uint32_t trials,
                 bench::JsonReporter& json) {
  io::Table table({"n", "cobra H(0, n/2)", "H / n^1.5", "rw H(0, n/2)",
                   "rw H / n^2"});
  std::vector<double> ns, cobra_means, rw_means;
  for (const std::uint32_t n : sizes) {
    const graph::Graph g = gen::build_graph("ring:n=" + std::to_string(n));
    const auto cobra =
        bench::measure(trials, 0xE4100 + n, [&](core::Engine& gen) {
          return cobra_hit_rounds(g, 0, n / 2, gen);
        });
    const auto rw = bench::measure(trials, 0xE4200 + n, [&](core::Engine& gen) {
      return rw_hit_rounds(g, 0, n / 2, gen);
    });
    const double nd = n;
    table.add_row({io::Table::fmt_int(n), bench::mean_ci(cobra),
                   io::Table::fmt(cobra.mean / std::pow(nd, 1.5), 4),
                   bench::mean_ci(rw), io::Table::fmt(rw.mean / (nd * nd), 4)});
    json.record("cycle/n" + std::to_string(n))
        .field("delta", 2.0)
        .field("n", nd)
        .field("cobra_hit_mean", cobra.mean)
        .field("cobra_hit_ci95", cobra.ci95_half)
        .field("rw_hit_mean", rw.mean);
    ns.push_back(nd);
    cobra_means.push_back(cobra.mean);
    rw_means.push_back(rw.mean);
  }
  std::cout << "cycle (delta = 2): antipodal hitting time\n" << table;
  const auto cobra_fit = stats::fit_power_law(ns, cobra_means);
  bench::print_fit("  cobra", cobra_fit, "Theorem 15 predicts exponent <= 1.5");
  bench::print_fit("  random walk", stats::fit_power_law(ns, rw_means),
                   "classical exponent 2");
  json.record("cycle/fit").field("delta", 2.0).field("exponent",
                                                     cobra_fit.exponent);
  std::cout << "\n";
}

void sweep_regular(std::uint32_t delta, const std::vector<std::uint32_t>& sizes,
                   std::uint32_t trials, bench::JsonReporter& json) {
  io::Table table({"n", "far pair dist", "cobra H(far pair)",
                   "H / n^(2-1/delta)"});
  std::vector<double> ns, means;
  const double target_exp = 2.0 - 1.0 / delta;
  for (const std::uint32_t n : sizes) {
    const graph::Graph g = gen::build_graph(
        "rreg:n=" + std::to_string(n) + ",d=" + std::to_string(delta) +
        ",seed=" + std::to_string(0xE43 + delta + n));
    const auto [a, b] = far_pair(g);
    const auto dist = graph::bfs_distances(g, a);
    const auto hit = bench::measure(
        trials, 0xE4400 + n + delta,
        [&, a = a, b = b](core::Engine& gen) {
          return cobra_hit_rounds(g, a, b, gen);
        });
    table.add_row({io::Table::fmt_int(n), io::Table::fmt_int(dist[b]),
                   bench::mean_ci(hit),
                   io::Table::fmt(hit.mean / std::pow(n, target_exp), 4)});
    json.record("rreg_d" + std::to_string(delta) + "/n" + std::to_string(n))
        .field("delta", static_cast<double>(delta))
        .field("n", static_cast<double>(n))
        .field("far_pair_dist", static_cast<double>(dist[b]))
        .field("cobra_hit_mean", hit.mean)
        .field("cobra_hit_ci95", hit.ci95_half);
    ns.push_back(n);
    means.push_back(hit.mean);
  }
  std::cout << "random " << delta << "-regular: farthest-pair hitting time\n"
            << table;
  const auto fit = stats::fit_power_law(ns, means);
  bench::print_fit(
      "  cobra", fit,
      "Theorem 15 predicts exponent <= " + io::Table::fmt(target_exp, 2));
  json.record("rreg_d" + std::to_string(delta) + "/fit")
      .field("delta", static_cast<double>(delta))
      .field("exponent", fit.exponent);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args = bench::parse_bench_args(argc, argv, {"trials"});
  const bool smoke = args.get_bool("smoke", false);
  const auto trials =
      static_cast<std::uint32_t>(bench::uint_flag(args, "trials", smoke ? 5 : 0));

  bench::print_header("E4  (Theorem 15)",
                      "2-cobra hitting time on delta-regular graphs is "
                      "O(n^{2-1/delta})");

  bench::JsonReporter json("regular_hitting");
  if (smoke) json.context("smoke", 1.0);

  if (args.has("graph")) {
    // Single-graph mode: one far-pair hitting row on the named graph.
    const std::string spec = io::graph_spec_from_args(args, "");
    const graph::Graph g = bench::bench_graph(args, spec);
    const auto [a, b] = far_pair(g);
    const auto dist = graph::bfs_distances(g, a);
    const auto hit = bench::measure(trials > 0 ? trials : 40, 0xE4500,
                                    [&, a = a, b = b](core::Engine& gen) {
                                      return cobra_hit_rounds(g, a, b, gen);
                                    });
    io::Table table({"n", "far pair dist", "cobra H(far pair)"});
    table.add_row({io::Table::fmt_int(g.num_vertices()),
                   io::Table::fmt_int(dist[b]), bench::mean_ci(hit)});
    json.record(spec)
        .field("n", static_cast<double>(g.num_vertices()))
        .field("far_pair_dist", static_cast<double>(dist[b]))
        .field("cobra_hit_mean", hit.mean);
    std::cout << "graph: " << spec << "\n" << table << "\n";
  } else if (smoke) {
    sweep_cycle({32, 64, 128}, trials, json);
    sweep_regular(3, {64, 128}, trials, json);
    sweep_regular(4, {64, 128}, trials, json);
  } else {
    sweep_cycle({32, 64, 128, 256, 512}, trials > 0 ? trials : 60, json);
    sweep_regular(3, {64, 128, 256, 512}, trials > 0 ? trials : 40, json);
    sweep_regular(4, {64, 128, 256, 512}, trials > 0 ? trials : 40, json);
  }

  std::cout
      << "reading: the cycle exponent sits at/below 1.5 while the random\n"
         "walk shows the quadratic it beats; on sparse random regular graphs\n"
         "hitting is polylogarithmic (expanders), far inside the bound -\n"
         "the theorem's extremal regime is the cycle.\n";
  if (args.has("out")) return json.write(args.get("out", "")) ? 0 : 1;
  return 0;
}
