/// A2 — systems micro-benchmark (google-benchmark): raw simulation
/// throughput of the hot loops. Reported counters:
///   * rounds/s        — process steps per second
///   * samples/s       — neighbor draws per second (the cobra work unit)
///
/// This is the HPC-facing table: it certifies that the simulator, not the
/// statistics, is the bottleneck-free substrate the experiment suite
/// assumes (hundreds of millions of neighbor samples per second per core).

#include <benchmark/benchmark.h>

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "core/gossip.hpp"
#include "core/random_walk.hpp"
#include "core/walt.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

graph::Graph shared_grid() { return graph::make_grid(2, 64); }

graph::Graph shared_regular() {
  core::Engine gen(0xA2);
  return graph::make_random_regular(gen, 4096, 8);
}

void BM_CobraStep_Grid(benchmark::State& state) {
  const graph::Graph g = shared_grid();
  core::Engine gen(1);
  core::CobraWalk walk(g, 0, static_cast<std::uint32_t>(state.range(0)));
  // Warm the active set to its typical size.
  for (int t = 0; t < 200; ++t) walk.step(gen);
  std::uint64_t samples = walk.samples_drawn();
  for (auto _ : state) {
    walk.step(gen);
    benchmark::DoNotOptimize(walk.active().data());
  }
  samples = walk.samples_drawn() - samples;
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
  state.counters["active"] = static_cast<double>(walk.active().size());
}
BENCHMARK(BM_CobraStep_Grid)->Arg(2)->Arg(4)->Arg(8);

void BM_CobraStep_Regular(benchmark::State& state) {
  const graph::Graph g = shared_regular();
  core::Engine gen(2);
  core::CobraWalk walk(g, 0, static_cast<std::uint32_t>(state.range(0)));
  for (int t = 0; t < 60; ++t) walk.step(gen);
  std::uint64_t samples = walk.samples_drawn();
  for (auto _ : state) {
    walk.step(gen);
    benchmark::DoNotOptimize(walk.active().data());
  }
  samples = walk.samples_drawn() - samples;
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(samples), benchmark::Counter::kIsRate);
  state.counters["active"] = static_cast<double>(walk.active().size());
}
BENCHMARK(BM_CobraStep_Regular)->Arg(2)->Arg(4);

void BM_RandomWalkStep(benchmark::State& state) {
  const graph::Graph g = shared_regular();
  core::Engine gen(3);
  core::RandomWalk walk(g, 0);
  for (auto _ : state) {
    walk.step(gen);
    benchmark::DoNotOptimize(walk.position());
  }
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RandomWalkStep);

void BM_WaltStep(benchmark::State& state) {
  const graph::Graph g = shared_regular();
  core::Engine gen(4);
  core::Walt walt(g, 0, static_cast<std::uint32_t>(state.range(0)),
                  /*lazy=*/false);
  for (int t = 0; t < 50; ++t) walt.step(gen);
  for (auto _ : state) {
    walt.step(gen);
    benchmark::DoNotOptimize(walt.active().data());
  }
  state.counters["pebble_moves/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * state.range(0),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WaltStep)->Arg(64)->Arg(1024);

void BM_GossipRound(benchmark::State& state) {
  const graph::Graph g = shared_regular();
  core::Engine gen(5);
  core::Gossip gossip(g, 0);
  for (int t = 0; t < 8; ++t) gossip.step(gen);  // mid-spread regime
  for (auto _ : state) {
    gossip.step(gen);
    benchmark::DoNotOptimize(gossip.informed_count());
    if (gossip.complete()) {
      state.PauseTiming();
      gossip.reset(0);
      for (int t = 0; t < 8; ++t) gossip.step(gen);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_GossipRound);

void BM_FullCobraCover_Grid(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const graph::Graph g = graph::make_grid(2, side);
  core::Engine gen(6);
  for (auto _ : state) {
    const auto result = core::cobra_cover(g, 0, 2, gen);
    benchmark::DoNotOptimize(result.steps);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_FullCobraCover_Grid)->Arg(16)->Arg(32)->Arg(64);

void BM_GraphConstruction_Regular(benchmark::State& state) {
  core::Engine gen(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const graph::Graph g = graph::make_random_regular(gen, n, 6);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphConstruction_Regular)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
