/// A2 — systems micro-benchmark: raw per-round throughput of the frontier
/// step engine, serial path vs pool-parallel path, on the fixed graph
/// suite (ring, 2D torus, random 4-regular, G(n,p)). Reported counters:
///   * steps/s    — frontier rounds per second
///   * samples/s  — neighbor draws per second (the cobra work unit)
///   * dense/sw   — timed rounds that ran the bitmap representation, and
///                  sparse<->dense switches (the Beamer-style altitude
///                  change this bench exists to measure)
///
/// Because the engine is bit-deterministic across thread counts AND
/// representations, every configuration of one graph executes the
/// IDENTICAL sequence of rounds — the speedup column is a pure
/// execution-time ratio, not a statistical estimate. Results go to
/// BENCH_step_throughput.json (the perf trajectory's anchor file; see
/// EXPERIMENTS.md A2 for commentary).
///
/// Usage: bench_step_throughput [--out path] [--nexp E] [--graph <spec>
///        [--warm W]] [--smoke] [--expect-dense]
///   Default: the 4-graph suite at n = 2^nexp (nexp = 20), JSON to
///   BENCH_step_throughput.json. --graph replaces the suite with one
///   registry-built graph; --smoke shrinks to n = 2^14 and 5 timed rounds
///   (the CI bit-rot guard). --expect-dense exits 1 unless the timed
///   rounds actually took the dense path — the perf-smoke ctest lane uses
///   it to assert the Θ(n)-frontier representation is exercised, without
///   asserting anything about timing.

#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "core/frontier_engine.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace cobra;

struct SuiteGraph {
  std::string name;
  std::string spec;
  graph::Graph g;
  // Warm rounds before timing. Expanders reach their Θ(n) frontier fixed
  // point in O(log n) rounds; the torus frontier is a locality-bound ball
  // boundary that needs ~150 rounds to reach its ~10^4-vertex scale. All
  // configurations use the engine's default thresholds: the parallel
  // threshold is a work estimate (frontier * branching), which keeps the
  // torus rows decisively on the pool path without the per-graph
  // threshold override earlier revisions needed. The ring's ~24-vertex
  // frontier stays serial and sparse under any sane setting — its pool
  // rows are labelled by the engine's round counters in the JSON instead.
  int warm;
};

/// The fixed suite, every graph built through the spec registry — the same
/// path `--graph` uses.
std::vector<SuiteGraph> make_suite(std::uint32_t n) {
  const std::string ns = std::to_string(n);

  std::vector<SuiteGraph> suite;
  auto add = [&](std::string name, std::string spec, int warm) {
    graph::Graph g = gen::build_graph(spec);
    suite.push_back({std::move(name), std::move(spec), std::move(g), warm});
  };
  add("ring", "ring:n=" + ns, 40);
  // The registry's n sugar picks the largest side with side^2 <= n.
  add("grid2d_torus", "torus:n=" + ns + ",dims=2", 150);
  add("random_4_regular", "rreg:n=" + ns + ",d=4,seed=162", 40);
  // G(n, p) at average degree 16: above the connectivity threshold, but the
  // walk needs min degree >= 1, so keep the largest component (lcc).
  add("gnp_avg16", "gnp:n=" + ns + ",avg_deg=16,seed=162,lcc=1", 40);
  return suite;
}

struct Measurement {
  double seconds = 0.0;
  std::uint64_t samples = 0;
  double mean_frontier = 0.0;
  std::uint64_t parallel_rounds = 0;  // timed rounds that took the pool path
  std::uint64_t dense_rounds = 0;     // timed rounds on the bitmap path
  std::uint64_t switches = 0;         // representation changes while timed
};

/// Warm the walk `warm` rounds, then time `timed` rounds. Identical seeds
/// per call ⇒ identical work in every configuration.
Measurement run_config(const graph::Graph& g, core::FrontierOptions opts,
                       int warm, int timed) {
  core::CobraWalk walk(g, 0, 2);
  walk.engine().options() = opts;  // step() re-asserts the walk's k hint
  core::Engine gen(1);
  for (int t = 0; t < warm; ++t) walk.step(gen);
  const std::uint64_t samples_before = walk.samples_drawn();
  const std::uint64_t par_before = walk.engine().parallel_rounds();
  const std::uint64_t dense_before = walk.engine().dense_rounds();
  const std::uint64_t switch_before = walk.engine().switches();
  double frontier_sum = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < timed; ++t) {
    walk.step(gen);
    // O(1) count — no materialization of the bitmap inside the timed loop.
    frontier_sum += static_cast<double>(walk.frontier().size());
  }
  const auto stop = std::chrono::steady_clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.samples = walk.samples_drawn() - samples_before;
  m.mean_frontier = frontier_sum / timed;
  m.parallel_rounds = walk.engine().parallel_rounds() - par_before;
  m.dense_rounds = walk.engine().dense_rounds() - dense_before;
  m.switches = walk.engine().switches() - switch_before;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args = bench::parse_bench_args(
      argc, argv, {"nexp", "warm", "expect-dense", "dense-guard"});
  const bool smoke = args.get_bool("smoke", false);
  const bool expect_dense = args.get_bool("expect-dense", false);
  double dense_guard = 0.0;
  try {
    dense_guard = args.get_double("dense-guard", 0.0);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  const std::string out_path =
      args.get("out", "BENCH_step_throughput.json");
  const auto n_exp = bench::uint_flag(args, "nexp", smoke ? 14 : 20);
  if (n_exp < 4 || n_exp > 26) {
    std::cerr << "bench_step_throughput: --nexp must be in [4, 26]\n";
    return 1;
  }
  const auto n = static_cast<std::uint32_t>(1u << n_exp);
  const int timed = smoke ? 5 : 15;

  bench::print_header(
      "A2  (systems)",
      "frontier step throughput: serial path vs FrontierEngine pool path");

  const core::FrontierOptions defaults;
  bench::JsonReporter json("step_throughput");
  json.context("branching", 2.0);
  json.context("timed_rounds", static_cast<double>(timed));
  json.context("dense_alpha", defaults.dense_alpha);
  if (smoke) json.context("smoke", 1.0);

  std::vector<SuiteGraph> suite;
  if (args.has("graph")) {
    // Single-graph mode: bench exactly the spec the caller named (--nexp
    // is a suite-mode knob and plays no part here; the context records
    // the spec and the realized vertex count instead).
    const std::string spec = io::graph_spec_from_args(args, "");
    suite.push_back({spec, spec, bench::bench_graph(args, spec),
                     static_cast<int>(bench::uint_flag(args, "warm", 40))});
    json.context("graph", spec);
    json.context("n", static_cast<double>(suite.front().g.num_vertices()));
  } else {
    json.context("n", static_cast<double>(n));
    suite = make_suite(n);
  }

  std::uint64_t pool_dense_rounds = 0;  // for --expect-dense
  for (const auto& [name, spec, g, warm] : suite) {
    io::Table table({"config", "steps/s", "Msamples/s", "mean frontier",
                     "par rounds", "dense", "switch", "speedup vs serial"});

    // Serial baseline: threshold = infinity forces the in-line path.
    core::FrontierOptions serial_opts;
    serial_opts.parallel_threshold = static_cast<std::size_t>(-1);
    const Measurement serial = run_config(g, serial_opts, warm, timed);

    auto report = [&](const std::string& config, std::size_t threads,
                      const Measurement& m) {
      const double steps_per_sec = timed / m.seconds;
      const double speedup = serial.seconds / m.seconds;
      table.add_row({config, io::Table::fmt(steps_per_sec, 1),
                     io::Table::fmt(static_cast<double>(m.samples) / m.seconds / 1e6, 1),
                     io::Table::fmt(m.mean_frontier, 0),
                     io::Table::fmt_int(static_cast<long long>(m.parallel_rounds)),
                     io::Table::fmt_int(static_cast<long long>(m.dense_rounds)),
                     io::Table::fmt_int(static_cast<long long>(m.switches)),
                     io::Table::fmt(speedup, 2) + "x"});
      json.record(name + "/" + config)
          .field("graph", name)
          .field("spec", spec)
          .field("vertices", static_cast<double>(g.num_vertices()))
          .field("arcs", static_cast<double>(g.num_arcs()))
          .field("threads", static_cast<double>(threads))
          .field("warm_rounds", static_cast<double>(warm))
          .field("seconds", m.seconds)
          .field("steps_per_sec", steps_per_sec)
          .field("samples_per_sec", static_cast<double>(m.samples) / m.seconds)
          .field("mean_frontier", m.mean_frontier)
          .field("parallel_rounds", static_cast<double>(m.parallel_rounds))
          .field("dense_rounds", static_cast<double>(m.dense_rounds))
          .field("switches", static_cast<double>(m.switches))
          .field("speedup_vs_serial", speedup);
    };

    report("serial", 0, serial);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      par::ThreadPool pool(threads);
      core::FrontierOptions opts;
      opts.pool = &pool;
      const Measurement m = run_config(g, opts, warm, timed);
      pool_dense_rounds += m.dense_rounds;
      report("pool" + std::to_string(threads), threads, m);
    }

    std::cout << "graph: " << name << "  (spec: " << spec
              << ", n = " << g.num_vertices() << ", arcs = " << g.num_arcs()
              << ")\n"
              << table << "\n";
  }

  bool guard_failed = false;
  if (dense_guard > 0.0) {
    // Dense fixed-cost guard (perf-smoke): the same graph on a 4-worker
    // pool with the parallel dense ops (bitmap clear / materialization) on
    // vs off. Determinism makes both configs execute identical rounds, so
    // the ratio is pure wall clock; the generous floor catches a
    // catastrophic regression of the parallelized fixed costs without
    // asserting machine-dependent speedups.
    const int guard_timed = 30;
    for (const auto& [name, spec, g, warm] : suite) {
      par::ThreadPool pool(4);
      core::FrontierOptions on_opts, off_opts;
      on_opts.pool = &pool;
      off_opts.pool = &pool;
      off_opts.parallel_dense_ops = false;
      const Measurement off = run_config(g, off_opts, warm, guard_timed);
      const Measurement on = run_config(g, on_opts, warm, guard_timed);
      const double ratio = off.seconds / on.seconds;
      json.record(name + "/dense_guard")
          .field("graph", name)
          .field("dense_rounds", static_cast<double>(on.dense_rounds))
          .field("seconds_parallel_ops", on.seconds)
          .field("seconds_serial_ops", off.seconds)
          .field("throughput_ratio", ratio)
          .field("floor", dense_guard);
      std::cout << "dense guard [" << name << "]: parallel-ops/serial-ops "
                << "throughput ratio " << io::Table::fmt(ratio, 2) << " (floor "
                << io::Table::fmt(dense_guard, 2) << ", dense rounds "
                << on.dense_rounds << ")\n";
      if (on.dense_rounds == 0) {
        std::cerr << "bench_step_throughput: --dense-guard, but no timed "
                     "round took the dense path on "
                  << name << "\n";
        guard_failed = true;
      } else if (ratio < dense_guard) {
        std::cerr << "bench_step_throughput: dense-round throughput "
                     "regressed: ratio "
                  << ratio << " < floor " << dense_guard << " on " << name
                  << "\n";
        guard_failed = true;
      }
    }
  }

  const bool wrote = json.write(out_path);
  std::cout << "reading: the serial and pool rows execute bit-identical\n"
               "rounds, so speedup is pure wall-clock ratio. Expect ~1x on\n"
               "single-core hosts and near-linear gains up to the physical\n"
               "core count on the large expander-like graphs. 'par rounds'\n"
               "counts the timed rounds that took the pool path; 'dense'\n"
               "counts those on the bitmap representation (the Θ(n)\n"
               "regime); 'switch' counts sparse<->dense transitions.\n";
  if (expect_dense && pool_dense_rounds == 0) {
    std::cerr << "bench_step_throughput: --expect-dense, but no timed pool "
                 "round took the dense path\n";
    return 1;
  }
  if (guard_failed) return 1;
  return wrote ? 0 : 1;
}
