/// A2 — systems micro-benchmark: raw per-round throughput of the frontier
/// step engine, serial path vs pool-parallel path, on the fixed graph
/// suite (ring, 2D grid, random 4-regular, G(n,p)). Reported counters:
///   * steps/s    — frontier rounds per second
///   * samples/s  — neighbor draws per second (the cobra work unit)
///
/// Because the engine is bit-deterministic across thread counts, every
/// configuration of one graph executes the IDENTICAL sequence of rounds —
/// the speedup column is a pure execution-time ratio, not a statistical
/// estimate. Results go to BENCH_step_throughput.json (the perf
/// trajectory's anchor file; see EXPERIMENTS.md A2 for commentary).
///
/// Usage: bench_step_throughput [out.json] [n_exponent]
///   default n = 2^20 vertices per graph, JSON to BENCH_step_throughput.json.

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "core/cobra_walk.hpp"
#include "core/frontier_engine.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace cobra;

struct SuiteGraph {
  std::string name;
  graph::Graph g;
  // Warm rounds before timing, and the parallel threshold for the pool
  // rows. Expanders reach their Θ(n) frontier fixed point in O(log n)
  // rounds and use the engine default. The torus frontier is a locality-
  // bound ball boundary that grows only linearly per round (~2k vertices
  // after 150 rounds), so with the default threshold its pool rows would
  // silently measure the serial path while reporting thread counts; a
  // lower threshold makes them genuinely exercise the pool at the
  // frontier scale the topology produces. The ring's ~24-vertex frontier
  // stays serial under any sane threshold — its pool rows are labelled by
  // the engine's parallel_rounds counter in the JSON instead.
  int warm;
  std::size_t parallel_threshold;
};

std::vector<SuiteGraph> make_suite(std::uint32_t n) {
  core::Engine gen(0xA2);
  const core::FrontierOptions defaults;
  std::vector<SuiteGraph> suite;
  suite.push_back({"ring", graph::make_cycle(n), 40, defaults.parallel_threshold});
  // 2D torus with side^2 ~= n keeps the suite size-comparable and regular.
  std::uint32_t side = 1;
  while (static_cast<std::uint64_t>(side + 1) * (side + 1) <= n) ++side;
  suite.push_back(
      {"grid2d_torus", graph::make_grid(2, side, /*torus=*/true), 150, 1024});
  suite.push_back({"random_4_regular", graph::make_random_regular(gen, n, 4),
                   40, defaults.parallel_threshold});
  // G(n, p) at average degree 16: above the connectivity threshold, but the
  // walk needs min degree >= 1, so take the largest component.
  const double p = 16.0 / static_cast<double>(n);
  const graph::Graph gnp = graph::make_erdos_renyi(gen, n, p);
  suite.push_back({"gnp_avg16", graph::largest_component(gnp).graph, 40,
                   defaults.parallel_threshold});
  return suite;
}

struct Measurement {
  double seconds = 0.0;
  std::uint64_t samples = 0;
  double mean_frontier = 0.0;
  std::uint64_t parallel_rounds = 0;  // timed rounds that took the pool path
};

/// Warm the walk `warm` rounds, then time `timed` rounds. Identical seeds
/// per call ⇒ identical work in every configuration.
Measurement run_config(const graph::Graph& g, core::FrontierOptions opts,
                       int warm, int timed) {
  core::CobraWalk walk(g, 0, 2);
  walk.engine().options() = opts;
  core::Engine gen(1);
  for (int t = 0; t < warm; ++t) walk.step(gen);
  const std::uint64_t samples_before = walk.samples_drawn();
  const std::uint64_t par_before = walk.engine().parallel_rounds();
  double frontier_sum = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < timed; ++t) {
    walk.step(gen);
    frontier_sum += static_cast<double>(walk.active().size());
  }
  const auto stop = std::chrono::steady_clock::now();
  Measurement m;
  m.seconds = std::chrono::duration<double>(stop - start).count();
  m.samples = walk.samples_drawn() - samples_before;
  m.mean_frontier = frontier_sum / timed;
  m.parallel_rounds = walk.engine().parallel_rounds() - par_before;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_step_throughput.json");
  const int n_exp = argc > 2 ? std::atoi(argv[2]) : 20;
  if (n_exp < 4 || n_exp > 26) {
    std::cerr << "bench_step_throughput: n_exponent must be in [4, 26], got "
              << (argc > 2 ? argv[2] : "?") << "\n";
    return 1;
  }
  const auto n = static_cast<std::uint32_t>(1u << n_exp);
  constexpr int kTimed = 15;

  bench::print_header(
      "A2  (systems)",
      "frontier step throughput: serial path vs FrontierEngine pool path");

  bench::JsonReporter json("step_throughput");
  json.context("n", static_cast<double>(n));
  json.context("branching", 2.0);
  json.context("timed_rounds", static_cast<double>(kTimed));

  const auto suite = make_suite(n);
  for (const auto& [name, g, warm, threshold] : suite) {
    io::Table table({"config", "steps/s", "Msamples/s", "mean frontier",
                     "par rounds", "speedup vs serial"});

    // Serial baseline: threshold = infinity forces the in-line path.
    core::FrontierOptions serial_opts;
    serial_opts.parallel_threshold = static_cast<std::size_t>(-1);
    const Measurement serial = run_config(g, serial_opts, warm, kTimed);

    auto report = [&](const std::string& config, std::size_t threads,
                      const Measurement& m) {
      const double steps_per_sec = kTimed / m.seconds;
      const double speedup = serial.seconds / m.seconds;
      table.add_row({config, io::Table::fmt(steps_per_sec, 1),
                     io::Table::fmt(static_cast<double>(m.samples) / m.seconds / 1e6, 1),
                     io::Table::fmt(m.mean_frontier, 0),
                     io::Table::fmt_int(static_cast<long long>(m.parallel_rounds)),
                     io::Table::fmt(speedup, 2) + "x"});
      json.record(name + "/" + config)
          .field("graph", name)
          .field("vertices", static_cast<double>(g.num_vertices()))
          .field("arcs", static_cast<double>(g.num_arcs()))
          .field("threads", static_cast<double>(threads))
          .field("warm_rounds", static_cast<double>(warm))
          .field("seconds", m.seconds)
          .field("steps_per_sec", steps_per_sec)
          .field("samples_per_sec", static_cast<double>(m.samples) / m.seconds)
          .field("mean_frontier", m.mean_frontier)
          .field("parallel_rounds", static_cast<double>(m.parallel_rounds))
          .field("speedup_vs_serial", speedup);
    };

    report("serial", 0, serial);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      par::ThreadPool pool(threads);
      core::FrontierOptions opts;
      opts.pool = &pool;
      opts.parallel_threshold = threshold;
      report("pool" + std::to_string(threads), threads,
             run_config(g, opts, warm, kTimed));
    }

    std::cout << "graph: " << name << "  (n = " << g.num_vertices()
              << ", arcs = " << g.num_arcs() << ")\n"
              << table << "\n";
  }

  const bool wrote = json.write(out_path);
  std::cout << "reading: the serial and pool rows execute bit-identical\n"
               "rounds, so speedup is pure wall-clock ratio. Expect ~1x on\n"
               "single-core hosts and near-linear gains up to the physical\n"
               "core count on the large expander-like graphs. 'par rounds'\n"
               "counts the timed rounds that actually took the pool path —\n"
               "the ring's frontier never leaves the serial path, so its\n"
               "pool rows differ from serial only by noise.\n";
  return wrote ? 0 : 1;
}
