/// E9 — §3 remark and §6: 2-cobra cover on k-ary trees is proportional to
/// the diameter for k = 2, 3 (proved via the Lemma 2 case analysis), the
/// paper conjectures it for all constant k; and the star graph witnesses
/// the Omega(n log n) lower bound for general graphs.
///
/// Tables: (a) per arity, sweep tree depth and report cover/diameter — the
/// ratio should stay near-constant (up to the conjectured log slack);
/// (b) star graph cover vs n ln n (coupon collecting the leaves).
///
/// Usage: bench_tree_cover [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Sweep graphs are built through the spec registry
///   ("tree:levels=<L>,arity=<K>" / "star:n=<N>"). --graph replaces the
///   sweeps with one cover row on that graph (no fit); --smoke shrinks
///   depth lists and trial count for CI.

#include <cmath>

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "graph/algorithms.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

/// Cover rounds of a fresh 2-cobra walk through the shared sim::Runner.
double cobra_cover_rounds(const graph::Graph& g, core::Engine& gen) {
  return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, 2u);
}

void sweep_arity(bench::Harness& h, std::uint32_t arity,
                 const std::vector<std::uint32_t>& levels,
                 std::uint32_t trials) {
  std::vector<bench::SuiteCase> cases;
  for (const std::uint32_t depth : levels) {
    cases.push_back({"levels " + std::to_string(depth),
                     "tree:levels=" + std::to_string(depth) +
                         ",arity=" + std::to_string(arity)});
  }
  io::Table table({"levels", "n", "diameter", "cover", "cover/diam"});
  std::vector<double> diams, covers;
  std::size_t i = 0;
  for (const auto& c : h.suite(cases)) {
    const std::uint32_t depth = levels[i++];
    const graph::Graph& g = c.graph;
    const double diameter = 2.0 * (depth - 1);
    const auto cover = bench::measure(
        trials, 0xE9000 + arity * 100 + depth,
        [&](core::Engine& gen) { return cobra_cover_rounds(g, gen); });
    table.add_row({io::Table::fmt_int(depth),
                   io::Table::fmt_int(g.num_vertices()),
                   io::Table::fmt(diameter, 0), bench::mean_ci(cover),
                   io::Table::fmt(cover.mean / diameter, 2)});
    diams.push_back(diameter);
    covers.push_back(cover.mean);
    h.json()
        .record("arity" + std::to_string(arity) + "/levels" +
                std::to_string(depth))
        .field("spec", c.spec)
        .field("arity", static_cast<double>(arity))
        .field("levels", static_cast<double>(depth))
        .field("n", static_cast<double>(g.num_vertices()))
        .field("cover_mean", cover.mean)
        .field("cover_ci95", cover.ci95_half)
        .field("cover_over_diameter", cover.mean / diameter);
  }
  std::cout << arity << "-ary trees\n" << table;
  const auto fit = stats::fit_power_law(diams, covers);
  bench::print_fit("  cover vs diameter", fit,
                   "s3 remark: proportional => exponent ~1 for k=2,3");
  h.json()
      .record("arity" + std::to_string(arity) + "/fit")
      .field("arity", static_cast<double>(arity))
      .field("exponent", fit.exponent)
      .field("exponent_stderr", fit.exponent_stderr);
  std::cout << "\n";
}

void star_sweep(bench::Harness& h, const std::vector<std::uint32_t>& sizes,
                std::uint32_t trials) {
  std::vector<bench::SuiteCase> cases;
  for (const std::uint32_t n : sizes) {
    cases.push_back({"star n=" + std::to_string(n),
                     "star:n=" + std::to_string(n)});
  }
  std::cout << "star graph: cover vs n ln n (the Omega(n log n) witness)\n";
  io::Table table({"n", "cover", "cover / (n ln n)", "coupon bound n H_n / 2"});
  std::vector<double> ns, covers;
  for (const auto& c : h.suite(cases)) {
    const graph::Graph& g = c.graph;
    const std::uint32_t n = g.num_vertices();
    const auto cover = bench::measure(
        trials, 0xE9900 + n,
        [&](core::Engine& gen) { return cobra_cover_rounds(g, gen); });
    const double ln_n = std::log(static_cast<double>(n));
    // Every other round the walk sits at the hub and samples 2 leaves:
    // coupon collector over n-1 leaves with 2 draws per 2 rounds -> the
    // cover time is ~ n ln n / 2 rounds.
    table.add_row({io::Table::fmt_int(n), bench::mean_ci(cover),
                   io::Table::fmt(cover.mean / (n * ln_n), 3),
                   io::Table::fmt(n * ln_n / 2.0, 0)});
    ns.push_back(n);
    covers.push_back(cover.mean);
    h.json()
        .record("star/n" + std::to_string(n))
        .field("spec", c.spec)
        .field("n", static_cast<double>(n))
        .field("cover_mean", cover.mean)
        .field("cover_over_n_ln_n", cover.mean / (n * ln_n));
  }
  std::cout << table;
  const auto fit = stats::fit_power_law(ns, covers);
  bench::print_fit("  star", fit, "expected ~1 with log factor (n log n total)");
  h.json().record("star/fit").field("exponent", fit.exponent);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("tree_cover",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(40, 6);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "E9  (s3 remark, s6)",
      "k-ary trees: cover ~ diameter (k = 2, 3; conjectured all k); star "
      "shows Omega(n log n)");

  if (h.has_graph()) {
    for (const auto& c : h.suite({})) {
      const graph::Graph& g = c.graph;
      const auto cover = bench::measure(trials, 0xE9000, [&](core::Engine& gen) {
        return cobra_cover_rounds(g, gen);
      });
      // Eccentricity of the start vertex: a diameter lower bound that is
      // exact on the suite's trees (rooted at the hub/root).
      const auto dist = graph::bfs_distances(g, 0);
      double ecc = 0.0;
      for (const auto d : dist) ecc = std::max(ecc, static_cast<double>(d));
      io::Table table({"n", "ecc(start)", "cover", "cover/ecc"});
      table.add_row({io::Table::fmt_int(g.num_vertices()),
                     io::Table::fmt(ecc, 0), bench::mean_ci(cover),
                     io::Table::fmt(cover.mean / std::max(ecc, 1.0), 2)});
      std::cout << "graph: " << c.spec << "\n" << table << "\n";
      h.json()
          .record(c.spec)
          .field("spec", c.spec)
          .field("n", static_cast<double>(g.num_vertices()))
          .field("eccentricity", ecc)
          .field("cover_mean", cover.mean);
    }
    return h.finish();
  }

  const bool smoke = h.smoke();
  sweep_arity(h, 2,
              smoke ? std::vector<std::uint32_t>{3, 4, 5}
                    : std::vector<std::uint32_t>{4, 6, 8, 10, 12},
              trials);
  sweep_arity(h, 3,
              smoke ? std::vector<std::uint32_t>{3, 4}
                    : std::vector<std::uint32_t>{3, 4, 5, 6, 7},
              trials);
  // Beyond the proved cases: the conjecture.
  sweep_arity(h, 4,
              smoke ? std::vector<std::uint32_t>{3, 4}
                    : std::vector<std::uint32_t>{3, 4, 5, 6},
              trials);
  star_sweep(h,
             smoke ? std::vector<std::uint32_t>{32, 64}
                   : std::vector<std::uint32_t>{64, 128, 256, 512, 1024},
             trials);

  std::cout
      << "\nreading: tree cover/diameter ratios stay in a narrow band for\n"
         "k = 2, 3 (the proved cases) and for k = 4 (the conjecture); the\n"
         "star's cover divided by n ln n is flat, pinning the Omega(n log n)\n"
         "worst-case lower bound quoted in s6.\n";
  return h.finish();
}
