/// E9 — §3 remark and §6: 2-cobra cover on k-ary trees is proportional to
/// the diameter for k = 2, 3 (proved via the Lemma 2 case analysis), the
/// paper conjectures it for all constant k; and the star graph witnesses
/// the Omega(n log n) lower bound for general graphs.
///
/// Tables: (a) per arity, sweep tree depth and report cover/diameter — the
/// ratio should stay near-constant (up to the conjectured log slack);
/// (b) star graph cover vs n ln n (coupon collecting the leaves).

#include <cmath>

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

void sweep_arity(std::uint32_t arity, const std::vector<std::uint32_t>& levels,
                 std::uint32_t trials) {
  io::Table table({"levels", "n", "diameter", "cover", "cover/diam"});
  std::vector<double> diams, covers;
  for (const std::uint32_t depth : levels) {
    const graph::Graph g = graph::make_kary_tree(arity, depth);
    const double diameter = 2.0 * (depth - 1);
    const auto cover = bench::measure(
        trials, 0xE9000 + arity * 100 + depth, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    table.add_row({io::Table::fmt_int(depth),
                   io::Table::fmt_int(g.num_vertices()),
                   io::Table::fmt(diameter, 0), bench::mean_ci(cover),
                   io::Table::fmt(cover.mean / diameter, 2)});
    diams.push_back(diameter);
    covers.push_back(cover.mean);
  }
  std::cout << arity << "-ary trees\n" << table;
  bench::print_fit("  cover vs diameter", stats::fit_power_law(diams, covers),
                   "s3 remark: proportional => exponent ~1 for k=2,3");
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "E9  (s3 remark, s6)",
      "k-ary trees: cover ~ diameter (k = 2, 3; conjectured all k); star "
      "shows Omega(n log n)");

  sweep_arity(2, {4, 6, 8, 10, 12}, 40);
  sweep_arity(3, {3, 4, 5, 6, 7}, 40);
  sweep_arity(4, {3, 4, 5, 6}, 40);  // beyond the proved cases: the conjecture

  std::cout << "star graph: cover vs n ln n (the Omega(n log n) witness)\n";
  io::Table table({"n", "cover", "cover / (n ln n)", "coupon bound n H_n / 2"});
  std::vector<double> ns, covers;
  for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const graph::Graph g = graph::make_star(n);
    const auto cover =
        bench::measure(40, 0xE9900 + n, [&](core::Engine& gen) {
          return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
        });
    const double ln_n = std::log(static_cast<double>(n));
    // Every other round the walk sits at the hub and samples 2 leaves:
    // coupon collector over n-1 leaves with 2 draws per 2 rounds -> the
    // cover time is ~ n H_n / 2 * (2 rounds / n... ) ~ n ln n / 2 rounds.
    table.add_row({io::Table::fmt_int(n), bench::mean_ci(cover),
                   io::Table::fmt(cover.mean / (n * ln_n), 3),
                   io::Table::fmt(n * ln_n / 2.0, 0)});
    ns.push_back(n);
    covers.push_back(cover.mean);
  }
  std::cout << table;
  bench::print_fit("  star", stats::fit_power_law(ns, covers),
                   "expected ~1 with log factor (n log n total)");
  std::cout
      << "\nreading: tree cover/diameter ratios stay in a narrow band for\n"
         "k = 2, 3 (the proved cases) and for k = 4 (the conjecture); the\n"
         "star's cover divided by n ln n is flat, pinning the Omega(n log n)\n"
         "worst-case lower bound quoted in s6.\n";
  return 0;
}
