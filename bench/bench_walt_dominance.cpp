/// E7 — Lemma 10: the cover time of the Walt process stochastically
/// dominates the cobra walk's when both start from the same vertex (Walt
/// with delta*n pebbles there).
///
/// Table: per graph family, compare the full distribution of cover times
/// (mean, median, q75) for the 2-cobra walk vs Walt (delta = 1/2, lazy as
/// in the paper); dominance predicts Walt >= cobra at every quantile. Also
/// reports the non-lazy Walt (the factor-2 laziness cost) and the effect
/// of the pebble budget.

#include "bench_common.hpp"

#include "core/cover_time.hpp"
#include "graph/generators.hpp"

namespace {

using namespace cobra;

void compare_on(const std::string& name, const graph::Graph& g,
                std::uint32_t trials, std::uint64_t seed) {
  const std::uint32_t pebbles = std::max(2u, g.num_vertices() / 2);
  const auto cobra = bench::measure(trials, seed, [&](core::Engine& gen) {
    return static_cast<double>(core::cobra_cover(g, 0, 2, gen).steps);
  });
  const auto walt_lazy =
      bench::measure(trials, seed + 1, [&](core::Engine& gen) {
        return static_cast<double>(
            core::walt_cover(g, 0, pebbles, true, gen).steps);
      });
  const auto walt_eager =
      bench::measure(trials, seed + 2, [&](core::Engine& gen) {
        return static_cast<double>(
            core::walt_cover(g, 0, pebbles, false, gen).steps);
      });

  io::Table table({"process", "mean", "median", "q75", "max"});
  table.set_align(0, io::Align::Left);
  auto row = [&](const std::string& label, const stats::Summary& s) {
    table.add_row({label, bench::mean_ci(s), io::Table::fmt(s.median, 1),
                   io::Table::fmt(s.q75, 1), io::Table::fmt(s.max, 0)});
  };
  row("2-cobra walk", cobra);
  row("Walt, lazy (paper's)", walt_lazy);
  row("Walt, non-lazy", walt_eager);
  std::cout << name << "  (n = " << g.num_vertices()
            << ", pebbles = " << pebbles << ")\n"
            << table;
  std::cout << "  dominance margin (lazy Walt mean / cobra mean): "
            << io::Table::fmt(walt_lazy.mean / cobra.mean, 2) << "x\n\n";
}

}  // namespace

int main() {
  bench::print_header(
      "E7  (Lemma 10)",
      "Walt's cover time stochastically dominates the 2-cobra walk's");

  core::Engine graph_gen(0xE7);
  compare_on("random 4-regular", graph::make_random_regular(graph_gen, 256, 4),
             50, 0xE7100);
  compare_on("hypercube Q_8", graph::make_hypercube(8), 50, 0xE7200);
  compare_on("torus 16x16", graph::make_grid(2, 16, true), 50, 0xE7300);
  compare_on("grid 16x16", graph::make_grid(2, 16), 50, 0xE7400);

  std::cout
      << "reading: lazy Walt sits above the cobra walk at every reported\n"
         "quantile (mean/median/q75), as Lemma 10 requires - it is the\n"
         "analyzable stand-in whose upper bounds transfer to cobra walks.\n"
         "The non-lazy variant shows the factor ~2 the laziness costs.\n";
  return 0;
}
