/// E7 — Lemma 10: the cover time of the Walt process stochastically
/// dominates the cobra walk's when both start from the same vertex (Walt
/// with delta*n pebbles there).
///
/// Table: per graph family, compare the full distribution of cover times
/// (mean, median, q75) for the 2-cobra walk vs Walt (delta = 1/2, lazy as
/// in the paper); dominance predicts Walt >= cobra at every quantile. Also
/// reports the non-lazy Walt (the factor-2 laziness cost) and the effect
/// of the pebble budget.
///
/// Usage: bench_walt_dominance [--trials T] [--graph <spec>] [--out path]
///        [--smoke]
///   Case graphs are built through the spec registry. --graph replaces
///   the case list with one comparison; --smoke shrinks graph sizes and
///   the trial count for CI.

#include "harness.hpp"

#include "core/cobra_walk.hpp"
#include "core/walt.hpp"
#include "sim/runner.hpp"

namespace {

using namespace cobra;

void compare_on(bench::Harness& h, const bench::BuiltCase& c,
                std::uint32_t trials, std::uint64_t seed) {
  const graph::Graph& g = c.graph;
  const std::uint32_t pebbles = std::max(2u, g.num_vertices() / 2);
  const auto cobra = bench::measure(trials, seed, [&](core::Engine& gen) {
    return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, 2u);
  });
  const auto walt_lazy =
      bench::measure(trials, seed + 1, [&](core::Engine& gen) {
        return sim::cover_rounds<core::Walt>(gen, g, 0u, pebbles, true);
      });
  const auto walt_eager =
      bench::measure(trials, seed + 2, [&](core::Engine& gen) {
        return sim::cover_rounds<core::Walt>(gen, g, 0u, pebbles, false);
      });

  io::Table table({"process", "mean", "median", "q75", "max"});
  table.set_align(0, io::Align::Left);
  auto row = [&](const std::string& label, const stats::Summary& s) {
    table.add_row({label, bench::mean_ci(s), io::Table::fmt(s.median, 1),
                   io::Table::fmt(s.q75, 1), io::Table::fmt(s.max, 0)});
  };
  row("2-cobra walk", cobra);
  row("Walt, lazy (paper's)", walt_lazy);
  row("Walt, non-lazy", walt_eager);
  const double margin = walt_lazy.mean / cobra.mean;
  std::cout << c.name << "  (n = " << g.num_vertices()
            << ", pebbles = " << pebbles << ")\n"
            << table;
  std::cout << "  dominance margin (lazy Walt mean / cobra mean): "
            << io::Table::fmt(margin, 2) << "x\n\n";
  h.json()
      .record(c.name)
      .field("spec", c.spec)
      .field("n", static_cast<double>(g.num_vertices()))
      .field("pebbles", static_cast<double>(pebbles))
      .field("cobra_cover_mean", cobra.mean)
      .field("cobra_cover_median", cobra.median)
      .field("walt_lazy_cover_mean", walt_lazy.mean)
      .field("walt_lazy_cover_median", walt_lazy.median)
      .field("walt_eager_cover_mean", walt_eager.mean)
      .field("dominance_margin", margin);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("walt_dominance",
                   bench::parse_bench_args(argc, argv, {"trials"}));
  const std::uint32_t trials = h.trials(50, 8);
  h.json().context("trials", static_cast<double>(trials));

  bench::print_header(
      "E7  (Lemma 10)",
      "Walt's cover time stochastically dominates the 2-cobra walk's");

  const std::vector<bench::SuiteCase> cases = {
      {"random 4-regular", "rreg:n=256,d=4,seed=231", "rreg:n=64,d=4,seed=231"},
      {"hypercube", "hypercube:dims=8", "hypercube:dims=5"},
      {"torus", "torus:side=16,dims=2", "torus:side=8,dims=2"},
      {"grid", "grid:side=16,dims=2", "grid:side=8,dims=2"},
  };

  std::uint64_t seed = 0xE7100;
  for (const auto& c : h.suite(cases)) {
    compare_on(h, c, trials, seed);
    seed += 0x100;
  }

  std::cout
      << "reading: lazy Walt sits above the cobra walk at every reported\n"
         "quantile (mean/median/q75), as Lemma 10 requires - it is the\n"
         "analyzable stand-in whose upper bounds transfer to cobra walks.\n"
         "The non-lazy variant shows the factor ~2 the laziness costs.\n";
  return h.finish();
}
