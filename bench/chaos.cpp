#include "chaos.hpp"

#include <cstdio>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/cobra_walk.hpp"
#include "core/greedy_mis.hpp"
#include "gen/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"
#include "sim/checkpoint.hpp"
#include "util/checkpoint_io.hpp"

namespace cobra::bench {

namespace {

namespace fault = util::fault;

/// Chain `vs` (as bytes) into `hash` — the per-round fingerprint step.
std::uint64_t hash_round(std::uint64_t hash, std::span<const core::Vertex> vs) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(vs.data());
  return util::fnv1a64({bytes, vs.size() * sizeof(core::Vertex)}, hash);
}

/// One randomized schedule for `catalog`, fully determined by
/// (cell_seed, index): 1-3 distinct sites, each with a random @after in
/// [0, 8], prob in {1, 0.5, 0.25}, and an even-odds #limit in [1, 4].
fault::FaultPlan random_plan(std::uint64_t cell_seed, std::size_t index,
                             const std::vector<std::string>& catalog) {
  rng::Xoshiro256 r(rng::derive_seed(cell_seed, index));
  fault::FaultPlan plan;
  plan.seed = r();
  // Fisher-Yates over the catalog indices, then take a prefix: distinct
  // sites without rejection sampling.
  std::vector<std::size_t> order(catalog.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[r() % i]);
  }
  const std::size_t count =
      1 + static_cast<std::size_t>(r() % std::min<std::uint64_t>(
                                           3, catalog.size()));
  for (std::size_t j = 0; j < count; ++j) {
    fault::FaultSpec spec;
    spec.site = catalog[order[j]];
    spec.after = r() % 9;
    switch (r() % 3) {
      case 0: spec.prob = 1.0; break;
      case 1: spec.prob = 0.5; break;
      default: spec.prob = 0.25; break;
    }
    spec.limit = (r() % 2 == 0) ? 0 : 1 + r() % 4;
    plan.specs.push_back(std::move(spec));
  }
  return plan;
}

/// RAII: whatever happens inside a faulted run, leave the registry clean.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm_all(); }
};

/// The trajectory function a chaos run fuzzes — selected by
/// ChaosConfig::process. Both share one signature so run_chaos stays
/// process-agnostic.
using TrajectoryFn = std::uint64_t (*)(const graph::Graph&, std::size_t,
                                       std::uint64_t, std::uint64_t,
                                       std::uint32_t, bool);

TrajectoryFn select_trajectory(const std::string& process) {
  if (process == "cobra") return &chaos_trajectory;
  if (process == "mis") return &chaos_mis_trajectory;
  throw std::invalid_argument("unknown chaos process '" + process +
                              "' (want cobra or mis)");
}

/// Outcome of one faulted trajectory: fingerprint, or the exception text
/// when the run threw (graceful plans must not throw).
struct TrajectoryOutcome {
  bool threw = false;
  std::uint64_t fingerprint = 0;
  std::string error;
};

TrajectoryOutcome faulted_trajectory(const TrajectoryFn trajectory,
                                     const graph::Graph& g,
                                     const fault::FaultPlan& plan,
                                     std::size_t threads,
                                     std::uint64_t walk_seed,
                                     std::uint64_t rounds,
                                     std::uint32_t branching,
                                     bool inject_bug) {
  DisarmGuard guard;
  fault::disarm_all();
  fault::arm_plan(plan);
  TrajectoryOutcome out;
  try {
    out.fingerprint =
        trajectory(g, threads, walk_seed, rounds, branching, inject_bug);
  } catch (const std::exception& e) {
    out.threw = true;
    out.error = e.what();
  }
  return out;
}

/// Assert that `op` throws while `site` is armed. Returns the violation
/// detail on SILENT completion, empty string when the site failed loudly.
template <typename Op>
std::string expect_loud_failure(const std::string& site, const Op& op) {
  DisarmGuard guard;
  fault::disarm_all();
  fault::arm(site);
  try {
    op();
  } catch (const std::exception&) {
    return {};  // loud, as the contract demands
  }
  if (fault::fired(site) == 0) {
    return "hard site " + site + " was never reached by its operation";
  }
  return "hard site " + site + " fired but the operation completed silently";
}

}  // namespace

std::vector<std::string> chaos_graceful_sites(bool inject_bug) {
  std::vector<std::string> sites = {
      "frontier.dense_alloc", "frontier.materialize_alloc",
      "rng.block_refill",     "pool.thread_spawn",
      "trace.write",
  };
  if (inject_bug) sites.push_back("chaos.degrade_bug");
  return sites;
}

std::vector<std::string> chaos_hard_sites() {
  return {"gen.alloc", "gen.build_graph", "checkpoint.write",
          "checkpoint.torn_write", "checkpoint.read"};
}

std::uint64_t chaos_trajectory(const graph::Graph& g, std::size_t threads,
                               std::uint64_t walk_seed, std::uint64_t rounds,
                               std::uint32_t branching, bool inject_bug) {
  // The pool is per-call ON PURPOSE: constructing it under an armed
  // pool.thread_spawn plan is how that site gets exercised, and a pool of
  // one worker routes the engine to its serial path (same trajectory by
  // the thread-invariance contract).
  par::ThreadPool pool(threads == 0 ? 1 : threads);
  core::CobraWalk walk(g, 0, branching);
  auto& opts = walk.engine().options();
  opts.pool = &pool;
  opts.chunk_size = 64;        // several chunks even on tiny fuzz graphs
  opts.parallel_threshold = 1;  // pool path whenever the pool can help

  core::Engine gen(walk_seed);
  std::uint64_t fp = hash_round(0xcbf29ce484222325ULL, walk.active());
  for (std::uint64_t r = 0; r < rounds; ++r) {
    walk.step(gen);
    if (inject_bug && fault::should_fail("chaos.degrade_bug")) {
      // The deliberately BROKEN degradation: silently drops the highest-id
      // active vertex, exactly the kind of "mostly works" corruption a
      // graceful site must never introduce. Kept behind inject_bug so no
      // production path can reach it.
      const auto active = walk.active();
      if (active.size() > 1) {
        walk.reset(active.subspan(0, active.size() - 1));
      }
    }
    fp = hash_round(fp, walk.active());
  }
  return fp;
}

std::uint64_t chaos_mis_trajectory(const graph::Graph& g, std::size_t threads,
                                   std::uint64_t walk_seed,
                                   std::uint64_t rounds,
                                   std::uint32_t /*branching*/,
                                   bool inject_bug) {
  // Per-call pool + fuzz-friendly chunking, same rationale as the cobra
  // trajectory above — and the retain rounds run through the same pool.
  par::ThreadPool pool(threads == 0 ? 1 : threads);
  core::FrontierOptions opts;
  opts.pool = &pool;
  opts.chunk_size = 64;
  opts.parallel_threshold = 1;
  core::GreedyMIS mis(g, opts);

  core::Engine gen(walk_seed);
  std::uint64_t fp = hash_round(0xcbf29ce484222325ULL, mis.active());
  for (std::uint64_t r = 0; r < rounds && !mis.done(); ++r) {
    mis.step(gen);
    if (inject_bug && !mis.done() &&
        fault::should_fail("chaos.degrade_bug")) {
      // The removal-round planted bug: one extra, UNHASHED round. Every
      // later fingerprint link sees a shifted trajectory (and usually a
      // different final MIS). Behind inject_bug, like the cobra one.
      mis.step(gen);
    }
    fp = hash_round(fp, mis.active());
  }
  // The collected set is part of the contract: a run with the right
  // trajectory but the wrong MIS must still diverge.
  fp = hash_round(fp, mis.mis());
  return fp;
}

ChaosReport run_chaos(const ChaosConfig& config) {
  ChaosReport report;
  const TrajectoryFn trajectory = select_trajectory(config.process);
  const std::vector<std::string> catalog =
      chaos_graceful_sites(config.inject_bug);

  std::size_t cell_index = 0;
  for (const std::string& spec : config.specs) {
    fault::disarm_all();  // graph builds run fault-free
    const graph::Graph g = gen::build_graph(spec);

    for (const std::size_t threads : config.threads) {
      ++report.cells;
      const std::uint64_t cell_seed = rng::derive_seed(config.seed, cell_index);
      ++cell_index;
      const std::uint64_t walk_seed = rng::derive_seed(cell_seed, 0x5eed);
      const std::uint64_t baseline = trajectory(
          g, threads, walk_seed, config.rounds, config.branching, false);

      const auto reproduces = [&](const fault::FaultPlan& plan) {
        const TrajectoryOutcome out = faulted_trajectory(
            trajectory, g, plan, threads, walk_seed, config.rounds,
            config.branching, config.inject_bug);
        return out.threw || out.fingerprint != baseline;
      };

      for (std::size_t i = 0; i < config.schedules; ++i) {
        const fault::FaultPlan plan = random_plan(cell_seed, i, catalog);
        ++report.fuzz_runs;
        const TrajectoryOutcome out = faulted_trajectory(
            trajectory, g, plan, threads, walk_seed, config.rounds,
            config.branching, config.inject_bug);
        if (!out.threw && out.fingerprint == baseline) continue;

        ChaosViolation v;
        v.spec = spec;
        v.threads = threads;
        v.plan = plan;
        v.shrunk = shrink_plan(plan, reproduces, &report.shrink_runs);
        if (out.threw) {
          v.detail = "graceful plan threw: " + out.error;
        } else {
          char buf[128];
          std::snprintf(buf, sizeof buf,
                        "trajectory diverged (fingerprint %016llx, unfaulted "
                        "%016llx)",
                        static_cast<unsigned long long>(out.fingerprint),
                        static_cast<unsigned long long>(baseline));
          v.detail = buf;
        }
        report.violations.push_back(std::move(v));
      }
    }

    // Hard sites: each must fail loudly when its operation runs. These are
    // thread-independent, so once per spec.
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto hard_violation = [&](const std::string& site,
                                    const std::string& detail) {
      ChaosViolation v;
      v.spec = spec;
      v.threads = 0;
      v.plan.specs.push_back({site, 0, 1.0, 0});
      v.shrunk = v.plan;
      v.detail = detail;
      report.violations.push_back(std::move(v));
    };
    for (const std::string& site : chaos_hard_sites()) {
      ++report.hard_checks;
      std::string detail;
      if (site == "gen.alloc" || site == "gen.build_graph") {
        detail = expect_loud_failure(
            site, [&] { (void)gen::build_graph(spec); });
      } else if (site == "checkpoint.write" || site == "checkpoint.read") {
        // checkpoint.read arms BOTH ops' sites only logically: write a good
        // snapshot first (fault-free), then run the armed operation.
        fault::disarm_all();
        sim::write_snapshot_file(config.scratch_path, payload);
        detail = expect_loud_failure(site, [&] {
          if (site == "checkpoint.write") {
            sim::write_snapshot_file(config.scratch_path, payload);
          } else {
            (void)sim::read_snapshot_file(config.scratch_path);
          }
        });
      } else {  // checkpoint.torn_write: the WRITE succeeds, the READ rejects
        fault::disarm_all();
        {
          DisarmGuard guard;
          fault::arm(site);
          sim::write_snapshot_file(config.scratch_path, payload);
          if (fault::fired(site) == 0) {
            detail = "hard site " + site + " was never reached by its operation";
          }
        }
        if (detail.empty() && sim::snapshot_valid(config.scratch_path)) {
          detail = "torn snapshot (site " + site +
                   ") was accepted by the read path";
        }
      }
      if (!detail.empty()) hard_violation(site, detail);
    }
  }
  fault::disarm_all();
  return report;
}

std::string render_chaos_report(const ChaosReport& report,
                                const ChaosConfig& config) {
  std::string out = "cobra_chaos: process=" + config.process + ", " +
                    std::to_string(report.cells) + " cells, " +
                    std::to_string(report.fuzz_runs) +
                    " fuzz runs (+" + std::to_string(report.shrink_runs) +
                    " shrink runs), " + std::to_string(report.hard_checks) +
                    " hard-site checks, " +
                    std::to_string(report.violations.size()) + " violation" +
                    (report.violations.size() == 1 ? "" : "s") + "\n";
  for (const ChaosViolation& v : report.violations) {
    out += "\nVIOLATION  spec=" + v.spec;
    if (v.threads != 0) out += "  threads=" + std::to_string(v.threads);
    out += "\n  " + v.detail + "\n";
    out += "  schedule: " + v.plan.render() + "\n";
    out += "  shrunk reproducer (" + std::to_string(v.shrunk.specs.size()) +
           " of " + std::to_string(v.plan.specs.size()) +
           " entries) — replay with --fault-plan FILE:\n";
    out += "    # cobra_chaos reproducer: spec=" + v.spec +
           " threads=" + std::to_string(v.threads) +
           " master-seed=" + std::to_string(config.seed) + "\n";
    out += "    seed=" + std::to_string(v.shrunk.seed) + "\n";
    out += "    " + v.shrunk.render() + "\n";
  }
  return out;
}

}  // namespace cobra::bench
