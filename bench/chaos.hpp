#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/fault.hpp"

/// \file chaos.hpp
/// The cobra_chaos fuzzer's engine, split out of the binary so it is
/// unit-testable. The contract it enforces is the fault registry's site
/// classification (util/fault.hpp):
///
///   * a plan armed over GRACEFUL sites must leave the walk's trajectory
///     BIT-IDENTICAL to the unfaulted run — degradations trade speed, never
///     results;
///   * a HARD site must fail LOUDLY (throw) when its operation runs —
///     silent completion under an armed hard fault is a violation.
///
/// For each (spec, threads) cell the fuzzer builds the graph once, records
/// the unfaulted trajectory fingerprint, then runs N randomized fault
/// schedules — sites, @after offsets, %prob suffixes, and #limit caps all
/// drawn from streams derived from the master seed, so a chaos run is
/// fully reproducible from (config, seed). A schedule whose trajectory
/// diverges (or throws) is a VIOLATION; the fuzzer then delta-debugs the
/// schedule down to a minimal reproducer — greedily dropping entries while
/// the divergence persists — and reports it in the --fault-plan file format
/// so the bug replays with one flag on any bench.
///
/// The trajectory fingerprint chains fnv1a64 over each round's active set
/// (canonical ascending order, so it is representation-independent by the
/// engine contract). Fingerprints are compared in-process only — never
/// across builds or hosts.
///
/// `chaos.degrade_bug` is this file's TEST-ONLY site: a deliberately
/// broken "degradation" that drops the highest-id active vertex when it
/// fires. It exists so the fuzzer's own detection and shrinking can be
/// proven against a known-bad path (--inject-bug / the chaos tests): a
/// violating schedule containing it must shrink to <= 2 entries.
///
/// Two processes can sit under the fuzz: the growing-frontier cobra walk
/// (`process = "cobra"`) and the shrinking-frontier greedy MIS
/// (`process = "mis"`), which routes every schedule through the engine's
/// retain path as well as expand. The MIS fingerprint additionally chains
/// the final collected set, so a run that walks the right trajectory but
/// ends with the wrong MIS still diverges.

namespace cobra::bench {

/// One chaos cell configuration + fuzz budget.
struct ChaosConfig {
  std::vector<std::string> specs;    ///< graph specs, one cell group each
  std::vector<std::size_t> threads;  ///< thread counts per spec
  std::size_t schedules = 50;        ///< randomized plans per cell
  std::uint64_t seed = 1;            ///< master seed (everything derives)
  std::uint64_t rounds = 24;         ///< rounds per trajectory
  std::uint32_t branching = 2;       ///< cobra-walk k
  bool inject_bug = false;  ///< add chaos.degrade_bug to the fuzz catalog
  /// Which process runs under the fuzz: "cobra" (growing frontier, expand
  /// rounds) or "mis" (shrinking frontier, expand + retain rounds).
  std::string process = "cobra";
  /// Scratch file for the checkpoint hard-site checks (created/overwritten).
  std::string scratch_path = "chaos_scratch.snap";
};

/// One contract violation: the schedule that produced it and its shrunk
/// minimal reproducer.
struct ChaosViolation {
  std::string spec;
  std::size_t threads = 0;
  util::fault::FaultPlan plan;    ///< the violating schedule as fuzzed
  util::fault::FaultPlan shrunk;  ///< minimal reproducer (delta-debugged)
  std::string detail;             ///< what diverged / what stayed silent
};

struct ChaosReport {
  std::size_t cells = 0;        ///< (spec, threads) cells fuzzed
  std::size_t fuzz_runs = 0;    ///< trajectories run under random plans
  std::size_t shrink_runs = 0;  ///< extra trajectories spent shrinking
  std::size_t hard_checks = 0;  ///< hard-site loud-failure assertions
  std::vector<ChaosViolation> violations;
};

/// The GRACEFUL sites the fuzzer draws random schedules from (in-process
/// ones only — sweep.child_spawn needs a child process and is exercised by
/// the sweep tests instead). `inject_bug` appends chaos.degrade_bug.
[[nodiscard]] std::vector<std::string> chaos_graceful_sites(bool inject_bug);

/// The HARD sites asserted per spec: each must throw when its operation
/// runs under the armed site.
[[nodiscard]] std::vector<std::string> chaos_hard_sites();

/// Run one cobra-walk trajectory on `g` under whatever faults are
/// currently armed and return its fingerprint: fnv1a64 chained over every
/// round's active set. A dedicated `threads`-worker pool is constructed
/// per call (so pool.thread_spawn faults bite) with fuzz-friendly engine
/// options (small chunks, parallel from size 1). `inject_bug` enables the
/// test-only chaos.degrade_bug path.
[[nodiscard]] std::uint64_t chaos_trajectory(const graph::Graph& g,
                                             std::size_t threads,
                                             std::uint64_t walk_seed,
                                             std::uint64_t rounds,
                                             std::uint32_t branching,
                                             bool inject_bug);

/// The greedy-MIS twin of chaos_trajectory: one MIS run on `g` (capped at
/// `rounds` rounds — extinction usually comes first), fingerprint chained
/// over every round's active set AND the final collected MIS. Exercises
/// the engine's retain path under faults; `branching` is unused (the MIS
/// process has no k). The planted chaos.degrade_bug here sneaks in an
/// extra, unhashed round when it fires, shifting every later fingerprint
/// link — the removal-round analogue of silent corruption.
[[nodiscard]] std::uint64_t chaos_mis_trajectory(const graph::Graph& g,
                                                 std::size_t threads,
                                                 std::uint64_t walk_seed,
                                                 std::uint64_t rounds,
                                                 std::uint32_t branching,
                                                 bool inject_bug);

/// Greedily shrink `plan` to a minimal sub-plan for which `reproduces`
/// still returns true (single-entry removal to a fixpoint — each kept
/// entry is individually necessary). `plan` itself must reproduce; `runs`
/// (when non-null) accumulates the number of `reproduces` calls spent.
template <typename Reproduces>
[[nodiscard]] util::fault::FaultPlan shrink_plan(
    const util::fault::FaultPlan& plan, const Reproduces& reproduces,
    std::size_t* runs = nullptr) {
  util::fault::FaultPlan cur = plan;
  bool changed = true;
  while (changed && cur.specs.size() > 1) {
    changed = false;
    for (std::size_t i = 0; i < cur.specs.size(); ++i) {
      util::fault::FaultPlan candidate = cur;
      candidate.specs.erase(candidate.specs.begin() +
                            static_cast<std::ptrdiff_t>(i));
      if (runs != nullptr) ++*runs;
      if (reproduces(candidate)) {
        cur = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return cur;
}

/// The full fuzz: every (spec, threads) cell x `schedules` random plans,
/// plus the hard-site checks per spec. Leaves the fault registry disarmed.
/// Throws std::invalid_argument on an unbuildable spec.
[[nodiscard]] ChaosReport run_chaos(const ChaosConfig& config);

/// Render the report: human-readable verdict lines, and for each violation
/// a replayable --fault-plan block (seed= line + shrunk plan text).
[[nodiscard]] std::string render_chaos_report(const ChaosReport& report,
                                              const ChaosConfig& config);

}  // namespace cobra::bench
