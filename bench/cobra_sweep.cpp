/// cobra_sweep — the ROADMAP's sweep driver: run a registered bench-style
/// measurement over a --graph spec list x a --threads list and merge the
/// per-run JSON into ONE longitudinal file (what used to be a shell loop
/// plus a directory of smoke_*.json).
///
/// Each (bench, spec, threads) cell runs as a CHILD PROCESS: the global
/// pool honors --threads only before its first use, so thread-count sweeps
/// cannot share a process — exactly the constraint that made this a shell
/// loop before. The child's --out JSON is embedded verbatim in the merged
/// file (see sweep.hpp for the schema), and the sweep FAILS (exit 1) if
/// any run is dropped — a crashed child or unwritable file can't silently
/// thin the longitudinal record.
///
/// Benches are queried for capability metadata first (`<bench> --caps`):
/// a bench whose --graph does not drive its measurement (grid_drift's Z^d
/// chain, pair_collision's exact tables) declares that itself and is
/// skipped with a note — no hardcoded skip list here.
///
/// Usage:
///   cobra_sweep --graph <spec[,spec...]> [--bench b1,b2] [--threads 1,2]
///               --out sweep.json [--bindir DIR] [--trials T] [--smoke]
///   cobra_sweep --validate sweep.json [--expect-runs N]
///
///   --graph    spec list; ';' separates always, ',' smartly (a segment
///              naming a family starts a new spec, a key=value segment
///              continues the previous one), so
///              "rreg:n=128,d=4,seed=1,ring:n=64" is two specs
///   --bench    bench binaries to drive (default bench_expander_cover)
///   --threads  global-pool worker counts per run (default "1")
///   --bindir   directory holding the bench binaries (default: the
///              directory cobra_sweep itself was launched from)
///   --trials / --smoke   forwarded to every child verbatim
///   --keep-runs keep the per-run scratch directory (<out>.runs: child
///              JSON + logs) after a fully successful sweep; it is always
///              kept when any run fails, since it holds the only
///              diagnostics
///   --validate re-check a merged file: exit 0 iff it holds exactly the
///              runs it promises (the sweep-smoke ctest's second half)

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sweep.hpp"

namespace {

using namespace cobra;

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// `<bench> --caps` output, or "" when the binary can't be run.
std::string query_caps(const std::filesystem::path& binary,
                       const std::filesystem::path& scratch) {
  const std::string cmd = shell_quote(binary.string()) + " --caps > " +
                          shell_quote(scratch.string()) + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return "";
  return read_file(scratch);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> allowed = {"graph",  "bench",    "threads",
                                      "bindir", "out",      "trials",
                                      "smoke",  "validate", "expect-runs",
                                      "keep-runs"};
  io::Args args(0, nullptr, {});
  try {
    args = io::Args(argc, argv, allowed);
  } catch (const std::invalid_argument& e) {
    std::cerr << "cobra_sweep: " << e.what() << "\nflags:";
    for (const auto& flag : allowed) std::cerr << " --" << flag;
    std::cerr << "\n";
    return 1;
  }
  std::size_t expect_runs = 0;
  std::size_t trials = 0;
  try {
    expect_runs = static_cast<std::size_t>(args.get_uint("expect-runs", 0));
    trials = static_cast<std::size_t>(args.get_uint("trials", 0));
  } catch (const std::invalid_argument& e) {
    std::cerr << "cobra_sweep: " << e.what() << "\n";
    return 1;
  }

  // ---- validate mode -----------------------------------------------------
  if (args.has("validate")) {
    const std::string path = args.get("validate", "");
    const std::string text = read_file(path);
    if (text.empty()) {
      std::cerr << "cobra_sweep: cannot read " << path << "\n";
      return 1;
    }
    std::string error;
    if (!bench::validate_merged_sweep(text, expect_runs, &error)) {
      std::cerr << "cobra_sweep: " << path << " INVALID: " << error << "\n";
      return 1;
    }
    std::cout << "cobra_sweep: " << path << " valid ("
              << bench::count_merged_runs(text) << " runs)\n";
    return 0;
  }

  // ---- sweep mode --------------------------------------------------------
  if (!args.has("graph") || !args.has("out")) {
    std::cerr << "cobra_sweep: --graph <spec[,spec...]> and --out <path> are "
                 "required (or --validate <file>)\n";
    return 1;
  }
  const std::string out_path = args.get("out", "");
  std::vector<std::string> specs;
  std::vector<std::size_t> thread_counts;
  std::vector<std::string> benches;
  try {
    specs = bench::split_spec_list(args.get("graph", ""));
    thread_counts = bench::split_uint_list(args.get("threads", "1"));
    for (const auto& b : bench::split_spec_list(args.get("bench", ""))) {
      benches.push_back(b);
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "cobra_sweep: " << e.what() << "\n";
    return 1;
  }
  if (benches.empty()) benches = {"bench_expander_cover"};
  if (specs.empty()) {
    std::cerr << "cobra_sweep: --graph parsed to an empty spec list\n";
    return 1;
  }

  namespace fs = std::filesystem;
  const fs::path bindir =
      args.has("bindir") ? fs::path(args.get("bindir", ""))
                         : fs::path(argv[0]).parent_path();
  const fs::path workdir = fs::path(out_path.empty() ? "sweep" : out_path)
                               .concat(".runs");
  std::error_code ec;
  fs::create_directories(workdir, ec);
  if (ec) {
    std::cerr << "cobra_sweep: cannot create " << workdir << ": "
              << ec.message() << "\n";
    return 1;
  }

  // Capability pass: drop benches whose --graph is not the measurement.
  std::vector<std::string> swept;
  for (const auto& name : benches) {
    const fs::path binary = bindir / name;
    const std::string caps = query_caps(binary, workdir / (name + ".caps"));
    if (caps.empty()) {
      std::cerr << "cobra_sweep: cannot run " << binary
                << " --caps (missing binary?)\n";
      return 1;
    }
    if (bench::parse_caps_graph(caps) != bench::BenchCaps::Graph::Effective) {
      std::cout << "cobra_sweep: skipping " << name
                << " (its --caps declare --graph is not the measurement)\n";
      continue;
    }
    swept.push_back(name);
  }
  if (swept.empty()) {
    std::cerr << "cobra_sweep: every requested bench declared --graph "
                 "ineffective; nothing to sweep\n";
    return 1;
  }

  const std::size_t expected = swept.size() * specs.size() * thread_counts.size();
  std::vector<bench::SweepRun> runs;
  std::size_t failures = 0;
  std::size_t index = 0;
  for (const auto& name : swept) {
    for (const auto& spec : specs) {
      for (const std::size_t threads : thread_counts) {
        const fs::path run_json =
            workdir / ("run_" + std::to_string(index) + ".json");
        const fs::path run_log =
            workdir / ("run_" + std::to_string(index) + ".log");
        ++index;
        std::string cmd = shell_quote((bindir / name).string()) + " --graph " +
                          shell_quote(spec) + " --threads " +
                          std::to_string(threads) + " --out " +
                          shell_quote(run_json.string());
        if (args.get_bool("smoke", false)) cmd += " --smoke";
        if (args.has("trials")) cmd += " --trials " + std::to_string(trials);
        cmd += " > " + shell_quote(run_log.string()) + " 2>&1";
        std::cout << "cobra_sweep: [" << index << "/" << expected << "] "
                  << name << "  graph=" << spec << "  threads=" << threads
                  << std::endl;
        const int rc = std::system(cmd.c_str());
        const std::string json_text = read_file(run_json);
        if (rc != 0 || !bench::looks_like_bench_json(json_text)) {
          std::cerr << "cobra_sweep: run FAILED (rc " << rc << ", log "
                    << run_log << ")\n";
          ++failures;
          continue;
        }
        runs.push_back({name, spec, threads, json_text});
      }
    }
  }

  std::vector<std::pair<std::string, std::string>> context = {
      {"graph", args.get("graph", "")},
      {"threads", args.get("threads", "1")},
  };
  if (args.get_bool("smoke", false)) context.emplace_back("smoke", "1");
  const std::string merged = bench::merge_sweep_json(runs, expected, context);
  std::ofstream out(out_path);
  out << merged;
  out.flush();
  if (!out) {
    std::cerr << "cobra_sweep: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "cobra_sweep: wrote " << out_path << " (" << runs.size() << "/"
            << expected << " runs)\n";
  if (failures != 0) {
    // Keep the per-run logs — they are the only diagnostic for the
    // failures just reported.
    std::cerr << "cobra_sweep: " << failures
              << " run(s) dropped from the merge (logs kept in " << workdir
              << ")\n";
    return 1;
  }
  if (!args.get_bool("keep-runs", false)) {
    fs::remove_all(workdir, ec);  // best-effort cleanup of per-run files
  }
  return 0;
}
