/// cobra_sweep — the ROADMAP's sweep driver: run a registered bench-style
/// measurement over a --graph spec list x a --threads list and merge the
/// per-run JSON into ONE longitudinal file (what used to be a shell loop
/// plus a directory of smoke_*.json).
///
/// Each (bench, spec, threads) cell runs as a CHILD PROCESS: the global
/// pool honors --threads only before its first use, so thread-count sweeps
/// cannot share a process — exactly the constraint that made this a shell
/// loop before. The child's --out JSON is embedded verbatim in the merged
/// file (see sweep.hpp for the schema).
///
/// A per-cell WATCHDOG supervises every child: a failed attempt (non-zero
/// exit, wall-clock timeout, or truncated --out JSON) is retried with
/// exponential backoff, and a cell that exhausts its attempts is
/// QUARANTINED into the merged file's "failed_runs" section instead of
/// aborting the sweep — one poisoned cell cannot cost a night of results.
/// The sweep exits 0 when every cell is accounted for (completed or
/// explicitly quarantined) and `--validate` re-checks that accounting.
///
/// Benches are queried for capability metadata first (`<bench> --caps`):
/// a bench whose --graph does not drive its measurement (grid_drift's Z^d
/// chain, pair_collision's exact tables) declares that itself and is
/// skipped with a note — no hardcoded skip list here.
///
/// Usage:
///   cobra_sweep --graph <spec[,spec...]> [--bench b1,b2] [--threads 1,2]
///               --out sweep.json [--bindir DIR] [--trials T] [--smoke]
///               [--retries R] [--backoff-ms MS] [--timeout S]
///               [--resume prev.json]
///   cobra_sweep --validate sweep.json [--expect-runs N]
///
///   --graph    spec list; ';' separates always, ',' smartly (a segment
///              naming a family starts a new spec, a key=value segment
///              continues the previous one), so
///              "rreg:n=128,d=4,seed=1,ring:n=64" is two specs
///   --bench    bench binaries to drive (default bench_expander_cover)
///   --threads  global-pool worker counts per run (default "1")
///   --bindir   directory holding the bench binaries (default: the
///              directory cobra_sweep itself was launched from)
///   --trials / --smoke   forwarded to every child verbatim
///   --retries  extra attempts per cell after the first (default 1)
///   --backoff-ms  delay before the first retry, doubling per retry
///              (default 200, capped at 60 s)
///   --timeout  per-attempt wall clock in seconds, enforced with
///              coreutils `timeout` (default 0 = none)
///   --resume   a previous merged file: cells it already completed are
///              embedded as-is and skipped; its quarantined cells rerun
///   --keep-runs keep the per-run scratch directory (<out>.runs: child
///              JSON + logs) after a fully successful sweep; it is always
///              kept when any cell was quarantined, since it holds the
///              only diagnostics
///   --validate re-check a merged file: exit 0 iff completed runs plus
///              quarantined failed_runs account for every promised cell
///
/// Fault-injection levers (resilience tests; cell ids are the 0-based
/// position in the bench x spec x threads iteration order):
///   --inject-crash-run I  cell I's child crashes on EVERY attempt
///                         (exercises quarantine)
///   --inject-flaky-run I  cell I's child crashes on the FIRST attempt
///                         only (exercises retry + backoff)
///   --inject-hang-run I   cell I's child hangs on every attempt;
///                         requires --timeout (exercises the watchdog)
///
/// Exit codes: 0 = every cell accounted for (even if some quarantined),
/// 1 = infrastructure failure (missing binary, unwritable output, invalid
/// --resume/--validate file), 2 = command-line parse error.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#ifdef __unix__
#include <sys/wait.h>
#endif

#include "gen/registry.hpp"
#include "gen/spec.hpp"
#include "harness.hpp"
#include "obs/manifest.hpp"
#include "sweep.hpp"

namespace {

using namespace cobra;

constexpr std::size_t kNoInjection = static_cast<std::size_t>(-1);

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// `<bench> --caps` output, or "" when the binary can't be run.
std::string query_caps(const std::filesystem::path& binary,
                       const std::filesystem::path& scratch) {
  const std::string cmd = shell_quote(binary.string()) + " --caps > " +
                          shell_quote(scratch.string()) + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return "";
  return read_file(scratch);
}

/// Command-line parse error: the offending input plus enough grammar to fix
/// it, then exit 2 (distinct from exit 1 = runtime/infra failure, so the CI
/// smoke steps can tell "you typo'd the sweep" from "the sweep broke").
[[noreturn]] void parse_error(const std::string& message, bool show_grammar) {
  std::cerr << "cobra_sweep: " << message << "\n";
  if (show_grammar) std::cerr << "graph specs:\n" << gen::grammar_help();
  std::exit(2);
}

/// Eagerly validate one spec against the generator registry so a typo in a
/// 40-cell sweep dies before cell 0 runs, naming the bad token — not as a
/// cryptic child failure 20 minutes in.
void require_valid_spec(const std::string& spec_text) {
  try {
    const gen::GraphSpec spec = gen::GraphSpec::parse(spec_text);
    const gen::FamilyInfo* info = gen::find_family(spec.family());
    if (info == nullptr) {
      throw std::invalid_argument("unknown graph family '" + spec.family() +
                                  "'");
    }
    for (const auto& [key, value] : spec.params()) {
      if (std::find(info->keys.begin(), info->keys.end(), key) ==
          info->keys.end()) {
        throw std::invalid_argument("family '" + spec.family() +
                                    "' does not accept key '" + key + "'");
      }
    }
  } catch (const std::invalid_argument& e) {
    parse_error("in --graph spec '" + spec_text + "': " + e.what(), true);
  }
}

/// Cell identity for --resume matching; \x1f cannot appear in any of the
/// three fields, so the key is unambiguous.
std::string cell_key(const std::string& bench, const std::string& spec,
                     std::size_t threads) {
  return bench + '\x1f' + spec + '\x1f' + std::to_string(threads);
}

std::size_t uint_flag_or_die(const io::Args& args, const std::string& name,
                             std::uint64_t fallback) {
  try {
    return static_cast<std::size_t>(args.get_uint(name, fallback));
  } catch (const std::invalid_argument& e) {
    parse_error(e.what(), false);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> allowed = {
      "graph",      "bench",      "threads",          "bindir",
      "out",        "trials",     "smoke",            "validate",
      "expect-runs", "keep-runs", "retries",          "backoff-ms",
      "timeout",    "resume",     "inject-crash-run", "inject-flaky-run",
      "inject-hang-run"};
  io::Args args(0, nullptr, {});
  try {
    args = io::Args(argc, argv, allowed);
  } catch (const std::invalid_argument& e) {
    std::cerr << "cobra_sweep: " << e.what() << "\nflags:";
    for (const auto& flag : allowed) std::cerr << " --" << flag;
    std::cerr << "\n";
    return 2;
  }
  const std::size_t expect_runs = uint_flag_or_die(args, "expect-runs", 0);
  const std::size_t trials = uint_flag_or_die(args, "trials", 0);

  // ---- validate mode -----------------------------------------------------
  if (args.has("validate")) {
    const std::string path = args.get("validate", "");
    const std::string text = read_file(path);
    if (text.empty()) {
      std::cerr << "cobra_sweep: cannot read " << path << "\n";
      return 1;
    }
    std::string error;
    if (!bench::validate_merged_sweep(text, expect_runs, &error)) {
      std::cerr << "cobra_sweep: " << path << " INVALID: " << error << "\n";
      return 1;
    }
    std::cout << "cobra_sweep: " << path << " valid ("
              << bench::count_merged_runs(text) << " runs, "
              << bench::count_failed_runs(text) << " quarantined)\n";
    // Host-fingerprint check: a longitudinal file quietly mixing hosts or
    // builds is how baselines go bad, so more than one distinct value for a
    // manifest key is a loud (but non-fatal) warning.
    for (const char* key : {"git_sha", "build_type", "hardware_concurrency"}) {
      const auto values = bench::distinct_context_values(text, key);
      if (values.size() > 1) {
        std::cerr << "cobra_sweep: WARNING: " << path << " mixes "
                  << values.size() << " distinct " << key << " values (";
        for (std::size_t i = 0; i < values.size(); ++i) {
          if (i != 0) std::cerr << ", ";
          std::cerr << values[i];
        }
        std::cerr << ") — its runs came from different hosts or builds\n";
      }
    }
    return 0;
  }

  // ---- sweep mode --------------------------------------------------------
  if (!args.has("graph") || !args.has("out")) {
    std::cerr << "cobra_sweep: --graph <spec[,spec...]> and --out <path> are "
                 "required (or --validate <file>)\n";
    return 2;
  }
  const std::string out_path = args.get("out", "");
  std::vector<std::string> specs;
  std::vector<std::size_t> thread_counts;
  std::vector<std::string> benches;
  try {
    specs = bench::split_spec_list(args.get("graph", ""));
  } catch (const std::invalid_argument& e) {
    parse_error("in --graph '" + args.get("graph", "") + "': " + e.what(),
                true);
  }
  try {
    thread_counts = bench::split_uint_list(args.get("threads", "1"));
  } catch (const std::invalid_argument& e) {
    parse_error("in --threads '" + args.get("threads", "1") + "': " +
                    e.what() + " (expected a comma-separated uint list, "
                    "e.g. --threads 1,2,8)",
                false);
  }
  try {
    for (const auto& b : bench::split_spec_list(args.get("bench", ""))) {
      benches.push_back(b);
    }
  } catch (const std::invalid_argument& e) {
    parse_error("in --bench '" + args.get("bench", "") + "': " + e.what(),
                false);
  }
  if (benches.empty()) benches = {"bench_expander_cover"};
  if (specs.empty()) {
    parse_error("--graph '" + args.get("graph", "") +
                    "' parsed to an empty spec list",
                true);
  }
  for (const auto& spec : specs) require_valid_spec(spec);

  bench::RetryPolicy policy;
  policy.retries = uint_flag_or_die(args, "retries", 1);
  policy.backoff_ms = uint_flag_or_die(args, "backoff-ms", 200);
  policy.timeout_s = uint_flag_or_die(args, "timeout", 0);

  const std::size_t crash_run =
      args.has("inject-crash-run")
          ? uint_flag_or_die(args, "inject-crash-run", 0)
          : kNoInjection;
  const std::size_t flaky_run =
      args.has("inject-flaky-run")
          ? uint_flag_or_die(args, "inject-flaky-run", 0)
          : kNoInjection;
  const std::size_t hang_run =
      args.has("inject-hang-run") ? uint_flag_or_die(args, "inject-hang-run", 0)
                                  : kNoInjection;
  if (hang_run != kNoInjection && policy.timeout_s == 0) {
    parse_error("--inject-hang-run requires --timeout (otherwise the hanging "
                "child parks the sweep for the injected 60 s)",
                false);
  }

  // Watchdog portability probe: --timeout shells out to coreutils
  // timeout(1), which minimal containers and BSDs may not have. Probe ONCE
  // up front and fall back to unbounded children with a loud warning —
  // the alternative is every cell dying on shell exec error 127, which
  // reads as 40 broken benches instead of one missing binary.
  if (policy.timeout_s != 0 && !bench::timeout_binary_available()) {
    std::cerr << "cobra_sweep: WARNING: coreutils 'timeout' binary not "
                 "found; running children WITHOUT the " +
                     std::to_string(policy.timeout_s) +
                     "s watchdog (a hung child will park its cell)\n";
    policy.timeout_s = 0;
    if (hang_run != kNoInjection) {
      parse_error("--inject-hang-run needs an enforceable --timeout, but "
                  "the 'timeout' binary is unavailable on this system",
                  false);
    }
  }

  // Runs a previous (interrupted/partial) sweep already completed, keyed by
  // cell; its quarantined cells are deliberately NOT here, so they rerun.
  std::unordered_map<std::string, std::string> resumed;
  if (args.has("resume")) {
    const std::string resume_path = args.get("resume", "");
    const std::string text = read_file(resume_path);
    if (text.empty()) {
      std::cerr << "cobra_sweep: cannot read --resume file " << resume_path
                << "\n";
      return 1;
    }
    try {
      for (auto& run : bench::extract_merged_runs(text)) {
        resumed[cell_key(run.bench, run.spec, run.threads)] =
            std::move(run.json_text);
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << "cobra_sweep: --resume file " << resume_path
                << " is not a merged sweep file: " << e.what() << "\n";
      return 1;
    }
    std::cout << "cobra_sweep: resuming from " << resume_path << " ("
              << resumed.size() << " completed runs to reuse)\n";
  }

  namespace fs = std::filesystem;
  const fs::path bindir =
      args.has("bindir") ? fs::path(args.get("bindir", ""))
                         : fs::path(argv[0]).parent_path();
  const fs::path workdir = fs::path(out_path.empty() ? "sweep" : out_path)
                               .concat(".runs");
  std::error_code ec;
  fs::create_directories(workdir, ec);
  if (ec) {
    std::cerr << "cobra_sweep: cannot create " << workdir << ": "
              << ec.message() << "\n";
    return 1;
  }

  // Capability pass: drop benches whose --graph is not the measurement.
  std::vector<std::string> swept;
  for (const auto& name : benches) {
    const fs::path binary = bindir / name;
    const std::string caps = query_caps(binary, workdir / (name + ".caps"));
    if (caps.empty()) {
      std::cerr << "cobra_sweep: cannot run " << binary
                << " --caps (missing binary?)\n";
      return 1;
    }
    if (bench::parse_caps_graph(caps) != bench::BenchCaps::Graph::Effective) {
      std::cout << "cobra_sweep: skipping " << name
                << " (its --caps declare --graph is not the measurement)\n";
      continue;
    }
    swept.push_back(name);
  }
  if (swept.empty()) {
    std::cerr << "cobra_sweep: every requested bench declared --graph "
                 "ineffective; nothing to sweep\n";
    return 1;
  }

  const std::size_t expected = swept.size() * specs.size() * thread_counts.size();
  const std::size_t attempts_max = policy.retries + 1;
  std::vector<bench::SweepRun> runs;
  std::vector<bench::FailedRun> failed;
  std::size_t reused = 0;
  std::size_t index = 0;
  for (const auto& name : swept) {
    for (const auto& spec : specs) {
      for (const std::size_t threads : thread_counts) {
        const std::size_t cell = index++;
        std::cout << "cobra_sweep: [" << index << "/" << expected << "] "
                  << name << "  graph=" << spec << "  threads=" << threads
                  << std::endl;
        if (const auto it = resumed.find(cell_key(name, spec, threads));
            it != resumed.end()) {
          std::cout << "cobra_sweep:   already completed in the --resume "
                       "file; reusing its result\n";
          runs.push_back({name, spec, threads, it->second, {}});
          ++reused;
          continue;
        }

        const fs::path run_json =
            workdir / ("run_" + std::to_string(cell) + ".json");
        const fs::path run_metrics =
            workdir / ("run_" + std::to_string(cell) + ".metrics.json");
        const fs::path run_log =
            workdir / ("run_" + std::to_string(cell) + ".log");
        fs::remove(run_log, ec);  // fresh log per cell; attempts append

        bool ok = false;
        std::string reason;
        for (std::size_t attempt = 0; attempt < attempts_max; ++attempt) {
          if (attempt > 0) {
            const std::uint64_t delay =
                bench::backoff_delay_ms(policy, attempt - 1);
            std::cout << "cobra_sweep:   retry " << attempt << "/"
                      << policy.retries << " after " << delay << " ms backoff"
                      << std::endl;
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          }
          // A stale or partial file from a previous attempt must not be
          // mistaken for this attempt's output.
          fs::remove(run_json, ec);
          fs::remove(run_metrics, ec);

          std::string cmd = shell_quote((bindir / name).string()) +
                            " --graph " + shell_quote(spec) + " --threads " +
                            std::to_string(threads) + " --out " +
                            shell_quote(run_json.string()) + " --metrics " +
                            shell_quote(run_metrics.string());
          if (args.get_bool("smoke", false)) cmd += " --smoke";
          if (args.has("trials")) cmd += " --trials " + std::to_string(trials);
          if (cell == crash_run) cmd += " --inject-crash-after 0";
          if (cell == flaky_run && attempt == 0) {
            cmd += " --inject-crash-after 0";  // first attempt only: a flake
          }
          if (cell == hang_run) cmd += " --inject-hang 60";
          if (policy.timeout_s != 0) {
            // coreutils timeout(1): kills the child and exits 124.
            cmd = "timeout " + std::to_string(policy.timeout_s) + " " + cmd;
          }
          cmd += " >> " + shell_quote(run_log.string()) + " 2>&1";

          const int code = bench::spawn_child(cmd);
          if (code == 0) {
            const std::string json_text = read_file(run_json);
            if (bench::looks_like_bench_json(json_text)) {
              // The per-cell metrics snapshot is best-effort: an old binary
              // without --metrics would fail the allowed-flags check, but a
              // missing/empty file just omits the "metrics" key.
              runs.push_back(
                  {name, spec, threads, json_text, read_file(run_metrics)});
              ok = true;
              break;
            }
            reason = "invalid or truncated --out JSON";
          } else if (code == 124 && policy.timeout_s != 0) {
            reason = "timeout after " + std::to_string(policy.timeout_s) +
                     "s (exit 124)";
          } else {
            reason = "exit " + std::to_string(code);
          }
          std::cerr << "cobra_sweep:   attempt " << (attempt + 1) << "/"
                    << attempts_max << " FAILED: " << reason << " (log "
                    << run_log << ")\n";
        }
        if (!ok) {
          std::cerr << "cobra_sweep:   QUARANTINED after " << attempts_max
                    << " attempt(s): " << reason << "\n";
          failed.push_back({name, spec, threads, attempts_max, reason});
        }
      }
    }
  }

  const obs::Manifest manifest = obs::current_manifest();
  std::vector<std::pair<std::string, std::string>> context = {
      {"graph", args.get("graph", "")},
      {"threads", args.get("threads", "1")},
      {"git_sha", manifest.git_sha},
      {"build_type", manifest.build_type},
      {"hardware_concurrency",
       std::to_string(manifest.hardware_concurrency)},
  };
  if (args.get_bool("smoke", false)) context.emplace_back("smoke", "1");
  if (reused != 0) context.emplace_back("resumed_runs", std::to_string(reused));
  const std::string merged =
      bench::merge_sweep_json(runs, failed, expected, context);
  std::ofstream out(out_path);
  out << merged;
  out.flush();
  if (!out) {
    std::cerr << "cobra_sweep: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "cobra_sweep: wrote " << out_path << " (" << runs.size() << "/"
            << expected << " runs";
  if (reused != 0) std::cout << ", " << reused << " reused";
  if (!failed.empty()) std::cout << ", " << failed.size() << " quarantined";
  std::cout << ")\n";
  if (!failed.empty()) {
    // Every cell is ACCOUNTED for (completed or quarantined), so this is a
    // successful sweep — exit 0 — but the quarantine is loud and the per-run
    // logs are kept: they are the only diagnostics for the failures.
    for (const auto& f : failed) {
      std::cerr << "cobra_sweep: quarantined " << f.bench << "  graph="
                << f.spec << "  threads=" << f.threads << "  (" << f.reason
                << " after " << f.attempts << " attempts)\n";
    }
    std::cerr << "cobra_sweep: " << failed.size()
              << " cell(s) quarantined into \"failed_runs\" (logs kept in "
              << workdir << "); rerun them with --resume " << out_path << "\n";
    return 0;
  }
  if (!args.get_bool("keep-runs", false)) {
    fs::remove_all(workdir, ec);  // best-effort cleanup of per-run files
  }
  return 0;
}
