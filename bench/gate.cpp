#include "gate.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "harness.hpp"  // JsonReporter::quote for the report

namespace cobra::bench {

namespace {

/// A tiny recursive-descent JSON reader — just enough for the two file
/// formats the gate consumes (both of which this repo writes itself). We
/// still parse properly rather than scan: the gate's whole job is to
/// notice when files change shape, so it must reject malformed input
/// instead of gating whatever substrings survive.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // file order

  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [] { Value v; v.kind = Value::Kind::Bool; v.boolean = true; return v; }());
      case 'f': return literal("false", [] { Value v; v.kind = Value::Kind::Bool; return v; }());
      case 'n': return literal("null", Value{});
      default: return number();
    }
  }

  Value literal(const char* word, Value v) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) != 0) fail("bad literal");
    pos_ += len;
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Value key = string_value();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value string_value() {
    expect('"');
    Value v;
    v.kind = Value::Kind::String;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Record names here are ASCII; a non-ASCII code point only needs
          // to round-trip distinctly, not render.
          v.string += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double num = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    Value v;
    v.kind = Value::Kind::Number;
    v.number = num;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Flatten one JsonReporter "records" array under `prefix`, suffixing
/// duplicate names so every gate record key is unique within the file.
void collect_records(const Value& records, const std::string& prefix,
                     std::unordered_map<std::string, std::size_t>& seen,
                     std::vector<GateRecord>& out) {
  if (records.kind != Value::Kind::Array) {
    throw std::invalid_argument("\"records\" is not an array");
  }
  for (const Value& rec : records.array) {
    if (rec.kind != Value::Kind::Object) {
      throw std::invalid_argument("record entry is not an object");
    }
    const Value* name = rec.find("name");
    if (name == nullptr || name->kind != Value::Kind::String) {
      throw std::invalid_argument("record entry has no string \"name\"");
    }
    GateRecord flat;
    flat.name = prefix + name->string;
    const std::size_t dup = seen[flat.name]++;
    if (dup != 0) {
      flat.name += '#';
      flat.name += std::to_string(dup + 1);
    }
    for (const auto& [key, field] : rec.object) {
      if (key == "name") continue;
      if (field.kind == Value::Kind::Number) {
        flat.fields.emplace_back(key, field.number);
      } else if (field.kind == Value::Kind::Null) {
        // JsonReporter renders a non-finite measurement as `null` (JSON has
        // no NaN/Inf literal). Map it back to NaN so the gate SEES it and
        // fails it as "non-finite" — dropping the field here would let a
        // divide-by-zero regression slide through as a missing field at
        // worst, or pass silently when both sides broke the same way.
        flat.fields.emplace_back(key, std::numeric_limits<double>::quiet_NaN());
      }
    }
    out.push_back(std::move(flat));
  }
}

std::string format_number(double value) {
  if (!std::isfinite(value)) return "null";  // %g would emit invalid JSON
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace

bool is_timing_field(const std::string& field) {
  std::string lower = field;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  for (const char* marker :
       {"per_sec", "seconds", "speedup", "throughput", "time"}) {
    if (lower.find(marker) != std::string::npos) return true;
  }
  return false;
}

std::vector<GateRecord> extract_gate_records(const std::string& json_text) {
  const Value root = Parser(json_text).parse();
  if (root.kind != Value::Kind::Object) {
    throw std::invalid_argument("root is not a JSON object");
  }
  std::vector<GateRecord> out;
  std::unordered_map<std::string, std::size_t> seen;
  if (root.find("sweep") != nullptr) {
    const Value* runs = root.find("runs");
    if (runs == nullptr || runs->kind != Value::Kind::Array) {
      throw std::invalid_argument("sweep file has no \"runs\" array");
    }
    for (const Value& run : runs->array) {
      const Value* bench = run.find("bench");
      const Value* spec = run.find("spec");
      const Value* threads = run.find("threads");
      const Value* result = run.find("result");
      if (bench == nullptr || spec == nullptr || threads == nullptr ||
          result == nullptr || result->kind != Value::Kind::Object) {
        throw std::invalid_argument(
            "sweep run entry lacks bench/spec/threads/result");
      }
      const std::string prefix =
          bench->string + "|" + spec->string + "|t" +
          format_number(threads->number) + "|";
      const Value* records = result->find("records");
      if (records == nullptr) {
        throw std::invalid_argument("embedded result has no \"records\"");
      }
      collect_records(*records, prefix, seen, out);
    }
    return out;
  }
  const Value* records = root.find("records");
  if (root.find("benchmark") == nullptr || records == nullptr) {
    throw std::invalid_argument(
        "root is neither a bench JSON (\"benchmark\"/\"records\") nor a "
        "merged sweep (\"sweep\")");
  }
  collect_records(*records, "", seen, out);
  return out;
}

GateReport run_gate(const std::string& baseline_text,
                    const std::string& candidate_text,
                    const GateConfig& config) {
  const std::vector<GateRecord> baseline = extract_gate_records(baseline_text);
  const std::vector<GateRecord> candidate = extract_gate_records(candidate_text);
  std::unordered_map<std::string, const GateRecord*> by_name;
  for (const GateRecord& rec : candidate) by_name.emplace(rec.name, &rec);

  GateReport report;
  for (const GateRecord& base : baseline) {
    const auto it = by_name.find(base.name);
    if (it == by_name.end()) {
      report.pass = false;
      report.issues.push_back({base.name, "", "missing-record", 0, 0, 0, 0});
      continue;
    }
    ++report.records_compared;
    const GateRecord& cand = *it->second;
    for (const auto& [field, base_value] : base.fields) {
      const bool timing = is_timing_field(field);
      if (timing && !config.gate_time) {
        ++report.time_fields_skipped;
        continue;
      }
      const auto cand_it =
          std::find_if(cand.fields.begin(), cand.fields.end(),
                       [&](const auto& f) { return f.first == field; });
      if (cand_it == cand.fields.end()) {
        report.pass = false;
        report.issues.push_back(
            {base.name, field, "missing-field", base_value, 0, 0, 0});
        continue;
      }
      ++report.fields_compared;
      // NaN/Inf is a hard mismatch regardless of slack: a non-finite value
      // means the measurement itself broke (overflow, divide-by-zero), and
      // NaN's self-unequal arithmetic would otherwise make `rel > allowed`
      // FALSE — the gate would pass precisely when the data is garbage.
      if (!std::isfinite(base_value) || !std::isfinite(cand_it->second)) {
        report.pass = false;
        report.issues.push_back({base.name, field, "non-finite", base_value,
                                 cand_it->second, 0, 0});
        continue;
      }
      const double allowed = timing ? config.time_slack : config.slack;
      const double rel = std::abs(cand_it->second - base_value) /
                         std::max(std::abs(base_value), 1e-12);
      if (rel > allowed) {
        report.pass = false;
        report.issues.push_back({base.name, field, "exceeds-slack", base_value,
                                 cand_it->second, rel, allowed});
      }
    }
  }
  return report;
}

std::string render_gate_report(const GateReport& report,
                               const GateConfig& config) {
  std::string out = "{\n  \"bench_gate\": {\n";
  out += std::string("    \"pass\": ") + (report.pass ? "true" : "false") +
         ",\n";
  out += "    \"slack\": " + format_number(config.slack) + ",\n";
  out += std::string("    \"gate_time\": ") +
         (config.gate_time ? "true" : "false") + ",\n";
  if (config.gate_time) {
    out += "    \"time_slack\": " + format_number(config.time_slack) + ",\n";
  }
  out += "    \"records_compared\": " +
         std::to_string(report.records_compared) + ",\n";
  out += "    \"fields_compared\": " + std::to_string(report.fields_compared) +
         ",\n";
  out += "    \"time_fields_skipped\": " +
         std::to_string(report.time_fields_skipped) + ",\n";
  out += "    \"issues\": [";
  for (std::size_t i = 0; i < report.issues.size(); ++i) {
    const GateIssue& issue = report.issues[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      { \"record\": " + JsonReporter::quote(issue.record) +
           ", \"field\": " + JsonReporter::quote(issue.field) +
           ", \"kind\": " + JsonReporter::quote(issue.kind) +
           ", \"baseline\": " + format_number(issue.baseline) +
           ", \"candidate\": " + format_number(issue.candidate) +
           ", \"rel_delta\": " + format_number(issue.rel_delta) +
           ", \"allowed\": " + format_number(issue.allowed) + " }";
  }
  out += report.issues.empty() ? "]\n" : "\n    ]\n";
  out += "  }\n}\n";
  return out;
}

}  // namespace cobra::bench
