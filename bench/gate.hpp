#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

/// \file gate.hpp
/// The regression gate's pure logic, split out of the bench_gate binary so
/// it is unit-testable (same pattern as sweep.hpp / cobra_sweep). The gate
/// diffs a freshly produced bench or merged-sweep JSON ("candidate")
/// against a checked-in baseline (a BENCH_*.json trajectory file) and
/// fails when a numeric record field drifts outside a relative slack.
///
/// Two field classes, because they regress for different reasons:
///
///   * VALUE fields (cover-time means, fitted exponents, ratios, counts)
///     are deterministic or statistically stable across hosts — they are
///     gated by default with a two-sided relative `slack`.
///   * TIMING fields (anything whose name contains per_sec / seconds /
///     speedup / throughput / time) depend on the machine du jour — they
///     are SKIPPED by default and only gated when the caller opts in with
///     a separate `time_slack`, so a checked-in baseline still gates
///     semantics on any host while perf gating stays a deliberate,
///     same-host decision.
///
/// A record or field present in the baseline but missing from the
/// candidate fails the gate (a silently dropped measurement is a
/// regression too); extra candidate records/fields are ignored, so adding
/// a bench case does not require regenerating every baseline.

namespace cobra::bench {

/// Gate thresholds. `slack` is the two-sided relative tolerance for value
/// fields; timing fields are skipped unless `gate_time` is set, in which
/// case `time_slack` applies to them.
struct GateConfig {
  double slack = 0.05;
  double time_slack = 0.0;
  bool gate_time = false;
};

/// One gate failure (or the reason a comparison could not happen).
/// "non-finite" is the hard-mismatch kind for NaN/Inf measurements: a bench
/// JSON renders those as `null`, the gate maps them back to NaN, and ANY
/// comparison touching one fails regardless of slack — NaN compares false
/// with everything, so slack arithmetic alone would wave garbage through.
struct GateIssue {
  std::string record;
  std::string field;  ///< empty for record-level issues
  std::string kind;   ///< "missing-record" | "missing-field" |
                      ///< "exceeds-slack" | "non-finite"
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;  ///< |candidate - baseline| / max(|baseline|, eps)
  double allowed = 0.0;    ///< the slack that applied
};

/// Machine-readable verdict; render_gate_report serializes it.
struct GateReport {
  bool pass = true;
  std::size_t records_compared = 0;
  std::size_t fields_compared = 0;
  std::size_t time_fields_skipped = 0;
  std::vector<GateIssue> issues;
};

/// One flattened record: its gate name plus the numeric fields in file
/// order. Sweep-file records are namespaced "bench|spec|tN|record" so the
/// same record name under different cells cannot collide; duplicate names
/// within one file get a "#k" suffix in encounter order.
struct GateRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> fields;
};

/// True when `field` names a machine-dependent timing measurement
/// (case-insensitive substring match on per_sec / seconds / speedup /
/// throughput / time).
[[nodiscard]] bool is_timing_field(const std::string& field);

/// Flatten a bench JSON (JsonReporter schema) or a cobra_sweep merged file
/// into gate records. The format is auto-detected: a root "sweep" key
/// means every embedded run's "result" records are extracted under the
/// "bench|spec|tN|" prefix (quarantined failed_runs contribute nothing);
/// otherwise the root's own "records" array is used. Non-numeric fields
/// are ignored. Throws std::invalid_argument on malformed JSON or a root
/// that is neither format.
[[nodiscard]] std::vector<GateRecord> extract_gate_records(
    const std::string& json_text);

/// Diff candidate against baseline under `config`. Throws
/// std::invalid_argument when either input fails extract_gate_records.
[[nodiscard]] GateReport run_gate(const std::string& baseline_text,
                                  const std::string& candidate_text,
                                  const GateConfig& config);

/// The machine-readable report (`bench_gate --report`): config echo,
/// comparison counts, and one entry per issue.
[[nodiscard]] std::string render_gate_report(const GateReport& report,
                                             const GateConfig& config);

}  // namespace cobra::bench
