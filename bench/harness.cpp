#include "harness.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <thread>

#include "core/audit.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "util/fault.hpp"

namespace cobra::bench {

namespace {

/// Flags every bench accepts, appended to each bench's `extra` list.
/// The two inject-* flags are the sweep watchdog's test levers: any bench
/// can be told to die or stall on command, so resilience tests drive REAL
/// benches through REAL failure modes instead of mock children.
const std::vector<std::string>& shared_flags() {
  static const std::vector<std::string> flags = {
      "graph",   "out",   "smoke",
      "threads", "metrics", "trace",
      "fault-plan",
      "inject-crash-after", "inject-hang"};
  return flags;
}

/// Act on the harness-level fault flags, before any measurement runs:
/// --inject-crash-after <ms>  sleep, then die abruptly (_Exit, no cleanup,
///                            no --out written) — a segfault stand-in
/// --inject-hang <s>          stall up to s seconds (capped at 600 so an
///                            unwatched child still terminates), then exit
///                            nonzero — what a livelock looks like to the
///                            sweep's per-child timeout
void apply_injections(const io::Args& args) {
  if (args.has("inject-crash-after")) {
    const auto ms = args.get_uint("inject-crash-after", 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    std::cerr << "[bench] injected crash (--inject-crash-after)\n";
    std::_Exit(86);
  }
  if (args.has("inject-hang")) {
    const auto s = std::min<std::uint64_t>(args.get_uint("inject-hang", 0), 600);
    std::cerr << "[bench] injected hang for " << s
              << "s (--inject-hang)\n";
    std::this_thread::sleep_for(std::chrono::seconds(s));
    std::exit(87);  // a watchdog timeout should have fired long before this
  }
}

}  // namespace

io::Args parse_bench_args_checked(int argc, const char* const* argv,
                                  std::vector<std::string> extra) {
  for (const auto& flag : shared_flags()) extra.push_back(flag);
  io::Args args(argc, argv, extra);
  if (!args.positional().empty()) {
    // The pre-migration benches took positional [out.json] [n]; silently
    // ignoring those would overwrite recorded baselines in the cwd.
    throw std::invalid_argument("positional argument '" +
                                args.positional().front() +
                                "' not accepted (use --out / --graph)");
  }
  (void)args.get_uint("threads", 0);  // validate eagerly: fail at parse time
  (void)args.get_bool("smoke", false);
  return args;
}

std::string render_caps(const BenchCaps& caps,
                        const std::vector<std::string>& extra) {
  std::string graph;
  switch (caps.graph) {
    case BenchCaps::Graph::Effective: graph = "yes"; break;
    case BenchCaps::Graph::Partial: graph = "partial"; break;
    case BenchCaps::Graph::NoOp: graph = "no"; break;
  }
  std::string flags;
  for (const auto& flag : extra) {
    if (!flags.empty()) flags += ',';
    flags += flag;
  }
  for (const auto& flag : shared_flags()) {
    if (!flags.empty()) flags += ',';
    flags += flag;
  }
  return "bench-caps: graph=" + graph + " flags=" + flags;
}

BenchCaps::Graph parse_caps_graph(const std::string& caps_line) {
  const auto pos = caps_line.find("graph=");
  if (pos == std::string::npos) return BenchCaps::Graph::Effective;
  // Token ends at any whitespace (space, or the line's own newline when
  // graph= is the last token), not just ' '.
  const std::size_t begin = pos + 6;
  std::size_t end = begin;
  while (end < caps_line.size() &&
         !std::isspace(static_cast<unsigned char>(caps_line[end]))) {
    ++end;
  }
  const std::string value = caps_line.substr(begin, end - begin);
  if (value == "no") return BenchCaps::Graph::NoOp;
  if (value == "partial") return BenchCaps::Graph::Partial;
  return BenchCaps::Graph::Effective;
}

io::Args parse_bench_args(int argc, const char* const* argv,
                          std::vector<std::string> extra,
                          const BenchCaps& caps) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--caps") {
      std::cout << render_caps(caps, extra) << "\n";
      std::exit(0);
    }
  }
  try {
    io::Args args = parse_bench_args_checked(argc, argv, extra);
    if (args.has("threads")) {
      const auto n = static_cast<std::size_t>(args.get_uint("threads", 0));
      if (!par::request_global_pool_threads(n)) {
        std::cerr << "[bench] WARNING: --threads ignored; the global pool "
                     "was already created\n";
      }
    }
    util::fault::arm_from_env();  // COBRA_FAULT="site[@after][%p][#k],..."
    core::audit::arm_from_env();  // COBRA_AUDIT=0|1|2 invariant auditing
    // --fault-plan FILE arms a recorded schedule (one spec per line, with
    // seed= lines and # comments) — the replay lever for quarantined sweep
    // cells. Arms ON TOP of any COBRA_FAULT sites; a malformed file is a
    // hard parse error, unlike the env var's skip-and-warn.
    if (args.has("fault-plan")) {
      util::fault::arm_plan_file(args.get("fault-plan", ""));
    }
    // Arm the per-round trace sink before any measurement: the engine's
    // expand() gates on obs::trace_enabled(), so opening the file here is
    // all a bench needs to start streaming rounds.
    if (args.has("trace")) {
      obs::open_global_trace(args.get("trace", ""));
    }
    apply_injections(args);
    return args;
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\nflags: ";
    for (const auto& flag : extra) std::cerr << "--" << flag << " ";
    for (const auto& flag : shared_flags()) std::cerr << "--" << flag << " ";
    std::cerr << "\ngraph specs:\n" << gen::grammar_help();
    std::exit(1);
  }
}

graph::Graph bench_graph(const io::Args& args,
                         const std::string& fallback_spec) {
  try {
    return io::graph_from_args(args, fallback_spec);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    std::exit(1);
  }
}

std::uint64_t uint_flag(const io::Args& args, const std::string& name,
                        std::uint64_t fallback) {
  try {
    return args.get_uint(name, fallback);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    std::exit(1);
  }
}

// ---------------------------------------------------------------- JSON --

JsonReporter::JsonReporter(std::string benchmark)
    : benchmark_(std::move(benchmark)) {
  // The run manifest: every bench/sweep JSON is stamped with the host and
  // build fingerprint, so "this baseline came from a 1-core Release
  // container at <sha>" is in the record, not in prose.
  const obs::Manifest manifest = obs::current_manifest();
  context("hardware_concurrency",
          static_cast<double>(manifest.hardware_concurrency));
  context("git_sha", manifest.git_sha);
  context("build_type", manifest.build_type);
}

void JsonReporter::context(const std::string& key, const std::string& value) {
  context_.emplace_back(key, quote(value));
}

void JsonReporter::context(const std::string& key, double value) {
  context_.emplace_back(key, number(value));
}

JsonReporter::Record& JsonReporter::Record::field(const std::string& key,
                                                  double value) {
  fields_.emplace_back(key, JsonReporter::number(value));
  return *this;
}

JsonReporter::Record& JsonReporter::Record::field(const std::string& key,
                                                  const std::string& value) {
  fields_.emplace_back(key, JsonReporter::quote(value));
  return *this;
}

JsonReporter::Record& JsonReporter::record(std::string name) {
  records_.push_back(Record(std::move(name)));
  return records_.back();
}

bool JsonReporter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[json] ERROR: cannot open " << path << " for writing\n";
    return false;
  }
  out << render();
  out.flush();
  if (!out) {
    std::cerr << "[json] ERROR: write to " << path << " failed\n";
    return false;
  }
  std::cout << "[json] wrote " << path << "\n";
  return true;
}

std::string JsonReporter::render() const {
  std::ostringstream os;
  os << "{\n  \"benchmark\": " << quote(benchmark_) << ",\n  \"context\": {";
  for (std::size_t i = 0; i < context_.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    " << quote(context_[i].first) << ": "
       << context_[i].second;
  }
  os << "\n  },\n  \"records\": [";
  for (std::size_t r = 0; r < records_.size(); ++r) {
    const Record& rec = records_[r];
    os << (r == 0 ? "\n" : ",\n") << "    { \"name\": " << quote(rec.name_);
    for (const auto& [key, value] : rec.fields_) {
      os << ", " << quote(key) << ": " << value;
    }
    os << " }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string JsonReporter::quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {  // RFC 8259: control chars must be escaped
      constexpr char kHex[] = "0123456789abcdef";
      out += "\\u00";
      out += kHex[u >> 4];
      out += kHex[u & 0xf];
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string JsonReporter::number(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os.precision(15);
  os << value;
  return os.str();
}

// ----------------------------------------------------------- measuring --

stats::Summary measure(std::uint32_t trials, std::uint64_t seed,
                       const std::function<double(core::Engine&)>& trial) {
  return sim::replicate(trials, seed, trial);
}

std::string mean_ci(const stats::Summary& s, int precision) {
  return io::Table::fmt(s.mean, precision) + " +- " +
         io::Table::fmt(s.ci95_half, precision);
}

void print_fit(const std::string& label, const stats::PowerLawFit& fit,
               const std::string& expectation) {
  std::cout << label << ": fitted exponent = " << io::Table::fmt(fit.exponent, 3)
            << " +- " << io::Table::fmt(2.0 * fit.exponent_stderr, 3)
            << "  (R^2 = " << io::Table::fmt(fit.r_squared, 4) << ")"
            << "   [" << expectation << "]\n";
}

void print_header(const std::string& experiment_id, const std::string& claim) {
  std::cout << "==================================================================\n"
            << experiment_id << "\n" << claim << "\n"
            << "==================================================================\n";
}

// -------------------------------------------------------------- suites --

std::vector<SuiteCase> resolve_suite(const io::Args& args, bool smoke,
                                     std::vector<SuiteCase> cases) {
  if (args.has(io::kGraphFlag)) {
    const std::string spec = args.get(io::kGraphFlag, "");
    return {SuiteCase{spec, spec, {}}};
  }
  for (auto& c : cases) {
    if (smoke && !c.smoke_spec.empty()) c.spec = c.smoke_spec;
    c.smoke_spec.clear();
  }
  return cases;
}

Harness::Harness(std::string json_name, io::Args args)
    : args_(std::move(args)),
      smoke_(args_.get_bool("smoke", false)),
      json_(std::move(json_name)) {
  if (smoke_) json_.context("smoke", 1.0);
  if (has_graph()) json_.context("graph", args_.get(io::kGraphFlag, ""));
  json_.context("pool_threads", static_cast<double>(par::global_pool().size()));
}

std::uint32_t Harness::trials(std::uint32_t full_default,
                              std::uint32_t smoke_default) const {
  return static_cast<std::uint32_t>(
      uint_flag(args_, "trials", smoke_ ? smoke_default : full_default));
}

std::vector<BuiltCase> Harness::suite(std::vector<SuiteCase> cases) const {
  std::vector<BuiltCase> built;
  for (auto& c : resolve_suite(args_, smoke_, std::move(cases))) {
    try {
      if (has_graph()) {
        // One build per process even when a multi-table bench resolves its
        // suite once per table; a CSR copy is far cheaper than regenerating
        // a large spec graph.
        if (!override_graph_) {
          override_graph_ =
              std::make_shared<const graph::Graph>(gen::build_graph(c.spec));
        }
        built.push_back({std::move(c.name), std::move(c.spec), *override_graph_});
      } else {
        graph::Graph g = gen::build_graph(c.spec);
        built.push_back({std::move(c.name), std::move(c.spec), std::move(g)});
      }
    } catch (const std::invalid_argument& e) {
      std::cerr << e.what() << "\n";
      std::exit(1);
    }
  }
  return built;
}

int Harness::finish() {
  // --metrics: snapshot the global registry (plus the manifest) next to
  // the bench's records; --trace: flush and close the per-round JSONL.
  bool ok = true;
  if (args_.has("metrics")) {
    ok = obs::write_metrics_json(args_.get("metrics", "")) && ok;
  }
  obs::close_global_trace();
  if (args_.has("out")) {
    ok = json_.write(args_.get("out", "")) && ok;
  }
  return ok ? 0 : 1;
}

}  // namespace cobra::bench
