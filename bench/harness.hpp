#pragma once

/// \file harness.hpp
/// The bench-harness library. Every binary under bench/ is one experiment
/// (the repo's equivalent of the paper's tables/figures — the paper itself
/// is theory-only, so each table validates one theorem's *shape*: growth
/// exponent, bounded ratio, or ordering). The harness owns everything that
/// is not the experiment itself:
///
///   * the shared CLI (`--graph/--out/--smoke/--threads` + bench-specific
///     flags) via io::Args,
///   * suite construction: a bench declares (name, spec[, smoke_spec])
///     cases and the harness resolves them against `--graph`/`--smoke` and
///     builds every graph through the gen registry — one construction path
///     for benches, examples, and tests,
///   * the aligned io::Table printer and the Monte-Carlo `measure` helper,
///   * JSON reporting (`JsonReporter`, wired to `--out` by
///     `Harness::finish`), which records the `BENCH_*.json` trajectory.
///
/// A bench therefore declares its suite + measure lambdas and nothing
/// else. See EXPERIMENTS.md for the theorem -> bench map and the recorded
/// results.

#include <cstdint>
#include <deque>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "gen/registry.hpp"
#include "graph/graph.hpp"
#include "io/args.hpp"
#include "io/graph_flag.hpp"
#include "io/table.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace cobra::bench {

/// Shared bench flags. Every bench accepts:
///   --graph <spec>    construct the benched graph through the gen registry
///                     (replaces the declared suite with that one case).
///                     NOT every bench is graph-driven — a bench whose
///                     measurement ignores --graph declares that in its
///                     BenchCaps (see below) instead of every sweep script
///                     keeping a skip list
///   --out <path>      JSON output path (the BENCH_*.json trajectory)
///   --smoke           tiny sizes / few trials — the CI bit-rot guard; must
///                     finish in seconds and exercise the full code path
///   --threads <N>     worker count of the global pool (0 = hardware)
///   --metrics <path>  write a metrics-registry snapshot (counters/gauges/
///                     timers + the run manifest) as JSON on finish()
///   --trace <path>    stream one JSONL line per FrontierEngine round
///                     (see src/obs/trace.hpp for the schema)
///   --caps            print one machine-readable capability line and exit
///                     0 (what cobra_sweep queries before sweeping)
/// Bench-specific flags ride in `extra`. This variant throws
/// std::invalid_argument on a malformed flag or a positional argument —
/// the unit-testable path; mains use parse_bench_args below.
io::Args parse_bench_args_checked(int argc, const char* const* argv,
                                  std::vector<std::string> extra = {});

/// Per-bench capability metadata. The one consumer today is the sweep
/// driver: `cobra_sweep` asks each bench `--caps` and skips spec sweeps
/// over benches whose --graph does not drive the measurement (grid_drift
/// walks the Z^d chain directly; pair_collision's exact D(GxG) tables keep
/// tiny built-ins), replacing the hardcoded skip list such scripts used to
/// need.
struct BenchCaps {
  enum class Graph {
    Effective,  ///< --graph selects the benched graph (the default)
    Partial,    ///< --graph drives only part of the tables
    NoOp,       ///< --graph is accepted (shared CLI) but has no effect
  };
  Graph graph = Graph::Effective;
};

/// The `--caps` line: "bench-caps: graph=yes|partial|no flags=<csv>".
[[nodiscard]] std::string render_caps(const BenchCaps& caps,
                                      const std::vector<std::string>& extra);

/// Parse the graph capability back out of a `--caps` line (the sweep
/// driver's side); defaults to Effective when the token is absent (old
/// binaries).
[[nodiscard]] BenchCaps::Graph parse_caps_graph(const std::string& caps_line);

/// CLI twin of parse_bench_args_checked: on error prints the message plus
/// the GraphSpec grammar and exits 1 (a typo'd sweep script fails with
/// usage text), on `--caps` prints render_caps(caps, extra) and exits 0,
/// and on success applies --threads to the global pool.
io::Args parse_bench_args(int argc, const char* const* argv,
                          std::vector<std::string> extra = {},
                          const BenchCaps& caps = {});

/// Build --graph (or the fallback spec) through the registry, exiting with
/// the grammar table on a bad spec (same contract as parse_bench_args).
graph::Graph bench_graph(const io::Args& args, const std::string& fallback_spec);

/// Post-parse numeric flag read with the CLI exit contract: a malformed
/// value (e.g. `--trials abc`) prints the parse error and exits 1 instead
/// of escaping main as an exception. Benches read their numeric extras
/// (--trials/--horizon/--returns/...) through this.
std::uint64_t uint_flag(const io::Args& args, const std::string& name,
                        std::uint64_t fallback);

/// Machine-readable twin of the console tables: collects flat records and
/// writes one BENCH_<name>.json file. This is how the perf trajectory is
/// recorded across PRs — each bench that matters appends its numbers here
/// so later optimization work has a baseline to beat (EXPERIMENTS.md holds
/// the human-readable commentary).
///
/// Schema:
///   {
///     "benchmark": "<name>",
///     "context": { "<key>": <string|number>, ... },
///     "records": [ { "name": "...", "<field>": <number|string>, ... } ]
///   }
class JsonReporter {
 public:
  /// `benchmark` names the suite; the file is written by `write(path)`.
  explicit JsonReporter(std::string benchmark);

  void context(const std::string& key, const std::string& value);
  void context(const std::string& key, double value);

  /// Start a record; fill it with the returned handle.
  class Record {
   public:
    Record& field(const std::string& key, double value);
    Record& field(const std::string& key, const std::string& value);

   private:
    friend class JsonReporter;
    explicit Record(std::string name) : name_(std::move(name)) {}
    std::string name_;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// The returned reference stays valid for the reporter's lifetime
  /// (records live in a deque), so handles may be kept across later
  /// record() calls.
  Record& record(std::string name);

  /// Serialize to `path`; reports and returns failure instead of silently
  /// losing the baseline file.
  bool write(const std::string& path) const;

  [[nodiscard]] std::string render() const;

  /// RFC 8259 string escaping (quotes, backslashes, control chars) —
  /// public because the sweep merger embeds strings in JSON too and must
  /// not re-implement a weaker version.
  static std::string quote(const std::string& s);

 private:
  static std::string number(double value);

  std::string benchmark_;
  std::vector<std::pair<std::string, std::string>> context_;
  std::deque<Record> records_;  // stable references across record() calls
};

/// A Monte-Carlo measurement: run `trial` `trials` times on the global pool
/// with deterministic seeding and summarize. Thin wrapper over
/// sim::Runner::replicate — the repetition/CI aggregation lives in the sim
/// layer now; this name remains for the benches' convenience.
stats::Summary measure(std::uint32_t trials, std::uint64_t seed,
                       const std::function<double(core::Engine&)>& trial);

/// Pretty "mean +- ci" cell.
std::string mean_ci(const stats::Summary& s, int precision = 1);

/// Print a fitted exponent line under a sweep table.
void print_fit(const std::string& label, const stats::PowerLawFit& fit,
               const std::string& expectation);

void print_header(const std::string& experiment_id, const std::string& claim);

/// One declared experiment case: a display name plus the registry spec
/// that builds its graph, with an optional smaller spec used under
/// --smoke (empty: the full spec is cheap enough to reuse). Declaring a
/// vector of these is all a bench does; resolution and construction are
/// the harness's job.
struct SuiteCase {
  std::string name;
  std::string spec;
  std::string smoke_spec = {};
};

/// A resolved-and-built case as handed back to the bench's measure loop.
struct BuiltCase {
  std::string name;
  std::string spec;  // the spec that was actually built
  graph::Graph graph;
};

/// Pure resolution step (unit-tested): `--graph <spec>` collapses the
/// declared suite to that single case (named by the spec); otherwise
/// --smoke substitutes each case's smoke_spec where one is declared.
[[nodiscard]] std::vector<SuiteCase> resolve_suite(const io::Args& args,
                                                   bool smoke,
                                                   std::vector<SuiteCase> cases);

/// Per-bench driver object: owns the parsed flags and the JsonReporter,
/// resolves declared suites, and wires --out on exit. Typical main:
///
///   bench::Harness h("tree_cover",
///                    bench::parse_bench_args(argc, argv, {"trials"}));
///   const auto trials = h.trials(/*full=*/40, /*smoke=*/6);
///   bench::print_header("E9", "claim...");
///   for (const auto& c : h.suite({{"binary tree", "tree:levels=8"}})) {
///     ... measure on c.graph, add table rows, h.json().record(...) ...
///   }
///   return h.finish();
class Harness {
 public:
  /// `json_name` names the JSON suite ("benchmark" field); `args` comes
  /// from parse_bench_args[_checked]. Records --smoke / --graph / the pool
  /// size into the JSON context so a BENCH_*.json is self-describing.
  Harness(std::string json_name, io::Args args);

  [[nodiscard]] const io::Args& args() const noexcept { return args_; }
  [[nodiscard]] bool smoke() const noexcept { return smoke_; }

  /// True when --graph overrides the declared suite.
  [[nodiscard]] bool has_graph() const { return args_.has(io::kGraphFlag); }

  /// Trial count: --trials when given, else the mode's default.
  [[nodiscard]] std::uint32_t trials(std::uint32_t full_default,
                                     std::uint32_t smoke_default) const;

  /// Resolve the declared suite (resolve_suite) and build every graph
  /// through the registry. Exits 1 with the registry's message on a bad
  /// --graph spec (CLI contract, like bench_graph). The --graph override
  /// graph is built once and copied into later calls, so multi-table
  /// benches don't regenerate a large spec graph per table.
  [[nodiscard]] std::vector<BuiltCase> suite(std::vector<SuiteCase> cases) const;

  [[nodiscard]] JsonReporter& json() noexcept { return json_; }

  /// Write --out (when requested) and return the process exit code.
  [[nodiscard]] int finish();

 private:
  io::Args args_;
  bool smoke_;
  JsonReporter json_;
  /// Cache for the --graph override build (suite() is called per table).
  mutable std::shared_ptr<const graph::Graph> override_graph_;
};

}  // namespace cobra::bench
