#include "sweep.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#ifdef __unix__
#include <sys/wait.h>
#endif

#include "harness.hpp"
#include "util/fault.hpp"

namespace cobra::bench {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// A comma segment starts a new spec when it names a family: "rreg:n=128"
/// (has ':') or a bare "complete" (no '='); "d=4" continues the previous
/// spec.
bool starts_new_spec(const std::string& segment) {
  return segment.find(':') != std::string::npos ||
         segment.find('=') == std::string::npos;
}

/// JsonReporter's RFC 8259 escaping — one implementation for every string
/// this library embeds in JSON.
std::string quote(const std::string& s) { return JsonReporter::quote(s); }

/// Re-indent a child JSON document by `indent` spaces (skipping the first
/// line, which lands after "result": ).
std::string indent_json(const std::string& text, const std::string& indent) {
  std::string out;
  out.reserve(text.size());
  bool first = true;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (!first) out += "\n" + indent;
    out += line;
    first = false;
  }
  return out;
}

}  // namespace

std::vector<std::string> split_spec_list(const std::string& text) {
  std::vector<std::string> specs;
  std::string current;
  const auto flush = [&] {
    const std::string spec = trim(current);
    if (!spec.empty()) specs.push_back(spec);
    current.clear();
  };
  std::string segment;
  const auto handle_segment = [&] {
    const std::string seg = trim(segment);
    segment.clear();
    if (seg.empty()) return;
    if (!current.empty() && starts_new_spec(seg)) flush();
    if (!current.empty()) current += ',';
    current += seg;
  };
  for (const char c : text) {
    if (c == ';') {
      handle_segment();
      flush();
    } else if (c == ',') {
      handle_segment();
    } else {
      segment += c;
    }
  }
  handle_segment();
  flush();
  return specs;
}

std::vector<std::size_t> split_uint_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::string token;
  const auto flush = [&] {
    const std::string t = trim(token);
    token.clear();
    if (t.empty()) return;
    std::size_t consumed = 0;
    unsigned long long value = 0;
    try {
      value = std::stoull(t, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("sweep: bad count '" + t + "' in list");
    }
    if (consumed != t.size()) {
      throw std::invalid_argument("sweep: bad count '" + t + "' in list");
    }
    values.push_back(static_cast<std::size_t>(value));
  };
  for (const char c : text) {
    if (c == ',' || c == ';') {
      flush();
    } else {
      token += c;
    }
  }
  flush();
  if (values.empty()) {
    throw std::invalid_argument("sweep: empty count list");
  }
  return values;
}

std::uint64_t backoff_delay_ms(const RetryPolicy& policy, std::size_t attempt) {
  constexpr std::uint64_t kCapMs = 60'000;
  const double factor = policy.factor < 1.0 ? 1.0 : policy.factor;
  double delay = static_cast<double>(policy.backoff_ms) *
                 std::pow(factor, static_cast<double>(attempt));
  if (!(delay < static_cast<double>(kCapMs))) delay = static_cast<double>(kCapMs);
  return static_cast<std::uint64_t>(delay);
}

namespace {

/// std::system returns a wait(2) status on POSIX, not the exit code;
/// decode it so "exit 86" means the child's actual _Exit(86) and a signal
/// death reads as the conventional 128+sig.
int decode_wait_status(int rc) {
#ifdef __unix__
  if (WIFEXITED(rc)) return WEXITSTATUS(rc);
  if (WIFSIGNALED(rc)) return 128 + WTERMSIG(rc);
  return rc;
#else
  return rc;
#endif
}

}  // namespace

bool timeout_binary_available() {
  return decode_wait_status(
             std::system("timeout --version >/dev/null 2>&1")) == 0;
}

int spawn_child(const std::string& cmd) {
  if (util::fault::should_fail("sweep.child_spawn")) return 127;
  return decode_wait_status(std::system(cmd.c_str()));
}

bool looks_like_bench_json(const std::string& text) {
  const std::string body = trim(text);
  if (body.empty() || body.front() != '{' || body.back() != '}') return false;
  if (body.find("\"benchmark\"") == std::string::npos ||
      body.find("\"records\"") == std::string::npos) {
    return false;
  }
  // Structural balance outside strings: a truncated child file usually
  // still ends at SOME closing brace (the last complete record), so the
  // depth must return to zero at the final byte and at no earlier one.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
      if (depth == 0 && i + 1 != body.size()) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::string merge_sweep_json(
    const std::vector<SweepRun>& runs, std::size_t expected_runs,
    const std::vector<std::pair<std::string, std::string>>& context) {
  return merge_sweep_json(runs, {}, expected_runs, context);
}

std::string merge_sweep_json(
    const std::vector<SweepRun>& runs, const std::vector<FailedRun>& failed,
    std::size_t expected_runs,
    const std::vector<std::pair<std::string, std::string>>& context) {
  std::ostringstream os;
  os << "{\n  \"sweep\": \"cobra_sweep\",\n  \"context\": {\n"
     << "    \"expected_runs\": " << expected_runs;
  for (const auto& [key, value] : context) {
    os << ",\n    " << quote(key) << ": " << quote(value);
  }
  os << "\n  },\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    os << (i == 0 ? "\n" : ",\n") << "    { \"sweep_run_id\": " << i
       << ", \"bench\": " << quote(run.bench)
       << ", \"spec\": " << quote(run.spec) << ", \"threads\": " << run.threads
       << ",\n      \"result\": " << indent_json(run.json_text, "      ");
    // Metrics ride AFTER "result": extract_merged_runs brace-matches the
    // result object and then scans forward for the next sweep_run_id, so a
    // trailing sibling key is invisible to the resume/validate machinery.
    if (!run.metrics_json.empty()) {
      os << ",\n      \"metrics\": " << indent_json(run.metrics_json, "      ");
    }
    os << " }";
  }
  os << "\n  ]";
  if (!failed.empty()) {
    os << ",\n  \"failed_runs\": [";
    for (std::size_t i = 0; i < failed.size(); ++i) {
      const FailedRun& f = failed[i];
      os << (i == 0 ? "\n" : ",\n") << "    { \"failed_run_id\": " << i
         << ", \"bench\": " << quote(f.bench) << ", \"spec\": " << quote(f.spec)
         << ", \"threads\": " << f.threads << ", \"attempts\": " << f.attempts
         << ", \"reason\": " << quote(f.reason) << " }";
    }
    os << "\n  ]";
  }
  os << "\n}\n";
  return os.str();
}

namespace {

std::size_t count_key(const std::string& text, const std::string& key) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    ++count;
    pos += key.size();
  }
  return count;
}

[[noreturn]] void extract_fail(const std::string& why) {
  throw std::invalid_argument("extract_merged_runs: " + why);
}

/// Decode the JSON string starting at the opening quote `pos`; advances
/// `pos` past the closing quote. Understands JsonReporter's escapes
/// (\" \\ and \u00XX control characters).
std::string json_unquote(const std::string& text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] != '"') extract_fail("expected '\"'");
  std::string out;
  ++pos;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '"') {
      ++pos;
      return out;
    }
    if (c == '\\') {
      if (pos + 1 >= text.size()) break;
      const char esc = text[pos + 1];
      if (esc == 'u') {
        if (pos + 5 >= text.size()) break;
        const std::string hex = text.substr(pos + 2, 4);
        out += static_cast<char>(std::stoi(hex, nullptr, 16));
        pos += 6;
      } else {
        out += esc == 'n' ? '\n' : esc == 't' ? '\t' : esc;
        pos += 2;
      }
      continue;
    }
    out += c;
    ++pos;
  }
  extract_fail("unterminated string");
}

/// Value of `"key": ` scanning forward from `from` within `text`,
/// stopping the search at `limit`. Returns npos when absent.
std::size_t find_key(const std::string& text, const std::string& key,
                     std::size_t from, std::size_t limit) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle, from);
  if (pos == std::string::npos || pos >= limit) return std::string::npos;
  std::size_t value = pos + needle.size();
  while (value < text.size() && text[value] == ' ') ++value;
  return value;
}

}  // namespace

std::size_t count_merged_runs(const std::string& merged_text) {
  return count_key(merged_text, "\"sweep_run_id\"");
}

std::size_t count_failed_runs(const std::string& merged_text) {
  return count_key(merged_text, "\"failed_run_id\"");
}

std::vector<SweepRun> extract_merged_runs(const std::string& merged_text) {
  std::vector<SweepRun> runs;
  std::size_t pos = 0;
  const std::string marker = "\"sweep_run_id\":";
  while ((pos = merged_text.find(marker, pos)) != std::string::npos) {
    const std::size_t entry = pos;
    pos += marker.size();
    SweepRun run;
    std::size_t at = find_key(merged_text, "bench", entry, merged_text.size());
    if (at == std::string::npos) extract_fail("run without \"bench\"");
    run.bench = json_unquote(merged_text, at);
    at = find_key(merged_text, "spec", at, merged_text.size());
    if (at == std::string::npos) extract_fail("run without \"spec\"");
    run.spec = json_unquote(merged_text, at);
    at = find_key(merged_text, "threads", at, merged_text.size());
    if (at == std::string::npos) extract_fail("run without \"threads\"");
    try {
      run.threads = static_cast<std::size_t>(
          std::stoull(merged_text.substr(at)));
    } catch (const std::exception&) {
      extract_fail("bad \"threads\" value");
    }
    at = find_key(merged_text, "result", at, merged_text.size());
    if (at == std::string::npos) extract_fail("run without \"result\"");
    if (at >= merged_text.size() || merged_text[at] != '{') {
      extract_fail("\"result\" is not an object");
    }
    // Brace-match the embedded child document (strings tracked, so a '}'
    // inside a spec string cannot close it early).
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    std::size_t end = at;
    for (; end < merged_text.size(); ++end) {
      const char c = merged_text[end];
      if (in_string) {
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++end;
          break;
        }
      }
    }
    if (depth != 0) extract_fail("unbalanced \"result\" object");
    // Undo the merge's 6-space re-indent to recover the child's own text.
    std::string body = merged_text.substr(at, end - at);
    std::string dedented;
    dedented.reserve(body.size());
    std::size_t line_start = 0;
    while (line_start <= body.size()) {
      std::size_t line_end = body.find('\n', line_start);
      if (line_end == std::string::npos) line_end = body.size();
      std::string line = body.substr(line_start, line_end - line_start);
      if (line_start > 0 && line.rfind("      ", 0) == 0) line = line.substr(6);
      dedented += line;
      if (line_end == body.size()) break;
      dedented += '\n';
      line_start = line_end + 1;
    }
    run.json_text = dedented + "\n";
    runs.push_back(std::move(run));
    pos = end;
  }
  return runs;
}

std::vector<std::string> distinct_context_values(const std::string& merged_text,
                                                 const std::string& key) {
  std::vector<std::string> values;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = merged_text.find(needle, pos)) != std::string::npos) {
    std::size_t at = pos + needle.size();
    pos = at;
    while (at < merged_text.size() && merged_text[at] == ' ') ++at;
    if (at >= merged_text.size()) break;
    std::string value;
    if (merged_text[at] == '"') {
      try {
        value = json_unquote(merged_text, at);
      } catch (const std::invalid_argument&) {
        continue;  // malformed occurrence; skip, don't abort the scan
      }
    } else {
      // Number/bare literal: runs to the next JSON delimiter.
      std::size_t end = merged_text.find_first_of(",}\n]", at);
      if (end == std::string::npos) end = merged_text.size();
      value = trim(merged_text.substr(at, end - at));
      if (value.empty()) continue;
    }
    if (std::find(values.begin(), values.end(), value) == values.end()) {
      values.push_back(value);
    }
  }
  std::sort(values.begin(), values.end());
  return values;
}

std::size_t expected_runs_of(const std::string& merged_text) {
  const std::string key = "\"expected_runs\": ";
  const std::size_t pos = merged_text.find(key);
  if (pos == std::string::npos) return 0;
  try {
    return static_cast<std::size_t>(
        std::stoull(merged_text.substr(pos + key.size())));
  } catch (const std::exception&) {
    return 0;
  }
}

bool validate_merged_sweep(const std::string& merged_text, std::size_t expect,
                           std::string* error) {
  const auto set_error = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (merged_text.find("\"sweep\": \"cobra_sweep\"") == std::string::npos) {
    return set_error("not a cobra_sweep merged file");
  }
  const std::size_t recorded = expected_runs_of(merged_text);
  const std::size_t want = expect != 0 ? expect : recorded;
  if (want == 0) return set_error("no expected_runs recorded or requested");
  if (expect != 0 && recorded != expect) {
    return set_error("file expected_runs " + std::to_string(recorded) +
                     " != requested " + std::to_string(expect));
  }
  const std::size_t have = count_merged_runs(merged_text);
  const std::size_t quarantined = count_failed_runs(merged_text);
  if (have + quarantined != want) {
    return set_error("merge accounts for " + std::to_string(have) + " runs + " +
                     std::to_string(quarantined) + " failed, expected " +
                     std::to_string(want) + " (dropped runs)");
  }
  return true;
}

}  // namespace cobra::bench
