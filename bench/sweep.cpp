#include "sweep.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "harness.hpp"

namespace cobra::bench {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// A comma segment starts a new spec when it names a family: "rreg:n=128"
/// (has ':') or a bare "complete" (no '='); "d=4" continues the previous
/// spec.
bool starts_new_spec(const std::string& segment) {
  return segment.find(':') != std::string::npos ||
         segment.find('=') == std::string::npos;
}

/// JsonReporter's RFC 8259 escaping — one implementation for every string
/// this library embeds in JSON.
std::string quote(const std::string& s) { return JsonReporter::quote(s); }

/// Re-indent a child JSON document by `indent` spaces (skipping the first
/// line, which lands after "result": ).
std::string indent_json(const std::string& text, const std::string& indent) {
  std::string out;
  out.reserve(text.size());
  bool first = true;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (!first) out += "\n" + indent;
    out += line;
    first = false;
  }
  return out;
}

}  // namespace

std::vector<std::string> split_spec_list(const std::string& text) {
  std::vector<std::string> specs;
  std::string current;
  const auto flush = [&] {
    const std::string spec = trim(current);
    if (!spec.empty()) specs.push_back(spec);
    current.clear();
  };
  std::string segment;
  const auto handle_segment = [&] {
    const std::string seg = trim(segment);
    segment.clear();
    if (seg.empty()) return;
    if (!current.empty() && starts_new_spec(seg)) flush();
    if (!current.empty()) current += ',';
    current += seg;
  };
  for (const char c : text) {
    if (c == ';') {
      handle_segment();
      flush();
    } else if (c == ',') {
      handle_segment();
    } else {
      segment += c;
    }
  }
  handle_segment();
  flush();
  return specs;
}

std::vector<std::size_t> split_uint_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::string token;
  const auto flush = [&] {
    const std::string t = trim(token);
    token.clear();
    if (t.empty()) return;
    std::size_t consumed = 0;
    unsigned long long value = 0;
    try {
      value = std::stoull(t, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("sweep: bad count '" + t + "' in list");
    }
    if (consumed != t.size()) {
      throw std::invalid_argument("sweep: bad count '" + t + "' in list");
    }
    values.push_back(static_cast<std::size_t>(value));
  };
  for (const char c : text) {
    if (c == ',' || c == ';') {
      flush();
    } else {
      token += c;
    }
  }
  flush();
  if (values.empty()) {
    throw std::invalid_argument("sweep: empty count list");
  }
  return values;
}

bool looks_like_bench_json(const std::string& text) {
  const std::string body = trim(text);
  return !body.empty() && body.front() == '{' && body.back() == '}' &&
         body.find("\"benchmark\"") != std::string::npos &&
         body.find("\"records\"") != std::string::npos;
}

std::string merge_sweep_json(
    const std::vector<SweepRun>& runs, std::size_t expected_runs,
    const std::vector<std::pair<std::string, std::string>>& context) {
  std::ostringstream os;
  os << "{\n  \"sweep\": \"cobra_sweep\",\n  \"context\": {\n"
     << "    \"expected_runs\": " << expected_runs;
  for (const auto& [key, value] : context) {
    os << ",\n    " << quote(key) << ": " << quote(value);
  }
  os << "\n  },\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const SweepRun& run = runs[i];
    os << (i == 0 ? "\n" : ",\n") << "    { \"sweep_run_id\": " << i
       << ", \"bench\": " << quote(run.bench)
       << ", \"spec\": " << quote(run.spec) << ", \"threads\": " << run.threads
       << ",\n      \"result\": " << indent_json(run.json_text, "      ")
       << " }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::size_t count_merged_runs(const std::string& merged_text) {
  const std::string key = "\"sweep_run_id\"";
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = merged_text.find(key, pos)) != std::string::npos) {
    ++count;
    pos += key.size();
  }
  return count;
}

std::size_t expected_runs_of(const std::string& merged_text) {
  const std::string key = "\"expected_runs\": ";
  const std::size_t pos = merged_text.find(key);
  if (pos == std::string::npos) return 0;
  try {
    return static_cast<std::size_t>(
        std::stoull(merged_text.substr(pos + key.size())));
  } catch (const std::exception&) {
    return 0;
  }
}

bool validate_merged_sweep(const std::string& merged_text, std::size_t expect,
                           std::string* error) {
  const auto set_error = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (merged_text.find("\"sweep\": \"cobra_sweep\"") == std::string::npos) {
    return set_error("not a cobra_sweep merged file");
  }
  const std::size_t recorded = expected_runs_of(merged_text);
  const std::size_t want = expect != 0 ? expect : recorded;
  if (want == 0) return set_error("no expected_runs recorded or requested");
  if (expect != 0 && recorded != expect) {
    return set_error("file expected_runs " + std::to_string(recorded) +
                     " != requested " + std::to_string(expect));
  }
  const std::size_t have = count_merged_runs(merged_text);
  if (have != want) {
    return set_error("merge holds " + std::to_string(have) + " runs, expected " +
                     std::to_string(want) + " (dropped runs)");
  }
  return true;
}

}  // namespace cobra::bench
