#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file sweep.hpp
/// The sweep driver's pure logic, split out of the cobra_sweep binary so
/// it is unit-testable: spec-list / thread-list parsing, the merged
/// longitudinal JSON format, and its validation. cobra_sweep.cpp is the
/// process-spawning shell around these.
///
/// Merged file schema (one file per sweep, the ROADMAP's "longitudinal
/// JSON" replacing the shell-loop + smoke_*.json workflow):
///
///   {
///     "sweep": "cobra_sweep",
///     "context": { "expected_runs": N, ... },
///     "runs": [
///       { "sweep_run_id": 0, "bench": "...", "spec": "...",
///         "threads": T, "result": { <the bench's own --out JSON> },
///         "metrics": { <the child's --metrics snapshot, when collected> } },
///       ...
///     ],
///     "failed_runs": [
///       { "failed_run_id": 0, "bench": "...", "spec": "...",
///         "threads": T, "attempts": A, "reason": "..." },
///       ...
///     ]
///   }
///
/// Each run's `result` is the child bench's JSON embedded verbatim (we
/// wrote it, so it needs re-indenting, not re-parsing); `sweep_run_id` is
/// the distinctive token validation counts, chosen because no bench JSON
/// field uses that name. `failed_runs` (omitted when empty) quarantines
/// cells whose child kept failing after the watchdog's retries: the sweep
/// completes AROUND a poisoned cell and the file says so explicitly —
/// validation accepts a file exactly when runs + failed_runs account for
/// every expected cell, so a silently dropped run still fails it.

namespace cobra::bench {

/// Split a --graph value into GraphSpecs. Separators: ';' always, and ','
/// smartly — a comma-separated segment CONTINUES the previous spec when it
/// is a bare key=value pair and STARTS a new spec when it names a family
/// (contains ':' or has no '='). So the acceptance-style
/// "rreg:n=128,d=4,seed=1,ring:n=64" is two specs, even though specs
/// themselves contain commas. Whitespace around separators is trimmed;
/// empty segments are dropped.
[[nodiscard]] std::vector<std::string> split_spec_list(const std::string& text);

/// Split "1,2,8" into thread counts. Throws std::invalid_argument on a
/// non-numeric or empty entry.
[[nodiscard]] std::vector<std::size_t> split_uint_list(const std::string& text);

/// One completed child run.
struct SweepRun {
  std::string bench;
  std::string spec;
  std::size_t threads = 0;
  std::string json_text;     ///< the child's --out file, verbatim
  /// The child's --metrics snapshot, verbatim; empty = no metrics were
  /// collected for this cell (the "metrics" key is then omitted from the
  /// merged run object). Resumed cells reuse the prior file's result and
  /// carry no metrics.
  std::string metrics_json;
};

/// One quarantined cell: a (bench, spec, threads) point whose child failed
/// every watchdog attempt.
struct FailedRun {
  std::string bench;
  std::string spec;
  std::size_t threads = 0;
  std::size_t attempts = 0;  ///< attempts consumed (1 + retries)
  std::string reason;        ///< "exit 134", "timeout (exit 124)", ...
};

/// The watchdog's retry schedule for one sweep cell. A failed attempt
/// (non-zero exit, timeout, or unusable --out JSON) is retried up to
/// `retries` more times, sleeping backoff_ms * factor^k between attempts;
/// a cell that exhausts its attempts is quarantined into "failed_runs"
/// instead of aborting the sweep.
struct RetryPolicy {
  std::size_t retries = 1;       ///< extra attempts after the first
  std::uint64_t backoff_ms = 200;  ///< delay before the first retry
  double factor = 2.0;           ///< exponential growth per retry
  std::uint64_t timeout_s = 0;   ///< per-attempt wall clock; 0 = none
};

/// Delay before retry `attempt` (0-based: the sleep after the attempt-th
/// failure) — backoff_ms * factor^attempt, capped at 60 s so a typo'd
/// factor cannot park the sweep.
[[nodiscard]] std::uint64_t backoff_delay_ms(const RetryPolicy& policy,
                                             std::size_t attempt);

/// True when the coreutils `timeout` binary is runnable from a shell.
/// cobra_sweep probes this ONCE at startup when --timeout was requested:
/// on a system without coreutils (minimal containers, BSDs) the watchdog
/// falls back to running children with no wall-clock bound (with a loud
/// warning) instead of turning every cell into an exec failure.
[[nodiscard]] bool timeout_binary_available();

/// Launch one child command line through the shell and return its DECODED
/// exit code (std::system's wait(2) status folded to the child's real exit
/// code; signal deaths read as the conventional 128+sig). Carries the
/// `sweep.child_spawn` fault site (GRACEFUL at the sweep level): an armed
/// firing fails the attempt with exit 127 — "command not found", the shell
/// convention for a spawn that never ran — without executing anything, and
/// the cell rides the normal retry/backoff/quarantine machinery.
[[nodiscard]] int spawn_child(const std::string& cmd);

/// Structural check that `text` is a bench JSON record (JsonReporter
/// schema): an object with "benchmark" and "records" keys whose braces,
/// brackets, and strings balance — depth returns to zero exactly at the
/// final byte. The balance pass is what rejects a TRUNCATED file, which
/// typically still ends at some inner '}' (a crashed child's partial
/// write); checking front/back characters alone would embed it.
[[nodiscard]] bool looks_like_bench_json(const std::string& text);

/// Render the merged longitudinal JSON. `context` entries are emitted as
/// raw key -> quoted-string pairs next to the "expected_runs" count, which
/// is what validate_merged_sweep later re-checks.
[[nodiscard]] std::string merge_sweep_json(
    const std::vector<SweepRun>& runs, std::size_t expected_runs,
    const std::vector<std::pair<std::string, std::string>>& context);

/// Merge with quarantined cells: emits the "failed_runs" section after
/// "runs" (omitted when `failed` is empty — byte-identical to the overload
/// above in that case).
[[nodiscard]] std::string merge_sweep_json(
    const std::vector<SweepRun>& runs, const std::vector<FailedRun>& failed,
    std::size_t expected_runs,
    const std::vector<std::pair<std::string, std::string>>& context);

/// Count the runs embedded in a merged file (occurrences of the
/// "sweep_run_id" key).
[[nodiscard]] std::size_t count_merged_runs(const std::string& merged_text);

/// Count the quarantined cells (occurrences of the "failed_run_id" key).
[[nodiscard]] std::size_t count_failed_runs(const std::string& merged_text);

/// Extract the recorded "expected_runs" count (0 when absent/unparsable).
[[nodiscard]] std::size_t expected_runs_of(const std::string& merged_text);

/// Re-extract the completed runs from a merged file — the inverse of
/// merge_sweep_json, used by `cobra_sweep --resume` to skip cells a
/// previous (interrupted or partially failed) sweep already finished.
/// Structural parse: brace-matched "result" bodies are de-indented back to
/// the child's original text; quarantined cells are NOT returned (resume
/// retries them). Throws std::invalid_argument on a malformed file.
[[nodiscard]] std::vector<SweepRun> extract_merged_runs(
    const std::string& merged_text);

/// Distinct raw values of `"key": <value>` occurrences inside the embedded
/// run results (sorted, deduplicated; string values keep their quotes
/// stripped, numbers their literal spelling). The host-fingerprint check:
/// `cobra_sweep --validate` warns when the merged runs carry more than one
/// distinct git_sha / build_type / hardware_concurrency — a longitudinal
/// file quietly mixing hosts or builds is how baselines go bad.
[[nodiscard]] std::vector<std::string> distinct_context_values(
    const std::string& merged_text, const std::string& key);

/// True when the merged file accounts for exactly the cells it promises:
/// completed runs + quarantined failed_runs == expected. `expect` == 0
/// trusts the file's own expected_runs. The `cobra_sweep --validate`
/// ctest and the CI sweep-smoke step both call this; a silently dropped
/// run (crashed child, unwritable file) fails it, an explicitly
/// quarantined one does not.
[[nodiscard]] bool validate_merged_sweep(const std::string& merged_text,
                                         std::size_t expect,
                                         std::string* error);

}  // namespace cobra::bench
