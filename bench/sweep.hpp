#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file sweep.hpp
/// The sweep driver's pure logic, split out of the cobra_sweep binary so
/// it is unit-testable: spec-list / thread-list parsing, the merged
/// longitudinal JSON format, and its validation. cobra_sweep.cpp is the
/// process-spawning shell around these.
///
/// Merged file schema (one file per sweep, the ROADMAP's "longitudinal
/// JSON" replacing the shell-loop + smoke_*.json workflow):
///
///   {
///     "sweep": "cobra_sweep",
///     "context": { "expected_runs": N, ... },
///     "runs": [
///       { "sweep_run_id": 0, "bench": "...", "spec": "...",
///         "threads": T, "result": { <the bench's own --out JSON> } },
///       ...
///     ]
///   }
///
/// Each run's `result` is the child bench's JSON embedded verbatim (we
/// wrote it, so it needs re-indenting, not re-parsing); `sweep_run_id` is
/// the distinctive token validation counts, chosen because no bench JSON
/// field uses that name.

namespace cobra::bench {

/// Split a --graph value into GraphSpecs. Separators: ';' always, and ','
/// smartly — a comma-separated segment CONTINUES the previous spec when it
/// is a bare key=value pair and STARTS a new spec when it names a family
/// (contains ':' or has no '='). So the acceptance-style
/// "rreg:n=128,d=4,seed=1,ring:n=64" is two specs, even though specs
/// themselves contain commas. Whitespace around separators is trimmed;
/// empty segments are dropped.
[[nodiscard]] std::vector<std::string> split_spec_list(const std::string& text);

/// Split "1,2,8" into thread counts. Throws std::invalid_argument on a
/// non-numeric or empty entry.
[[nodiscard]] std::vector<std::size_t> split_uint_list(const std::string& text);

/// One completed child run.
struct SweepRun {
  std::string bench;
  std::string spec;
  std::size_t threads = 0;
  std::string json_text;  ///< the child's --out file, verbatim
};

/// Cheap structural check that `text` is a bench JSON record (JsonReporter
/// schema) — an object with "benchmark" and "records" keys. Guards the
/// merge against embedding a truncated or empty child file.
[[nodiscard]] bool looks_like_bench_json(const std::string& text);

/// Render the merged longitudinal JSON. `context` entries are emitted as
/// raw key -> quoted-string pairs next to the "expected_runs" count, which
/// is what validate_merged_sweep later re-checks.
[[nodiscard]] std::string merge_sweep_json(
    const std::vector<SweepRun>& runs, std::size_t expected_runs,
    const std::vector<std::pair<std::string, std::string>>& context);

/// Count the runs embedded in a merged file (occurrences of the
/// "sweep_run_id" key).
[[nodiscard]] std::size_t count_merged_runs(const std::string& merged_text);

/// Extract the recorded "expected_runs" count (0 when absent/unparsable).
[[nodiscard]] std::size_t expected_runs_of(const std::string& merged_text);

/// True when the merged file holds exactly the runs it promises —
/// `expect` == 0 trusts the file's own expected_runs. The
/// `cobra_sweep --validate` ctest and the CI sweep-smoke step both call
/// this; a dropped run (crashed child, unwritable file) fails it.
[[nodiscard]] bool validate_merged_sweep(const std::string& merged_text,
                                         std::size_t expect,
                                         std::string* error);

}  // namespace cobra::bench
