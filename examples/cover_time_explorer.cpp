/// Cover-time explorer: a CLI for interactive experimentation with every
/// process and graph family in the library. This is the "swiss-army"
/// example; the bench/ binaries are scripted versions of specific slices.
///
///   $ ./cover_time_explorer --family grid --n 1024 --k 2 --trials 100
///   $ ./cover_time_explorer --graph rreg:n=4096,d=6,seed=7 --process walt
///   $ ./cover_time_explorer --graph "gnp:n=2^16,avg_deg=8,lcc=1"
///
/// Flags:
///   --graph     a GraphSpec string built through the gen registry (run
///               with a bad spec to print the grammar table); overrides
///               --family
///   --family    path|cycle|complete|star|grid|grid3|torus|hypercube|tree|
///               lollipop|barbell|regular|er|powerlaw|ba|geometric  [grid]
///   --file      load an edge-list file instead of generating (see
///               io/graph_io.hpp for the format); overrides --family
///   --process   cobra|rw|gossip|pushpull|parallel|walt             [cobra]
///   --n         target vertex count (rounded per family)           [1024]
///   --k         cobra branching / parallel walker count            [2]
///   --degree    degree for regular family                          [4]
///   --trials    Monte-Carlo trials                                 [50]
///   --precision adaptive mode: run until the 95% CI half-width is
///               below this fraction of the mean (overrides --trials)
///   --seed      base seed                                          [1]
///   --curve     also print the coverage curve of one run           [false]

#include <cmath>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/cobra_walk.hpp"
#include "core/gossip.hpp"
#include "core/parallel_walks.hpp"
#include "core/random_walk.hpp"
#include "core/walt.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"
#include "io/args.hpp"
#include "io/graph_flag.hpp"
#include "io/graph_io.hpp"
#include "io/table.hpp"
#include "parallel/monte_carlo.hpp"
#include "sim/observers.hpp"
#include "sim/runner.hpp"
#include "stats/histogram.hpp"
#include "stats/sequential.hpp"
#include "stats/summary.hpp"

namespace {

using namespace cobra;

graph::Graph build_family(const std::string& family, std::uint32_t n,
                          std::uint32_t degree, core::Engine& gen) {
  if (family == "path") return graph::make_path(n);
  if (family == "cycle") return graph::make_cycle(n);
  if (family == "complete") return graph::make_complete(n);
  if (family == "star") return graph::make_star(n);
  if (family == "grid") {
    auto side = static_cast<std::uint32_t>(std::round(std::sqrt(n)));
    return graph::make_grid(2, std::max(2u, side));
  }
  if (family == "grid3") {
    auto side = static_cast<std::uint32_t>(std::round(std::cbrt(n)));
    return graph::make_grid(3, std::max(2u, side));
  }
  if (family == "torus") {
    auto side = static_cast<std::uint32_t>(std::round(std::sqrt(n)));
    return graph::make_grid(2, std::max(3u, side), true);
  }
  if (family == "hypercube") {
    std::uint32_t dim = 1;
    while ((1u << (dim + 1)) <= n) ++dim;
    return graph::make_hypercube(dim);
  }
  if (family == "tree") {
    std::uint32_t levels = 1, total = 1, layer = 1;
    while (total + layer * 2 <= n) {
      layer *= 2;
      total += layer;
      ++levels;
    }
    return graph::make_kary_tree(2, levels);
  }
  if (family == "lollipop") return graph::make_lollipop(2 * n / 3, n / 3);
  if (family == "barbell") return graph::make_barbell(n / 3, n / 3);
  if (family == "regular") {
    const std::uint32_t even_n = (n * degree) % 2 == 0 ? n : n + 1;
    return graph::make_random_regular(gen, even_n, degree);
  }
  if (family == "er") {
    const double p = 2.0 * std::log(n) / n;
    return graph::largest_component(graph::make_erdos_renyi(gen, n, p)).graph;
  }
  if (family == "powerlaw") {
    return graph::largest_component(
               graph::make_chung_lu_power_law(gen, n, 2.5, 3.0))
        .graph;
  }
  if (family == "ba") return graph::make_barabasi_albert(gen, n, 3);
  if (family == "geometric") {
    const double r = 1.8 * std::sqrt(std::log(n) / (3.14159265 * n));
    return graph::largest_component(graph::make_random_geometric(gen, n, r))
        .graph;
  }
  throw std::invalid_argument("unknown family: " + family);
}

/// Every process runs to cover through the one shared sim::Runner — adding
/// a process here is "construct it, hand it to cover_rounds", nothing else.
double run_process(const std::string& process, const graph::Graph& g,
                   std::uint32_t k, core::Engine& gen) {
  if (process == "cobra") {
    return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, k);
  }
  if (process == "rw") {
    return sim::cover_rounds<core::RandomWalk>(gen, g, 0u);
  }
  if (process == "gossip") {
    return sim::cover_rounds<core::Gossip>(gen, g, 0u, core::GossipMode::Push);
  }
  if (process == "pushpull") {
    core::Gossip gossip(g, 0, core::GossipMode::PushPull);
    return static_cast<double>(sim::run_cover(gossip, gen, 1u << 26).rounds);
  }
  if (process == "parallel") {
    return sim::cover_rounds<core::ParallelWalks>(gen, g, 0u, k);
  }
  if (process == "walt") {
    return sim::cover_rounds<core::Walt>(gen, g, 0u,
                                         std::max(1u, g.num_vertices() / 2),
                                         true);
  }
  throw std::invalid_argument("unknown process: " + process);
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv,
                      {"family", "graph", "process", "n", "k", "degree",
                       "trials", "seed", "curve", "file", "precision"});
  const std::string family = args.get("family", "grid");
  const std::string process = args.get("process", "cobra");
  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 1024));
  const auto k = static_cast<std::uint32_t>(args.get_uint("k", 2));
  const auto degree = static_cast<std::uint32_t>(args.get_uint("degree", 4));
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 50));
  const std::uint64_t seed = args.get_uint("seed", 1);
  const bool curve = args.get_bool("curve", false);

  core::Engine graph_gen(seed);
  graph::Graph g;
  if (args.has("graph")) {
    try {
      g = io::graph_from_args(args, "");
    } catch (const std::invalid_argument& e) {
      // Same contract as the benches: a typo'd spec prints the grammar
      // table (graph_from_args appends it) and exits cleanly.
      std::cerr << e.what() << "\n";
      return 1;
    }
  } else if (args.has("file")) {
    g = graph::largest_component(io::load_edge_list(args.get("file", "")))
            .graph;
  } else {
    g = build_family(family, n, degree, graph_gen);
  }

  std::cout << "family = "
            << (args.has("graph") ? args.get("graph", "") : family)
            << ", n = " << g.num_vertices()
            << ", m = " << g.num_edges() << ", degrees in ["
            << g.min_degree() << ", " << g.max_degree() << "]\n";
  if (g.num_vertices() <= 4096) {
    const auto est = graph::estimate_conductance(g);
    std::cout << "spectral gap (lazy) = " << est.spectral_gap
              << ", conductance in [" << est.cheeger_lower << ", "
              << est.sweep_cut_upper << "]\n";
  }
  std::cout << "\n";

  std::vector<double> samples;
  if (args.has("precision")) {
    stats::SequentialOptions seq;
    seq.base_seed = seed;
    seq.relative_tolerance = args.get_double("precision", 0.02);
    const auto adaptive = stats::run_until_precise(
        par::global_pool(), seq, [&](core::Engine& gen, std::uint32_t) {
          return run_process(process, g, k, gen);
        });
    std::cout << "adaptive mode: " << adaptive.trials_used << " trials, "
              << (adaptive.converged ? "converged" : "NOT converged") << "\n";
    // Re-materialize the sample for the histogram below (same seeds).
    par::MonteCarloOptions opts;
    opts.base_seed = seed;
    opts.trials = adaptive.trials_used;
    samples = par::run_trials(par::global_pool(), opts,
                              [&](core::Engine& gen, std::uint32_t) {
                                return run_process(process, g, k, gen);
                              });
  } else {
    par::MonteCarloOptions opts;
    opts.base_seed = seed;
    opts.trials = trials;
    samples = par::run_trials(par::global_pool(), opts,
                              [&](core::Engine& gen, std::uint32_t) {
                                return run_process(process, g, k, gen);
                              });
  }
  const stats::Summary s = stats::summarize(samples);

  io::Table table({"statistic", "value"});
  table.set_align(0, io::Align::Left);
  table.add_row({"trials", io::Table::fmt_int(static_cast<long long>(s.count))});
  table.add_row({"mean cover time", io::Table::fmt(s.mean, 2)});
  table.add_row({"95% CI half-width", io::Table::fmt(s.ci95_half, 2)});
  table.add_row({"std dev", io::Table::fmt(s.stddev, 2)});
  table.add_row({"min / median / max",
                 io::Table::fmt(s.min, 0) + " / " + io::Table::fmt(s.median, 0) +
                     " / " + io::Table::fmt(s.max, 0)});
  std::cout << table << "\n";

  std::cout << "cover-time distribution (" << samples.size() << " trials):\n"
            << stats::Histogram::of(samples, 10).render(40) << "\n";

  if (curve && process == "cobra") {
    std::cout << "coverage curve of a single run:\n";
    // One Runner call: the cover stop rule supplies the covered count,
    // the growth observer |S_t|.
    core::Engine gen(seed);
    core::CobraWalk walk(g, 0, k);
    sim::CoverStop cover;
    sim::GrowthCurve growth;
    auto covered = sim::record_of([&cover](const core::CobraWalk&) {
      return static_cast<double>(cover.covered_count());
    });
    sim::Runner().run(walk, gen, cover, growth, covered);
    io::Table tcurve({"round", "|S_t|", "covered"});
    const auto& sizes = growth.sizes();
    for (std::size_t p = 0; p <= 10; ++p) {
      const std::size_t round = p * (sizes.size() - 1) / 10;
      tcurve.add_row(
          {io::Table::fmt_int(static_cast<long long>(round)),
           io::Table::fmt_int(static_cast<long long>(sizes[round])),
           io::Table::fmt_int(
               static_cast<long long>(covered.values()[round]))});
    }
    std::cout << tcurve;
  }
  return 0;
}
