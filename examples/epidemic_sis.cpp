/// Epidemic example: the paper's §1 disease-spread reading of a cobra walk.
///
/// A k-cobra walk models an idealized SIS process: each infected agent
/// infects k random contacts per round and immediately recovers. This
/// example seeds patient zero in two contact-network topologies the paper's
/// §4 calls out — a power-law network (Chung-Lu) and a random geometric
/// graph (proximity contacts) — and prints the epidemic curves: prevalence
/// (currently infected), cumulative attack rate, and time until everyone
/// has been exposed.
///
///   $ ./epidemic_sis [--n 2000] [--contacts 2] [--seed 7]

#include <iostream>

#include "core/sis_epidemic.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "sim/runner.hpp"
#include "stats/histogram.hpp"

namespace {

void run_outbreak(const cobra::graph::Graph& g, const std::string& label,
                  std::uint32_t contacts, std::uint64_t seed) {
  using namespace cobra;

  core::Engine gen(seed);
  core::SisEpidemic epi(g, /*patient_zero=*/0, contacts);
  const std::uint64_t horizon = 64ull * g.num_vertices();
  // SIS models the sim::Process concept, so the outbreak runs through the
  // shared Runner under a process-specific stop rule instead of its own
  // loop method.
  sim::Runner(horizon).run(
      epi, gen,
      sim::until([](const core::SisEpidemic& e) { return e.everyone_exposed(); }));

  std::cout << "=== " << label << " ===\n";
  std::cout << "n = " << g.num_vertices() << ", contacts/round = " << contacts
            << ", avg degree = " << g.average_degree() << "\n";

  // Epidemic curve at a handful of checkpoints.
  io::Table curve({"round", "prevalence", "new exposures", "attack rate"});
  const auto& history = epi.history();
  const std::size_t points = 8;
  for (std::size_t p = 0; p <= points; ++p) {
    const std::size_t idx =
        p * (history.size() - 1) / points;
    const auto& rec = history[idx];
    curve.add_row(
        {io::Table::fmt_int(static_cast<long long>(rec.round)),
         io::Table::fmt_int(rec.prevalence),
         io::Table::fmt_int(rec.incidence),
         io::Table::fmt(static_cast<double>(rec.ever_infected) /
                            g.num_vertices() * 100.0, 1) + "%"});
  }
  std::cout << curve;
  if (epi.everyone_exposed()) {
    std::cout << "everyone exposed after " << epi.round() << " rounds\n\n";
  } else {
    std::cout << "NOT fully exposed within " << horizon
              << " rounds (disconnected contact graph?)\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cobra;

  const io::Args args(argc, argv, {"n", "contacts", "seed"});
  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 2000));
  const auto contacts = static_cast<std::uint32_t>(args.get_uint("contacts", 2));
  const std::uint64_t seed = args.get_uint("seed", 7);

  core::Engine graph_gen(seed);

  // Power-law contact network (superspreaders): take the giant component so
  // the epidemic can reach everyone.
  {
    const graph::Graph raw =
        graph::make_chung_lu_power_law(graph_gen, n, 2.5, 3.0);
    const auto giant = graph::largest_component(raw);
    run_outbreak(giant.graph, "power-law contact network (giant component)",
                 contacts, seed + 1);
  }

  // Random geometric graph (proximity contacts), radius just above the
  // connectivity threshold.
  {
    const double radius = 1.8 * std::sqrt(std::log(static_cast<double>(n)) /
                                          (3.14159265 * n));
    const graph::Graph raw = graph::make_random_geometric(graph_gen, n, radius);
    const auto giant = graph::largest_component(raw);
    run_outbreak(giant.graph, "random geometric contact network (giant component)",
                 contacts, seed + 2);
  }

  // The same outbreak with more contacts per round, on a hypercube "office
  // building" topology, to show the effect of the branching factor.
  {
    std::uint32_t dim = 1;
    while ((1u << (dim + 1)) <= n) ++dim;
    const graph::Graph g = graph::make_hypercube(dim);
    run_outbreak(g, "hypercube topology, k contacts", contacts, seed + 3);
    run_outbreak(g, "hypercube topology, 2k contacts", 2 * contacts, seed + 3);
  }
  return 0;
}
