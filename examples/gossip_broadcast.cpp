/// Information-dissemination example: cobra walks as a broadcast primitive.
///
/// §1 motivates cobra walks as message-passing protocols where each holder
/// forwards k copies per round. This example races four protocols to full
/// dissemination on several network topologies:
///
///   * 2-cobra walk        (this paper)
///   * push gossip         (Feige et al.; every informed vertex stays informed)
///   * push-pull gossip
///   * 8 parallel random walks (Alon et al.)
///
/// and prints rounds-to-full-dissemination with confidence intervals.
///
///   $ ./gossip_broadcast [--n 1024] [--trials 50] [--seed 3]

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/gossip.hpp"
#include "core/parallel_walks.hpp"
#include "graph/generators.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "sim/runner.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace cobra;

  const io::Args args(argc, argv, {"n", "trials", "seed"});
  const auto n = static_cast<std::uint32_t>(args.get_uint("n", 1024));
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 50));
  const std::uint64_t seed = args.get_uint("seed", 3);

  core::Engine graph_gen(seed);

  struct Network {
    std::string name;
    graph::Graph graph;
  };
  std::uint32_t dim = 1;
  while ((1u << (dim + 1)) <= n) ++dim;
  std::uint32_t side = 2;
  while ((side + 1) * (side + 1) <= n) ++side;

  const std::vector<Network> networks = {
      {"random 6-regular", graph::make_random_regular(graph_gen, n, 6)},
      {"hypercube", graph::make_hypercube(dim)},
      {"2-D grid", graph::make_grid(2, side)},
      {"preferential attachment", graph::make_barabasi_albert(graph_gen, n, 3)},
  };

  struct Protocol {
    std::string name;
    std::function<double(const graph::Graph&, core::Engine&)> run;
  };
  // Every protocol is "construct a process, run it to cover through the
  // shared sim::Runner" — the one driver every walk process plugs into.
  const std::vector<Protocol> protocols = {
      {"2-cobra walk",
       [](const graph::Graph& g, core::Engine& gen) {
         return sim::cover_rounds<core::CobraWalk>(gen, g, 0u, 2u);
       }},
      {"push gossip",
       [](const graph::Graph& g, core::Engine& gen) {
         return sim::cover_rounds<core::Gossip>(gen, g, 0u,
                                                core::GossipMode::Push);
       }},
      {"push-pull gossip",
       [](const graph::Graph& g, core::Engine& gen) {
         core::Gossip gossip(g, 0, core::GossipMode::PushPull);
         return static_cast<double>(sim::run_cover(gossip, gen, 1u << 26).rounds);
       }},
      {"8 parallel walks",
       [](const graph::Graph& g, core::Engine& gen) {
         return sim::cover_rounds<core::ParallelWalks>(gen, g, 0u, 8u);
       }},
  };

  for (const Network& net : networks) {
    std::cout << "=== " << net.name << "  (n = " << net.graph.num_vertices()
              << ", m = " << net.graph.num_edges() << ") ===\n";
    io::Table table({"protocol", "mean rounds", "95% CI", "median"});
    table.set_align(0, io::Align::Left);
    for (const Protocol& proto : protocols) {
      const stats::Summary s = sim::replicate(
          trials, seed ^ std::hash<std::string>{}(net.name + proto.name),
          [&](core::Engine& gen) { return proto.run(net.graph, gen); });
      table.add_row({proto.name, io::Table::fmt(s.mean, 1),
                     "+-" + io::Table::fmt(s.ci95_half, 1),
                     io::Table::fmt(s.median, 1)});
    }
    std::cout << table << "\n";
  }

  std::cout << "note: gossip informs permanently; the cobra walk's active set\n"
               "can shrink, which is why it pays a polylog factor on sparse\n"
               "topologies — exactly the contrast drawn in the paper's s1.2.\n";
  return 0;
}
