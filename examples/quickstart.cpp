/// Quickstart: the smallest complete tour of the cobra library.
///
/// Builds a 2-D grid, runs one 2-cobra walk until it covers the graph,
/// then Monte-Carlo-estimates the expected cover time with a 95% CI and
/// compares against a simple random walk — the comparison at the heart of
/// the paper.
///
///   $ ./quickstart [--side 16] [--trials 100] [--seed 1]

#include <cstdio>
#include <iostream>

#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "graph/generators.hpp"
#include "io/args.hpp"
#include "io/table.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace cobra;

  const io::Args args(argc, argv, {"side", "trials", "seed"});
  const auto side = static_cast<std::uint32_t>(args.get_uint("side", 16));
  const auto trials = static_cast<std::uint32_t>(args.get_uint("trials", 100));
  const std::uint64_t seed = args.get_uint("seed", 1);

  // 1. Build a graph. Generators cover every family in the paper.
  const graph::Graph g = graph::make_grid(2, side);
  std::cout << "graph: " << side << "x" << side << " grid, "
            << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges\n\n";

  // 2. Run one 2-cobra walk by hand and watch the active set grow.
  core::Engine gen(seed);
  core::CobraWalk walk(g, /*start=*/0, /*branching=*/2);
  core::CoverageTracker tracker(g.num_vertices());
  tracker.absorb(walk.active());
  while (!tracker.complete()) {
    walk.step(gen);
    tracker.absorb(walk.active());
    if (walk.round() % 16 == 0 || tracker.complete()) {
      std::cout << "round " << walk.round() << ": |S_t| = "
                << walk.active().size() << ", covered "
                << tracker.covered_count() << "/" << g.num_vertices() << "\n";
    }
  }
  std::cout << "\nsingle run covered the grid in " << walk.round()
            << " rounds\n\n";

  // 3. Monte-Carlo estimate of the expected cover time, in parallel, with
  //    deterministic per-trial seeding.
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = trials;
  const auto cobra_samples = par::run_trials(
      par::global_pool(), opts, [&](core::Engine& engine, std::uint32_t) {
        return static_cast<double>(core::cobra_cover(g, 0, 2, engine).steps);
      });
  const auto rw_samples = par::run_trials(
      par::global_pool(), opts, [&](core::Engine& engine, std::uint32_t) {
        return static_cast<double>(core::random_walk_cover(g, 0, engine).steps);
      });

  const stats::Summary cobra = stats::summarize(cobra_samples);
  const stats::Summary rw = stats::summarize(rw_samples);

  io::Table table({"process", "mean cover", "95% CI", "median", "max"});
  table.set_align(0, io::Align::Left);
  table.add_row({"2-cobra walk", io::Table::fmt(cobra.mean, 1),
                 "+-" + io::Table::fmt(cobra.ci95_half, 1),
                 io::Table::fmt(cobra.median, 1), io::Table::fmt(cobra.max, 0)});
  table.add_row({"simple random walk", io::Table::fmt(rw.mean, 1),
                 "+-" + io::Table::fmt(rw.ci95_half, 1),
                 io::Table::fmt(rw.median, 1), io::Table::fmt(rw.max, 0)});
  std::cout << table << "\n";
  std::cout << "speedup: " << io::Table::fmt(rw.mean / cobra.mean, 1)
            << "x  (" << trials << " trials each)\n";
  return 0;
}
