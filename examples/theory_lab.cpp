/// Theory lab: a guided tour of the paper's PROOF machinery, not just its
/// processes. Each section prints a small demonstration of one analytical
/// device the paper uses, computed live:
///
///   1. §3  — the drift coupling behind Theorem 3 (watch z = (z_1..z_d)
///            fall to the origin and stay there);
///   2. §4  — the tensor-product digraph D(G x G) behind Lemma 11 (its
///            Eulerian stationary distribution, and the live two-pebble
///            walk hitting exactly that collision rate);
///   3. §5  — sigma_hat and the Metropolis chain behind Corollary 17
///            (return-time bound met by measurement).
///
///   $ ./theory_lab [--seed 1]

#include <cmath>
#include <iostream>

#include "core/grid_drift.hpp"
#include "core/metropolis_walk.hpp"
#include "core/pair_walk.hpp"
#include "graph/generators.hpp"
#include "graph/tensor_product.hpp"
#include "io/args.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  using namespace cobra;
  const io::Args args(argc, argv, {"seed"});
  const std::uint64_t seed = args.get_uint("seed", 1);
  core::Engine gen(seed);

  std::cout << "== 1. The drift coupling of Theorem 3 (s3) ==\n"
            << "Tracking one cobra pebble's distances to a target on\n"
            << "[0,64]^3, under the proof's pessimistic clone selection:\n\n";
  {
    core::GridDriftWalk walk(3, 48, 64);
    io::Table table({"round", "z_1", "z_2", "z_3", "total"});
    std::uint64_t next_print = 0;
    while (!walk.at_origin() && walk.round() < 100000) {
      if (walk.round() == next_print) {
        table.add_row({io::Table::fmt_int(static_cast<long long>(walk.round())),
                       io::Table::fmt_int(walk.distance(0)),
                       io::Table::fmt_int(walk.distance(1)),
                       io::Table::fmt_int(walk.distance(2)),
                       io::Table::fmt_int(
                           static_cast<long long>(walk.total_distance()))});
        next_print = next_print == 0 ? 64 : next_print * 2;
      }
      walk.step(gen);
    }
    table.add_row({io::Table::fmt_int(static_cast<long long>(walk.round())),
                   "0", "0", "0", "0"});
    std::cout << table << "reached the origin in " << walk.round()
              << " rounds (Lemma 5 budget: O(d^2 n) = "
              << 9 * 64 << "-ish)\n\n";
  }

  std::cout << "== 2. The tensor-product digraph of Lemma 11 (s4) ==\n";
  {
    const graph::Graph g = graph::make_complete(8);
    const graph::Digraph d = graph::walt_pair_digraph(g);
    const auto closed = graph::walt_pair_stationary(8);
    std::cout << "G = K8; D(G x G) has " << d.num_vertices() << " states and "
              << d.num_arcs() << " weighted arcs; weight-balanced (Eulerian): "
              << (d.is_weight_balanced() ? "yes" : "no") << "\n"
              << "closed-form stationary: diagonal " << closed.diagonal
              << ", off-diagonal " << closed.off_diagonal << "\n";
    core::PairWalk pair(g, 0, 0, /*lazy=*/true);
    for (int t = 0; t < 2000; ++t) pair.step(gen);
    std::uint64_t collisions = 0;
    constexpr int kSteps = 200000;
    for (int t = 0; t < kSteps; ++t) {
      pair.step(gen);
      if (pair.collided()) ++collisions;
    }
    std::cout << "live two-pebble walk collision rate: "
              << io::Table::fmt(static_cast<double>(collisions) / kSteps, 4)
              << "  (stationary prediction n*pi_S1 = "
              << io::Table::fmt(8 * closed.diagonal, 4) << ")\n\n";
  }

  std::cout << "== 3. The Metropolis chain of Corollary 17 (s5.3) ==\n";
  {
    const graph::Graph g = graph::make_grid(2, 6, /*torus=*/true);
    core::MetropolisWalk walk(g, 0);
    io::Table table({"x (sample)", "sigma_hat(x)", "e^{-p(x,v)} (Lemma 18)"});
    for (const graph::Vertex x : {1u, 7u, 14u, 21u, 35u}) {
      table.add_row({io::Table::fmt_int(x), io::Table::fmt(walk.sigma_hat(x), 4),
                     io::Table::fmt(walk.lemma18_bound(x), 4)});
    }
    std::cout << table;
    const double measured = walk.measure_return_time(gen, 2000, 1u << 22);
    std::cout << "Corollary 17 bound: "
              << io::Table::fmt(walk.return_time_bound(), 3)
              << "; measured return time: " << io::Table::fmt(measured, 3)
              << "; inverse-degree floor margin: "
              << io::Table::fmt_sci(walk.min_transition_margin(), 2) << "\n";
  }
  return 0;
}
