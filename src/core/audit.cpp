#include "core/audit.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace cobra::core::audit {

namespace detail {
std::atomic<int> armed_level{0};
std::atomic<bool> throw_on_violation{false};
}  // namespace detail

void set_level(int level) noexcept {
  if (level < 0) level = 0;
  if (level > 2) level = 2;
  detail::armed_level.store(level, std::memory_order_relaxed);
}

int arm_from_env() {
  const char* env = std::getenv("COBRA_AUDIT");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 0 || value > 2) {
    std::fprintf(stderr,
                 "[audit] WARNING: ignoring malformed COBRA_AUDIT '%s' "
                 "(want 0, 1, or 2)\n",
                 env);
    return 0;
  }
  set_level(static_cast<int>(value));
  return static_cast<int>(value);
}

bool sample_round(std::uint64_t seq) noexcept {
  // Level 1 samples 1-in-16 starting with the first round (so short runs
  // still audit something); level 2 audits every round.
  const int lvl = level();
  if (lvl >= 2) return true;
  if (lvl == 1) return (seq & 0xF) == 0;
  return false;
}

void set_throw_on_violation(bool enable) noexcept {
  detail::throw_on_violation.store(enable, std::memory_order_relaxed);
}

bool check_canonical_list(std::span<const graph::Vertex> list,
                          std::size_t n_vertices, std::string* why) {
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (static_cast<std::size_t>(list[i]) >= n_vertices) {
      if (why != nullptr) {
        *why = "vertex " + std::to_string(list[i]) + " at index " +
               std::to_string(i) + " outside [0, " +
               std::to_string(n_vertices) + ")";
      }
      return false;
    }
    if (i > 0 && list[i - 1] >= list[i]) {
      if (why != nullptr) {
        *why = (list[i - 1] == list[i] ? "duplicate vertex "
                                       : "order violation at vertex ") +
               std::to_string(list[i]) + " (index " + std::to_string(i) +
               "): list not strictly ascending";
      }
      return false;
    }
  }
  return true;
}

bool check_bitmap(std::span<const std::uint64_t> words, std::size_t count,
                  std::size_t n_vertices, std::string* why) {
  const std::size_t want_words = (n_vertices + 63) / 64;
  if (words.size() != want_words) {
    if (why != nullptr) {
      *why = "bitmap has " + std::to_string(words.size()) + " words, want " +
             std::to_string(want_words) + " for n = " +
             std::to_string(n_vertices);
    }
    return false;
  }
  std::size_t popcount = 0;
  for (const std::uint64_t word : words) {
    popcount += static_cast<std::size_t>(std::popcount(word));
  }
  if (popcount != count) {
    if (why != nullptr) {
      *why = "bitmap popcount " + std::to_string(popcount) +
             " != frontier count " + std::to_string(count);
    }
    return false;
  }
  const std::size_t tail_bits = n_vertices % 64;
  if (tail_bits != 0 && !words.empty() &&
      (words.back() >> tail_bits) != 0) {
    if (why != nullptr) {
      *why = "bitmap has bits set beyond vertex " +
             std::to_string(n_vertices - 1) + " in the tail word";
    }
    return false;
  }
  return true;
}

bool check_stamps(std::span<const graph::Vertex> list,
                  std::span<const std::uint32_t> stamps, std::uint32_t epoch,
                  std::string* why) {
  for (const graph::Vertex v : list) {
    if (static_cast<std::size_t>(v) >= stamps.size()) {
      if (why != nullptr) {
        *why = "vertex " + std::to_string(v) + " outside the stamp array (" +
               std::to_string(stamps.size()) + " entries)";
      }
      return false;
    }
    if (stamps[v] != epoch) {
      if (why != nullptr) {
        *why = "vertex " + std::to_string(v) + " stamped " +
               std::to_string(stamps[v]) + ", want round epoch " +
               std::to_string(epoch) + " — claimed vertex the dedup never saw";
      }
      return false;
    }
  }
  return true;
}

void report_violation(const char* check, const std::string& why) {
  obs::registry().counter("audit.violations").add(1);
  if (detail::throw_on_violation.load(std::memory_order_relaxed)) {
    throw std::logic_error("audit violation [" + std::string(check) +
                           "]: " + why);
  }
  // Structured, greppable, and fatal: a broken frontier invariant means
  // the process's statistics are already garbage.
  std::fprintf(stderr,
               "[audit] INVARIANT VIOLATION\n"
               "[audit]   check: %s\n"
               "[audit]   detail: %s\n"
               "[audit] aborting (COBRA_AUDIT armed; violations are fatal)\n",
               check, why.c_str());
  std::abort();
}

}  // namespace cobra::core::audit
