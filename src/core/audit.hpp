#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.hpp"

/// \file audit.hpp
/// Runtime invariant auditor for the frontier engine. The engine's whole
/// value is a CONTRACT — canonical ascending duplicate-free frontiers,
/// bit-identical across thread counts and representations — and that
/// contract is what every downstream estimate (cover time, collision
/// probability) silently leans on. The auditor makes the contract
/// self-checking at runtime: when armed via `COBRA_AUDIT` (or
/// `set_level`), the engine samples expand() rounds and verifies, on the
/// round's actual output:
///
///   * canonical order  — sparse lists strictly ascending (implies dedup)
///     with every vertex inside [0, n);
///   * bitmap health    — dense bitmaps sized to exactly (n+63)/64 words,
///     popcount == the round's claimed count, tail bits beyond n clear;
///   * epoch stamps     — every vertex claimed by a sparse round carries
///     the round's epoch in the stamp array (the dedup mechanism agrees
///     with the output it produced);
///   * CSR health       — `Graph::validate()` once per engine on the
///     first audited round (graphs are immutable after build, so once is
///     a proof, and the O(m) cost is paid a single time).
///
/// Levels: 0 = off, 1 = sample every 16th round, 2 = every round. The
/// disarmed cost mirrors util::fault and obs::trace — ONE relaxed load
/// per expand(), nothing else.
///
/// A violation increments the obs counter `audit.violations` and then
/// fails STRUCTURED AND LOUD: a `[audit] INVARIANT VIOLATION` block on
/// stderr naming the check, then std::abort() — a frontier that broke
/// canonical form has already corrupted downstream statistics, so
/// continuing is worse than dying. Tests flip `set_throw_on_violation`
/// to turn the abort into a std::logic_error they can EXPECT_THROW on.

namespace cobra::core::audit {

namespace detail {
extern std::atomic<int> armed_level;
extern std::atomic<bool> throw_on_violation;
}  // namespace detail

/// The armed audit level (0 = off); one relaxed load.
[[nodiscard]] inline int level() noexcept {
  return detail::armed_level.load(std::memory_order_relaxed);
}

/// True when any auditing is armed — the engine's per-expand gate.
[[nodiscard]] inline bool enabled() noexcept { return level() > 0; }

/// Arm auditing at `level` (clamped to [0, 2]).
void set_level(int level) noexcept;

/// Parse `COBRA_AUDIT` (an integer level) and arm it; returns the armed
/// level (0 when unset). Malformed values warn on stderr and arm nothing.
int arm_from_env();

/// Should the `seq`-th audited-engine round (0-based) actually be
/// checked, under the current level's sampling policy?
[[nodiscard]] bool sample_round(std::uint64_t seq) noexcept;

/// Tests: report violations as std::logic_error instead of abort().
void set_throw_on_violation(bool enable) noexcept;

/// --- Pure checks (no global state; exposed for direct unit testing) ---

/// Strictly ascending (so duplicate-free), all vertices < n_vertices.
[[nodiscard]] bool check_canonical_list(std::span<const graph::Vertex> list,
                                        std::size_t n_vertices,
                                        std::string* why);

/// words holds exactly (n+63)/64 words, popcount sum == count, tail bits
/// beyond n_vertices clear.
[[nodiscard]] bool check_bitmap(std::span<const std::uint64_t> words,
                                std::size_t count, std::size_t n_vertices,
                                std::string* why);

/// Every listed vertex's stamp equals `epoch` — the sparse dedup's claim
/// record agrees with the list it emitted.
[[nodiscard]] bool check_stamps(std::span<const graph::Vertex> list,
                                std::span<const std::uint32_t> stamps,
                                std::uint32_t epoch, std::string* why);

/// Violation sink: bump `audit.violations`, then throw (test mode) or
/// print the structured block and abort.
[[noreturn]] void report_violation(const char* check, const std::string& why);

}  // namespace cobra::core::audit
