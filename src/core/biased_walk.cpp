#include "core/biased_walk.hpp"

#include <stdexcept>

#include "graph/algorithms.hpp"

namespace cobra::core {

BiasedWalk::BiasedWalk(const Graph& g, Vertex start, Vertex target,
                       BiasSchedule schedule, double epsilon)
    : g_(&g),
      position_(start),
      target_(target),
      schedule_(schedule),
      epsilon_(epsilon) {
  if (start >= g.num_vertices() || target >= g.num_vertices()) {
    throw std::out_of_range("BiasedWalk: vertex out of range");
  }
  if (epsilon < 0.0 || epsilon > 1.0) {
    throw std::invalid_argument("BiasedWalk: epsilon in [0, 1]");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("BiasedWalk: graph has an isolated vertex");
  }
  dist_to_target_ = graph::bfs_distances(g, target);
  if (dist_to_target_[start] == graph::kUnreachable) {
    throw std::invalid_argument("BiasedWalk: target unreachable from start");
  }
  // Precompute the greedy controller: for every vertex, the first neighbor
  // strictly closer to the target.
  toward_target_.resize(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    Vertex choice = g.neighbors(v).empty() ? v : g.neighbors(v)[0];
    if (dist_to_target_[v] != graph::kUnreachable && v != target) {
      for (const Vertex u : g.neighbors(v)) {
        if (dist_to_target_[u] + 1 == dist_to_target_[v]) {
          choice = u;
          break;
        }
      }
    }
    toward_target_[v] = choice;
  }
}

void BiasedWalk::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("BiasedWalk::reset: start out of range");
  }
  if (dist_to_target_[start] == graph::kUnreachable) {
    throw std::invalid_argument("BiasedWalk::reset: target unreachable");
  }
  position_ = start;
  round_ = 0;
  controlled_ = 0;
}

Vertex BiasedWalk::controller_choice(Vertex v) const {
  return toward_target_.at(v);
}

void BiasedWalk::step(Engine& gen) {
  ++round_;
  // §5.1: at the target itself the walk is always uniform (the bias exists
  // to *reach* the target; at the target the return-time analysis needs the
  // unbiased exit).
  double bias = 0.0;
  if (position_ != target_) {
    bias = schedule_ == BiasSchedule::EpsilonBias
               ? epsilon_
               : 1.0 / static_cast<double>(g_->degree(position_));
  }
  if (bias > 0.0 && rng::bernoulli(gen, bias)) {
    ++controlled_;
    position_ = toward_target_[position_];
  } else {
    position_ = random_neighbor(*g_, position_, gen);
  }
}

}  // namespace cobra::core
