#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

/// \file biased_walk.hpp
/// Biased random walks (§5.1). In each round, with some probability a
/// memoryless controller picks the next vertex instead of the uniform
/// choice. Two bias schedules from the paper:
///
///   * EpsilonBias       — fixed probability ε at every vertex (Azar et al.,
///                         the walks behind Theorem 13);
///   * InverseDegreeBias — probability 1/d(v) at vertex v != target, and no
///                         bias at the target (the paper's §5.1 variant that
///                         dominates the 2-cobra walk, Lemma 14: a cobra
///                         walk reaches v no later than the best
///                         inverse-degree-biased walk does).
///
/// The controller shipped here is the greedy shortest-path controller: move
/// to a neighbor one BFS hop closer to the target. It is memoryless and
/// time-independent, as §5.1 requires.

namespace cobra::core {

enum class BiasSchedule {
  EpsilonBias,
  InverseDegreeBias,
};

class BiasedWalk {
 public:
  /// A biased walk on `g` from `start` toward `target`. For EpsilonBias,
  /// `epsilon` in [0, 1] is the controller probability; InverseDegreeBias
  /// ignores it. BFS distances to `target` are computed once here (O(m)).
  BiasedWalk(const Graph& g, Vertex start, Vertex target, BiasSchedule schedule,
             double epsilon = 0.0);

  void reset(Vertex start);

  void step(Engine& gen);

  [[nodiscard]] Vertex position() const noexcept { return position_; }
  [[nodiscard]] Vertex target() const noexcept { return target_; }
  [[nodiscard]] bool at_target() const noexcept { return position_ == target_; }

  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return {&position_, 1};
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] BiasSchedule schedule() const noexcept { return schedule_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// Number of rounds in which the controller (not the uniform choice)
  /// decided the move.
  [[nodiscard]] std::uint64_t controlled_moves() const noexcept {
    return controlled_;
  }

  /// The controller's choice at `v`: a neighbor strictly closer to the
  /// target (the first such in the adjacency list), or v's first neighbor
  /// if none is closer (unreachable case; cannot happen when connected).
  [[nodiscard]] Vertex controller_choice(Vertex v) const;

 private:
  const Graph* g_;
  Vertex position_;
  Vertex target_;
  BiasSchedule schedule_;
  double epsilon_;
  std::vector<std::uint32_t> dist_to_target_;
  std::vector<Vertex> toward_target_;  ///< precomputed controller choice per vertex
  std::uint64_t round_ = 0;
  std::uint64_t controlled_ = 0;
};

}  // namespace cobra::core
