#include "core/coalescing_walk.hpp"

#include <stdexcept>

namespace cobra::core {

CoalescingWalks::CoalescingWalks(const Graph& g, std::span<const Vertex> starts)
    : g_(&g), engine_(g), pick_(g) {
  if (g.min_degree() == 0) {
    throw std::invalid_argument("CoalescingWalks: graph has an isolated vertex");
  }
  reset(starts);
}

void CoalescingWalks::reset(std::span<const Vertex> starts) {
  if (starts.empty()) {
    throw std::invalid_argument("CoalescingWalks: needs >= 1 walker");
  }
  for (const Vertex v : starts) {
    if (v >= g_->num_vertices()) {
      throw std::out_of_range("CoalescingWalks: start out of range");
    }
  }
  round_ = 0;
  engine_.dedupe(starts, walkers_);
  merges_ = starts.size() - walkers_.size();
}

void CoalescingWalks::step(Engine& gen) {
  ++round_;
  const std::uint64_t round_seed = gen();
  engine_.expand(walkers_, next_, round_seed,
                 [this](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
                   sink(pick_(g_->neighbors(v), rng));
                 });
  merges_ += walkers_.size() - next_.size();
  walkers_.swap(next_);
}

std::uint64_t CoalescingWalks::run_to_single(Engine& gen, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (walkers_.size() > 1 && steps < max_steps) {
    step(gen);
    ++steps;
  }
  return steps;
}

}  // namespace cobra::core
