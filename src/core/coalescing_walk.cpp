#include "core/coalescing_walk.hpp"

#include <stdexcept>

namespace cobra::core {

CoalescingWalks::CoalescingWalks(const Graph& g, std::span<const Vertex> starts)
    : g_(&g), stamp_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("CoalescingWalks: empty graph");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("CoalescingWalks: graph has an isolated vertex");
  }
  reset(starts);
}

void CoalescingWalks::reset(std::span<const Vertex> starts) {
  if (starts.empty()) {
    throw std::invalid_argument("CoalescingWalks: needs >= 1 walker");
  }
  for (const Vertex v : starts) {
    if (v >= g_->num_vertices()) {
      throw std::out_of_range("CoalescingWalks: start out of range");
    }
  }
  walkers_.assign(starts.begin(), starts.end());
  round_ = 0;
  merges_ = 0;
  dedupe();
}

void CoalescingWalks::dedupe() {
  if (++epoch_ == 0) {
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 1;
  }
  std::size_t kept = 0;
  for (const Vertex v : walkers_) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      walkers_[kept++] = v;
    } else {
      ++merges_;
    }
  }
  walkers_.resize(kept);
}

void CoalescingWalks::step(Engine& gen) {
  ++round_;
  for (Vertex& w : walkers_) w = random_neighbor(*g_, w, gen);
  dedupe();
}

std::uint64_t CoalescingWalks::run_to_single(Engine& gen, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (walkers_.size() > 1 && steps < max_steps) {
    step(gen);
    ++steps;
  }
  return steps;
}

}  // namespace cobra::core
