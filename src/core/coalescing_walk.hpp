#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"

/// \file coalescing_walk.hpp
/// Coalescing random walks (no branching): multiple walkers, and whenever
/// two or more land on the same vertex they merge into one. This is the
/// "C" half of a cobra walk without the "B" half — the process behind voter
/// models (Cooper et al., PODC'12) — and serves in tests/benches as the
/// contrast showing that branching is what buys the cobra walk its speed:
/// a coalescing system can only lose walkers over time.
///
/// Steps run on the shared FrontierEngine (one neighbor sample per walker,
/// merge = the engine's offspring dedup), so large walker populations move
/// in parallel with the same bit-exact result at any thread count.

namespace cobra::core {

class CoalescingWalks {
 public:
  /// One walker at each of `starts` (duplicates merge immediately).
  CoalescingWalks(const Graph& g, std::span<const Vertex> starts);

  /// `walkers` walkers at distinct random positions are a common setup;
  /// callers draw those positions and use the span constructor.
  void reset(std::span<const Vertex> starts);

  void step(Engine& gen);

  /// Current walker positions — pairwise distinct by the merge invariant,
  /// sorted ascending (materializes after dense rounds; `walker_count()`
  /// is the O(1) count).
  [[nodiscard]] std::span<const Vertex> active() const {
    return walkers_.vertices();
  }

  [[nodiscard]] std::uint32_t walker_count() const noexcept {
    return static_cast<std::uint32_t>(walkers_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// Total merges since construction/reset.
  [[nodiscard]] std::uint64_t merges() const noexcept { return merges_; }

  /// Rounds until a single walker remains (the coalescence time), stepping
  /// at most `max_steps`; returns the round count or max_steps if not done.
  std::uint64_t run_to_single(Engine& gen, std::uint64_t max_steps);

  /// The underlying step engine (chunking / pool / threshold knobs).
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

 private:
  const Graph* g_;
  FrontierEngine engine_;
  NeighborSampler pick_;
  Frontier walkers_;
  Frontier next_;
  std::uint64_t round_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace cobra::core
