#include "core/cobra_walk.hpp"

#include <stdexcept>

namespace cobra::core {

CobraWalk::CobraWalk(const Graph& g, Vertex start, std::uint32_t branching)
    : g_(&g), k_(branching), engine_(g), pick_(g) {
  if (branching < 1) throw std::invalid_argument("CobraWalk: branching >= 1");
  if (g.min_degree() == 0) {
    throw std::invalid_argument("CobraWalk: graph has an isolated vertex");
  }
  // The engine's parallel threshold is in estimated samples; k per active
  // vertex is this walk's exact emission rate.
  engine_.options().branching_hint = static_cast<double>(branching);
  reset(start);
}

void CobraWalk::reset(Vertex start) {
  reset(std::span<const Vertex>(&start, 1));
}

void CobraWalk::reset(std::span<const Vertex> starts) {
  for (const Vertex v : starts) {
    if (v >= g_->num_vertices()) {
      throw std::out_of_range("CobraWalk::reset: start out of range");
    }
  }
  round_ = 0;
  samples_ = 0;
  engine_.dedupe(starts, frontier_);
  if (frontier_.empty()) {
    throw std::invalid_argument("CobraWalk::reset: empty start set");
  }
}

void CobraWalk::save_state(util::CheckpointWriter& w) const {
  w.u64(round_);
  w.u64(samples_);
  w.u32_span(frontier_.vertices());
}

void CobraWalk::restore_state(util::CheckpointReader& r) {
  const std::uint64_t round = r.u64();
  const std::uint64_t samples = r.u64();
  const std::vector<Vertex> verts = r.u32_span();
  util::require_canonical_vertices(verts, g_->num_vertices(),
                                   "CobraWalk frontier");
  if (verts.empty()) {
    // A k-cobra walk (k >= 1) can never go extinct; an empty frontier in a
    // snapshot is corruption, not state.
    throw util::CheckpointError("CobraWalk frontier: empty");
  }
  engine_.dedupe(verts, frontier_);
  round_ = round;
  samples_ = samples;
}

void CobraWalk::step(Engine& gen) {
  // Re-asserted every round: the walk KNOWS its exact emission rate, and
  // callers that assign a whole FrontierOptions (tests, benches) must not
  // silently degrade the work estimate to the 1.0 default.
  engine_.options().branching_hint = static_cast<double>(k_);
  // One caller draw seeds the entire round; the engine derives per-chunk
  // streams from it, keeping the walk thread-count independent.
  const std::uint64_t round_seed = gen();
  engine_.expand(frontier_, next_, round_seed,
                 [this](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
                   const auto nbrs = g_->neighbors(v);
                   for (std::uint32_t i = 0; i < k_; ++i) sink(pick_(nbrs, rng));
                 });
  samples_ += static_cast<std::uint64_t>(k_) * frontier_.size();
  frontier_.swap(next_);
  ++round_;
}

}  // namespace cobra::core
