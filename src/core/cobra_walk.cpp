#include "core/cobra_walk.hpp"

#include <stdexcept>

namespace cobra::core {

CobraWalk::CobraWalk(const Graph& g, Vertex start, std::uint32_t branching)
    : g_(&g), k_(branching), stamp_(g.num_vertices(), 0) {
  if (branching < 1) throw std::invalid_argument("CobraWalk: branching >= 1");
  if (g.num_vertices() == 0) throw std::invalid_argument("CobraWalk: empty graph");
  if (g.min_degree() == 0) {
    throw std::invalid_argument("CobraWalk: graph has an isolated vertex");
  }
  frontier_.reserve(g.num_vertices());
  next_.reserve(g.num_vertices());
  reset(start);
}

void CobraWalk::reset(Vertex start) {
  reset(std::span<const Vertex>(&start, 1));
}

void CobraWalk::reset(std::span<const Vertex> starts) {
  frontier_.clear();
  round_ = 0;
  samples_ = 0;
  if (++epoch_ == 0) {  // stamp wrap: old stamps would alias, wipe them
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 1;
  }
  for (const Vertex v : starts) {
    if (v >= g_->num_vertices()) {
      throw std::out_of_range("CobraWalk::reset: start out of range");
    }
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      frontier_.push_back(v);
    }
  }
  if (frontier_.empty()) {
    throw std::invalid_argument("CobraWalk::reset: empty start set");
  }
}

void CobraWalk::step(Engine& gen) {
  next_.clear();
  if (++epoch_ == 0) {
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 1;
  }
  for (const Vertex v : frontier_) {
    const auto nbrs = g_->neighbors(v);
    const std::uint64_t deg = nbrs.size();
    for (std::uint32_t i = 0; i < k_; ++i) {
      const Vertex u =
          nbrs[static_cast<std::size_t>(rng::uniform_below(gen, deg))];
      if (stamp_[u] != epoch_) {
        stamp_[u] = epoch_;
        next_.push_back(u);
      }
    }
  }
  samples_ += static_cast<std::uint64_t>(k_) * frontier_.size();
  frontier_.swap(next_);
  ++round_;
}

}  // namespace cobra::core
