#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"
#include "util/checkpoint_io.hpp"

/// \file cobra_walk.hpp
/// The k-cobra walk — the paper's central object (§2). At every round each
/// active vertex samples k neighbors independently, uniformly, WITH
/// replacement; the sampled vertices form the next active set (coalescing
/// is implicit: a vertex sampled several times is active once).
///
/// Implementation notes:
///   * Rounds execute on the shared FrontierEngine: the vertex-id space is
///     partitioned into fixed ranges, each range samples from an engine
///     seeded with derive_seed(round_seed, range), and offspring dedup via
///     the engine's epoch stamps (sparse rounds) or bitmap (dense rounds)
///     — in parallel across the thread pool once the frontier is large
///     enough, serially (same chunking, same bits) below that. The active
///     set is held in a dual-representation core::Frontier: on expanders
///     it becomes a bitmap once it reaches Θ(n), and `active()`
///     materializes the sorted vertex list on demand (`frontier().size()`
///     is always O(1)).
///   * One draw of the caller's engine per round seeds the whole round, so
///     a walk remains a pure function of (graph, start, k, engine seed)
///     regardless of thread count or frontier representation.
///   * A round costs O(k |S_t|) neighbor samples (plus O(n / 64) bitmap
///     words when dense) and nothing else.
///   * k = 1 degenerates to the simple random walk, which tests exploit.

namespace cobra::core {

class CobraWalk {
 public:
  /// A k-cobra walk on `g` starting at `start`. Requires k >= 1, a
  /// non-empty graph with min degree >= 1, and start < n. The Graph must
  /// outlive the walk.
  CobraWalk(const Graph& g, Vertex start, std::uint32_t branching = 2);

  /// Restart from a single vertex (reuses buffers).
  void reset(Vertex start);

  /// Restart from an arbitrary set of active vertices (duplicates in
  /// `starts` collapse, matching coalescence).
  void reset(std::span<const Vertex> starts);

  /// Advance one round: every active vertex emits `branching` samples.
  void step(Engine& gen);

  /// Vertices active at the current round (sorted ascending,
  /// duplicate-free). Materializes from the bitmap after dense rounds —
  /// prefer `frontier().size()` when only the count is needed.
  [[nodiscard]] std::span<const Vertex> active() const {
    return frontier_.vertices();
  }

  /// The active set in its native representation (O(1) size()).
  [[nodiscard]] const Frontier& frontier() const noexcept { return frontier_; }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint32_t branching() const noexcept { return k_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// Total neighbor samples drawn since the last reset (k per active vertex
  /// per round) — the work measure reported by the throughput bench.
  [[nodiscard]] std::uint64_t samples_drawn() const noexcept { return samples_; }

  /// The underlying step engine — benches/tests tune its chunking, pool
  /// and threshold through this.
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

  /// Checkpointing (sim::Checkpointable): the evolving state is the round
  /// counter, the sample tally, and the frontier in canonical ascending
  /// order — deliberately representation-free, so a snapshot taken from a
  /// dense round restores through the sparse entry point and re-earns its
  /// representation; by the engine contract that cannot change results.
  void save_state(util::CheckpointWriter& w) const;
  void restore_state(util::CheckpointReader& r);

 private:
  const Graph* g_;
  std::uint32_t k_;
  FrontierEngine engine_;
  NeighborSampler pick_;
  Frontier frontier_;
  Frontier next_;
  std::uint64_t round_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace cobra::core
