#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"

/// \file cobra_walk.hpp
/// The k-cobra walk — the paper's central object (§2). At every round each
/// active vertex samples k neighbors independently, uniformly, WITH
/// replacement; the sampled vertices form the next active set (coalescing
/// is implicit: a vertex sampled several times is active once).
///
/// Implementation notes:
///   * Rounds execute on the shared FrontierEngine: the active set is
///     partitioned into fixed chunks, each chunk samples from an engine
///     seeded with derive_seed(round_seed, chunk), and offspring dedup via
///     the engine's epoch-stamp array — in parallel across the thread pool
///     once the frontier is large enough, serially (same chunking, same
///     bits) below that.
///   * One draw of the caller's engine per round seeds the whole round, so
///     a walk remains a pure function of (graph, start, k, engine seed)
///     regardless of thread count.
///   * A round costs O(k |S_t|) neighbor samples and nothing else; all
///     buffers are preallocated at construction.
///   * k = 1 degenerates to the simple random walk, which tests exploit.

namespace cobra::core {

class CobraWalk {
 public:
  /// A k-cobra walk on `g` starting at `start`. Requires k >= 1, a
  /// non-empty graph with min degree >= 1, and start < n. The Graph must
  /// outlive the walk.
  CobraWalk(const Graph& g, Vertex start, std::uint32_t branching = 2);

  /// Restart from a single vertex (reuses buffers).
  void reset(Vertex start);

  /// Restart from an arbitrary set of active vertices (duplicates in
  /// `starts` collapse, matching coalescence).
  void reset(std::span<const Vertex> starts);

  /// Advance one round: every active vertex emits `branching` samples.
  void step(Engine& gen);

  /// Vertices active at the current round (unordered, duplicate-free).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return frontier_;
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint32_t branching() const noexcept { return k_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Total neighbor samples drawn since the last reset (k per active vertex
  /// per round) — the work measure reported by the throughput bench.
  [[nodiscard]] std::uint64_t samples_drawn() const noexcept { return samples_; }

  /// The underlying step engine — benches/tests tune its chunking, pool
  /// and threshold through this.
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

 private:
  const Graph* g_;
  std::uint32_t k_;
  FrontierEngine engine_;
  NeighborSampler pick_;
  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_;
  std::uint64_t round_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace cobra::core
