#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

/// \file cobra_walk.hpp
/// The k-cobra walk — the paper's central object (§2). At every round each
/// active vertex samples k neighbors independently, uniformly, WITH
/// replacement; the sampled vertices form the next active set (coalescing
/// is implicit: a vertex sampled several times is active once).
///
/// Implementation notes:
///   * The active set is a dense vector of vertices; membership dedup uses
///     a per-vertex epoch stamp (no O(n) clearing per round, no hashing).
///   * A round costs O(k |S_t|) neighbor samples and nothing else; all
///     buffers are preallocated at construction.
///   * k = 1 degenerates to the simple random walk, which tests exploit.

namespace cobra::core {

class CobraWalk {
 public:
  /// A k-cobra walk on `g` starting at `start`. Requires k >= 1, a
  /// non-empty graph with min degree >= 1, and start < n. The Graph must
  /// outlive the walk.
  CobraWalk(const Graph& g, Vertex start, std::uint32_t branching = 2);

  /// Restart from a single vertex (reuses buffers).
  void reset(Vertex start);

  /// Restart from an arbitrary set of active vertices (duplicates in
  /// `starts` collapse, matching coalescence).
  void reset(std::span<const Vertex> starts);

  /// Advance one round: every active vertex emits `branching` samples.
  void step(Engine& gen);

  /// Vertices active at the current round (unordered, duplicate-free).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return frontier_;
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint32_t branching() const noexcept { return k_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Total neighbor samples drawn since the last reset (k per active vertex
  /// per round) — the work measure reported by the throughput bench.
  [[nodiscard]] std::uint64_t samples_drawn() const noexcept { return samples_; }

 private:
  const Graph* g_;
  std::uint32_t k_;
  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_;
  std::vector<std::uint32_t> stamp_;  ///< stamp_[v] == epoch_ iff v in next_
  std::uint32_t epoch_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace cobra::core
