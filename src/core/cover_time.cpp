#include "core/cover_time.hpp"

#include <stdexcept>

#include "core/cobra_walk.hpp"
#include "core/gossip.hpp"
#include "core/parallel_walks.hpp"
#include "core/random_walk.hpp"
#include "core/walt.hpp"

namespace cobra::core {

CoverageTracker::CoverageTracker(std::uint32_t num_vertices)
    : covered_(num_vertices, 0) {}

std::uint32_t CoverageTracker::absorb(std::span<const Vertex> active) {
  std::uint32_t newly = 0;
  for (const Vertex v : active) {
    if (covered_[v] == 0) {
      covered_[v] = 1;
      ++newly;
    }
  }
  count_ += newly;
  return newly;
}

void CoverageTracker::reset() {
  covered_.assign(covered_.size(), 0);
  count_ = 0;
}

void CoverageTracker::restore_raw(std::span<const std::uint8_t> bytes) {
  covered_.assign(bytes.begin(), bytes.end());
  count_ = 0;
  for (const std::uint8_t b : covered_) count_ += (b != 0) ? 1u : 0u;
}

std::uint64_t default_step_budget(std::uint32_t num_vertices) {
  // Worst case for simple RW cover is Θ(n^3); pad by 32x and floor the
  // budget so tiny graphs aren't budget-bound either.
  const auto n = static_cast<std::uint64_t>(num_vertices);
  const std::uint64_t cubic = 32 * n * n * n;
  return cubic < 1u << 20 ? 1u << 20 : cubic;
}

namespace {

std::uint64_t budget_or_default(std::uint64_t max_steps, const Graph& g) {
  return max_steps == 0 ? default_step_budget(g.num_vertices()) : max_steps;
}

}  // namespace

CoverResult cobra_cover(const Graph& g, Vertex start, std::uint32_t branching,
                        Engine& gen, std::uint64_t max_steps) {
  CobraWalk walk(g, start, branching);
  return run_to_cover(walk, gen, budget_or_default(max_steps, g));
}

CoverResult random_walk_cover(const Graph& g, Vertex start, Engine& gen,
                              std::uint64_t max_steps) {
  RandomWalk walk(g, start);
  return run_to_cover(walk, gen, budget_or_default(max_steps, g));
}

CoverResult gossip_push_cover(const Graph& g, Vertex start, Engine& gen,
                              std::uint64_t max_steps) {
  Gossip gossip(g, start, GossipMode::Push);
  return run_to_cover(gossip, gen, budget_or_default(max_steps, g));
}

CoverResult parallel_walks_cover(const Graph& g, Vertex start,
                                 std::uint32_t walkers, Engine& gen,
                                 std::uint64_t max_steps) {
  ParallelWalks walks(g, start, walkers);
  return run_to_cover(walks, gen, budget_or_default(max_steps, g));
}

CoverResult walt_cover(const Graph& g, Vertex start, std::uint32_t pebbles,
                       bool lazy, Engine& gen, std::uint64_t max_steps) {
  Walt walt(g, start, pebbles, lazy);
  return run_to_cover(walt, gen, budget_or_default(max_steps, g));
}

}  // namespace cobra::core
