#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/types.hpp"

/// \file cover_time.hpp
/// The cover-time engine. Tracks which vertices a process has ever
/// activated and runs any VertexProcess until all of the graph is covered
/// (or a step budget runs out). This is the measurement the paper's every
/// theorem is about: cover time = E[min T such that every vertex belonged
/// to some active set S_t, t <= T].

namespace cobra::core {

/// Set-of-covered-vertices tracker with O(1) absorb per active vertex.
class CoverageTracker {
 public:
  explicit CoverageTracker(std::uint32_t num_vertices);

  /// Mark all of `active` covered; returns how many were newly covered.
  std::uint32_t absorb(std::span<const Vertex> active);

  void reset();

  [[nodiscard]] bool is_covered(Vertex v) const { return covered_[v] != 0; }
  [[nodiscard]] std::uint32_t covered_count() const noexcept { return count_; }
  [[nodiscard]] std::uint32_t total() const noexcept {
    return static_cast<std::uint32_t>(covered_.size());
  }
  [[nodiscard]] bool complete() const noexcept { return count_ == total(); }
  [[nodiscard]] double fraction() const noexcept {
    return total() == 0 ? 1.0
                        : static_cast<double>(count_) / static_cast<double>(total());
  }

  /// The covered-flag bytes verbatim (checkpoint serialization).
  [[nodiscard]] std::span<const std::uint8_t> raw() const noexcept {
    return covered_;
  }

  /// Replace the tracker's contents with previously saved `raw()` bytes
  /// (the byte count is the vertex count) and recount.
  void restore_raw(std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::uint8_t> covered_;
  std::uint32_t count_ = 0;
};

/// Outcome of a cover run.
struct CoverResult {
  std::uint64_t steps = 0;        ///< rounds taken (valid iff covered)
  bool covered = false;           ///< false = step budget exhausted
  std::uint32_t covered_count = 0;  ///< vertices covered when stopping
};

/// Run `process` (already holding its initial active set) until the whole
/// graph is covered or `max_steps` rounds elapse. The initial active set
/// counts as covered at step 0.
template <VertexProcess P>
CoverResult run_to_cover(P& process, Engine& gen, std::uint64_t max_steps) {
  CoverageTracker tracker(process.graph().num_vertices());
  tracker.absorb(process.active());
  CoverResult result;
  while (!tracker.complete() && result.steps < max_steps) {
    process.step(gen);
    ++result.steps;
    tracker.absorb(process.active());
  }
  result.covered = tracker.complete();
  result.covered_count = tracker.covered_count();
  return result;
}

/// Default step budget heuristic: generous multiple of the worst-case
/// bounds so an un-covered run signals a real bug, not tight budgeting.
[[nodiscard]] std::uint64_t default_step_budget(std::uint32_t num_vertices);

/// Convenience one-shots (used everywhere in tests/benches): build the
/// named process on `g` from `start`, run to cover, return the result.
CoverResult cobra_cover(const Graph& g, Vertex start, std::uint32_t branching,
                        Engine& gen, std::uint64_t max_steps = 0);
CoverResult random_walk_cover(const Graph& g, Vertex start, Engine& gen,
                              std::uint64_t max_steps = 0);
CoverResult gossip_push_cover(const Graph& g, Vertex start, Engine& gen,
                              std::uint64_t max_steps = 0);
CoverResult parallel_walks_cover(const Graph& g, Vertex start,
                                 std::uint32_t walkers, Engine& gen,
                                 std::uint64_t max_steps = 0);
CoverResult walt_cover(const Graph& g, Vertex start, std::uint32_t pebbles,
                       bool lazy, Engine& gen, std::uint64_t max_steps = 0);

}  // namespace cobra::core
