#include "core/exact_cobra.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"
#include "numeric/dense.hpp"

namespace cobra::core {

namespace {

/// Sparse distribution of the sample-set mask emitted by one active vertex.
struct SampleDist {
  std::vector<std::pair<std::uint32_t, double>> entries;  // (mask, prob)
};

/// Distribution of the set of distinct vertices among k uniform neighbor
/// samples of v (k = 1: singletons; k = 2: singletons and pairs).
SampleDist vertex_sample_dist(const Graph& g, Vertex v, std::uint32_t k) {
  SampleDist dist;
  const auto nbrs = g.neighbors(v);
  const double d = static_cast<double>(nbrs.size());
  if (k == 1) {
    for (const Vertex u : nbrs) {
      dist.entries.push_back({1u << u, 1.0 / d});
    }
    return dist;
  }
  // k = 2: every ordered pair of samples has probability 1/d^2; its mask
  // is the pair's union. Push all ordered pairs and merge duplicates below
  // (d <= 10 here, so at most 100 entries) — multigraph-safe, since
  // parallel edges simply contribute their mask multiple times.
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const std::uint32_t mask = (1u << nbrs[i]) | (1u << nbrs[j]);
      dist.entries.push_back({mask, 1.0 / (d * d)});
    }
  }
  // Merge duplicate masks.
  std::vector<std::pair<std::uint32_t, double>> merged;
  for (const auto& [mask, p] : dist.entries) {
    bool found = false;
    for (auto& [m2, p2] : merged) {
      if (m2 == mask) {
        p2 += p;
        found = true;
        break;
      }
    }
    if (!found) merged.push_back({mask, p});
  }
  dist.entries = std::move(merged);
  return dist;
}

}  // namespace

ExactCobra::ExactCobra(const Graph& g, std::uint32_t branching)
    : g_(&g), k_(branching), n_(g.num_vertices()) {
  if (branching < 1 || branching > 2) {
    throw std::invalid_argument("ExactCobra: branching must be 1 or 2");
  }
  if (n_ == 0 || n_ > 10) {
    throw std::invalid_argument("ExactCobra: requires 1 <= n <= 10");
  }
  if (g.min_degree() == 0 || !graph::is_connected(g)) {
    throw std::invalid_argument("ExactCobra: connected graph required");
  }

  std::vector<SampleDist> per_vertex(n_);
  for (Vertex v = 0; v < n_; ++v) per_vertex[v] = vertex_sample_dist(g, v, k_);

  const std::uint32_t subsets = 1u << n_;
  trans_.assign(subsets, {});
  std::vector<double> buffer(subsets);
  for (std::uint32_t a = 1; a < subsets; ++a) {
    std::vector<double> dist(subsets, 0.0);
    dist[0] = 1.0;
    for (Vertex v = 0; v < n_; ++v) {
      if (((a >> v) & 1u) == 0) continue;
      std::fill(buffer.begin(), buffer.end(), 0.0);
      for (std::uint32_t m = 0; m < subsets; ++m) {
        const double p = dist[m];
        if (p == 0.0) continue;
        for (const auto& [sv, psv] : per_vertex[v].entries) {
          buffer[m | sv] += p * psv;
        }
      }
      dist.swap(buffer);
    }
    trans_[a] = std::move(dist);
  }
}

const std::vector<double>& ExactCobra::transition_row(std::uint32_t mask_a) const {
  if (mask_a == 0 || mask_a >= (1u << n_)) {
    throw std::out_of_range("ExactCobra::transition_row: bad mask");
  }
  return trans_[mask_a];
}

double ExactCobra::expected_hitting_time(Vertex start, Vertex target) const {
  if (start >= n_ || target >= n_) {
    throw std::out_of_range("ExactCobra::expected_hitting_time");
  }
  if (start == target) return 0.0;
  const std::uint32_t subsets = 1u << n_;
  const std::uint32_t target_bit = 1u << target;

  // Unknowns: T(A) for nonempty A not containing the target. Index map.
  std::vector<std::uint32_t> states;
  std::vector<std::int32_t> index(subsets, -1);
  for (std::uint32_t a = 1; a < subsets; ++a) {
    if ((a & target_bit) == 0) {
      index[a] = static_cast<std::int32_t>(states.size());
      states.push_back(a);
    }
  }
  const std::size_t m = states.size();
  numeric::Matrix system(m);
  std::vector<double> rhs(m, 1.0);
  for (std::size_t row = 0; row < m; ++row) {
    const std::uint32_t a = states[row];
    system.at(row, row) += 1.0;
    const auto& dist = trans_[a];
    for (std::uint32_t b = 1; b < subsets; ++b) {
      const double p = dist[b];
      if (p == 0.0 || (b & target_bit) != 0) continue;  // absorbed
      system.at(row, static_cast<std::size_t>(index[b])) -= p;
    }
  }
  const auto solution = numeric::solve_linear(system, rhs);
  return solution[static_cast<std::size_t>(index[1u << start])];
}

double ExactCobra::expected_cover_time(Vertex start) const {
  if (start >= n_) throw std::out_of_range("ExactCobra::expected_cover_time");
  if (n_ > 8) {
    throw std::invalid_argument("ExactCobra::expected_cover_time: n <= 8");
  }
  const std::uint32_t subsets = 1u << n_;
  const std::uint32_t full = subsets - 1;
  if (n_ == 1) return 0.0;

  // expected[C * subsets + A] = E[T | active A, covered C], for A subseteq
  // C, A nonempty. Layers processed in decreasing |C|; C = full is 0.
  std::vector<double> expected(static_cast<std::size_t>(subsets) * subsets, 0.0);

  // Group covered-masks by popcount, descending (skip C = full: all zero).
  std::vector<std::vector<std::uint32_t>> by_count(n_ + 1);
  for (std::uint32_t c = 1; c < full; ++c) {
    by_count[static_cast<std::size_t>(std::popcount(c))].push_back(c);
  }

  for (std::uint32_t count = n_ - 1; count >= 1; --count) {
    for (const std::uint32_t c : by_count[count]) {
      // Unknowns: nonempty A subseteq C. Enumerate subsets of C.
      std::vector<std::uint32_t> states;
      std::vector<std::int32_t> index(subsets, -1);
      for (std::uint32_t a = c; a != 0; a = (a - 1) & c) {
        index[a] = static_cast<std::int32_t>(states.size());
        states.push_back(a);
      }
      const std::size_t m = states.size();
      numeric::Matrix system(m);
      std::vector<double> rhs(m, 1.0);
      for (std::size_t row = 0; row < m; ++row) {
        const std::uint32_t a = states[row];
        system.at(row, row) += 1.0;
        const auto& dist = trans_[a];
        for (std::uint32_t b = 1; b < subsets; ++b) {
          const double p = dist[b];
          if (p == 0.0) continue;
          const std::uint32_t c_next = c | b;
          if (c_next == c) {
            system.at(row, static_cast<std::size_t>(index[b])) -= p;
          } else if (c_next != full) {
            rhs[row] += p * expected[static_cast<std::size_t>(c_next) * subsets + b];
          }
          // c_next == full: remaining expectation 0.
        }
      }
      const auto solution = numeric::solve_linear(system, rhs);
      for (std::size_t row = 0; row < m; ++row) {
        expected[static_cast<std::size_t>(c) * subsets + states[row]] =
            solution[row];
      }
    }
    if (count == 1) break;  // avoid unsigned underflow in the loop update
  }

  const std::uint32_t start_mask = 1u << start;
  return expected[static_cast<std::size_t>(start_mask) * subsets + start_mask];
}

}  // namespace cobra::core
