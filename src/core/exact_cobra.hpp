#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

/// \file exact_cobra.hpp
/// EXACT expected cover and hitting times of the k-cobra walk on small
/// graphs, by solving the walk's subset Markov chain. This is the
/// library's ground truth for the cobra process itself (the analogue of
/// graph/exact_hitting.hpp for the plain walk): Monte-Carlo estimators are
/// validated against it in tests, and theorem checks at tiny n can be made
/// exact instead of statistical.
///
/// Method. The active set S_t is a Markov chain on nonempty vertex
/// subsets. For hitting times we solve the single linear system
///
///   T(A) = 0 if target in A;  T(A) = 1 + sum_B P(B | A) T(B)
///
/// over all 2^n - 1 active sets. For cover times the state is (A, C) with
/// C the covered-so-far set and A subseteq C; transitions with C' = C stay
/// inside a layer (one linear system per C, of size 2^|C| - 1) and
/// transitions with C' superset C feed on already-solved larger layers, so
/// layers are processed in decreasing |C|.
///
/// Complexity: hitting O(8^n) worst case (dense LU on 2^n), cover
/// sum_C (2^|C|)^3 = O(9^n)-ish. Practical limits enforced: n <= 10 for
/// hitting, n <= 8 for cover. Branching k in {1, 2} (k = 1 reproduces the
/// simple random walk exactly, which tests cross-check against
/// exact_rw_hitting_times).

namespace cobra::core {

class ExactCobra {
 public:
  /// Precomputes the per-active-set transition distributions.
  /// Requires connected g, min degree >= 1, n <= 10, branching in {1, 2}.
  ExactCobra(const Graph& g, std::uint32_t branching);

  /// P(next active = B | current active = A), as a dense row over subset
  /// masks. A must be a nonempty vertex mask.
  [[nodiscard]] const std::vector<double>& transition_row(std::uint32_t mask_a) const;

  /// Exact E[hitting time of `target`] for the walk started at `start`.
  [[nodiscard]] double expected_hitting_time(Vertex start, Vertex target) const;

  /// Exact E[cover time] started at `start`. Requires n <= 8.
  [[nodiscard]] double expected_cover_time(Vertex start) const;

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] std::uint32_t branching() const noexcept { return k_; }

 private:
  const Graph* g_;
  std::uint32_t k_;
  std::uint32_t n_;
  /// trans_[A][B] = P(B | A); rows for every nonempty A.
  std::vector<std::vector<double>> trans_;
};

}  // namespace cobra::core
