#include "core/frontier_engine.hpp"

#include <stdexcept>

namespace cobra::core {

FrontierEngine::FrontierEngine(const Graph& g, FrontierOptions opts)
    : g_(&g), opts_(opts), stamp_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("FrontierEngine: empty graph");
  }
}

std::uint32_t FrontierEngine::advance_epoch() {
  if (++epoch_ == 0) {  // 32-bit wrap: stamps from 2^32 sparse rounds ago
    stamp_.assign(stamp_.size(), 0);  // would alias the new epoch — wipe
    epoch_ = 1;
  }
  return epoch_;
}

bool FrontierEngine::choose_dense(std::size_t frontier_size) {
  bool dense;
  switch (opts_.mode) {
    case FrontierMode::ForceSparse:
      dense = false;
      break;
    case FrontierMode::ForceDense:
      dense = true;
      break;
    default: {
      // Enter dense above n / alpha; once dense, stay until the frontier
      // falls below half the entry threshold (hysteresis: a frontier
      // hovering at the boundary pays one switch, not one per round).
      const double scaled =
          static_cast<double>(frontier_size) * opts_.dense_alpha;
      const auto n = static_cast<double>(g_->num_vertices());
      dense = last_dense_ ? scaled * 2.0 >= n : scaled > n;
      break;
    }
  }
  if (have_mode_ && dense != last_dense_) ++switches_;
  have_mode_ = true;
  last_dense_ = dense;
  ++(dense ? dense_rounds_ : sparse_rounds_);
  return dense;
}

par::ThreadPool* FrontierEngine::pick_pool(std::size_t frontier_size) const {
  // Work estimate, not raw frontier length: a 5k-vertex frontier at k = 4
  // is as much sampling as a 20k one at k = 1, and it is the sampling that
  // must amortize the pool hand-off.
  const double work = static_cast<double>(frontier_size) *
                      std::max(opts_.branching_hint, 1.0);
  if (work < static_cast<double>(opts_.parallel_threshold)) return nullptr;
  // Resolve the pool lazily: a walk whose frontier never clears the
  // threshold must not spawn the process-wide pool as a side effect.
  par::ThreadPool* pool =
      opts_.pool != nullptr ? opts_.pool : &par::global_pool();
  if (pool->size() <= 1 || pool->on_worker_thread()) return nullptr;
  return pool;
}

void FrontierEngine::ensure_workers(std::size_t workers) {
  if (worker_lists_.size() < workers) {
    worker_lists_.resize(workers);
    worker_decode_.resize(workers);
    worker_emitted_.resize(workers);
    worker_claimed_.resize(workers);
  }
}

std::span<const Vertex> FrontierEngine::chunk_vertices(
    const FrontierView& in, std::size_t span, std::size_t c,
    std::vector<Vertex>& scratch) const {
  const std::uint64_t lo = static_cast<std::uint64_t>(c) * span;
  const std::uint64_t hi =
      std::min<std::uint64_t>(lo + span, g_->num_vertices());
  if (!in.dense()) {
    const auto list = in.list();
    const auto begin = std::lower_bound(list.begin(), list.end(),
                                        static_cast<Vertex>(lo));
    const auto end =
        std::lower_bound(begin, list.end(), static_cast<Vertex>(hi));
    return list.subspan(static_cast<std::size_t>(begin - list.begin()),
                        static_cast<std::size_t>(end - begin));
  }
  // Dense: decode the chunk's words (span is a multiple of 64, so chunk
  // boundaries are word boundaries) into the caller's scratch.
  scratch.clear();
  const auto words = in.words();
  const std::size_t w0 = static_cast<std::size_t>(lo >> 6);
  const std::size_t w1 = std::min<std::size_t>(
      static_cast<std::size_t>((hi + 63) >> 6), words.size());
  detail::decode_bits(words, w0, w1, scratch);
  return scratch;
}

void FrontierEngine::dedupe(std::span<const Vertex> in,
                            std::vector<Vertex>& out) {
  out.clear();
  if (in.empty()) return;
  const std::uint32_t epoch = advance_epoch();
  for (const Vertex v : in) {
    if (stamp_[v] != epoch) {
      stamp_[v] = epoch;
      out.push_back(v);
    }
  }
}

void FrontierEngine::dedupe(std::span<const Vertex> in, Frontier& out) {
  out.clear();
  dedupe(in, out.list_);
  // Canonical ascending order — the invariant every expand input relies on.
  std::sort(out.list_.begin(), out.list_.end());
  out.count_ = out.list_.size();
}

}  // namespace cobra::core
