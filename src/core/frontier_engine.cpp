#include "core/frontier_engine.hpp"

#include <new>
#include <stdexcept>

#include "util/fault.hpp"

namespace cobra::core {

FrontierEngine::FrontierEngine(const Graph& g, FrontierOptions opts)
    : g_(&g), opts_(opts), stamp_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("FrontierEngine: empty graph");
  }
}

std::uint32_t FrontierEngine::advance_epoch() {
  if (++epoch_ == 0) {  // 32-bit wrap: stamps from 2^32 sparse rounds ago
    stamp_.assign(stamp_.size(), 0);  // would alias the new epoch — wipe
    epoch_ = 1;
  }
  return epoch_;
}

bool FrontierEngine::want_dense(std::size_t frontier_size) const {
  switch (opts_.mode) {
    case FrontierMode::ForceSparse:
      return false;
    case FrontierMode::ForceDense:
      return true;
    default: {
      // Enter dense above n / alpha; once dense, stay until the frontier
      // falls below half the entry threshold (hysteresis: a frontier
      // hovering at the boundary pays one switch, not one per round).
      const double scaled =
          static_cast<double>(frontier_size) * opts_.dense_alpha;
      const auto n = static_cast<double>(g_->num_vertices());
      return last_dense_ ? scaled * 2.0 >= n : scaled > n;
    }
  }
}

bool FrontierEngine::commit_mode(bool dense) {
  if (have_mode_ && dense != last_dense_) ++switches_;
  have_mode_ = true;
  last_dense_ = dense;
  ++(dense ? dense_rounds_ : sparse_rounds_);
  return dense;
}

bool FrontierEngine::acquire_dense_words(std::vector<std::uint64_t>& bits) {
  if (util::fault::should_fail("frontier.dense_alloc")) return false;
  try {
    bits.reserve(num_words());
  } catch (const std::bad_alloc&) {
    return false;
  }
  return true;
}

bool FrontierEngine::choose_dense(std::size_t frontier_size,
                                  std::vector<std::uint64_t>& dense_bits) {
  bool dense = want_dense(frontier_size);
  const char* reason = "";
  // The bitmap's O(n/64) words are the dense path's one allocation; if
  // they can't be had, the sparse path still works in the memory the
  // frontier already owns — identical results, degraded speed. Demote
  // BEFORE committing, so hysteresis and counters see the real mode.
  if (dense && !acquire_dense_words(dense_bits)) {
    dense = false;
    reason = "dense-alloc-fallback";
    ++dense_fallbacks_;
    obs::count("frontier.dense_fallbacks");
  }
  // A reason is only a SWITCH note: the first round's mode is a choice,
  // not a change, so it traces as "" like any other steady round.
  if (reason[0] == '\0' && have_mode_ && dense != last_dense_) {
    switch (opts_.mode) {
      case FrontierMode::ForceSparse:
        reason = "forced-sparse";
        break;
      case FrontierMode::ForceDense:
        reason = "forced-dense";
        break;
      default:
        reason = dense ? "auto-grow" : "auto-shrink";
        break;
    }
  }
  last_switch_reason_ = reason;
  return commit_mode(dense);
}

par::ThreadPool* FrontierEngine::pick_pool(std::size_t frontier_size) const {
  // Work estimate, not raw frontier length: a 5k-vertex frontier at k = 4
  // is as much sampling as a 20k one at k = 1, and it is the sampling that
  // must amortize the pool hand-off.
  const double work = static_cast<double>(frontier_size) *
                      std::max(opts_.branching_hint, 1.0);
  if (work < static_cast<double>(opts_.parallel_threshold)) return nullptr;
  // Resolve the pool lazily: a walk whose frontier never clears the
  // threshold must not spawn the process-wide pool as a side effect.
  par::ThreadPool* pool =
      opts_.pool != nullptr ? opts_.pool : &par::global_pool();
  if (pool->size() <= 1 || pool->on_worker_thread()) return nullptr;
  return pool;
}

void FrontierEngine::clear_words(std::vector<std::uint64_t>& bits,
                                 par::ThreadPool* pool) {
#if COBRA_OBS_LEVEL >= 1
  static obs::Timer& timer = obs::registry().timer("frontier.clear");
  obs::ScopedTimer timed(timer);
#endif
  const std::size_t words = num_words();
  // Parallel clearing only pays once the bitmap outgrows the last-level
  // cache scale (n >= ~2^21); below that the pool dispatch costs more than
  // the memset it replaces.
  constexpr std::size_t kMinParallelClearWords = std::size_t{1} << 15;
  if (pool == nullptr || !opts_.parallel_dense_ops ||
      words < kMinParallelClearWords || bits.size() != words) {
    bits.assign(words, 0);
    return;
  }
  constexpr std::size_t kClearChunkWords = std::size_t{1} << 13;  // 64 KiB
  const std::size_t n_chunks = (words + kClearChunkWords - 1) / kClearChunkWords;
  std::uint64_t* data = bits.data();
  par::parallel_for(*pool, 0, n_chunks, [&](std::size_t c) {
    const std::size_t lo = c * kClearChunkWords;
    const std::size_t hi = std::min(words, lo + kClearChunkWords);
    std::fill(data + lo, data + hi, std::uint64_t{0});
  });
}

void FrontierEngine::materialize_bits(std::span<const std::uint64_t> words,
                                      std::size_t count,
                                      std::vector<Vertex>& out) {
#if COBRA_OBS_LEVEL >= 1
  static obs::Timer& timer = obs::registry().timer("frontier.materialize");
  obs::ScopedTimer timed(timer);
#endif
  out.clear();
  const std::size_t n_words = words.size();
  // The decode is O(n/64 + count): the bitmap scan term does not shrink
  // with a collapsing frontier, so the pool gate uses whichever of the
  // two is larger (still through pick_pool, so a forced-serial threshold
  // keeps the decode serial too).
  constexpr std::size_t kMinParallelDecodeWords = std::size_t{1} << 12;
  par::ThreadPool* pool = opts_.parallel_dense_ops
                              ? pick_pool(std::max(count, n_words))
                              : nullptr;
  // Fault site `frontier.materialize_alloc` (GRACEFUL): the parallel
  // decode's offsets scratch cannot be allocated — degrade to the serial
  // single-pass decode, which needs no side allocation and produces the
  // same ascending vertex list by construction.
  if (pool != nullptr && util::fault::should_fail("frontier.materialize_alloc")) {
    pool = nullptr;
  }
  if (pool == nullptr || n_words < kMinParallelDecodeWords) {
    out.reserve(count);
    detail::decode_bits(words, 0, n_words, out);
    return;
  }
  constexpr std::size_t kDecodeChunkWords = std::size_t{1} << 11;
  const std::size_t n_chunks =
      (n_words + kDecodeChunkWords - 1) / kDecodeChunkWords;
  // Pass 1: per-range popcounts -> exclusive prefix offsets. Each range
  // then decodes straight into its final slot, so the ascending order is
  // positional, not a merge artifact.
  std::vector<std::size_t> offsets(n_chunks + 1, 0);
  par::parallel_for(*pool, 0, n_chunks, [&](std::size_t c) {
    const std::size_t lo = c * kDecodeChunkWords;
    const std::size_t hi = std::min(n_words, lo + kDecodeChunkWords);
    std::size_t bits = 0;
    for (std::size_t w = lo; w < hi; ++w) {
      bits += static_cast<std::size_t>(std::popcount(words[w]));
    }
    offsets[c + 1] = bits;
  });
  for (std::size_t c = 0; c < n_chunks; ++c) offsets[c + 1] += offsets[c];
  assert(offsets[n_chunks] == count);
  out.resize(offsets[n_chunks]);
  Vertex* base = out.data();
  par::parallel_for(*pool, 0, n_chunks, [&](std::size_t c) {
    const std::size_t lo = c * kDecodeChunkWords;
    const std::size_t hi = std::min(n_words, lo + kDecodeChunkWords);
    Vertex* dst = base + offsets[c];
    for (std::size_t w = lo; w < hi; ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        *dst++ = static_cast<Vertex>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  });
}

void FrontierEngine::ensure_workers(std::size_t workers) {
  if (worker_lists_.size() < workers) {
    worker_lists_.resize(workers);
    worker_decode_.resize(workers);
    worker_emitted_.resize(workers);
    worker_claimed_.resize(workers);
    worker_blocks_.resize(workers);
  }
}

std::span<const Vertex> FrontierEngine::chunk_vertices(
    const FrontierView& in, std::size_t span, std::size_t c,
    std::vector<Vertex>& scratch) const {
  const std::uint64_t lo = static_cast<std::uint64_t>(c) * span;
  const std::uint64_t hi =
      std::min<std::uint64_t>(lo + span, g_->num_vertices());
  if (!in.dense()) {
    const auto list = in.list();
    const auto begin = std::lower_bound(list.begin(), list.end(),
                                        static_cast<Vertex>(lo));
    const auto end =
        std::lower_bound(begin, list.end(), static_cast<Vertex>(hi));
    return list.subspan(static_cast<std::size_t>(begin - list.begin()),
                        static_cast<std::size_t>(end - begin));
  }
  // Dense: decode the chunk's words (span is a multiple of 64, so chunk
  // boundaries are word boundaries) into the caller's scratch.
  scratch.clear();
  const auto words = in.words();
  const std::size_t w0 = static_cast<std::size_t>(lo >> 6);
  const std::size_t w1 = std::min<std::size_t>(
      static_cast<std::size_t>((hi + 63) >> 6), words.size());
  detail::decode_bits(words, w0, w1, scratch);
  return scratch;
}

void FrontierEngine::occupancy_stats(const FrontierView& in, std::size_t span,
                                     std::uint64_t& chunks,
                                     std::uint64_t& max_occ) const {
  chunks = 0;
  max_occ = 0;
  if (!in.dense()) {
    // Walk the sorted list run by run: one pass, no touch of empty chunks.
    const auto list = in.list();
    std::size_t i = 0;
    while (i < list.size()) {
      const std::size_t c = list[i] / span;
      std::size_t occ = 0;
      while (i < list.size() && list[i] / span == c) {
        ++occ;
        ++i;
      }
      ++chunks;
      max_occ = std::max<std::uint64_t>(max_occ, occ);
    }
    return;
  }
  // Dense: popcount per chunk (span is a multiple of 64, so chunk
  // boundaries are word boundaries).
  const auto words = in.words();
  const std::size_t words_per_chunk = span >> 6;
  for (std::size_t w0 = 0; w0 < words.size(); w0 += words_per_chunk) {
    const std::size_t w1 = std::min(words.size(), w0 + words_per_chunk);
    std::uint64_t occ = 0;
    for (std::size_t w = w0; w < w1; ++w) {
      occ += static_cast<std::uint64_t>(std::popcount(words[w]));
    }
    if (occ == 0) continue;
    ++chunks;
    max_occ = std::max(max_occ, occ);
  }
}

void FrontierEngine::emit_trace(const FrontierView& in, std::size_t produced,
                                bool dense, const obs::Stopwatch& watch) {
  if (trace_id_ == 0) trace_id_ = obs::next_trace_id();
  obs::RoundTrace t;
  t.trace_id = trace_id_;
  t.round = sparse_rounds_ + dense_rounds_;  // 1-based: already committed
  t.frontier = in.size();
  t.produced = produced;
  t.mode = dense ? "dense" : "sparse";
  t.path = last_parallel_ ? "parallel" : "serial";
  t.switch_reason = last_switch_reason_;
  occupancy_stats(in, chunk_span(), t.chunks, t.max_chunk);
  t.mean_chunk = t.chunks > 0 ? static_cast<double>(in.size()) /
                                    static_cast<double>(t.chunks)
                              : 0.0;
  t.rng_blocks = last_rng_blocks_;
  t.seconds = watch.seconds();
  obs::trace_round(t);
}

void FrontierEngine::audit_graph_once() {
  if (audit_graph_checked_) return;
  audit_graph_checked_ = true;
  std::string why;
  if (!g_->validate(&why)) audit::report_violation("graph-csr", why);
}

void FrontierEngine::audit_frontier(const Frontier& next, bool dense) {
  if (!audit::sample_round(audit_seq_++)) return;
  audit_graph_once();
  const std::size_t n = g_->num_vertices();
  std::string why;
  if (dense) {
    if (!audit::check_bitmap(next.bits_, next.count_, n, &why)) {
      audit::report_violation("bitmap", why);
    }
  } else {
    if (!audit::check_canonical_list(next.list_, n, &why)) {
      audit::report_violation("canonical-order", why);
    }
    if (!audit::check_stamps(next.list_, stamp_, epoch_, &why)) {
      audit::report_violation("epoch-stamps", why);
    }
  }
}

void FrontierEngine::audit_list(std::span<const Vertex> next, bool dense) {
  if (!audit::sample_round(audit_seq_++)) return;
  audit_graph_once();
  const std::size_t n = g_->num_vertices();
  std::string why;
  if (!audit::check_canonical_list(next, n, &why)) {
    audit::report_violation("canonical-order", why);
  }
  if (dense) {
    // The materialized list came from the scratch bitmap — the two must
    // agree on the count, and the bitmap itself must be healthy.
    if (!audit::check_bitmap(scratch_bits_, next.size(), n, &why)) {
      audit::report_violation("bitmap", why);
    }
  } else if (!audit::check_stamps(next, stamp_, epoch_, &why)) {
    audit::report_violation("epoch-stamps", why);
  }
}

void FrontierEngine::audit_retain(const Frontier& next, bool dense) {
  if (!audit::sample_round(audit_seq_++)) return;
  audit_graph_once();
  const std::size_t n = g_->num_vertices();
  std::string why;
  if (dense) {
    if (!audit::check_bitmap(next.bits_, next.count_, n, &why)) {
      audit::report_violation("bitmap", why);
    }
  } else {
    // Retain rounds filter an existing canonical frontier: no vertex is
    // claimed, so the epoch/stamp record is deliberately untouched and the
    // expand-path check_stamps would misfire here. Canonical order (which
    // implies the subset property held) is the whole contract.
    if (!audit::check_canonical_list(next.list_, n, &why)) {
      audit::report_violation("canonical-order", why);
    }
  }
}

void FrontierEngine::audit_retain_list(std::span<const Vertex> next,
                                       bool dense) {
  if (!audit::sample_round(audit_seq_++)) return;
  audit_graph_once();
  const std::size_t n = g_->num_vertices();
  std::string why;
  if (!audit::check_canonical_list(next, n, &why)) {
    audit::report_violation("canonical-order", why);
  }
  // Same stamp-check omission as audit_retain; when the round ran dense the
  // materialized list still must agree with the scratch bitmap.
  if (dense && !audit::check_bitmap(scratch_bits_, next.size(), n, &why)) {
    audit::report_violation("bitmap", why);
  }
}

void FrontierEngine::dedupe(std::span<const Vertex> in,
                            std::vector<Vertex>& out) {
  out.clear();
  if (in.empty()) return;
  const std::uint32_t epoch = advance_epoch();
  for (const Vertex v : in) {
    if (stamp_[v] != epoch) {
      stamp_[v] = epoch;
      out.push_back(v);
    }
  }
}

void FrontierEngine::dedupe(std::span<const Vertex> in, Frontier& out) {
  out.clear();
  dedupe(in, out.list_);
  // Canonical ascending order — the invariant every expand input relies on.
  std::sort(out.list_.begin(), out.list_.end());
  out.count_ = out.list_.size();
}

}  // namespace cobra::core
