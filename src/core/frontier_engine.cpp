#include "core/frontier_engine.hpp"

#include <stdexcept>

namespace cobra::core {

FrontierEngine::FrontierEngine(const Graph& g, FrontierOptions opts)
    : g_(&g), opts_(opts), stamp_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) {
    throw std::invalid_argument("FrontierEngine: empty graph");
  }
}

std::uint32_t FrontierEngine::advance_epoch() {
  if (++epoch_ == 0) {  // 32-bit wrap: stamps from 2^32 rounds ago would
    stamp_.assign(stamp_.size(), 0);  // alias the new epoch — wipe them
    epoch_ = 1;
  }
  return epoch_;
}

void FrontierEngine::dedupe(std::span<const Vertex> in,
                            std::vector<Vertex>& out) {
  out.clear();
  if (in.empty()) return;
  const std::uint32_t epoch = advance_epoch();
  const std::uint64_t tag = static_cast<std::uint64_t>(epoch) << 32;
  for (const Vertex v : in) {
    if ((stamp_[v] >> 32) != epoch) {
      stamp_[v] = tag;  // owner chunk 0: resets are serial by definition
      out.push_back(v);
    }
  }
}

}  // namespace cobra::core
