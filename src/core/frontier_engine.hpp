#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "parallel/monte_carlo.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/batch.hpp"
#include "rng/splitmix64.hpp"

/// \file frontier_engine.hpp
/// The shared frontier-expansion engine: executes one branching/coalescing
/// round of any frontier process (cobra walk, coalescing walks, gossip
/// push, ...) with the per-vertex sampling work spread across the thread
/// pool. This is the library's hottest path — on expanders the frontier
/// grows to Θ(n) vertices, so per-round work, not per-trial work, is the
/// unit of parallelism that matters (the same altitude at which Ghaffari &
/// Uitto's sparsified MPC rounds and parallel greedy MIS operate).
///
/// Determinism contract (mirrors monte_carlo.hpp): a round's randomness is
/// a pure function of its `round_seed`. The frontier is split into
/// fixed-size chunks; chunk c samples from an engine seeded with
/// rng::derive_seed(round_seed, c). Thread count only decides which worker
/// runs which chunk, never what a chunk draws, so the produced frontier is
/// bit-identical across 1, 2, ... N threads AND identical to the serial
/// in-line path (which walks the same chunks in index order).
///
/// Dedup: offspring are deduplicated against a per-vertex epoch-stamp
/// array. Each stamp packs (epoch << 32) | owner_chunk. In the parallel
/// path chunks claim vertices with a CAS loop that resolves contention by
/// MIN chunk index — exactly the vertex-to-chunk assignment the serial
/// in-order pass produces — and a final merge keeps, per chunk, only the
/// entries the chunk still owns. Hence content AND order of the next
/// frontier are schedule-independent.
///
/// Epoch-wrap audit (the stamp idiom's one failure mode): advancing a
/// 32-bit epoch past 2^32 would alias stamps from 2^32 rounds ago, so the
/// advance wipes the array on wrap. The engine centralizes that logic in
/// one place (`advance_epoch`), and `expand` returns before touching the
/// epoch when the frontier is empty — an extinct process stepped in a loop
/// no longer burns epochs (or the O(n) wrap re-scan) doing nothing.

namespace cobra::core {

struct FrontierOptions {
  /// Frontier vertices per chunk. Fixed chunking (not pool-size-derived) is
  /// what makes results independent of the thread count.
  std::size_t chunk_size = 1024;
  /// Frontiers smaller than this run in-line on the calling thread: below
  /// it, pool hand-off costs more than the sampling itself.
  std::size_t parallel_threshold = 8192;
  /// Pool to spread chunks over; nullptr means par::global_pool().
  par::ThreadPool* pool = nullptr;
};

/// Uniform neighbor selection with a regular-degree fast path. When the
/// graph is regular with a power-of-two degree d >= 2, Lemire's bounded
/// sampler degenerates to a shift (2^64 mod d == 0, so the rejection zone
/// is empty and m >> 64 == x >> (64 - log2 d)); precomputing that shift
/// replaces the 128-bit multiply with a mask-like single shift, and the
/// result is bit-identical to the generic path.
class NeighborSampler {
 public:
  NeighborSampler() = default;

  explicit NeighborSampler(const Graph& g) {
    if (g.num_vertices() == 0 || !g.is_regular()) return;
    const std::uint32_t degree = g.degree(0);
    if (degree >= 2 && std::has_single_bit(degree)) {
      shift_ = 64 - std::bit_width(degree) + 1;  // 64 - log2(degree)
    }
  }

  template <rng::Uint64Generator G>
  [[nodiscard]] Vertex operator()(std::span<const Vertex> neighbors,
                                  G& gen) const {
    if (shift_ != 0) {
      return neighbors[static_cast<std::size_t>(gen() >> shift_)];
    }
    return neighbors[static_cast<std::size_t>(
        rng::uniform_below(gen, neighbors.size()))];
  }

  /// True when the shift fast path is armed (exposed for tests).
  [[nodiscard]] bool fast_path() const noexcept { return shift_ != 0; }

 private:
  int shift_ = 0;  // 0 = generic Lemire path
};

class FrontierEngine {
 public:
  /// The RNG handed to samplers: a block-buffered xoshiro (rng/batch.hpp).
  using ChunkRng = rng::Batched<Engine, 256>;

  explicit FrontierEngine(const Graph& g, FrontierOptions opts = {});

  /// Expand one round: for every frontier vertex v, invoke
  /// `sampler(v, rng, sink)`, which must call `sink(u)` once per offspring
  /// vertex u. `next` receives the deduplicated offspring (cleared first).
  /// `sampler` is shared across worker threads — it must be const-callable
  /// and must not mutate shared state without synchronization.
  template <typename Sampler>
  void expand(std::span<const Vertex> frontier, std::vector<Vertex>& next,
              std::uint64_t round_seed, const Sampler& sampler);

  /// Serial dedup of `in` into `out` (reset paths): keeps the first
  /// occurrence of each vertex, preserving order. Shares the stamp array,
  /// so it composes with expand rounds.
  void dedupe(std::span<const Vertex> in, std::vector<Vertex>& out);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Mutable knobs — tests pin chunk_size / threshold / pool explicitly.
  [[nodiscard]] FrontierOptions& options() noexcept { return opts_; }

  /// How many expand rounds took each path (observability for tests/bench).
  [[nodiscard]] std::uint64_t parallel_rounds() const noexcept {
    return parallel_rounds_;
  }
  [[nodiscard]] std::uint64_t serial_rounds() const noexcept {
    return serial_rounds_;
  }

  /// Total sink() invocations of the most recent expand round — i.e. the
  /// offspring emitted before dedup. Counted per chunk and summed at the
  /// merge (no shared atomic in the sampling loop), so callers whose
  /// per-vertex emission count is data-dependent (random branching
  /// schedules) read their work measure here instead of maintaining a
  /// contended counter inside the sampler.
  [[nodiscard]] std::uint64_t last_emitted() const noexcept {
    return last_emitted_;
  }

 private:
  /// Advance the epoch, wiping stamps on 32-bit wrap (the aliasing guard).
  std::uint32_t advance_epoch();

  const Graph* g_;
  FrontierOptions opts_;
  std::vector<std::uint64_t> stamp_;  ///< (epoch << 32) | owner_chunk
  std::uint32_t epoch_ = 0;
  std::vector<std::vector<Vertex>> buffers_;  ///< per-chunk offspring
  std::vector<std::uint64_t> chunk_emitted_;  ///< per-chunk sink() counts
  std::uint64_t parallel_rounds_ = 0;
  std::uint64_t serial_rounds_ = 0;
  std::uint64_t last_emitted_ = 0;
};

template <typename Sampler>
void FrontierEngine::expand(std::span<const Vertex> frontier,
                            std::vector<Vertex>& next,
                            std::uint64_t round_seed, const Sampler& sampler) {
  next.clear();
  last_emitted_ = 0;
  if (frontier.empty()) return;  // no epoch burn for extinct processes

  const std::uint32_t epoch = advance_epoch();
  const std::uint64_t epoch_bits = static_cast<std::uint64_t>(epoch) << 32;
  const std::size_t chunk_size = opts_.chunk_size > 0 ? opts_.chunk_size : 1;
  const std::size_t n_chunks = (frontier.size() + chunk_size - 1) / chunk_size;

  // Resolve the pool lazily: a walk whose frontier never clears the
  // threshold must not spawn the process-wide pool as a side effect.
  par::ThreadPool* pool = nullptr;
  bool parallel = frontier.size() >= opts_.parallel_threshold && n_chunks > 1;
  if (parallel) {
    pool = opts_.pool != nullptr ? opts_.pool : &par::global_pool();
    parallel = pool->size() > 1 && !pool->on_worker_thread();
  }

  if (!parallel) {
    ++serial_rounds_;
    std::uint64_t emitted = 0;
    // In-order chunk walk: "first chunk to sample u" == "min chunk", so
    // this is definitionally the parallel result.
    for (std::size_t c = 0; c < n_chunks; ++c) {
      ChunkRng rng(Engine(rng::derive_seed(round_seed, c)));
      const std::uint64_t tag = epoch_bits | c;
      const auto sink = [&](Vertex u) {
        ++emitted;
        if ((stamp_[u] >> 32) != epoch) {
          stamp_[u] = tag;
          next.push_back(u);
        }
      };
      const std::size_t lo = c * chunk_size;
      const std::size_t hi = std::min(frontier.size(), lo + chunk_size);
      for (std::size_t i = lo; i < hi; ++i) sampler(frontier[i], rng, sink);
    }
    last_emitted_ = emitted;
    return;
  }

  ++parallel_rounds_;
  if (buffers_.size() < n_chunks) buffers_.resize(n_chunks);
  if (chunk_emitted_.size() < n_chunks) chunk_emitted_.resize(n_chunks);

  // Pass A — sample every chunk into its own buffer; contended vertices are
  // claimed by CAS with min-chunk-wins resolution. A chunk pushes u at most
  // once (its claim can only be stolen by a LOWER chunk, after which every
  // re-sample of u sees owner <= c and skips). The cursor lives on this
  // frame: wait_idle() below outlives every task that references it.
  std::atomic<std::size_t> next_chunk{0};
  const std::size_t workers = std::min(pool->size(), n_chunks);
  for (std::size_t w = 0; w < workers; ++w) {
    pool->submit([this, &next_chunk, n_chunks, chunk_size, frontier, epoch,
                  epoch_bits, round_seed, &sampler] {
      for (;;) {
        const std::size_t c =
            next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= n_chunks) return;
        auto& buffer = buffers_[c];
        buffer.clear();
        ChunkRng rng(Engine(rng::derive_seed(round_seed, c)));
        const std::uint64_t tag = epoch_bits | c;
        std::uint64_t emitted = 0;
        const auto sink = [&](Vertex u) {
          ++emitted;
          std::atomic_ref<std::uint64_t> cell(stamp_[u]);
          std::uint64_t cur = cell.load(std::memory_order_relaxed);
          for (;;) {
            if ((cur >> 32) == epoch &&
                (cur & 0xffffffffULL) <= c) {
              return;  // already owned by this or a lower chunk
            }
            if (cell.compare_exchange_weak(cur, tag,
                                           std::memory_order_relaxed)) {
              buffer.push_back(u);
              return;
            }
          }
        };
        const std::size_t lo = c * chunk_size;
        const std::size_t hi = std::min(frontier.size(), lo + chunk_size);
        for (std::size_t i = lo; i < hi; ++i) sampler(frontier[i], rng, sink);
        chunk_emitted_[c] = emitted;
      }
    });
  }
  pool->wait_idle();

  // Pass B — deterministic merge: concatenate in chunk order, keeping only
  // the entries each chunk still owns (stolen entries surface in the
  // thief's buffer instead, at the position the serial pass would have
  // produced them).
  std::uint64_t emitted = 0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::uint64_t tag = epoch_bits | c;
    emitted += chunk_emitted_[c];
    for (const Vertex u : buffers_[c]) {
      if (stamp_[u] == tag) next.push_back(u);
    }
  }
  last_emitted_ = emitted;
}

}  // namespace cobra::core
