#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/audit.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/monte_carlo.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/batch.hpp"
#include "rng/splitmix64.hpp"
#include "util/fault.hpp"

/// \file frontier_engine.hpp
/// The shared frontier-expansion engine: executes one branching/coalescing
/// round of any frontier process (cobra walk, coalescing walks, gossip
/// push/pull, ...) with the per-vertex sampling work spread across the
/// thread pool. This is the library's hottest path — on expanders the
/// frontier grows to Θ(n) vertices in O(log n) rounds, so per-round work,
/// not per-trial work, is the unit of parallelism that matters (the same
/// altitude at which Ghaffari & Uitto's sparsified MPC rounds and parallel
/// greedy MIS operate).
///
/// Representations (the Beamer-style sparse/dense switch): a frontier is
/// either a SPARSE sorted vertex list or a DENSE bitmap over [0, n). The
/// engine picks per round from the frontier size — dense once
/// |frontier| * dense_alpha > n, back to sparse below half that entry
/// threshold (hysteresis, so a frontier hovering at the boundary does not
/// flap) — and the choice affects SPEED only, never results:
///
///   * sparse rounds dedup offspring against a per-vertex 32-bit epoch
///     stamp (one plain store serially, one compare_exchange in parallel)
///     and sort the claimed list;
///   * dense rounds dedup by setting bits with fetch_or on 64-bit bitmap
///     words — the output is a set materialized in ascending vertex order
///     by construction, so no sort, no ownership resolution, and ~1/32 of
///     the stamp path's dedup memory traffic.
///
/// Determinism contract (mirrors monte_carlo.hpp): a round's randomness is
/// a pure function of its `round_seed`. The VERTEX-ID SPACE [0, n) is split
/// into fixed ranges of `chunk_size` ids (rounded up to a multiple of 64 so
/// ranges align with bitmap words); the active vertices of range c are
/// visited in ascending id order drawing from an engine seeded
/// rng::derive_seed(round_seed, c). Because both representations walk the
/// same ranges in the same order, and both dedups produce the same set
/// materialized ascending, the produced frontier is bit-identical across
/// 1, 2, ... N threads, identical to the serial in-line path, AND identical
/// across the sparse and dense paths. (This is simpler than the previous
/// frontier-position chunking: ordering is canonical — ascending — rather
/// than "whatever the serial visit order was", so the parallel merge needs
/// no min-chunk CAS ownership protocol.) The one requirement this puts on
/// callers: a frontier passed as a raw span must be sorted ascending and
/// duplicate-free — which `expand` and `dedupe` outputs always are.
///
/// Epoch-wrap audit (the stamp idiom's one failure mode): advancing the
/// 32-bit epoch past 2^32 would alias stamps from 2^32 sparse rounds ago,
/// so the advance wipes the array on wrap (`advance_epoch`). Dense rounds
/// do not touch the stamps at all — their bitmap is cleared at round start
/// — so representation switches compose with the epoch scheme with no
/// extra invalidation. `expand` returns before touching any state when the
/// frontier is empty: an extinct process stepped in a loop burns neither
/// epochs nor bitmap clears.
///
/// Scheduling: chunks are claimed dynamically by a fixed set of workers
/// (par::parallel_for_chunks), each owning a reusable flat offspring
/// buffer and a decode scratch — no per-chunk allocation in steady state.
/// The sampling loop software-prefetches the CSR adjacency row a few
/// vertices ahead (ascending visit order makes the offsets stream
/// sequential, so only the targets row needs the hint).

namespace cobra::core {

/// How `expand` chooses the round's representation.
enum class FrontierMode : std::uint8_t {
  Auto,         ///< size-based switch with hysteresis (the default)
  ForceSparse,  ///< always the stamp/list path (tests, tiny graphs)
  ForceDense,   ///< always the bitmap path (tests)
};

struct FrontierOptions {
  /// Vertex IDs per chunk (rounded up to a multiple of 64 internally).
  /// Fixed chunking (not pool-size-derived) is what makes results
  /// independent of the thread count; changing it changes the
  /// seed-to-stream assignment, i.e. the trajectories a seed produces.
  std::size_t chunk_size = 1024;
  /// Estimated samples (|frontier| * branching_hint) below which a round
  /// runs in-line on the calling thread: below it, pool hand-off costs
  /// more than the sampling itself.
  std::size_t parallel_threshold = 8192;
  /// Pool to spread chunks over; nullptr means par::global_pool().
  par::ThreadPool* pool = nullptr;
  /// Expected sink() calls per frontier vertex — the work estimate that
  /// parallel_threshold is compared against. Clients that know their
  /// branching factor set it (CobraWalk sets k); 1.0 is the conservative
  /// default (one sample per vertex, the gossip/coalescing case).
  double branching_hint = 1.0;
  /// Dense once |frontier| * dense_alpha > n; back to sparse below half
  /// that. The default is where the bitmap's O(n/64)-word fixed costs
  /// (clear + materialize scan) drop below the sparse path's sort of the
  /// claimed list. Values < 1 effectively disable the dense path.
  double dense_alpha = 256.0;
  /// Representation override for tests and experiments.
  FrontierMode mode = FrontierMode::Auto;
  /// Spread the dense rounds' O(n/64) fixed costs (bitmap clear,
  /// span-overload materialization) over the round's pool once the bitmap
  /// outgrows cache scale. Value-independent work, so this affects SPEED
  /// only, never results; off = the serial clear/decode (tests pin it to
  /// isolate the sampling path).
  bool parallel_dense_ops = true;
};

namespace detail {

/// Append the set bits of `words[first_word, last_word)` to `out` as
/// vertex ids, ascending — the one bitmap-decode idiom, shared by
/// Frontier materialization, chunk decoding, and the span-overload
/// output path.
inline void decode_bits(std::span<const std::uint64_t> words,
                        std::size_t first_word, std::size_t last_word,
                        std::vector<Vertex>& out) {
  for (std::size_t w = first_word; w < last_word; ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      out.push_back(static_cast<Vertex>(
          (w << 6) + static_cast<std::size_t>(std::countr_zero(word))));
      word &= word - 1;
    }
  }
}

}  // namespace detail

/// A frontier in either representation, owned by the process that steps
/// it. Sparse form is a sorted duplicate-free vertex list; dense form is a
/// bitmap over [0, n) plus a popcount. `vertices()` is always available —
/// after a dense round it materializes (and caches) the sorted list from
/// the bitmap in O(n/64 + size). `size()` is O(1) in both forms, so hot
/// loops that only need the count (benches, growth tracking) never pay for
/// materialization.
class Frontier {
 public:
  Frontier() = default;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// True when the bitmap is the authoritative representation.
  [[nodiscard]] bool dense() const noexcept { return dense_; }

  /// The frontier as a sorted, duplicate-free span. Materializes from the
  /// bitmap on first call after a dense round; cached until the engine
  /// next writes this frontier.
  [[nodiscard]] std::span<const Vertex> vertices() const {
    if (!list_valid_) {
      list_.clear();
      list_.reserve(count_);
      detail::decode_bits(bits_, 0, bits_.size(), list_);
      list_valid_ = true;
    }
    return list_;
  }

  /// Reset to the empty sparse frontier (storage retained).
  void clear() noexcept {
    list_.clear();
    list_valid_ = true;
    dense_ = false;
    count_ = 0;
  }

  void swap(Frontier& other) noexcept {
    list_.swap(other.list_);
    bits_.swap(other.bits_);
    std::swap(list_valid_, other.list_valid_);
    std::swap(dense_, other.dense_);
    std::swap(count_, other.count_);
  }

 private:
  friend class FrontierEngine;
  friend class FrontierView;

  mutable std::vector<Vertex> list_;  ///< sparse form / dense-form cache
  mutable bool list_valid_ = true;
  std::vector<std::uint64_t> bits_;  ///< dense form, (n + 63) / 64 words
  bool dense_ = false;
  std::size_t count_ = 0;
};

/// Non-owning view of a frontier in either representation — what the
/// engine's expansion loops walk. Sparse views require the span to be
/// sorted ascending and duplicate-free (asserted in debug builds).
class FrontierView {
 public:
  /* implicit */ FrontierView(std::span<const Vertex> sorted) noexcept
      : list_(sorted), count_(sorted.size()) {
    assert(std::is_sorted(sorted.begin(), sorted.end()));
  }

  FrontierView(std::span<const std::uint64_t> words, std::size_t count) noexcept
      : words_(words), count_(count), dense_(true) {}

  /// View of `f` in its cheapest walkable form: the cached list when one
  /// is valid (no decode needed), the bitmap otherwise.
  explicit FrontierView(const Frontier& f) noexcept {
    if (f.dense_ && !f.list_valid_) {
      words_ = f.bits_;
      dense_ = true;
    } else {
      list_ = f.list_;
    }
    count_ = f.count_;
  }

  [[nodiscard]] bool dense() const noexcept { return dense_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::span<const Vertex> list() const noexcept { return list_; }
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

 private:
  std::span<const Vertex> list_;
  std::span<const std::uint64_t> words_;
  std::size_t count_ = 0;
  bool dense_ = false;
};

/// Uniform neighbor selection with a regular-degree fast path. When the
/// graph is regular with a power-of-two degree d >= 2, Lemire's bounded
/// sampler degenerates to a shift (2^64 mod d == 0, so the rejection zone
/// is empty and m >> 64 == x >> (64 - log2 d)); precomputing that shift
/// replaces the 128-bit multiply with a mask-like single shift, and the
/// result is bit-identical to the generic path.
class NeighborSampler {
 public:
  NeighborSampler() = default;

  explicit NeighborSampler(const Graph& g) {
    if (g.num_vertices() == 0 || !g.is_regular()) return;
    const std::uint32_t degree = g.degree(0);
    if (degree >= 2 && std::has_single_bit(degree)) {
      shift_ = static_cast<int>(64 - std::bit_width(degree) + 1);  // 64 - log2(degree)
    }
  }

  template <rng::Uint64Generator G>
  [[nodiscard]] Vertex operator()(std::span<const Vertex> neighbors,
                                  G& gen) const {
    if (shift_ != 0) {
      return neighbors[static_cast<std::size_t>(gen() >> shift_)];
    }
    return neighbors[static_cast<std::size_t>(
        rng::uniform_below(gen, neighbors.size()))];
  }

  /// True when the shift fast path is armed (exposed for tests).
  [[nodiscard]] bool fast_path() const noexcept { return shift_ != 0; }

 private:
  int shift_ = 0;  // 0 = generic Lemire path
};

class FrontierEngine {
 public:
  /// The RNG handed to samplers: a block-buffered xoshiro (rng/batch.hpp).
  using ChunkRng = rng::Batched<Engine, 256>;

  explicit FrontierEngine(const Graph& g, FrontierOptions opts = {});

  /// Expand one round: for every frontier vertex v (ascending order within
  /// each vertex-range chunk), invoke `sampler(v, rng, sink)`, which must
  /// call `sink(u)` once per offspring vertex u. `next` receives the
  /// deduplicated offspring in the representation the round's mode picked;
  /// `frontier` and `next` must be distinct objects. `sampler` is shared
  /// across worker threads — it must be const-callable and must not mutate
  /// shared state without synchronization.
  template <typename Sampler>
  void expand(const Frontier& frontier, Frontier& next,
              std::uint64_t round_seed, const Sampler& sampler);

  /// Span-in / vector-out variant for processes that maintain their own
  /// lists (gossip). `frontier` must be sorted ascending and duplicate-free
  /// (all engine outputs are); `next` receives the deduplicated offspring
  /// sorted ascending (cleared first), materialized even after dense
  /// rounds (via the engine's scratch bitmap).
  template <typename Sampler>
  void expand(std::span<const Vertex> frontier, std::vector<Vertex>& next,
              std::uint64_t round_seed, const Sampler& sampler);

  /// Filter one round: `next` receives exactly the frontier vertices v with
  /// keep(v) true, in the representation the round's mode picked. This is
  /// the remove-from-frontier path that shrinking processes (greedy MIS,
  /// LLL resampling) step — the dual of expand: no sampling, no dedup (a
  /// subset of a canonical frontier is canonical), no RNG at all, so the
  /// output is trivially a pure function of (frontier, keep) regardless of
  /// thread count or representation. `keep` is shared across worker
  /// threads — it must be const-callable on concurrent vertices.
  template <typename Pred>
  void retain(const Frontier& frontier, Frontier& next, const Pred& keep);

  /// Span-in / vector-out retain for processes that maintain their own
  /// lists. `frontier` must be sorted ascending and duplicate-free; `next`
  /// receives the kept vertices ascending (cleared first).
  template <typename Pred>
  void retain(std::span<const Vertex> frontier, std::vector<Vertex>& next,
              const Pred& keep);

  /// Serial dedup of `in` into `out` (reset paths): keeps the first
  /// occurrence of each vertex, preserving order. Shares the stamp array,
  /// so it composes with expand rounds.
  void dedupe(std::span<const Vertex> in, std::vector<Vertex>& out);

  /// Dedup `in` into a canonical (sorted ascending) sparse frontier — the
  /// reset path of every engine client.
  void dedupe(std::span<const Vertex> in, Frontier& out);

  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Mutable knobs — tests pin chunk_size / threshold / pool explicitly.
  [[nodiscard]] FrontierOptions& options() noexcept { return opts_; }

  /// How many expand rounds took each execution path (observability).
  [[nodiscard]] std::uint64_t parallel_rounds() const noexcept {
    return parallel_rounds_;
  }
  [[nodiscard]] std::uint64_t serial_rounds() const noexcept {
    return serial_rounds_;
  }

  /// How many expand rounds ran each representation, and how often the
  /// representation changed between consecutive rounds (the benches record
  /// all three next to their timings).
  [[nodiscard]] std::uint64_t dense_rounds() const noexcept {
    return dense_rounds_;
  }
  [[nodiscard]] std::uint64_t sparse_rounds() const noexcept {
    return sparse_rounds_;
  }
  [[nodiscard]] std::uint64_t switches() const noexcept { return switches_; }

  /// Rounds that wanted the dense bitmap but could not get its storage
  /// (allocation failure, or the "frontier.dense_alloc" fault site) and
  /// ran sparse instead. The dense path is an optimization, so memory
  /// pressure degrades throughput, never correctness — the sparse round
  /// produces the identical frontier. Retried per round: the next round
  /// re-attempts dense as usual.
  [[nodiscard]] std::uint64_t dense_fallbacks() const noexcept {
    return dense_fallbacks_;
  }

  /// Set the dedup epoch counter directly — ONLY for tests exercising the
  /// 32-bit wrap path (e.g. a resumed run crossing the wrap) without
  /// stepping 2^32 sparse rounds first.
  void set_epoch_for_testing(std::uint32_t epoch) noexcept { epoch_ = epoch; }

  /// Total sink() invocations of the most recent expand round — i.e. the
  /// offspring emitted before dedup. Counted per worker and summed at the
  /// end (no shared atomic in the sampling loop), so callers whose
  /// per-vertex emission count is data-dependent (random branching
  /// schedules) read their work measure here instead of maintaining a
  /// contended counter inside the sampler.
  [[nodiscard]] std::uint64_t last_emitted() const noexcept {
    return last_emitted_;
  }

  /// Why the most recent round's representation is what it is: "" when the
  /// mode simply carried over, else one of "auto-grow", "auto-shrink",
  /// "forced-sparse", "forced-dense", "dense-alloc-fallback" — the trace
  /// sink's "switch" field.
  [[nodiscard]] const char* last_switch_reason() const noexcept {
    return last_switch_reason_;
  }

  /// Batched-RNG blocks drawn during the most recent expand round (summed
  /// over chunks) — the trace sink's "rng_blocks" field.
  [[nodiscard]] std::uint64_t last_rng_blocks() const noexcept {
    return last_rng_blocks_;
  }

 private:
  /// Advance the epoch, wiping stamps on 32-bit wrap (the aliasing guard).
  std::uint32_t advance_epoch();

  /// Pick the round's representation: the size/hysteresis policy
  /// (want_dense), then a guarded grab of the bitmap storage — a failed
  /// grab (bad_alloc or the "frontier.dense_alloc" fault site) demotes the
  /// round to sparse instead of propagating. Updates the mode counters for
  /// the representation the round will ACTUALLY run.
  bool choose_dense(std::size_t frontier_size,
                    std::vector<std::uint64_t>& dense_bits);

  /// The size/hysteresis policy alone (no side effects).
  [[nodiscard]] bool want_dense(std::size_t frontier_size) const;

  /// Record the round's representation (hysteresis memory + counters).
  bool commit_mode(bool dense);

  /// Ensure `bits` can hold num_words() words; false on failure.
  bool acquire_dense_words(std::vector<std::uint64_t>& bits);

  /// The pool to use for a round of `work` estimated samples, or nullptr
  /// for the in-line path.
  [[nodiscard]] par::ThreadPool* pick_pool(std::size_t frontier_size) const;

  [[nodiscard]] std::size_t chunk_span() const noexcept {
    const std::size_t raw = opts_.chunk_size > 0 ? opts_.chunk_size : 1;
    return (raw + 63) / 64 * 64;  // word-aligned vertex ranges
  }

  [[nodiscard]] std::size_t num_words() const noexcept {
    return (static_cast<std::size_t>(g_->num_vertices()) + 63) / 64;
  }

  void ensure_workers(std::size_t workers);

  /// Zero `bits` (sized to num_words()) — in parallel over `pool` once the
  /// bitmap outgrows cache scale (the dense rounds' fixed O(n/64) cost the
  /// ROADMAP called out), serially below that or with parallel_dense_ops
  /// off.
  void clear_words(std::vector<std::uint64_t>& bits, par::ThreadPool* pool);

  /// Decode `words` (holding `count` set bits) into `out` ascending — the
  /// span-overload output path. Parallel two-pass (per-range popcount,
  /// prefix offsets, in-place range decode) on large bitmaps; identical
  /// output to the serial decode by construction.
  void materialize_bits(std::span<const std::uint64_t> words,
                        std::size_t count, std::vector<Vertex>& out);

  /// Active vertices of vertex-range chunk c, ascending. Sparse views
  /// return a subspan located by binary search; dense views decode the
  /// chunk's words into `scratch`.
  [[nodiscard]] std::span<const Vertex> chunk_vertices(
      const FrontierView& in, std::size_t span, std::size_t c,
      std::vector<Vertex>& scratch) const;

  /// Read-only load-imbalance scan for the trace sink: how many vertex
  /// chunks hold active vertices and how full the fullest is. O(|frontier|)
  /// sparse / O(n/64) dense — run ONLY on traced rounds.
  void occupancy_stats(const FrontierView& in, std::size_t span,
                       std::uint64_t& chunks, std::uint64_t& max_occ) const;

  /// Append the finished round to the global trace sink (call sites gate
  /// on obs::trace_enabled() so untraced rounds pay one relaxed load).
  void emit_trace(const FrontierView& in, std::size_t produced, bool dense,
                  const obs::Stopwatch& watch);

  /// Invariant audits of a finished round's output (call sites gate on
  /// audit::enabled(), the one relaxed load). Sampling policy and the
  /// checks themselves live in core/audit.*; these adapters hand them the
  /// engine's private state (stamps, epoch, scratch bitmap).
  void audit_frontier(const Frontier& next, bool dense);
  void audit_list(std::span<const Vertex> next, bool dense);
  /// Retain-round variants: removal rounds never claim vertices, so the
  /// epoch/stamp record is untouched and the expand-path stamp check would
  /// misfire on them — these check canonical order / bitmap health only.
  void audit_retain(const Frontier& next, bool dense);
  void audit_retain_list(std::span<const Vertex> next, bool dense);
  void audit_graph_once();

  /// Drive `sampler` over one chunk's active vertices with CSR row
  /// prefetch a few vertices ahead.
  template <typename Sampler, typename Sink>
  void process_run(std::span<const Vertex> vs, ChunkRng& rng,
                   const Sampler& sampler, const Sink& sink) const {
    constexpr std::size_t kLookahead = 8;
    [[maybe_unused]] const auto& offsets = g_->offsets();
    [[maybe_unused]] const Vertex* targets = g_->targets().data();
    for (std::size_t i = 0; i < vs.size(); ++i) {
#if defined(__GNUC__) || defined(__clang__)
      if (i + kLookahead < vs.size()) {
        __builtin_prefetch(targets + offsets[vs[i + kLookahead]]);
      }
#endif
      sampler(vs[i], rng, sink);
    }
  }

  /// Serial in-line visit of every chunk with active vertices. For sparse
  /// input this walks the sorted list run by run (no scan over empty
  /// chunks — a 24-vertex ring frontier touches 1-2 chunks, not n/span);
  /// dense input scans the bitmap words once.
  template <typename Sampler, typename Sink>
  void serial_visit(const FrontierView& in, std::size_t span,
                    std::uint64_t round_seed, const Sampler& sampler,
                    const Sink& sink) {
    if (!in.dense()) {
      const auto list = in.list();
      std::size_t i = 0;
      while (i < list.size()) {
        const std::size_t c = list[i] / span;
        const auto limit = static_cast<Vertex>(
            std::min<std::uint64_t>((c + 1) * span, g_->num_vertices()));
        const auto end = static_cast<std::size_t>(
            std::lower_bound(list.begin() + static_cast<std::ptrdiff_t>(i),
                             list.end(), limit) -
            list.begin());
        ChunkRng rng(Engine(rng::derive_seed(round_seed, c)));
        process_run(list.subspan(i, end - i), rng, sampler, sink);
        last_rng_blocks_ += rng.refills();
        i = end;
      }
      return;
    }
    const std::size_t n_chunks =
        (g_->num_vertices() + span - 1) / span;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const auto vs = chunk_vertices(in, span, c, scratch_decode_);
      if (vs.empty()) continue;
      ChunkRng rng(Engine(rng::derive_seed(round_seed, c)));
      process_run(vs, rng, sampler, sink);
      last_rng_blocks_ += rng.refills();
    }
  }

  /// One sparse round into `out` (unsorted claims, sorted before return).
  template <typename Sampler>
  void expand_sparse(const FrontierView& in, std::vector<Vertex>& out,
                     std::uint64_t round_seed, const Sampler& sampler);

  /// One dense round into `out_bits` / `out_count`.
  template <typename Sampler>
  void expand_dense(const FrontierView& in, std::vector<std::uint64_t>& out_bits,
                    std::size_t& out_count, std::uint64_t round_seed,
                    const Sampler& sampler);

  /// One sparse retain round into `out` (ascending by construction).
  template <typename Pred>
  void retain_sparse(const FrontierView& in, std::vector<Vertex>& out,
                     const Pred& keep);

  /// One dense retain round into `out_bits` / `out_count`.
  template <typename Pred>
  void retain_dense(const FrontierView& in,
                    std::vector<std::uint64_t>& out_bits,
                    std::size_t& out_count, const Pred& keep);

  const Graph* g_;
  FrontierOptions opts_;
  std::vector<std::uint32_t> stamp_;  ///< per-vertex epoch of last claim
  std::uint32_t epoch_ = 0;
  bool last_dense_ = false;  ///< hysteresis memory
  bool have_mode_ = false;   ///< false until the first non-empty round
  std::vector<std::uint64_t> scratch_bits_;  ///< span-overload dense output
  std::vector<Vertex> scratch_decode_;       ///< serial dense-input decode
  // Reusable flat per-worker state (sized once, cleared per round).
  std::vector<std::vector<Vertex>> worker_lists_;    ///< sparse claims
  std::vector<std::vector<Vertex>> worker_decode_;   ///< dense-input decode
  std::vector<std::uint64_t> worker_emitted_;
  std::vector<std::uint64_t> worker_claimed_;
  std::vector<std::uint64_t> worker_blocks_;  ///< per-worker RNG refills
  std::uint64_t parallel_rounds_ = 0;
  std::uint64_t serial_rounds_ = 0;
  std::uint64_t dense_rounds_ = 0;
  std::uint64_t sparse_rounds_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t dense_fallbacks_ = 0;
  std::uint64_t last_emitted_ = 0;
  std::uint64_t last_rng_blocks_ = 0;
  const char* last_switch_reason_ = "";
  bool last_parallel_ = false;     ///< the trace sink's "path" field
  std::uint64_t trace_id_ = 0;     ///< lazily drawn on first traced round
  std::uint64_t audit_seq_ = 0;    ///< audited-round ordinal (sampling)
  bool audit_graph_checked_ = false;  ///< CSR validated once per engine
};

template <typename Sampler>
void FrontierEngine::expand_sparse(const FrontierView& in,
                                   std::vector<Vertex>& out,
                                   std::uint64_t round_seed,
                                   const Sampler& sampler) {
  const std::size_t span = chunk_span();
  const std::size_t n_chunks =
      (static_cast<std::size_t>(g_->num_vertices()) + span - 1) / span;
  const std::uint32_t epoch = advance_epoch();
  par::ThreadPool* pool = pick_pool(in.size());
  last_rng_blocks_ = 0;

  if (pool == nullptr || n_chunks <= 1) {
    ++serial_rounds_;
    last_parallel_ = false;
    std::uint64_t emitted = 0;
    const auto sink = [&](Vertex u) {
      ++emitted;
      if (stamp_[u] != epoch) {
        stamp_[u] = epoch;
        out.push_back(u);
      }
    };
    serial_visit(in, span, round_seed, sampler, sink);
    last_emitted_ = emitted;
  } else {
    ++parallel_rounds_;
    last_parallel_ = true;
    const std::size_t workers = std::min(pool->size(), n_chunks);
    ensure_workers(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      worker_lists_[w].clear();
      worker_emitted_[w] = 0;
      worker_blocks_[w] = 0;
    }
    par::parallel_for_chunks(
        *pool, n_chunks, workers, [&](std::size_t w, std::size_t c) {
          const auto vs = chunk_vertices(in, span, c, worker_decode_[w]);
          if (vs.empty()) return;
          ChunkRng rng(Engine(rng::derive_seed(round_seed, c)));
          auto& claims = worker_lists_[w];
          std::uint64_t emitted = 0;
          const auto sink = [&](Vertex u) {
            ++emitted;
            std::atomic_ref<std::uint32_t> cell(stamp_[u]);
            std::uint32_t cur = cell.load(std::memory_order_relaxed);
            // One strong CAS suffices: every contending write this round
            // installs the same epoch value, so failure == already claimed.
            if (cur != epoch &&
                cell.compare_exchange_strong(cur, epoch,
                                             std::memory_order_relaxed)) {
              claims.push_back(u);
            }
          };
          process_run(vs, rng, sampler, sink);
          worker_emitted_[w] += emitted;
          worker_blocks_[w] += rng.refills();
        });
    std::uint64_t emitted = 0;
    std::size_t total = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      emitted += worker_emitted_[w];
      total += worker_lists_[w].size();
      last_rng_blocks_ += worker_blocks_[w];
    }
    out.reserve(out.size() + total);
    for (std::size_t w = 0; w < workers; ++w) {
      out.insert(out.end(), worker_lists_[w].begin(), worker_lists_[w].end());
    }
    last_emitted_ = emitted;
  }
  // Canonical ascending order: what makes the result independent of both
  // the schedule (claim sets are schedule-independent) and the
  // representation (the dense path is ascending by construction).
  std::sort(out.begin(), out.end());
}

template <typename Sampler>
void FrontierEngine::expand_dense(const FrontierView& in,
                                  std::vector<std::uint64_t>& out_bits,
                                  std::size_t& out_count,
                                  std::uint64_t round_seed,
                                  const Sampler& sampler) {
  const std::size_t span = chunk_span();
  const std::size_t n_chunks =
      (static_cast<std::size_t>(g_->num_vertices()) + span - 1) / span;
  par::ThreadPool* pool = pick_pool(in.size());
  clear_words(out_bits, pool);  // the round's one O(n/64) clear
  last_rng_blocks_ = 0;

  if (pool == nullptr || n_chunks <= 1) {
    ++serial_rounds_;
    last_parallel_ = false;
    std::uint64_t emitted = 0;
    std::size_t claimed = 0;
    std::uint64_t* bits = out_bits.data();
    const auto sink = [&](Vertex u) {
      ++emitted;
      std::uint64_t& word = bits[u >> 6];
      const std::uint64_t bit = 1ULL << (u & 63);
      claimed += (word & bit) == 0;
      word |= bit;
    };
    serial_visit(in, span, round_seed, sampler, sink);
    last_emitted_ = emitted;
    out_count = claimed;
  } else {
    ++parallel_rounds_;
    last_parallel_ = true;
    const std::size_t workers = std::min(pool->size(), n_chunks);
    ensure_workers(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      worker_emitted_[w] = 0;
      worker_claimed_[w] = 0;
      worker_blocks_[w] = 0;
    }
    std::uint64_t* bits = out_bits.data();
    par::parallel_for_chunks(
        *pool, n_chunks, workers, [&](std::size_t w, std::size_t c) {
          const auto vs = chunk_vertices(in, span, c, worker_decode_[w]);
          if (vs.empty()) return;
          ChunkRng rng(Engine(rng::derive_seed(round_seed, c)));
          std::uint64_t emitted = 0;
          std::uint64_t claimed = 0;
          const auto sink = [&](Vertex u) {
            ++emitted;
            std::atomic_ref<std::uint64_t> word(bits[u >> 6]);
            const std::uint64_t bit = 1ULL << (u & 63);
            const std::uint64_t old =
                word.fetch_or(bit, std::memory_order_relaxed);
            claimed += (old & bit) == 0;
          };
          process_run(vs, rng, sampler, sink);
          worker_emitted_[w] += emitted;
          worker_claimed_[w] += claimed;
          worker_blocks_[w] += rng.refills();
        });
    std::uint64_t emitted = 0;
    std::size_t claimed = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      emitted += worker_emitted_[w];
      claimed += worker_claimed_[w];
      last_rng_blocks_ += worker_blocks_[w];
    }
    last_emitted_ = emitted;
    out_count = claimed;
  }
}

template <typename Pred>
void FrontierEngine::retain_sparse(const FrontierView& in,
                                   std::vector<Vertex>& out,
                                   const Pred& keep) {
  const std::size_t span = chunk_span();
  const std::size_t n_chunks =
      (static_cast<std::size_t>(g_->num_vertices()) + span - 1) / span;
  par::ThreadPool* pool = pick_pool(in.size());
  last_rng_blocks_ = 0;

  if (pool == nullptr || n_chunks <= 1) {
    ++serial_rounds_;
    last_parallel_ = false;
    if (!in.dense()) {
      // The input list is already ascending; a filtered copy stays so.
      for (const Vertex v : in.list()) {
        if (keep(v)) out.push_back(v);
      }
    } else {
      const auto words = in.words();
      for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        while (word != 0) {
          const auto v = static_cast<Vertex>(
              (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
          if (keep(v)) out.push_back(v);
          word &= word - 1;
        }
      }
    }
  } else {
    ++parallel_rounds_;
    last_parallel_ = true;
    const std::size_t workers = std::min(pool->size(), n_chunks);
    ensure_workers(workers);
    for (std::size_t w = 0; w < workers; ++w) worker_lists_[w].clear();
    par::parallel_for_chunks(
        *pool, n_chunks, workers, [&](std::size_t w, std::size_t c) {
          const auto vs = chunk_vertices(in, span, c, worker_decode_[w]);
          auto& kept = worker_lists_[w];
          for (const Vertex v : vs) {
            if (keep(v)) kept.push_back(v);
          }
        });
    std::size_t total = 0;
    for (std::size_t w = 0; w < workers; ++w) total += worker_lists_[w].size();
    out.reserve(out.size() + total);
    for (std::size_t w = 0; w < workers; ++w) {
      out.insert(out.end(), worker_lists_[w].begin(), worker_lists_[w].end());
    }
    // Chunks are claimed dynamically, so worker lists interleave chunk
    // ranges; the sort restores the canonical ascending order. The kept
    // SET is schedule-independent (keep draws no RNG), so the sorted
    // result is bit-identical to the serial path.
    std::sort(out.begin(), out.end());
  }
  // The work measure: keep() evaluated once per frontier vertex.
  last_emitted_ = in.size();
}

template <typename Pred>
void FrontierEngine::retain_dense(const FrontierView& in,
                                  std::vector<std::uint64_t>& out_bits,
                                  std::size_t& out_count, const Pred& keep) {
  const std::size_t span = chunk_span();
  const std::size_t n_chunks =
      (static_cast<std::size_t>(g_->num_vertices()) + span - 1) / span;
  par::ThreadPool* pool = pick_pool(in.size());
  clear_words(out_bits, pool);  // may reallocate — take .data() after
  last_rng_blocks_ = 0;
  std::uint64_t* bits = out_bits.data();

  if (pool == nullptr || n_chunks <= 1) {
    ++serial_rounds_;
    last_parallel_ = false;
    std::size_t kept = 0;
    const auto mark = [&](Vertex v) {
      if (keep(v)) {
        bits[v >> 6] |= 1ULL << (v & 63);
        ++kept;
      }
    };
    if (!in.dense()) {
      for (const Vertex v : in.list()) mark(v);
    } else {
      const auto words = in.words();
      for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        while (word != 0) {
          mark(static_cast<Vertex>(
              (w << 6) + static_cast<std::size_t>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
    }
    out_count = kept;
  } else {
    ++parallel_rounds_;
    last_parallel_ = true;
    const std::size_t workers = std::min(pool->size(), n_chunks);
    ensure_workers(workers);
    for (std::size_t w = 0; w < workers; ++w) worker_claimed_[w] = 0;
    par::parallel_for_chunks(
        *pool, n_chunks, workers, [&](std::size_t w, std::size_t c) {
          const auto vs = chunk_vertices(in, span, c, worker_decode_[w]);
          std::uint64_t kept = 0;
          // Chunk ranges are word-aligned and a retain only sets bits of
          // its own chunk's vertices, so workers own disjoint words —
          // plain stores, no fetch_or.
          for (const Vertex v : vs) {
            if (keep(v)) {
              bits[v >> 6] |= 1ULL << (v & 63);
              ++kept;
            }
          }
          worker_claimed_[w] += kept;
        });
    std::size_t kept = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      kept += static_cast<std::size_t>(worker_claimed_[w]);
    }
    out_count = kept;
  }
  last_emitted_ = in.size();
}

template <typename Sampler>
void FrontierEngine::expand(const Frontier& frontier, Frontier& next,
                            std::uint64_t round_seed, const Sampler& sampler) {
  assert(&frontier != &next);
  next.clear();
  last_emitted_ = 0;
  if (frontier.empty()) return;  // no epoch/bitmap burn for extinct processes

  // Advance the chaos round clock (event-log context for fault firings).
  // Gated on the fault registry's relaxed load — free in fault-free runs.
  if (util::fault::enabled()) util::fault::tick_round();

#if COBRA_OBS_LEVEL >= 1
  static obs::Timer& step_timer = obs::registry().timer("frontier.step");
  obs::ScopedTimer timed(step_timer);
#endif
  // One relaxed load when untraced; everything trace-priced (occupancy
  // scan, clock reads) stays behind it. Telemetry reads state only — the
  // produced frontier is bit-identical traced or not.
  const bool traced = obs::trace_enabled();
  obs::Stopwatch watch;
  if (traced) watch.start();

  const FrontierView in(frontier);
  bool dense = choose_dense(in.size(), next.bits_);
  if (dense) {
    expand_dense(in, next.bits_, next.count_, round_seed, sampler);
    next.dense_ = true;
    next.list_valid_ = false;  // materialized lazily by vertices()
  } else {
    expand_sparse(in, next.list_, round_seed, sampler);
    next.count_ = next.list_.size();
  }
  // One relaxed load when unarmed, mirroring fault/trace; the sampled
  // checks read the produced frontier only, never mutate it.
  if (audit::enabled()) audit_frontier(next, dense);
  if (traced) emit_trace(in, next.count_, dense, watch);
}

template <typename Sampler>
void FrontierEngine::expand(std::span<const Vertex> frontier,
                            std::vector<Vertex>& next,
                            std::uint64_t round_seed, const Sampler& sampler) {
  next.clear();
  last_emitted_ = 0;
  if (frontier.empty()) return;

  if (util::fault::enabled()) util::fault::tick_round();

#if COBRA_OBS_LEVEL >= 1
  static obs::Timer& step_timer = obs::registry().timer("frontier.step");
  obs::ScopedTimer timed(step_timer);
#endif
  const bool traced = obs::trace_enabled();
  obs::Stopwatch watch;
  if (traced) watch.start();

  const FrontierView in(frontier);  // asserts sortedness in debug builds
  bool dense = choose_dense(in.size(), scratch_bits_);
  if (dense) {
    std::size_t count = 0;
    expand_dense(in, scratch_bits_, count, round_seed, sampler);
    materialize_bits(scratch_bits_, count, next);
  } else {
    expand_sparse(in, next, round_seed, sampler);
  }
  if (audit::enabled()) audit_list(next, dense);
  if (traced) emit_trace(in, next.size(), dense, watch);
}

template <typename Pred>
void FrontierEngine::retain(const Frontier& frontier, Frontier& next,
                            const Pred& keep) {
  assert(&frontier != &next);
  next.clear();
  last_emitted_ = 0;
  if (frontier.empty()) return;

  if (util::fault::enabled()) util::fault::tick_round();

#if COBRA_OBS_LEVEL >= 1
  static obs::Timer& retain_timer = obs::registry().timer("frontier.retain");
  obs::ScopedTimer timed(retain_timer);
#endif
  const bool traced = obs::trace_enabled();
  obs::Stopwatch watch;
  if (traced) watch.start();

  const FrontierView in(frontier);
  bool dense = choose_dense(in.size(), next.bits_);
  if (dense) {
    retain_dense(in, next.bits_, next.count_, keep);
    next.dense_ = true;
    next.list_valid_ = false;
  } else {
    retain_sparse(in, next.list_, keep);
    next.count_ = next.list_.size();
  }
  if (audit::enabled()) audit_retain(next, dense);
  if (traced) emit_trace(in, next.count_, dense, watch);
}

template <typename Pred>
void FrontierEngine::retain(std::span<const Vertex> frontier,
                            std::vector<Vertex>& next, const Pred& keep) {
  next.clear();
  last_emitted_ = 0;
  if (frontier.empty()) return;

  if (util::fault::enabled()) util::fault::tick_round();

#if COBRA_OBS_LEVEL >= 1
  static obs::Timer& retain_timer = obs::registry().timer("frontier.retain");
  obs::ScopedTimer timed(retain_timer);
#endif
  const bool traced = obs::trace_enabled();
  obs::Stopwatch watch;
  if (traced) watch.start();

  const FrontierView in(frontier);  // asserts sortedness in debug builds
  bool dense = choose_dense(in.size(), scratch_bits_);
  if (dense) {
    std::size_t count = 0;
    retain_dense(in, scratch_bits_, count, keep);
    materialize_bits(scratch_bits_, count, next);
  } else {
    retain_sparse(in, next, keep);
  }
  if (audit::enabled()) audit_retain_list(next, dense);
  if (traced) emit_trace(in, next.size(), dense, watch);
}

}  // namespace cobra::core
