#include "core/generalized_cobra.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cobra::core {

namespace schedules {

BranchingSchedule fixed(std::uint32_t k) {
  if (k < 1) throw std::invalid_argument("schedules::fixed: k >= 1");
  return [k](Vertex, std::uint64_t, Engine&) { return k; };
}

BranchingSchedule bernoulli_mixture(std::uint32_t k, double p) {
  if (k < 1) throw std::invalid_argument("schedules::bernoulli_mixture: k >= 1");
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("schedules::bernoulli_mixture: p in [0,1]");
  }
  return [k, p](Vertex, std::uint64_t, Engine& gen) {
    return k + (rng::bernoulli(gen, p) ? 1u : 0u);
  };
}

BranchingSchedule shifted_geometric(double p) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("schedules::shifted_geometric: p in (0,1]");
  }
  return [p](Vertex, std::uint64_t, Engine& gen) {
    return static_cast<std::uint32_t>(1 + rng::geometric(gen, p));
  };
}

BranchingSchedule degree_proportional(const Graph& g, double alpha) {
  if (alpha <= 0.0) {
    throw std::invalid_argument("schedules::degree_proportional: alpha > 0");
  }
  return [&g, alpha](Vertex v, std::uint64_t, Engine&) {
    const auto k = static_cast<std::uint32_t>(std::lround(alpha * g.degree(v)));
    return std::max(1u, k);
  };
}

BranchingSchedule faulty(std::uint32_t k, double fail_p) {
  if (k < 1) throw std::invalid_argument("schedules::faulty: k >= 1");
  if (fail_p < 0.0 || fail_p > 1.0) {
    throw std::invalid_argument("schedules::faulty: fail_p in [0,1]");
  }
  return [k, fail_p](Vertex, std::uint64_t, Engine& gen) {
    return rng::bernoulli(gen, fail_p) ? 0u : k;
  };
}

BranchingSchedule phased(std::uint32_t k1, std::uint32_t k2,
                         std::uint64_t switch_round) {
  if (k1 < 1 || k2 < 1) throw std::invalid_argument("schedules::phased: k >= 1");
  return [k1, k2, switch_round](Vertex, std::uint64_t round, Engine&) {
    return round < switch_round ? k1 : k2;
  };
}

}  // namespace schedules

GeneralizedCobraWalk::GeneralizedCobraWalk(const Graph& g, Vertex start,
                                           BranchingSchedule schedule)
    : g_(&g), schedule_(std::move(schedule)), engine_(g), pick_(g) {
  if (!schedule_) {
    throw std::invalid_argument("GeneralizedCobraWalk: null schedule");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("GeneralizedCobraWalk: isolated vertex");
  }
  reset(start);
}

void GeneralizedCobraWalk::reset(Vertex start) {
  reset(std::span<const Vertex>(&start, 1));
}

void GeneralizedCobraWalk::reset(std::span<const Vertex> starts) {
  for (const Vertex v : starts) {
    if (v >= g_->num_vertices()) {
      throw std::out_of_range("GeneralizedCobraWalk::reset: out of range");
    }
  }
  round_ = 0;
  samples_ = 0;
  engine_.dedupe(starts, frontier_);
  if (frontier_.empty()) {
    throw std::invalid_argument("GeneralizedCobraWalk::reset: empty start set");
  }
}

void GeneralizedCobraWalk::save_state(util::CheckpointWriter& w) const {
  w.u64(round_);
  w.u64(samples_);
  w.u32_span(frontier_.vertices());
}

void GeneralizedCobraWalk::restore_state(util::CheckpointReader& r) {
  const std::uint64_t round = r.u64();
  const std::uint64_t samples = r.u64();
  const std::vector<Vertex> verts = r.u32_span();
  util::require_canonical_vertices(verts, g_->num_vertices(),
                                   "GeneralizedCobraWalk frontier");
  engine_.dedupe(verts, frontier_);  // empty = extinct, legal here
  round_ = round;
  samples_ = samples;
}

void GeneralizedCobraWalk::step(Engine& gen) {
  if (frontier_.empty()) {  // extinct: keep the clock, skip the machinery
    ++round_;
    return;
  }
  const std::uint64_t round_seed = gen();
  engine_.expand(
      frontier_, next_, round_seed,
      [&](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
        const std::uint32_t k = schedule_(v, round_, rng.inner());
        const auto nbrs = g_->neighbors(v);
        for (std::uint32_t i = 0; i < k; ++i) sink(pick_(nbrs, rng));
      });
  // One sink call per sample: the engine's per-chunk emit counters are the
  // contention-free work measure for random schedules.
  samples_ += engine_.last_emitted();
  frontier_.swap(next_);
  ++round_;
}

}  // namespace cobra::core
