#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"
#include "util/checkpoint_io.hpp"

/// \file generalized_cobra.hpp
/// The branching generalizations §1 names and leaves open: "one could
/// further study variations where the branching varied based on the vertex
/// or the time step, or was governed by a random distribution; we do not
/// do that here." This module does them, as a library extension:
///
///   * fixed k (reduces to CobraWalk — tests pin the equivalence in
///     distribution),
///   * per-vertex / per-round branching via a user schedule,
///   * random branching: each active vertex independently draws its
///     branching count from a distribution each round (Bernoulli mixture
///     and shifted-geometric provided as canned schedules).
///
/// The cover process stays well-defined for any schedule with k >= 1
/// always; a schedule may return 0 to model faulty vertices that drop the
/// message (failure injection) — the walk then dies if every active vertex
/// returns 0, which `extinct()` reports. An extinct walk's step is a no-op
/// beyond the round counter (in particular it no longer advances the dedup
/// epoch, so stepping an extinct walk in a loop costs O(1) per call).
///
/// Rounds run on the shared FrontierEngine (see frontier_engine.hpp), so
/// schedules are invoked from pool workers once the frontier is large:
/// a schedule must be thread-safe across distinct calls — every canned
/// schedule below is a pure function of its arguments and qualifies.

namespace cobra::core {

/// Branching schedule: how many neighbor samples an active vertex emits
/// this round. Receives (vertex, round, engine).
using BranchingSchedule =
    std::function<std::uint32_t(Vertex, std::uint64_t, Engine&)>;

/// Canned schedules.
namespace schedules {

/// Constant k.
[[nodiscard]] BranchingSchedule fixed(std::uint32_t k);

/// k with probability 1-p, k+1 with probability p (mean k + p).
[[nodiscard]] BranchingSchedule bernoulli_mixture(std::uint32_t k, double p);

/// 1 + Geometric(p): support {1, 2, ...}, mean 1 + (1-p)/p.
[[nodiscard]] BranchingSchedule shifted_geometric(double p);

/// max(1, round(alpha * degree(v))) — degree-proportional fanout.
[[nodiscard]] BranchingSchedule degree_proportional(const Graph& g, double alpha);

/// k everywhere except 0 with probability fail_p (message-drop faults).
[[nodiscard]] BranchingSchedule faulty(std::uint32_t k, double fail_p);

/// k1 for rounds < switch_round, then k2 (time-varying).
[[nodiscard]] BranchingSchedule phased(std::uint32_t k1, std::uint32_t k2,
                                       std::uint64_t switch_round);

}  // namespace schedules

class GeneralizedCobraWalk {
 public:
  GeneralizedCobraWalk(const Graph& g, Vertex start, BranchingSchedule schedule);

  void reset(Vertex start);
  void reset(std::span<const Vertex> starts);

  void step(Engine& gen);

  /// Active vertices, sorted ascending (materializes after dense rounds;
  /// `frontier().size()` is the O(1) count).
  [[nodiscard]] std::span<const Vertex> active() const {
    return frontier_.vertices();
  }

  /// The active set in its native sparse/dense representation.
  [[nodiscard]] const Frontier& frontier() const noexcept { return frontier_; }

  [[nodiscard]] bool extinct() const noexcept { return frontier_.empty(); }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }
  [[nodiscard]] std::uint64_t samples_drawn() const noexcept { return samples_; }

  /// The underlying step engine (chunking / pool / threshold knobs).
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

  /// Checkpointing (sim::Checkpointable). Mirrors CobraWalk, except an
  /// EMPTY frontier is legitimate state here — extinction is a modeled
  /// outcome of 0-returning schedules, and a snapshot of an extinct walk
  /// restores to an extinct walk. The schedule itself is a construction
  /// argument (possibly a closure) and is NOT serialized; resuming with a
  /// different schedule is the caller's bug, same as a different graph.
  void save_state(util::CheckpointWriter& w) const;
  void restore_state(util::CheckpointReader& r);

 private:
  const Graph* g_;
  BranchingSchedule schedule_;
  FrontierEngine engine_;
  NeighborSampler pick_;
  Frontier frontier_;
  Frontier next_;
  std::uint64_t round_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace cobra::core
