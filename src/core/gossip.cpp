#include "core/gossip.hpp"

#include <stdexcept>

namespace cobra::core {

Gossip::Gossip(const Graph& g, Vertex start, GossipMode mode)
    : g_(&g), mode_(mode), engine_(g), pick_(g), informed_(g.num_vertices(), 0) {
  if (g.min_degree() == 0) {
    throw std::invalid_argument("Gossip: graph has an isolated vertex");
  }
  if (start >= g.num_vertices()) {
    throw std::out_of_range("Gossip: start out of range");
  }
  informed_list_.reserve(g.num_vertices());
  inform(start);
}

void Gossip::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("Gossip::reset: start out of range");
  }
  informed_.assign(informed_.size(), 0);
  informed_list_.clear();
  round_ = 0;
  inform(start);
}

void Gossip::inform(Vertex v) {
  if (informed_[v] == 0) {
    informed_[v] = 1;
    informed_list_.push_back(v);
  }
}

void Gossip::step(Engine& gen) {
  ++round_;
  newly_.clear();

  if (mode_ == GossipMode::Push || mode_ == GossipMode::PushPull) {
    // Snapshot semantics: only vertices informed at the START of the round
    // push this round; vertices informed mid-round wait a round, matching
    // the synchronous model of [17]. informed_ is not updated until the
    // round's end, so the full informed_list_ is the snapshot frontier.
    // Reading informed_[u] inside the sampler races only with the engine's
    // stamp claims, never with writes — informs happen after the expand.
    const std::uint64_t round_seed = gen();
    engine_.expand(informed_list_, newly_, round_seed,
                   [this](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
                     const Vertex u = pick_(g_->neighbors(v), rng);
                     if (informed_[u] == 0) sink(u);
                   });
  }
  if (mode_ == GossipMode::Pull || mode_ == GossipMode::PushPull) {
    for (Vertex v = 0; v < g_->num_vertices(); ++v) {
      if (informed_[v] != 0) continue;
      const Vertex u = random_neighbor(*g_, v, gen);
      if (informed_[u] != 0) newly_.push_back(v);
    }
  }
  for (const Vertex v : newly_) inform(v);
}

}  // namespace cobra::core
