#include "core/gossip.hpp"

#include <numeric>
#include <stdexcept>

namespace cobra::core {

Gossip::Gossip(const Graph& g, Vertex start, GossipMode mode)
    : g_(&g), mode_(mode), engine_(g), pick_(g), informed_(g.num_vertices(), 0) {
  if (g.min_degree() == 0) {
    throw std::invalid_argument("Gossip: graph has an isolated vertex");
  }
  if (start >= g.num_vertices()) {
    throw std::out_of_range("Gossip: start out of range");
  }
  informed_list_.reserve(g.num_vertices());
  uninformed_list_.resize(g.num_vertices());
  std::iota(uninformed_list_.begin(), uninformed_list_.end(), Vertex{0});
  uninformed_pos_.resize(g.num_vertices());
  std::iota(uninformed_pos_.begin(), uninformed_pos_.end(), 0u);
  inform(start);
}

void Gossip::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("Gossip::reset: start out of range");
  }
  informed_.assign(informed_.size(), 0);
  informed_list_.clear();
  uninformed_list_.resize(g_->num_vertices());
  std::iota(uninformed_list_.begin(), uninformed_list_.end(), Vertex{0});
  std::iota(uninformed_pos_.begin(), uninformed_pos_.end(), 0u);
  round_ = 0;
  inform(start);
}

void Gossip::inform(Vertex v) {
  if (informed_[v] != 0) return;
  informed_[v] = 1;
  informed_list_.push_back(v);
  // Swap-remove from the uninformed list; the resulting order is a pure
  // function of the inform sequence, so pull rounds stay deterministic.
  const std::uint32_t pos = uninformed_pos_[v];
  const Vertex last = uninformed_list_.back();
  uninformed_list_[pos] = last;
  uninformed_pos_[last] = pos;
  uninformed_list_.pop_back();
}

void Gossip::step(Engine& gen) {
  ++round_;
  newly_.clear();
  pull_newly_.clear();

  // Snapshot semantics: only the sets as of the START of the round act,
  // matching the synchronous model of [17] — informed_ is not written until
  // both phases have expanded, so push pushes from the full informed list
  // and pull polls against the same frozen informed_ array.
  if (mode_ == GossipMode::Push || mode_ == GossipMode::PushPull) {
    const std::uint64_t round_seed = gen();
    engine_.expand(informed_list_, newly_, round_seed,
                   [this](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
                     const Vertex u = pick_(g_->neighbors(v), rng);
                     if (informed_[u] == 0) sink(u);
                   });
  }
  if (mode_ == GossipMode::Pull || mode_ == GossipMode::PushPull) {
    // The maintained uninformed list is the pull frontier: each uninformed
    // vertex polls one random neighbor and adopts if that neighbor knows.
    // No scan of the n - |uninformed| informed vertices happens at all.
    const std::uint64_t round_seed = gen();
    engine_.expand(uninformed_list_, pull_newly_, round_seed,
                   [this](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
                     const Vertex u = pick_(g_->neighbors(v), rng);
                     if (informed_[u] != 0) sink(v);
                   });
  }
  for (const Vertex v : newly_) inform(v);
  for (const Vertex v : pull_newly_) inform(v);
}

}  // namespace cobra::core
