#include "core/gossip.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace cobra::core {

Gossip::Gossip(const Graph& g, Vertex start, GossipMode mode)
    : g_(&g), mode_(mode), engine_(g), pick_(g), informed_(g.num_vertices(), 0) {
  if (g.min_degree() == 0) {
    throw std::invalid_argument("Gossip: graph has an isolated vertex");
  }
  if (start >= g.num_vertices()) {
    throw std::out_of_range("Gossip: start out of range");
  }
  informed_list_.reserve(g.num_vertices());
  reset(start);
}

void Gossip::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("Gossip::reset: start out of range");
  }
  informed_.assign(informed_.size(), 0);
  informed_list_.clear();
  uninformed_list_.resize(g_->num_vertices());
  std::iota(uninformed_list_.begin(), uninformed_list_.end(), Vertex{0});
  round_ = 0;
  absorb(std::span<const Vertex>(&start, 1));
}

void Gossip::absorb(std::span<const Vertex> fresh) {
  if (fresh.empty()) return;
  for (const Vertex v : fresh) informed_[v] = 1;
  // Both lists stay sorted: fresh is sorted and disjoint from the informed
  // list, so one inplace_merge keeps it ordered. The uninformed list only
  // compacts eagerly when a pull phase will read it next round; in Push
  // mode it goes stale and the accessor compacts on demand.
  const auto old_size = static_cast<std::ptrdiff_t>(informed_list_.size());
  informed_list_.insert(informed_list_.end(), fresh.begin(), fresh.end());
  std::inplace_merge(informed_list_.begin(), informed_list_.begin() + old_size,
                     informed_list_.end());
  uninformed_stale_ = true;
  if (mode_ != GossipMode::Push) compact_uninformed();
}

void Gossip::compact_uninformed() const {
  if (!uninformed_stale_) return;
  std::erase_if(uninformed_list_,
                [this](Vertex v) { return informed_[v] != 0; });
  uninformed_stale_ = false;
}

void Gossip::save_state(util::CheckpointWriter& w) const {
  w.u8(static_cast<std::uint8_t>(mode_));
  w.u64(round_);
  w.u32_span(informed_list_);
}

void Gossip::restore_state(util::CheckpointReader& r) {
  const std::uint8_t mode = r.u8();
  if (mode != static_cast<std::uint8_t>(mode_)) {
    throw util::CheckpointError(
        "Gossip: snapshot mode does not match this process's mode");
  }
  const std::uint64_t round = r.u64();
  std::vector<Vertex> informed = r.u32_span();
  util::require_canonical_vertices(informed, g_->num_vertices(),
                                   "Gossip informed list");
  if (informed.empty()) {
    throw util::CheckpointError("Gossip informed list: empty");
  }
  informed_.assign(g_->num_vertices(), 0);
  for (const Vertex v : informed) informed_[v] = 1;
  informed_list_ = std::move(informed);
  // Rebuild the complement eagerly: restore is a cold path, and a fresh
  // exact list keeps pull-mode's first resumed round identical to the
  // uninterrupted run's compacted state.
  uninformed_list_.clear();
  for (Vertex v = 0; v < g_->num_vertices(); ++v) {
    if (informed_[v] == 0) uninformed_list_.push_back(v);
  }
  uninformed_stale_ = false;
  round_ = round;
}

void Gossip::step(Engine& gen) {
  ++round_;
  newly_.clear();
  pull_newly_.clear();

  // Snapshot semantics: only the sets as of the START of the round act,
  // matching the synchronous model of [17] — informed_ is not written until
  // both phases have expanded, so push pushes from the full informed list
  // and pull polls against the same frozen informed_ array.
  if (mode_ == GossipMode::Push || mode_ == GossipMode::PushPull) {
    const std::uint64_t round_seed = gen();
    engine_.expand(informed_list_, newly_, round_seed,
                   [this](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
                     const Vertex u = pick_(g_->neighbors(v), rng);
                     if (informed_[u] == 0) sink(u);
                   });
  }
  if (mode_ == GossipMode::Pull || mode_ == GossipMode::PushPull) {
    // The maintained uninformed list is the pull frontier: each uninformed
    // vertex polls one random neighbor and adopts if that neighbor knows.
    // No scan of the n - |uninformed| informed vertices happens at all.
    const std::uint64_t round_seed = gen();
    engine_.expand(uninformed_list_, pull_newly_, round_seed,
                   [this](Vertex v, FrontierEngine::ChunkRng& rng, auto&& sink) {
                     const Vertex u = pick_(g_->neighbors(v), rng);
                     if (informed_[u] != 0) sink(v);
                   });
  }
  // A vertex can be both pushed to and a successful puller; the sorted
  // union collapses it before the merge into the informed list.
  merged_.clear();
  std::set_union(newly_.begin(), newly_.end(), pull_newly_.begin(),
                 pull_newly_.end(), std::back_inserter(merged_));
  absorb(merged_);
}

}  // namespace cobra::core
