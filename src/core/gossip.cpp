#include "core/gossip.hpp"

#include <stdexcept>

namespace cobra::core {

Gossip::Gossip(const Graph& g, Vertex start, GossipMode mode)
    : g_(&g), mode_(mode), informed_(g.num_vertices(), 0) {
  if (g.num_vertices() == 0) throw std::invalid_argument("Gossip: empty graph");
  if (g.min_degree() == 0) {
    throw std::invalid_argument("Gossip: graph has an isolated vertex");
  }
  if (start >= g.num_vertices()) {
    throw std::out_of_range("Gossip: start out of range");
  }
  informed_list_.reserve(g.num_vertices());
  inform(start);
}

void Gossip::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("Gossip::reset: start out of range");
  }
  informed_.assign(informed_.size(), 0);
  informed_list_.clear();
  round_ = 0;
  inform(start);
}

void Gossip::inform(Vertex v) {
  if (informed_[v] == 0) {
    informed_[v] = 1;
    informed_list_.push_back(v);
  }
}

void Gossip::step(Engine& gen) {
  ++round_;
  newly_.clear();

  if (mode_ == GossipMode::Push || mode_ == GossipMode::PushPull) {
    // Snapshot semantics: only vertices informed at the START of the round
    // push this round; vertices informed mid-round wait a round, matching
    // the synchronous model of [17]. informed_list_ grows only via
    // newly_, so iterating the current extent gives the snapshot.
    const std::size_t informed_at_start = informed_list_.size();
    for (std::size_t i = 0; i < informed_at_start; ++i) {
      const Vertex u = random_neighbor(*g_, informed_list_[i], gen);
      if (informed_[u] == 0) newly_.push_back(u);
    }
  }
  if (mode_ == GossipMode::Pull || mode_ == GossipMode::PushPull) {
    for (Vertex v = 0; v < g_->num_vertices(); ++v) {
      if (informed_[v] != 0) continue;
      const Vertex u = random_neighbor(*g_, v, gen);
      if (informed_[u] != 0) newly_.push_back(v);
    }
  }
  for (const Vertex v : newly_) inform(v);
}

}  // namespace cobra::core
