#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"

/// \file gossip.hpp
/// Push / pull / push-pull rumor spreading (Feige–Peleg–Raghavan–Upfal) —
/// the gossip baseline of §1.2. Unlike a cobra walk, informed vertices stay
/// informed forever (the projected Markov chain has an absorbing state),
/// which is exactly the structural difference the paper calls out. Push
/// completes in O(n log n) rounds on every connected graph, the bound
/// conjectured in §6 to hold for cobra walks too.
///
/// Both phases run on the shared FrontierEngine. Push expands the informed
/// set (one neighbor sample per informed vertex); pull expands the
/// maintained UNINFORMED list — each uninformed vertex polls one neighbor,
/// and the engine's chunked determinism applies symmetrically. The two
/// lists are complementary frontiers: push work grows toward n while pull
/// work shrinks toward 0, so a round is O(|informed| + |uninformed|)
/// sampled work with no O(n) full-vertex scan anywhere.

namespace cobra::core {

enum class GossipMode {
  Push,      ///< informed vertices send to a random neighbor
  Pull,      ///< uninformed vertices poll a random neighbor
  PushPull,  ///< both per round
};

class Gossip {
 public:
  Gossip(const Graph& g, Vertex start, GossipMode mode = GossipMode::Push);

  void reset(Vertex start);

  void step(Engine& gen);

  /// All informed vertices (monotonically growing).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return informed_list_;
  }

  /// All uninformed vertices — the pull phase's frontier (order is an
  /// implementation detail; content is what callers may rely on).
  [[nodiscard]] std::span<const Vertex> uninformed() const noexcept {
    return uninformed_list_;
  }

  [[nodiscard]] bool is_informed(Vertex v) const { return informed_[v] != 0; }
  [[nodiscard]] std::uint32_t informed_count() const noexcept {
    return static_cast<std::uint32_t>(informed_list_.size());
  }
  [[nodiscard]] bool complete() const noexcept {
    return informed_count() == g_->num_vertices();
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] GossipMode mode() const noexcept { return mode_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// The underlying step engine (chunking / pool / threshold knobs).
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

 private:
  void inform(Vertex v);

  const Graph* g_;
  GossipMode mode_;
  FrontierEngine engine_;
  NeighborSampler pick_;
  std::vector<std::uint8_t> informed_;
  std::vector<Vertex> informed_list_;
  std::vector<Vertex> uninformed_list_;
  std::vector<std::uint32_t> uninformed_pos_;  ///< index of v in uninformed_list_
  std::vector<Vertex> newly_;       // scratch: push offspring this round
  std::vector<Vertex> pull_newly_;  // scratch: pull adopters this round
  std::uint64_t round_ = 0;
};

}  // namespace cobra::core
