#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"
#include "util/checkpoint_io.hpp"

/// \file gossip.hpp
/// Push / pull / push-pull rumor spreading (Feige–Peleg–Raghavan–Upfal) —
/// the gossip baseline of §1.2. Unlike a cobra walk, informed vertices stay
/// informed forever (the projected Markov chain has an absorbing state),
/// which is exactly the structural difference the paper calls out. Push
/// completes in O(n log n) rounds on every connected graph, the bound
/// conjectured in §6 to hold for cobra walks too.
///
/// Both phases run on the shared FrontierEngine. Push expands the informed
/// set (one neighbor sample per informed vertex); pull expands the
/// maintained UNINFORMED list — each uninformed vertex polls one neighbor,
/// and the engine's chunked determinism applies symmetrically. The two
/// lists are complementary frontiers: push work grows toward n while pull
/// work shrinks toward 0. Both lists are kept sorted ascending (the
/// engine's canonical frontier order): newly informed vertices merge into
/// the informed list with one inplace_merge and filter out of the
/// uninformed list with one linear compaction per round — O(new log new +
/// |informed| + |uninformed|) maintenance, the same order as the round's
/// sampling itself. (In Push mode, which never reads the uninformed list,
/// the compaction is deferred to the uninformed() accessor.)
///
/// Observability caveat: PushPull runs two opposite-sized frontiers
/// through ONE engine, so the engine's dense_rounds()/switches() counters
/// and the sparse/dense hysteresis memory interleave both phases — the
/// representation choice stays correct per phase (it can never affect
/// results), but read the counters as a blend, not a per-phase series.

namespace cobra::core {

enum class GossipMode {
  Push,      ///< informed vertices send to a random neighbor
  Pull,      ///< uninformed vertices poll a random neighbor
  PushPull,  ///< both per round
};

class Gossip {
 public:
  Gossip(const Graph& g, Vertex start, GossipMode mode = GossipMode::Push);

  void reset(Vertex start);

  void step(Engine& gen);

  /// All informed vertices (monotonically growing, sorted ascending).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return informed_list_;
  }

  /// All uninformed vertices — the pull phase's frontier (sorted
  /// ascending). In pull-running modes the list is maintained eagerly
  /// (the pull phase reads it every round anyway); in Push mode it is
  /// compacted lazily here, so a pure push cover run never pays the
  /// O(|uninformed|)-per-round maintenance for a list nothing reads.
  [[nodiscard]] std::span<const Vertex> uninformed() const {
    compact_uninformed();
    return uninformed_list_;
  }

  [[nodiscard]] bool is_informed(Vertex v) const { return informed_[v] != 0; }
  [[nodiscard]] std::uint32_t informed_count() const noexcept {
    return static_cast<std::uint32_t>(informed_list_.size());
  }
  [[nodiscard]] bool complete() const noexcept {
    return informed_count() == g_->num_vertices();
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] GossipMode mode() const noexcept { return mode_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// The underlying step engine (chunking / pool / threshold knobs).
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

  /// Checkpointing (sim::Checkpointable): mode tag (cross-checked against
  /// the constructed mode on restore — resuming a Push snapshot into a
  /// PushPull process would silently change the trajectory), round, and
  /// the informed list; the flag array and uninformed complement are
  /// derived state and rebuilt.
  void save_state(util::CheckpointWriter& w) const;
  void restore_state(util::CheckpointReader& r);

 private:
  /// Flag and merge the round's newly informed set (sorted, disjoint from
  /// informed_list_) into the maintained lists.
  void absorb(std::span<const Vertex> fresh);

  /// Drop flagged vertices from the uninformed list (idempotent: the
  /// informed_ flags are authoritative, the list is a sorted superset
  /// between compactions).
  void compact_uninformed() const;

  const Graph* g_;
  GossipMode mode_;
  FrontierEngine engine_;
  NeighborSampler pick_;
  std::vector<std::uint8_t> informed_;
  std::vector<Vertex> informed_list_;  ///< sorted ascending
  /// Sorted ascending; in Push mode may transiently contain already-
  /// informed vertices until the next compact_uninformed().
  mutable std::vector<Vertex> uninformed_list_;
  mutable bool uninformed_stale_ = false;
  std::vector<Vertex> newly_;       // scratch: push offspring this round
  std::vector<Vertex> pull_newly_;  // scratch: pull adopters this round
  std::vector<Vertex> merged_;      // scratch: union of the two
  std::uint64_t round_ = 0;
};

}  // namespace cobra::core
