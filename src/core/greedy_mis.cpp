#include "core/greedy_mis.hpp"

#include <algorithm>
#include <numeric>

#include "rng/splitmix64.hpp"

namespace cobra::core {

namespace {

/// The removal-closure expand draws no randomness; this constant only keys
/// its (unused) chunk streams apart from the winner round's.
constexpr std::uint64_t kRemovalStream = 0x9e3779b97f4a7c15ULL;

}  // namespace

GreedyMIS::GreedyMIS(const Graph& g, FrontierOptions opts)
    : g_(&g), engine_(g, opts) {
  active_flag_.resize(g.num_vertices());
  in_mis_.resize(g.num_vertices());
  reset();
}

void GreedyMIS::reset() {
  std::vector<Vertex> all(g_->num_vertices());
  std::iota(all.begin(), all.end(), Vertex{0});
  engine_.dedupe(all, frontier_);
  std::fill(active_flag_.begin(), active_flag_.end(), std::uint8_t{1});
  std::fill(in_mis_.begin(), in_mis_.end(), std::uint8_t{0});
  mis_.clear();
  round_ = 0;
  last_winners_ = 0;
}

void GreedyMIS::step(Engine& gen) {
  if (frontier_.empty()) return;
  const std::uint64_t round_seed = gen();
  ++round_;

  // Round priorities are the pure hash derive_seed(round_seed, v): every
  // worker computes the same priority for the same vertex without touching
  // generator state, so the winner set is schedule-independent by
  // construction. Strict total order via the (priority, id) tiebreak.
  const std::uint8_t* active = active_flag_.data();
  const auto winner_sampler = [&](Vertex v, auto& /*rng*/, const auto& sink) {
    const std::uint64_t pv = rng::derive_seed(round_seed, v);
    for (const Vertex u : g_->neighbors(v)) {
      if (u == v || active[u] == 0) continue;
      const std::uint64_t pu = rng::derive_seed(round_seed, u);
      if (pu < pv || (pu == pv && u < v)) return;
    }
    sink(v);
  };
  engine_.expand(frontier_, winners_, round_seed, winner_sampler);
  last_winners_ = winners_.size();

  const auto winner_list = winners_.vertices();
  for (const Vertex v : winner_list) in_mis_[v] = 1;
  // Winners are ascending and disjoint from the collected set (they were
  // still active), so one merge keeps mis_ sorted.
  const auto old_size = static_cast<std::ptrdiff_t>(mis_.size());
  mis_.insert(mis_.end(), winner_list.begin(), winner_list.end());
  std::inplace_merge(mis_.begin(), mis_.begin() + old_size, mis_.end());

  // Removal closure: each winner takes itself and its still-active
  // neighbors out; the engine dedups overlapping neighborhoods.
  const auto removal_sampler = [&](Vertex v, auto& /*rng*/, const auto& sink) {
    sink(v);
    for (const Vertex u : g_->neighbors(v)) {
      if (u != v && active[u] != 0) sink(u);
    }
  };
  engine_.expand(winners_, removed_,
                 rng::derive_seed(round_seed, kRemovalStream),
                 removal_sampler);
  for (const Vertex v : removed_.vertices()) active_flag_[v] = 0;

  // Shrink the frontier to the survivors — the engine's retain path keeps
  // the active set canonical in whichever representation the round picked.
  engine_.retain(frontier_, next_,
                 [&](Vertex v) { return active[v] != 0; });
  frontier_.swap(next_);
}

}  // namespace cobra::core
