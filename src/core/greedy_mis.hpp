#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"

/// \file greedy_mis.hpp
/// Parallel randomized greedy MIS — the round-based maximal-independent-set
/// process whose round complexity Fischer & Noever pinned at Θ(log n)
/// ("Tight analysis of parallel randomized greedy MIS", SODA 2018). Every
/// round draws fresh random priorities for the active vertices; a vertex
/// that is a strict local minimum among its active neighbors joins the MIS,
/// and it plus its neighbors leave the active set. The process dies when
/// the active set is empty, at which point the collected set is independent
/// AND maximal by construction.
///
/// This is the library's first genuinely SHRINKING frontier process — the
/// consumer the engine's remove-from-frontier path (`retain`) was built
/// for. One step is three engine rounds over the same chunked vertex-id
/// space:
///
///   1. winner selection  — expand over the active frontier with a sampler
///      that sinks v iff v's priority beats every active neighbor's
///      (priorities are the pure hash derive_seed(round_seed, v), so no
///      generator state is consumed per vertex and the comparison is
///      identical no matter which worker evaluates it);
///   2. removal closure   — expand over the winners, sinking each winner
///      and its still-active neighbors (the engine dedups the overlap);
///   3. frontier shrink   — retain over the active frontier keeping the
///      survivors, producing the next round's canonical active set.
///
/// One draw of the caller's engine per round seeds all three, so a run is
/// a pure function of (graph, engine seed) — bit-identical across 1/2/8
/// threads and sparse/dense representations, which the property suite
/// pins. Ties between equal priorities break toward the smaller vertex id,
/// keeping the winner predicate a strict total order (with a 64-bit hash
/// per vertex, ties are astronomically rare anyway).
///
/// Models sim::Process: active() is the current active set, extinction ==
/// completion (sim::Extinction stops a Runner at exactly done()).

namespace cobra::core {

class GreedyMIS {
 public:
  /// A greedy-MIS process on `g` with every vertex initially active.
  /// Requires a non-empty graph; self-loops in `g` are ignored by the
  /// winner predicate (a vertex is never its own MIS blocker). The Graph
  /// must outlive the process.
  explicit GreedyMIS(const Graph& g, FrontierOptions opts = {});

  /// Restart with every vertex active and an empty MIS (reuses buffers).
  void reset();

  /// One round: priorities, winners into the MIS, winners + neighbors out
  /// of the active set. No-op once done().
  void step(Engine& gen);

  /// Still-active (undecided) vertices, sorted ascending.
  [[nodiscard]] std::span<const Vertex> active() const {
    return frontier_.vertices();
  }

  /// The active set in its native representation (O(1) size()).
  [[nodiscard]] const Frontier& frontier() const noexcept { return frontier_; }

  /// The independent set collected so far, sorted ascending. Maximal once
  /// done().
  [[nodiscard]] std::span<const Vertex> mis() const noexcept { return mis_; }

  /// Is `v` in the collected set?
  [[nodiscard]] bool in_mis(Vertex v) const noexcept {
    return in_mis_[v] != 0;
  }

  /// True when the active set is empty — the MIS is complete and maximal.
  [[nodiscard]] bool done() const noexcept { return frontier_.empty(); }

  /// Winners of the most recent round (observability).
  [[nodiscard]] std::uint64_t last_winners() const noexcept {
    return last_winners_;
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// The underlying step engine — benches/tests tune its chunking, pool
  /// and threshold through this.
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

 private:
  const Graph* g_;
  FrontierEngine engine_;
  Frontier frontier_;  ///< active (undecided) vertices
  Frontier winners_;   ///< this round's local minima
  Frontier removed_;   ///< winners + their active neighbors
  Frontier next_;      ///< retain output, swapped into frontier_
  std::vector<std::uint8_t> active_flag_;  ///< == membership in frontier_
  std::vector<std::uint8_t> in_mis_;
  std::vector<Vertex> mis_;  ///< sorted ascending
  std::uint64_t round_ = 0;
  std::uint64_t last_winners_ = 0;
};

}  // namespace cobra::core
