#include "core/grid_drift.hpp"

#include <numeric>
#include <stdexcept>

namespace cobra::core {

GridDriftWalk::GridDriftWalk(std::span<const std::uint32_t> initial,
                             std::uint32_t extent)
    : z_(initial.begin(), initial.end()), extent_(extent) {
  if (z_.empty()) throw std::invalid_argument("GridDriftWalk: >= 1 dimension");
  if (extent_ == 0) throw std::invalid_argument("GridDriftWalk: extent >= 1");
  for (const std::uint32_t zi : z_) {
    if (zi > extent_) {
      throw std::invalid_argument("GridDriftWalk: initial distance > extent");
    }
  }
}

GridDriftWalk::GridDriftWalk(std::uint32_t dimensions, std::uint32_t distance,
                             std::uint32_t extent)
    : GridDriftWalk(std::vector<std::uint32_t>(dimensions, distance), extent) {}

void GridDriftWalk::reset(std::span<const std::uint32_t> initial) {
  if (initial.size() != z_.size()) {
    throw std::invalid_argument("GridDriftWalk::reset: dimension mismatch");
  }
  for (const std::uint32_t zi : initial) {
    if (zi > extent_) {
      throw std::invalid_argument("GridDriftWalk::reset: distance > extent");
    }
  }
  z_.assign(initial.begin(), initial.end());
  round_ = 0;
}

std::uint64_t GridDriftWalk::total_distance() const noexcept {
  return std::accumulate(z_.begin(), z_.end(), std::uint64_t{0});
}

GridDriftWalk::Move GridDriftWalk::propose(Engine& gen) const {
  const auto dim = static_cast<std::uint32_t>(rng::uniform_below(gen, z_.size()));
  return {dim, rng::coin_flip(gen)};
}

void GridDriftWalk::apply(Move move) {
  std::uint32_t& zi = z_[move.dimension];
  if (move.toward) {
    // At z = 0 every move in the dimension increases the distance: there
    // is no "toward" — the coordinate already matches, so any step in this
    // dimension moves away (the proof's case (c)).
    if (zi > 0) {
      --zi;
    } else if (zi < extent_) {
      ++zi;
    }
  } else {
    if (zi < extent_) ++zi;  // the grid wall absorbs outward moves at the cap
  }
}

GridDriftWalk::StepEvent GridDriftWalk::step(Engine& gen) {
  ++round_;
  const Move a = propose(gen);
  const Move b = propose(gen);

  // The proof's selection rule, clause by clause (see header).
  Move chosen = a;
  if (a.dimension == b.dimension) {
    const bool a_closer = a.toward && z_[a.dimension] > 0;
    const bool b_closer = b.toward && z_[b.dimension] > 0;
    if (b_closer && !a_closer) chosen = b;
    // (both closer / both farther / only a closer -> keep a; when both are
    // equivalent a is a uniformly random representative.)
  } else {
    const bool a_zero = z_[a.dimension] == 0;
    const bool b_zero = z_[b.dimension] == 0;
    if (a_zero && !b_zero) {
      chosen = b;
    } else if (!a_zero && b_zero) {
      chosen = a;
    } else if (a_zero && b_zero) {
      chosen = rng::coin_flip(gen) ? a : b;
    } else {
      const bool a_closer = a.toward;
      const bool b_closer = b.toward;
      if (a_closer == b_closer) {
        chosen = rng::coin_flip(gen) ? a : b;
      } else {
        chosen = a_closer ? a : b;
      }
    }
  }

  const std::uint32_t before = z_[chosen.dimension];
  apply(chosen);
  const std::uint32_t after = z_[chosen.dimension];
  StepEvent event;
  if (after != before) {
    event.dimension = static_cast<std::int32_t>(chosen.dimension);
    event.delta = after > before ? +1 : -1;
  }
  return event;
}

std::uint64_t GridDriftWalk::run_to_origin(Engine& gen, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!at_origin() && steps < max_steps) {
    step(gen);
    ++steps;
  }
  return steps;
}

}  // namespace cobra::core
