#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

/// \file grid_drift.hpp
/// The pessimistic single-pebble coupling from the proof of Theorem 3.
///
/// The proof tracks ONE pebble of the 2-cobra walk on [0,n]^d through the
/// per-dimension distances z = (z_1, ..., z_d) to the target vertex. Each
/// round both clones of the tracked pebble pick a uniform (dimension,
/// direction) move, and the proof's selection rule keeps exactly one:
///
///   * both clones moved in the same dimension  -> keep a clone that moves
///     closer to the target if one exists;
///   * different dimensions i, j with z_i = 0, z_j != 0 -> keep the one in
///     dimension j (progress cannot be undone at 0... it can, but the rule
///     prefers the dimension that still needs work);
///   * both dimensions at 0 -> keep a uniformly random clone;
///   * both nonzero -> if one moves closer and the other farther, keep the
///     closer one; otherwise keep a random clone.
///
/// Lemma 4 asserts the resulting per-dimension drift:
///   (a) z_i != 0  =>  z_i changes next round w.p. >= 1/(2d-1);
///   (b) conditioned on z_i changing, it decreases w.p. >= 1/2 + 1/(8d-4);
///   (c) z_i  = 0  =>  z_i increases next round w.p. <= 2/(d+1).
/// Lemma 5 concludes each z_i hits 0 within O(d^2 n) rounds w.h.p.;
/// Lemma 6 that it then stays below c_d ln n. This module simulates the
/// coupling exactly (interior-of-grid move probabilities; distances capped
/// at `extent`, i.e. moving "farther" at the cap is a wall and keeps z_i),
/// exposing per-step events so the benches can verify (a)-(c) directly.

namespace cobra::core {

class GridDriftWalk {
 public:
  /// Per-step outcome for drift accounting.
  struct StepEvent {
    std::int32_t dimension = -1;  ///< which z_i changed (-1: none)
    std::int32_t delta = 0;       ///< -1, 0, +1 applied to that dimension
  };

  /// Start at distances `initial` (one per dimension), each in [0, extent].
  GridDriftWalk(std::span<const std::uint32_t> initial, std::uint32_t extent);

  /// Uniform convenience: d dimensions all starting at `distance`.
  GridDriftWalk(std::uint32_t dimensions, std::uint32_t distance,
                std::uint32_t extent);

  void reset(std::span<const std::uint32_t> initial);

  /// One round of the coupling; returns what changed.
  StepEvent step(Engine& gen);

  [[nodiscard]] std::uint32_t dimensions() const noexcept {
    return static_cast<std::uint32_t>(z_.size());
  }
  [[nodiscard]] std::uint32_t distance(std::uint32_t dim) const {
    return z_.at(dim);
  }
  [[nodiscard]] std::span<const std::uint32_t> distances() const noexcept {
    return z_;
  }
  [[nodiscard]] std::uint64_t total_distance() const noexcept;
  [[nodiscard]] bool at_origin() const noexcept { return total_distance() == 0; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

  /// Run until every dimension is simultaneously 0 (the proof's target
  /// event) or `max_steps`; returns rounds taken.
  std::uint64_t run_to_origin(Engine& gen, std::uint64_t max_steps);

 private:
  /// A clone's proposed move: uniform dimension, uniform direction.
  struct Move {
    std::uint32_t dimension;
    bool toward;  ///< true = decreases z (direction toward the target)
  };
  [[nodiscard]] Move propose(Engine& gen) const;
  void apply(Move move);

  std::vector<std::uint32_t> z_;
  std::uint32_t extent_;
  std::uint64_t round_ = 0;
};

}  // namespace cobra::core
