#include "core/hitting_time.hpp"

#include "core/biased_walk.hpp"
#include "core/cobra_walk.hpp"
#include "core/cover_time.hpp"
#include "core/random_walk.hpp"

namespace cobra::core {

namespace {

std::uint64_t budget_or_default(std::uint64_t max_steps, const Graph& g) {
  return max_steps == 0 ? default_step_budget(g.num_vertices()) : max_steps;
}

}  // namespace

HitResult cobra_hit(const Graph& g, Vertex start, Vertex target,
                    std::uint32_t branching, Engine& gen, std::uint64_t max_steps) {
  CobraWalk walk(g, start, branching);
  return run_to_hit(walk, target, gen, budget_or_default(max_steps, g));
}

HitResult random_walk_hit(const Graph& g, Vertex start, Vertex target,
                          Engine& gen, std::uint64_t max_steps) {
  RandomWalk walk(g, start);
  return run_to_hit(walk, target, gen, budget_or_default(max_steps, g));
}

HitResult inverse_degree_hit(const Graph& g, Vertex start, Vertex target,
                             Engine& gen, std::uint64_t max_steps) {
  BiasedWalk walk(g, start, target, BiasSchedule::InverseDegreeBias);
  return run_to_hit(walk, target, gen, budget_or_default(max_steps, g));
}

HmaxEstimate estimate_cobra_hmax(const Graph& g, std::uint32_t branching,
                                 Engine& gen, std::uint64_t pair_samples,
                                 std::uint32_t trials_per_pair,
                                 std::uint64_t max_steps) {
  const std::uint32_t n = g.num_vertices();
  const std::uint64_t budget = budget_or_default(max_steps, g);
  HmaxEstimate est;

  auto consider_pair = [&](Vertex u, Vertex v) {
    if (u == v) return;
    double total = 0.0;
    for (std::uint32_t t = 0; t < trials_per_pair; ++t) {
      const HitResult r = cobra_hit(g, u, v, branching, gen, budget);
      if (!r.hit) est.all_hit = false;
      total += static_cast<double>(r.steps);
    }
    const double mean = total / trials_per_pair;
    ++est.pairs;
    if (mean > est.hmax) {
      est.hmax = mean;
      est.argmax_from = u;
      est.argmax_to = v;
    }
  };

  if (pair_samples == 0) {
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = 0; v < n; ++v) consider_pair(u, v);
    }
  } else {
    for (std::uint64_t s = 0; s < pair_samples; ++s) {
      const auto [u, v] = rng::distinct_pair(gen, n);
      consider_pair(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  return est;
}

}  // namespace cobra::core
