#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

/// \file hitting_time.hpp
/// Hitting-time measurement (§2, §5). H(u, v) for a cobra walk is the
/// expected first round at which ANY pebble originating from the walk
/// started at u reaches v; for single walkers it is the classic hitting
/// time. The general-graph experiments (Theorems 15 and 20) are phrased in
/// terms of H and h_max = max_{u,v} H(u, v), which these helpers estimate
/// by Monte-Carlo over sampled vertex pairs.

namespace cobra::core {

struct HitResult {
  std::uint64_t steps = 0;  ///< first round with target active (valid iff hit)
  bool hit = false;
};

/// Run `process` until `target` appears in its active set, at most
/// `max_steps` rounds. A target already active at round 0 returns 0 steps.
template <VertexProcess P>
HitResult run_to_hit(P& process, Vertex target, Engine& gen,
                     std::uint64_t max_steps) {
  HitResult result;
  for (const Vertex v : process.active()) {
    if (v == target) {
      result.hit = true;
      return result;
    }
  }
  while (result.steps < max_steps) {
    process.step(gen);
    ++result.steps;
    for (const Vertex v : process.active()) {
      if (v == target) {
        result.hit = true;
        return result;
      }
    }
  }
  return result;
}

/// One-shot: k-cobra walk from `start` until `target` is hit.
HitResult cobra_hit(const Graph& g, Vertex start, Vertex target,
                    std::uint32_t branching, Engine& gen,
                    std::uint64_t max_steps = 0);

/// One-shot: simple random walk hitting time.
HitResult random_walk_hit(const Graph& g, Vertex start, Vertex target,
                          Engine& gen, std::uint64_t max_steps = 0);

/// One-shot: biased-walk hitting time (schedule per biased_walk.hpp).
HitResult inverse_degree_hit(const Graph& g, Vertex start, Vertex target,
                             Engine& gen, std::uint64_t max_steps = 0);

/// Estimate of max_{u,v} H(u, v) by exhaustive or sampled pair sweep:
/// `pair_samples` == 0 means all ordered pairs (only sane for small n);
/// otherwise that many random pairs. Each pair averaged over
/// `trials_per_pair` runs. Returns the max of the per-pair mean hit times.
struct HmaxEstimate {
  double hmax = 0.0;         ///< max over pairs of mean hitting time
  Vertex argmax_from = 0;
  Vertex argmax_to = 0;
  std::uint64_t pairs = 0;
  bool all_hit = true;       ///< false if any run exhausted its budget
};
HmaxEstimate estimate_cobra_hmax(const Graph& g, std::uint32_t branching,
                                 Engine& gen, std::uint64_t pair_samples,
                                 std::uint32_t trials_per_pair,
                                 std::uint64_t max_steps = 0);

}  // namespace cobra::core
