#include "core/lll_resampler.hpp"

#include <stdexcept>

#include "rng/splitmix64.hpp"

namespace cobra::core {

namespace {

/// Stream keys separating the round's three derived seed uses (winner
/// chunk streams use round_seed itself; neither sampler draws, so the
/// values only need to be distinct).
constexpr std::uint64_t kVarStream = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kTouchStream = 0xbf58476d1ce4e5b9ULL;

}  // namespace

LLLResampler::LLLResampler(const gen::ClauseSystem& sys, const Graph& deps,
                           std::uint64_t init_seed, FrontierOptions opts)
    : sys_(&sys), g_(&deps), engine_(deps, opts) {
  if (sys.num_clauses() == 0) {
    throw std::invalid_argument("LLLResampler: need at least one clause");
  }
  if (deps.num_vertices() != sys.num_clauses()) {
    throw std::invalid_argument(
        "LLLResampler: dependency graph must have one vertex per clause");
  }
  assignment_.resize(sys.num_vars);
  violated_flag_.resize(sys.num_clauses());
  reset(init_seed);
}

void LLLResampler::reset(std::uint64_t init_seed) {
  for (std::uint32_t x = 0; x < sys_->num_vars; ++x) {
    assignment_[x] =
        static_cast<std::uint8_t>(rng::derive_seed(init_seed, x) & 1);
  }
  violated_.clear();
  for (std::uint32_t c = 0; c < sys_->num_clauses(); ++c) {
    const bool bad = !sys_->satisfied(c, assignment_);
    violated_flag_[c] = bad ? 1 : 0;
    if (bad) violated_.push_back(static_cast<Vertex>(c));
  }
  witness_.clear();
  var_resamples_ = 0;
  last_winners_ = 0;
  round_ = 0;
}

void LLLResampler::step(Engine& gen) {
  if (violated_.empty()) return;
  const std::uint64_t round_seed = gen();
  ++round_;

  // Winner selection: locally minimal violated clauses under the pure
  // priority hash — an independent set in the dependency graph, hence
  // variable-disjoint (same predicate shape as GreedyMIS's winner round).
  const std::uint8_t* bad = violated_flag_.data();
  const auto winner_sampler = [&](Vertex c, auto& /*rng*/, const auto& sink) {
    const std::uint64_t pc = rng::derive_seed(round_seed, c);
    for (const Vertex d : g_->neighbors(c)) {
      if (d == c || bad[d] == 0) continue;
      const std::uint64_t pd = rng::derive_seed(round_seed, d);
      if (pd < pc || (pd == pc && d < c)) return;
    }
    sink(c);
  };
  engine_.expand(std::span<const Vertex>(violated_), winners_, round_seed,
                 winner_sampler);
  last_winners_ = winners_.size();
  witness_.insert(witness_.end(), winners_.begin(), winners_.end());

  // Resample every winner's variables from the round's pure hash. Winners
  // are variable-disjoint, so each variable is redrawn exactly once and
  // the resulting assignment is independent of iteration order.
  const std::uint64_t var_seed = rng::derive_seed(round_seed, kVarStream);
  for (const Vertex c : winners_) {
    for (const std::uint32_t x :
         sys_->clause_vars(static_cast<std::uint32_t>(c))) {
      assignment_[x] =
          static_cast<std::uint8_t>(rng::derive_seed(var_seed, x) & 1);
      ++var_resamples_;
    }
  }

  // Only clauses sharing a variable with a winner can change status —
  // exactly the winners plus their dependency neighbors.
  const auto touch_sampler = [&](Vertex c, auto& /*rng*/, const auto& sink) {
    sink(c);
    for (const Vertex d : g_->neighbors(c)) {
      if (d != c) sink(d);
    }
  };
  engine_.expand(std::span<const Vertex>(winners_), touched_,
                 rng::derive_seed(round_seed, kTouchStream), touch_sampler);
  for (const Vertex c : touched_) {
    violated_flag_[c] =
        sys_->satisfied(static_cast<std::uint32_t>(c), assignment_) ? 0 : 1;
  }

  // Rebuild the violated frontier: merge the (sorted) old frontier with
  // the (sorted) touched set, taking each touched clause's refreshed flag
  // and passing untouched violated clauses through unchanged.
  rebuilt_.clear();
  auto it = touched_.begin();
  for (const Vertex c : violated_) {
    while (it != touched_.end() && *it < c) {
      if (violated_flag_[*it] != 0) rebuilt_.push_back(*it);
      ++it;
    }
    if (it != touched_.end() && *it == c) {
      if (violated_flag_[c] != 0) rebuilt_.push_back(c);
      ++it;
    } else {
      rebuilt_.push_back(c);  // untouched: still violated
    }
  }
  while (it != touched_.end()) {
    if (violated_flag_[*it] != 0) rebuilt_.push_back(*it);
    ++it;
  }
  violated_.swap(rebuilt_);
}

}  // namespace cobra::core
