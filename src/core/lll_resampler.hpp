#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frontier_engine.hpp"
#include "core/types.hpp"
#include "gen/constraints.hpp"

/// \file lll_resampler.hpp
/// Parallel Moser–Tardos resampling for constraint systems — the
/// constructive Lovász Local Lemma (Moser & Tardos, JACM 2010) run as a
/// round-based frontier process. The state space is the CLAUSE dependency
/// graph (gen::dependency_graph — clauses adjacent iff they share a
/// variable); the frontier is the set of currently violated clauses. Each
/// round:
///
///   1. winner selection — among violated clauses, those locally minimal
///      under fresh hashed priorities win (an independent set in the
///      dependency graph, so winners share NO variable — the parallel
///      Moser–Tardos round of Moser & Tardos §4, whose log-factor round
///      bounds Harris & Srinivasan's partial-resampling framework
///      tightens);
///   2. resampling      — every variable of every winner is redrawn from
///      the pure hash derive_seed(var_seed, x); disjointness makes the
///      order immaterial, so the new assignment is schedule-independent;
///   3. status refresh  — only winners and their dependency neighbors can
///      change violation status; an expand over the winners collects that
///      touched set, the clauses re-evaluate, and the violated frontier is
///      rebuilt by a sorted merge.
///
/// One draw of the caller's engine per round seeds everything, so a run is
/// a pure function of (system, init_seed, engine seed) — bit-identical
/// across thread counts and representations. Termination: each round
/// resamples >= 1 violated clause, and under the LLL condition the
/// expected total resample count is O(m); the test/bench systems sit far
/// below the k-SAT threshold so runs finish in a handful of rounds (a
/// sim::Runner budget guards the pathological tail regardless).
///
/// Models sim::Process over clause ids: active() is the violated set,
/// satisfied() == extinction. The witness record (every winner clause, in
/// resampling order) is the Moser–Tardos witness-count observable the
/// bench reports.

namespace cobra::core {

class LLLResampler {
 public:
  /// A resampler for `sys` on its dependency graph `deps` (build it with
  /// gen::dependency_graph; it is taken by reference and must outlive the
  /// resampler, and must have exactly sys.num_clauses() vertices). The
  /// initial assignment is the pure hash of `init_seed`. Requires at least
  /// one clause.
  LLLResampler(const gen::ClauseSystem& sys, const Graph& deps,
               std::uint64_t init_seed, FrontierOptions opts = {});

  /// Redraw the initial assignment from `init_seed` and rebuild the
  /// violated set (reuses buffers).
  void reset(std::uint64_t init_seed);

  /// One parallel resampling round. No-op once satisfied().
  void step(Engine& gen);

  /// Currently violated clauses, sorted ascending.
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return violated_;
  }

  /// True when no clause is violated — the assignment satisfies `sys`.
  [[nodiscard]] bool satisfied() const noexcept { return violated_.empty(); }

  /// The current assignment, one 0/1 byte per variable.
  [[nodiscard]] std::span<const std::uint8_t> assignment() const noexcept {
    return assignment_;
  }

  /// The Moser–Tardos witness record: every resampled clause in round
  /// order (winners within a round ascending).
  [[nodiscard]] std::span<const Vertex> witness() const noexcept {
    return witness_;
  }

  /// Total variable redraws across all rounds.
  [[nodiscard]] std::uint64_t var_resamples() const noexcept {
    return var_resamples_;
  }

  /// Winners of the most recent round (observability).
  [[nodiscard]] std::uint64_t last_winners() const noexcept {
    return last_winners_;
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const gen::ClauseSystem& system() const noexcept {
    return *sys_;
  }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size — the CLAUSE count (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// The underlying step engine — benches/tests tune its chunking, pool
  /// and threshold through this.
  [[nodiscard]] FrontierEngine& engine() noexcept { return engine_; }

 private:
  const gen::ClauseSystem* sys_;
  const Graph* g_;
  FrontierEngine engine_;
  std::vector<std::uint8_t> assignment_;     ///< one 0/1 byte per variable
  std::vector<std::uint8_t> violated_flag_;  ///< == membership in violated_
  std::vector<Vertex> violated_;  ///< sorted ascending, the frontier
  std::vector<Vertex> winners_;
  std::vector<Vertex> touched_;  ///< winners + dependency neighbors
  std::vector<Vertex> rebuilt_;  ///< merge scratch
  std::vector<Vertex> witness_;
  std::uint64_t var_resamples_ = 0;
  std::uint64_t last_winners_ = 0;
  std::uint64_t round_ = 0;
};

}  // namespace cobra::core
