#include "core/metropolis_walk.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace cobra::core {

namespace {

/// Max-product Dijkstra: maximize prod (1 - 1/d(y)) over path vertices
/// excluding the target. Equivalently minimize sum -log(1 - 1/d(y)).
/// cost[x] accumulates the path's own vertices from x up to (but not
/// including) the target, so sigma(target) = 1 and a neighbor y of the
/// target has sigma(y) = 1 - 1/d(y).
std::vector<double> max_product_to_target(const Graph& g, Vertex target) {
  const std::uint32_t n = g.num_vertices();
  std::vector<double> cost(n, std::numeric_limits<double>::infinity());
  std::vector<double> vertex_cost(n);
  for (Vertex v = 0; v < n; ++v) {
    const double d = g.degree(v);
    // degree-1 vertices have 1 - 1/d = 0: the product vanishes, which we
    // encode as an (effectively) infinite additive cost.
    vertex_cost[v] = d > 1.0 ? -std::log1p(-1.0 / d) : 1e18;
  }

  using Entry = std::pair<double, Vertex>;  // (cost, vertex), min-heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  cost[target] = 0.0;
  heap.push({0.0, target});
  while (!heap.empty()) {
    const auto [c, v] = heap.top();
    heap.pop();
    if (c > cost[v]) continue;
    for (const Vertex u : g.neighbors(v)) {
      // Extending the path from u through v: u pays its own vertex cost.
      const double candidate = c + vertex_cost[u];
      if (candidate < cost[u]) {
        cost[u] = candidate;
        heap.push({candidate, u});
      }
    }
  }

  std::vector<double> sigma(n);
  for (Vertex v = 0; v < n; ++v) {
    sigma[v] = std::isinf(cost[v]) ? 0.0 : std::exp(-cost[v]);
  }
  sigma[target] = 1.0;
  return sigma;
}

}  // namespace

MetropolisWalk::MetropolisWalk(const Graph& g, Vertex target)
    : g_(&g), target_(target), position_(target) {
  if (target >= g.num_vertices()) {
    throw std::out_of_range("MetropolisWalk: target out of range");
  }
  if (!graph::is_connected(g)) {
    throw std::invalid_argument("MetropolisWalk: graph must be connected");
  }
  if (g.min_degree() < 2) {
    // Degree-1 vertices have 1 - 1/d = 0, collapsing sigma_hat (and the
    // chain's stationary mass) to zero and making the derived chain P
    // absorbing at their neighbors. The paper's construction is only used
    // where min degree >= 2; we enforce that precondition.
    throw std::invalid_argument("MetropolisWalk: min degree must be >= 2");
  }

  sigma_ = max_product_to_target(g, target);

  // Lemma 18 relaxation via min-weight path, weights 1/d per vertex
  // (excluding the target), computed by the same Dijkstra with different
  // vertex costs.
  {
    const std::uint32_t n = g.num_vertices();
    std::vector<double> cost(n, std::numeric_limits<double>::infinity());
    using Entry = std::pair<double, Vertex>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    cost[target] = 0.0;
    heap.push({0.0, target});
    while (!heap.empty()) {
      const auto [c, v] = heap.top();
      heap.pop();
      if (c > cost[v]) continue;
      for (const Vertex u : g.neighbors(v)) {
        const double candidate = c + 1.0 / g.degree(u);
        if (candidate < cost[u]) {
          cost[u] = candidate;
          heap.push({candidate, u});
        }
      }
    }
    e_bound_.resize(n);
    for (Vertex v = 0; v < n; ++v) e_bound_[v] = std::exp(-cost[v]);
    e_bound_[target] = 1.0;
  }

  // pi_M (Lemma 16): gamma d(v) at the target, gamma sigma_hat d(x) else.
  pi_.resize(g.num_vertices());
  double norm = 0.0;
  double bound_num = g.degree(target);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    pi_[v] = (v == target ? 1.0 : sigma_[v]) * g.degree(v);
    norm += pi_[v];
    if (v != target) bound_num += sigma_[v] * g.degree(v);
  }
  for (double& p : pi_) p /= norm;
  bound_ = bound_num / g.degree(target);
}

double MetropolisWalk::acceptance(Vertex x, Vertex y) const {
  // Metropolis for target pi with uniform-neighbor proposals:
  // accept = min(1, (pi(y)/d(y)) / (pi(x)/d(x))).
  const double from = pi_[x] / g_->degree(x);
  const double to = pi_[y] / g_->degree(y);
  if (from <= 0.0) return 1.0;
  return std::min(1.0, to / from);
}

void MetropolisWalk::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("MetropolisWalk::reset: out of range");
  }
  position_ = start;
  round_ = 0;
}

void MetropolisWalk::step(Engine& gen) {
  ++round_;
  const Vertex proposal = random_neighbor(*g_, position_, gen);
  if (rng::bernoulli(gen, acceptance(position_, proposal))) {
    position_ = proposal;
  }
  // Rejection keeps the position: the self-loop is a real step of M and is
  // what makes E[return time] = 1/pi_M(v) hold exactly.
}

double MetropolisWalk::measure_return_time(Engine& gen,
                                           std::uint32_t excursions,
                                           std::uint64_t max_steps) {
  reset(target_);
  std::uint64_t total_steps = 0;
  std::uint32_t completed = 0;
  std::uint64_t budget = 0;
  while (completed < excursions && budget < max_steps) {
    // One excursion: step until back at the target.
    do {
      step(gen);
      ++total_steps;
      ++budget;
    } while (position_ != target_ && budget < max_steps);
    if (position_ == target_) ++completed;
  }
  if (completed == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(total_steps) / completed;
}

double MetropolisWalk::min_transition_margin() const {
  double worst = std::numeric_limits<double>::infinity();
  for (Vertex x = 0; x < g_->num_vertices(); ++x) {
    if (x == target_) continue;  // the target moves uniformly by design
    const double d = g_->degree(x);
    // M(x, y) = accept(x,y)/d; the §5.3 inequality is
    // M(x, y) >= (1 - 1/d)/d, i.e. accept(x, y) >= 1 - 1/d(x), which the
    // paper derives from sigma_hat(y) >= (1 - 1/d(x)) sigma_hat(x).
    for (const Vertex y : g_->neighbors(x)) {
      const double m_xy = acceptance(x, y) / d;
      worst = std::min(worst, m_xy - (1.0 - 1.0 / d) / d);
    }
  }
  return worst;
}

}  // namespace cobra::core
