#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

/// \file metropolis_walk.hpp
/// The Metropolis machinery of §5.3 (Lemma 16, Corollary 17). To bound the
/// return time of the inverse-degree-biased walk, the paper constructs a
/// Metropolis chain M whose stationary distribution is
///
///     pi_M(v) = gamma * d(v)                   for the target v,
///     pi_M(x) = gamma * sigma_hat(x, v) * d(x) for x != v,
///
/// where sigma_hat(x, v) maximizes prod_{y in P} (1 - 1/d(y)) over paths P
/// from x to v (we take the product over P's vertices excluding the target
/// itself), and shows the derived self-loop-free chain
/// P(x,y) = M(x,y)/(1 - M(x,x)) is a legal inverse-degree-biased walk with
/// return time to v at most
///
///     R(v) <= (d(v) + sum_{x != v} sigma_hat(x, v) d(x)) / d(v).   (Cor 17)
///
/// This module computes sigma_hat exactly (max-product Dijkstra), builds
/// and simulates the Metropolis chain M (whose return time to v is exactly
/// 1/pi_M(v), i.e. the Corollary 17 bound), verifies the §5.3 floor
/// M(x,y) >= (1 - 1/d(x))/d(x) that makes M a legal inverse-degree-biased
/// walk, and exposes Lemma 18's relaxation sigma_hat(x,v) <= exp(-p(x,v))
/// for cross-checks. (The paper's self-loop-free chain P only improves
/// hitting times further; M is the object Corollary 17's number bounds.)

namespace cobra::core {

class MetropolisWalk {
 public:
  /// Build the chain targeting vertex `target` on connected graph `g`.
  MetropolisWalk(const Graph& g, Vertex target);

  /// sigma_hat(x, target): the max-product path weight (1 for the target).
  [[nodiscard]] double sigma_hat(Vertex x) const { return sigma_.at(x); }
  [[nodiscard]] const std::vector<double>& sigma_hats() const noexcept {
    return sigma_;
  }

  /// The Lemma 16 stationary distribution pi_M (normalized).
  [[nodiscard]] const std::vector<double>& stationary() const noexcept {
    return pi_;
  }

  /// The Corollary 17 return-time bound (d(v) + sum sigma_hat d) / d(v).
  [[nodiscard]] double return_time_bound() const noexcept { return bound_; }

  /// Lemma 18 upper bound exp(-p(x, target)), p = min-weight path with
  /// vertex weights 1/d(z) (target excluded from the sum).
  [[nodiscard]] double lemma18_bound(Vertex x) const { return e_bound_.at(x); }

  // -- simulation of the Metropolis chain M --------------------------------

  void reset(Vertex start);
  /// One M-step: propose a uniform neighbor, accept with the Metropolis
  /// ratio, stay put otherwise (self-loops are real steps of the chain).
  void step(Engine& gen);

  [[nodiscard]] Vertex position() const noexcept { return position_; }
  [[nodiscard]] Vertex target() const noexcept { return target_; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Singleton active set + state-space size (the sim::Process contract).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return {&position_, 1};
  }
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// Mean return time to the target over `excursions` completed excursions
  /// starting at the target. (One excursion = leave, come back.)
  [[nodiscard]] double measure_return_time(Engine& gen, std::uint32_t excursions,
                                           std::uint64_t max_steps);

  /// Verify M is a legal inverse-degree-biased walk: every neighbor
  /// transition probability M(x,y) is >= (1 - 1/d(x))/d(x) (the §5.3
  /// derivation's key inequality). Returns the worst margin over all
  /// non-target x and neighbors y (>= 0 means legal).
  [[nodiscard]] double min_transition_margin() const;

 private:
  /// Metropolis acceptance probability of proposal x -> y.
  [[nodiscard]] double acceptance(Vertex x, Vertex y) const;

  const Graph* g_;
  Vertex target_;
  Vertex position_;
  std::vector<double> sigma_;
  std::vector<double> e_bound_;
  std::vector<double> pi_;
  double bound_ = 0.0;
  std::uint64_t round_ = 0;
};

}  // namespace cobra::core
