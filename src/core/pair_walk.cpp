#include "core/pair_walk.hpp"

#include <stdexcept>

namespace cobra::core {

PairWalk::PairWalk(const Graph& g, Vertex start_i, Vertex start_j, bool lazy)
    : g_(&g), pos_i_(start_i), pos_j_(start_j), lazy_(lazy) {
  if (g.num_vertices() == 0) throw std::invalid_argument("PairWalk: empty graph");
  if (start_i >= g.num_vertices() || start_j >= g.num_vertices()) {
    throw std::out_of_range("PairWalk: start out of range");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("PairWalk: graph has an isolated vertex");
  }
  refresh_product();
}

void PairWalk::reset(Vertex start_i, Vertex start_j) {
  if (start_i >= g_->num_vertices() || start_j >= g_->num_vertices()) {
    throw std::out_of_range("PairWalk::reset: start out of range");
  }
  pos_i_ = start_i;
  pos_j_ = start_j;
  round_ = 0;
  copies_ = 0;
  refresh_product();
}

void PairWalk::step(Engine& gen) {
  ++round_;
  if (lazy_ && rng::coin_flip(gen)) return;

  if (pos_i_ == pos_j_) {
    // Co-located: i leads, j copies with probability 1/2.
    const Vertex dest_i = random_neighbor(*g_, pos_i_, gen);
    if (rng::coin_flip(gen)) {
      pos_j_ = dest_i;
      ++copies_;
    } else {
      pos_j_ = random_neighbor(*g_, pos_j_, gen);
    }
    pos_i_ = dest_i;
  } else {
    pos_i_ = random_neighbor(*g_, pos_i_, gen);
    pos_j_ = random_neighbor(*g_, pos_j_, gen);
  }
  refresh_product();
}

}  // namespace cobra::core
