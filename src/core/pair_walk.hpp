#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "core/types.hpp"

/// \file pair_walk.hpp
/// The coupled two-pebble Walt walk of §4 / Lemma 11, simulated directly
/// on G (the digraph D(G x G) in graph/tensor_product.hpp is the same
/// process written as a matrix; tests verify the two agree). Pebble i has
/// lower order than pebble j:
///
///   * not co-located -> both move to independent uniform neighbors;
///   * co-located      -> i moves uniformly; j copies i's destination with
///                        probability 1/2, else moves uniformly itself
///                        (total probability of following i: 1/2 + 1/2d);
///   * lazy variant    -> with probability 1/2 the whole pair freezes.
///
/// Lemma 11 bounds Pr[i and j are both at v at time s] by
/// 2/(n^2+n) + 1/n^4 once s exceeds the mixing time; the bench measures
/// exactly that collision probability.

namespace cobra::core {

class PairWalk {
 public:
  /// Pebbles start at (start_i, start_j); `lazy` matches the paper's §4.
  PairWalk(const Graph& g, Vertex start_i, Vertex start_j, bool lazy = true);

  void reset(Vertex start_i, Vertex start_j);

  void step(Engine& gen);

  [[nodiscard]] Vertex position_i() const noexcept { return pos_i_; }
  [[nodiscard]] Vertex position_j() const noexcept { return pos_j_; }
  [[nodiscard]] bool collided() const noexcept { return pos_i_ == pos_j_; }
  [[nodiscard]] std::pair<Vertex, Vertex> positions() const noexcept {
    return {pos_i_, pos_j_};
  }

  /// Product-space id (for comparing against the D(G x G) distribution).
  [[nodiscard]] Vertex product_id() const noexcept {
    return static_cast<Vertex>(
        static_cast<std::uint64_t>(pos_i_) * g_->num_vertices() + pos_j_);
  }

  /// The walk as a single-pebble process on the PRODUCT space D(G x G) —
  /// the sim::Process view (active set = the one product-space state).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return {&product_, 1};
  }

  /// Product-space size n^2 (the sim::Process contract). n must stay
  /// <= 2^16 for the product id to fit a Vertex — every D(G x G)
  /// comparison in the suite runs on tiny built-ins, far below that.
  [[nodiscard]] std::uint32_t n() const noexcept {
    return g_->num_vertices() * g_->num_vertices();
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] bool lazy() const noexcept { return lazy_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// Rounds in which j copied i's destination while co-located (the
  /// coupling events that distinguish this walk from two independent
  /// walks).
  [[nodiscard]] std::uint64_t copy_events() const noexcept { return copies_; }

 private:
  void refresh_product() noexcept { product_ = product_id(); }

  const Graph* g_;
  Vertex pos_i_;
  Vertex pos_j_;
  Vertex product_ = 0;  ///< cached product_id() — active()'s storage
  bool lazy_;
  std::uint64_t round_ = 0;
  std::uint64_t copies_ = 0;
};

}  // namespace cobra::core
