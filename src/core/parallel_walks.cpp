#include "core/parallel_walks.hpp"

#include <stdexcept>

namespace cobra::core {

ParallelWalks::ParallelWalks(const Graph& g, Vertex start, std::uint32_t walkers)
    : g_(&g), positions_(walkers, start) {
  if (walkers < 1) throw std::invalid_argument("ParallelWalks: walkers >= 1");
  if (start >= g.num_vertices()) {
    throw std::out_of_range("ParallelWalks: start out of range");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("ParallelWalks: graph has an isolated vertex");
  }
}

ParallelWalks::ParallelWalks(const Graph& g, std::span<const Vertex> starts)
    : g_(&g), positions_(starts.begin(), starts.end()) {
  if (positions_.empty()) throw std::invalid_argument("ParallelWalks: no walkers");
  for (const Vertex v : positions_) {
    if (v >= g.num_vertices()) {
      throw std::out_of_range("ParallelWalks: start out of range");
    }
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("ParallelWalks: graph has an isolated vertex");
  }
}

void ParallelWalks::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("ParallelWalks::reset: start out of range");
  }
  positions_.assign(positions_.size(), start);
  round_ = 0;
}

void ParallelWalks::step(Engine& gen) {
  ++round_;
  for (Vertex& p : positions_) p = random_neighbor(*g_, p, gen);
}

}  // namespace cobra::core
