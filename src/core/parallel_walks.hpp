#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

/// \file parallel_walks.hpp
/// k independent simple random walks run in lockstep — the "parallel random
/// walks" baseline of Alon et al. (SPAA'08) that §1.2 contrasts with cobra
/// walks: the walker count here is a fixed parameter, whereas a cobra
/// walk's active-set size is a random process. Walkers pass through each
/// other freely (no coalescing).

namespace cobra::core {

class ParallelWalks {
 public:
  /// `walkers` independent walks all starting at `start`.
  ParallelWalks(const Graph& g, Vertex start, std::uint32_t walkers);

  /// Walks starting from explicit (possibly repeated) positions.
  ParallelWalks(const Graph& g, std::span<const Vertex> starts);

  void reset(Vertex start);

  void step(Engine& gen);

  /// Positions of all walkers — may contain duplicates; the cover engine
  /// tolerates that (absorbing a vertex twice is a no-op).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return positions_;
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint32_t walkers() const noexcept {
    return static_cast<std::uint32_t>(positions_.size());
  }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

 private:
  const Graph* g_;
  std::vector<Vertex> positions_;
  std::uint64_t round_ = 0;
};

}  // namespace cobra::core
