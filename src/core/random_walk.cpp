#include "core/random_walk.hpp"

#include <stdexcept>

namespace cobra::core {

RandomWalk::RandomWalk(const Graph& g, Vertex start, double laziness)
    : g_(&g), position_(start), laziness_(laziness) {
  if (g.num_vertices() == 0) throw std::invalid_argument("RandomWalk: empty graph");
  if (start >= g.num_vertices()) {
    throw std::out_of_range("RandomWalk: start out of range");
  }
  if (laziness < 0.0 || laziness >= 1.0) {
    throw std::invalid_argument("RandomWalk: laziness in [0, 1)");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("RandomWalk: graph has an isolated vertex");
  }
}

void RandomWalk::reset(Vertex start) {
  if (start >= g_->num_vertices()) {
    throw std::out_of_range("RandomWalk::reset: start out of range");
  }
  position_ = start;
  round_ = 0;
}

void RandomWalk::step(Engine& gen) {
  ++round_;
  if (laziness_ > 0.0 && rng::bernoulli(gen, laziness_)) return;
  position_ = random_neighbor(*g_, position_, gen);
}

}  // namespace cobra::core
