#pragma once

#include <cstdint>
#include <span>

#include "core/types.hpp"

/// \file random_walk.hpp
/// The simple (optionally lazy) random walk — the baseline every theorem is
/// stated against. Feige's bounds put its cover time between Θ(n log n) and
/// Θ(n^3); the benches reproduce both endpoints (complete graph, lollipop).

namespace cobra::core {

class RandomWalk {
 public:
  /// A walk on `g` from `start`. `laziness` is the probability of staying
  /// put in a round (0 = standard walk, 0.5 = the usual lazy walk).
  RandomWalk(const Graph& g, Vertex start, double laziness = 0.0);

  void reset(Vertex start);

  void step(Engine& gen);

  [[nodiscard]] Vertex position() const noexcept { return position_; }

  /// Active set of size one (the walker), for the VertexProcess concept.
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return {&position_, 1};
  }

  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }
  [[nodiscard]] double laziness() const noexcept { return laziness_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

 private:
  const Graph* g_;
  Vertex position_;
  double laziness_;
  std::uint64_t round_ = 0;
};

}  // namespace cobra::core
