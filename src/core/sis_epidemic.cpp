#include "core/sis_epidemic.hpp"

namespace cobra::core {

SisEpidemic::SisEpidemic(const Graph& g, Vertex start,
                         std::uint32_t contacts_per_step)
    : walk_(g, start, contacts_per_step), ever_(g.num_vertices(), 0) {
  absorb();
  history_.push_back({0, prevalence(), last_incidence_, ever_count_});
}

void SisEpidemic::reset(Vertex start) {
  walk_.reset(start);
  ever_.assign(ever_.size(), 0);
  ever_count_ = 0;
  history_.clear();
  absorb();
  history_.push_back({0, prevalence(), last_incidence_, ever_count_});
}

void SisEpidemic::absorb() {
  last_incidence_ = 0;
  for (const Vertex v : walk_.active()) {
    if (ever_[v] == 0) {
      ever_[v] = 1;
      ++ever_count_;
      ++last_incidence_;
    }
  }
}

EpidemicRound SisEpidemic::step(Engine& gen) {
  walk_.step(gen);
  absorb();
  const EpidemicRound record{walk_.round(), prevalence(), last_incidence_,
                             ever_count_};
  history_.push_back(record);
  return record;
}

std::uint64_t SisEpidemic::run_until_all_exposed(Engine& gen,
                                                 std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!everyone_exposed() && steps < max_steps) {
    step(gen);
    ++steps;
  }
  return steps;
}

}  // namespace cobra::core
