#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/cobra_walk.hpp"
#include "core/types.hpp"

/// \file sis_epidemic.hpp
/// The disease-spread reading of a cobra walk (§1): an idealized process in
/// the SIS (Susceptible-Infected-Susceptible) family where each infected
/// agent infects k random contacts per step and immediately recovers (but
/// can be reinfected, including in the very next step). Infected set at
/// time t == the cobra walk's active set S_t.
///
/// The wrapper adds the epidemiology-facing quantities on top of CobraWalk:
/// per-round incidence (new exposures), prevalence (current infected),
/// cumulative attack rate, and extinction detection for the k=1 edge case
/// interpretation (a cobra walk never goes extinct since every active
/// vertex infects k >= 1 neighbors; "extinction" here means prevalence
/// collapsed to a single vertex, the maximal coalescence event).

namespace cobra::core {

struct EpidemicRound {
  std::uint64_t round = 0;
  std::uint32_t prevalence = 0;     ///< |S_t|: currently infected
  std::uint32_t incidence = 0;      ///< never-before-infected vertices this round
  std::uint32_t ever_infected = 0;  ///< cumulative attack count
};

class SisEpidemic {
 public:
  /// Patient zero at `start`, infecting `contacts_per_step` (the cobra k)
  /// random neighbors each round.
  SisEpidemic(const Graph& g, Vertex start, std::uint32_t contacts_per_step = 2);

  void reset(Vertex start);

  /// Advance one round and return its record.
  EpidemicRound step(Engine& gen);

  [[nodiscard]] std::span<const Vertex> infected() const noexcept {
    return walk_.active();
  }
  /// The infected set under its process name (the sim::Process contract:
  /// infected at time t == the cobra walk's active set S_t).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return walk_.active();
  }
  [[nodiscard]] std::uint32_t n() const noexcept { return walk_.n(); }
  [[nodiscard]] std::uint32_t prevalence() const noexcept {
    return static_cast<std::uint32_t>(walk_.active().size());
  }
  [[nodiscard]] std::uint32_t ever_infected() const noexcept {
    return ever_count_;
  }
  [[nodiscard]] double attack_rate() const noexcept {
    return static_cast<double>(ever_count_) /
           static_cast<double>(ever_.size());
  }
  [[nodiscard]] bool everyone_exposed() const noexcept {
    return ever_count_ == static_cast<std::uint32_t>(ever_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return walk_.round(); }
  [[nodiscard]] const std::vector<EpidemicRound>& history() const noexcept {
    return history_;
  }

  /// Run until everyone has been exposed or `max_steps` elapse; returns the
  /// number of rounds taken (== max_steps if not fully exposed).
  std::uint64_t run_until_all_exposed(Engine& gen, std::uint64_t max_steps);

 private:
  void absorb();

  CobraWalk walk_;
  std::vector<std::uint8_t> ever_;
  std::uint32_t ever_count_ = 0;
  std::uint32_t last_incidence_ = 0;
  std::vector<EpidemicRound> history_;
};

}  // namespace cobra::core
