#include "core/trajectory.hpp"

#include <algorithm>
#include <limits>

namespace cobra::core {

TrajectoryRecorder::TrajectoryRecorder(std::uint32_t num_vertices)
    : covered_(num_vertices, 0) {}

void TrajectoryRecorder::reset() {
  covered_.assign(covered_.size(), 0);
  covered_count_ = 0;
  peak_active_ = 0;
  points_.clear();
}

void TrajectoryRecorder::absorb_and_record(std::span<const Vertex> active,
                                           std::uint64_t round) {
  for (const Vertex v : active) {
    if (covered_[v] == 0) {
      covered_[v] = 1;
      ++covered_count_;
    }
  }
  const auto size = static_cast<std::uint32_t>(active.size());
  peak_active_ = std::max(peak_active_, size);
  points_.push_back({round, size, covered_count_});
}

std::uint64_t TrajectoryRecorder::round_at_coverage(double fraction) const {
  const auto needed = static_cast<std::uint32_t>(
      fraction * static_cast<double>(covered_.size()));
  for (const TrajectoryPoint& p : points_) {
    if (p.covered >= needed) return p.round;
  }
  return std::numeric_limits<std::uint64_t>::max();
}

}  // namespace cobra::core
