#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

/// \file trajectory.hpp
/// Per-round trajectory recording: active-set size and cumulative coverage
/// over time. This is the library's "figure data" — the growth curves that
/// show the two-phase behaviour the paper's §4 analysis rests on (an
/// initial exponential growth of the active set followed by a coverage
/// sweep) come straight out of these records.

namespace cobra::core {

struct TrajectoryPoint {
  std::uint64_t round = 0;
  std::uint32_t active_size = 0;
  std::uint32_t covered = 0;
};

class TrajectoryRecorder {
 public:
  explicit TrajectoryRecorder(std::uint32_t num_vertices);

  /// Record the process state at its current round. Coverage accumulates
  /// across calls; call in round order.
  template <VertexProcess P>
  void record(const P& process) {
    absorb_and_record(process.active(), process.round());
  }

  void reset();

  [[nodiscard]] const std::vector<TrajectoryPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::uint32_t covered_count() const noexcept { return covered_count_; }
  [[nodiscard]] bool complete() const noexcept {
    return covered_count_ == static_cast<std::uint32_t>(covered_.size());
  }

  /// Largest active-set size seen so far.
  [[nodiscard]] std::uint32_t peak_active() const noexcept { return peak_active_; }

  /// First round at which coverage reached `fraction` (or UINT64_MAX).
  [[nodiscard]] std::uint64_t round_at_coverage(double fraction) const;

 private:
  void absorb_and_record(std::span<const Vertex> active, std::uint64_t round);

  std::vector<std::uint8_t> covered_;
  std::uint32_t covered_count_ = 0;
  std::uint32_t peak_active_ = 0;
  std::vector<TrajectoryPoint> points_;
};

}  // namespace cobra::core
