#pragma once

#include <concepts>
#include <cstdint>
#include <span>

#include "graph/graph.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

/// \file types.hpp
/// Shared aliases and the process concept for the core simulators.
///
/// All processes use one concrete engine type (`Engine` = xoshiro256++).
/// Fixing the engine keeps the simulators out-of-line (fast builds, stable
/// ABI) without virtual dispatch in the per-step hot path; cross-RNG
/// validation happens at the statistical level (tests re-run key results
/// under PCG through the generic samplers).

namespace cobra::core {

using Engine = rng::Xoshiro256;
using graph::Graph;
using graph::Vertex;

/// Uniformly random neighbor of `v` — THE primitive operation of every
/// walk in this library. Precondition: degree(v) >= 1.
[[nodiscard]] inline Vertex random_neighbor(const Graph& g, Vertex v, Engine& gen) {
  const auto nbrs = g.neighbors(v);
  return nbrs[static_cast<std::size_t>(rng::uniform_below(gen, nbrs.size()))];
}

/// A discrete-time vertex process: after construction/reset it has an
/// active set; step(gen) advances one round. Cover/hitting engines are
/// written against this concept.
template <typename P>
concept VertexProcess = requires(P p, const P cp, Engine& gen) {
  { p.step(gen) } -> std::same_as<void>;
  { cp.active() } -> std::convertible_to<std::span<const Vertex>>;
  { cp.round() } -> std::convertible_to<std::uint64_t>;
};

}  // namespace cobra::core
