#include "core/walt.hpp"

#include <stdexcept>

namespace cobra::core {

Walt::Walt(const Graph& g, Vertex start, std::uint32_t pebbles, bool lazy)
    : Walt(g, std::vector<Vertex>(pebbles, start), lazy) {}

Walt::Walt(const Graph& g, std::span<const Vertex> starts, bool lazy)
    : g_(&g),
      lazy_(lazy),
      positions_(starts.begin(), starts.end()),
      stamp_(g.num_vertices(), 0),
      arrivals_(g.num_vertices(), 0),
      dest0_(g.num_vertices(), 0),
      dest1_(g.num_vertices(), 0) {
  if (positions_.empty()) throw std::invalid_argument("Walt: needs >= 1 pebble");
  if (g.num_vertices() == 0) throw std::invalid_argument("Walt: empty graph");
  if (g.min_degree() == 0) {
    throw std::invalid_argument("Walt: graph has an isolated vertex");
  }
  for (const Vertex v : positions_) {
    if (v >= g.num_vertices()) throw std::out_of_range("Walt: start out of range");
  }
  occupied_.reserve(positions_.size());
  rebuild_occupied();
}

void Walt::reset(Vertex start) {
  positions_.assign(positions_.size(), start);
  round_ = 0;
  lazy_skips_ = 0;
  rebuild_occupied();
}

void Walt::reset(std::span<const Vertex> starts) {
  if (starts.size() != positions_.size()) {
    throw std::invalid_argument("Walt::reset: pebble count is fixed");
  }
  for (const Vertex v : starts) {
    if (v >= g_->num_vertices()) {
      throw std::out_of_range("Walt::reset: start out of range");
    }
  }
  positions_.assign(starts.begin(), starts.end());
  round_ = 0;
  lazy_skips_ = 0;
  rebuild_occupied();
}

// Epoch-stamp wrap audit: Walt advances the epoch twice per step (the move
// pass and rebuild_occupied), so a 32-bit wrap arrives after 2^31 steps;
// both advances wipe the stamp array on wrap, which keeps stale stamps from
// aliasing the fresh epoch (the bug class the FrontierEngine centralizes
// for the frontier processes — Walt keeps its own stamps because it also
// uses them for per-round arrival slots, not just membership dedup).
void Walt::rebuild_occupied() {
  occupied_.clear();
  if (++epoch_ == 0) {
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 1;
  }
  for (const Vertex v : positions_) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      occupied_.push_back(v);
    }
  }
}

void Walt::step(Engine& gen) {
  ++round_;
  if (lazy_ && rng::coin_flip(gen)) {
    ++lazy_skips_;
    return;  // whole configuration freezes this round
  }

  // One pass over pebbles in id order (ids are the total order). For each
  // source vertex we record how many pebbles have been processed there this
  // round and the destinations of the first two; pebble #3+ flips a fair
  // coin between those two destinations (rule 2).
  if (++epoch_ == 0) {
    stamp_.assign(stamp_.size(), 0);
    epoch_ = 1;
  }
  const std::uint32_t move_epoch = epoch_;
  for (Vertex& pos : positions_) {
    const Vertex v = pos;
    if (stamp_[v] != move_epoch) {
      stamp_[v] = move_epoch;
      arrivals_[v] = 0;
    }
    const std::uint32_t slot = arrivals_[v]++;
    if (slot == 0) {
      dest0_[v] = random_neighbor(*g_, v, gen);
      pos = dest0_[v];
    } else if (slot == 1) {
      dest1_[v] = random_neighbor(*g_, v, gen);
      pos = dest1_[v];
    } else {
      pos = rng::coin_flip(gen) ? dest0_[v] : dest1_[v];
    }
  }
  // Note on rule 1 vs rule 2: with exactly two pebbles at v the behaviour
  // of both rules coincides (each of the first two movers is independent),
  // so the single pass needs no occupancy pre-count.
  rebuild_occupied();
}

}  // namespace cobra::core
