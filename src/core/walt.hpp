#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

/// \file walt.hpp
/// The "Walt" process of §4 — the analyzable surrogate whose cover time
/// stochastically dominates the 2-cobra walk's (Lemma 10). A fixed
/// population of totally-ordered pebbles moves per these rules each round:
///
///   1. If one or two pebbles occupy a vertex, each independently moves to
///      a uniformly random neighbor.
///   2. If three or more pebbles occupy a vertex, the two LOWEST-order
///      pebbles each pick an independent uniform neighbor (destinations u
///      and w, possibly equal); every remaining pebble at the vertex moves
///      to u or w with probability 1/2 each.
///
/// Optionally the process is lazy: with probability 1/2 the entire
/// configuration freezes for the round (the paper adds this for the
/// spectral analysis of the tensor-product walk).
///
/// The implementation processes pebbles in id order (ids ARE the total
/// order), using per-round stamped per-vertex slots to find each vertex's
/// first two movers without sorting.

namespace cobra::core {

class Walt {
 public:
  /// `pebbles` pebbles all starting at `start`. The paper takes
  /// pebbles = δn, δ <= 1/2 (Theorem 8 starts them at one vertex).
  Walt(const Graph& g, Vertex start, std::uint32_t pebbles, bool lazy = true);

  /// Pebbles at explicit starting positions; pebble i starts at starts[i]
  /// and has order rank i.
  Walt(const Graph& g, std::span<const Vertex> starts, bool lazy = true);

  void reset(Vertex start);
  void reset(std::span<const Vertex> starts);

  void step(Engine& gen);

  /// Distinct occupied vertices this round (unordered).
  [[nodiscard]] std::span<const Vertex> active() const noexcept {
    return occupied_;
  }

  /// Position of every pebble, indexed by pebble id (= order rank).
  [[nodiscard]] std::span<const Vertex> pebbles() const noexcept {
    return positions_;
  }

  [[nodiscard]] std::uint32_t pebble_count() const noexcept {
    return static_cast<std::uint32_t>(positions_.size());
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  [[nodiscard]] bool lazy() const noexcept { return lazy_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *g_; }

  /// State-space size (the sim::Process contract).
  [[nodiscard]] std::uint32_t n() const noexcept { return g_->num_vertices(); }

  /// Number of rounds skipped by laziness since the last reset.
  [[nodiscard]] std::uint64_t lazy_skips() const noexcept { return lazy_skips_; }

 private:
  void rebuild_occupied();

  const Graph* g_;
  bool lazy_;
  std::vector<Vertex> positions_;   ///< pebble id -> vertex
  std::vector<Vertex> occupied_;    ///< distinct occupied vertices
  // Per-round scratch, stamped by epoch to avoid O(n) clears:
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> arrivals_;  ///< pebbles seen at v this round
  std::vector<Vertex> dest0_;            ///< first mover's destination
  std::vector<Vertex> dest1_;            ///< second mover's destination
  std::uint32_t epoch_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t lazy_skips_ = 0;
};

}  // namespace cobra::core
