#include "gen/constraints.hpp"

#include <algorithm>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::gen {

ClauseSystem random_ksat(std::uint32_t num_vars, std::uint32_t num_clauses,
                         std::uint32_t k, std::uint64_t seed) {
  if (num_vars == 0) {
    throw std::invalid_argument("random_ksat: num_vars must be >= 1");
  }
  if (k == 0 || k > num_vars) {
    throw std::invalid_argument("random_ksat: need 1 <= k <= num_vars");
  }
  ClauseSystem sys;
  sys.num_vars = num_vars;
  sys.offsets.reserve(num_clauses + 1);
  sys.vars.reserve(static_cast<std::size_t>(num_clauses) * k);
  sys.negated.reserve(static_cast<std::size_t>(num_clauses) * k);
  std::vector<std::uint32_t> clause(k);
  for (std::uint32_t c = 0; c < num_clauses; ++c) {
    // Per-clause stream, so the system is a pure function of (parameters,
    // seed) with no cross-clause draw-order coupling.
    rng::Xoshiro256 gen(rng::derive_seed(seed, c));
    // k distinct variables by rejection — k is tiny (3 in practice), so
    // the quadratic duplicate scan beats any set machinery.
    std::size_t filled = 0;
    while (filled < k) {
      const auto x =
          static_cast<std::uint32_t>(rng::uniform_below(gen, num_vars));
      bool duplicate = false;
      for (std::size_t i = 0; i < filled; ++i) {
        duplicate |= clause[i] == x;
      }
      if (!duplicate) clause[filled++] = x;
    }
    std::sort(clause.begin(), clause.end());
    for (const std::uint32_t x : clause) {
      sys.vars.push_back(x);
      sys.negated.push_back(rng::coin_flip(gen) ? std::uint8_t{1}
                                                : std::uint8_t{0});
    }
    sys.offsets.push_back(static_cast<std::uint32_t>(sys.vars.size()));
  }
  return sys;
}

graph::Graph dependency_graph(const ClauseSystem& sys) {
  const std::uint32_t m = sys.num_clauses();
  // Invert to var -> clause incidence, then emit every within-variable
  // clause pair; simplify() merges clauses sharing several variables into
  // one edge (and drops the self-pairings that never arise here).
  std::vector<std::vector<std::uint32_t>> incidence(sys.num_vars);
  for (std::uint32_t c = 0; c < m; ++c) {
    for (const std::uint32_t x : sys.clause_vars(c)) {
      incidence[x].push_back(c);
    }
  }
  graph::GraphBuilder builder(m);
  for (const auto& clauses : incidence) {
    for (std::size_t i = 0; i < clauses.size(); ++i) {
      for (std::size_t j = i + 1; j < clauses.size(); ++j) {
        if (clauses[i] != clauses[j]) builder.add_edge(clauses[i], clauses[j]);
      }
    }
  }
  builder.simplify();
  return builder.build();
}

}  // namespace cobra::gen
