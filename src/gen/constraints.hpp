#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

/// \file constraints.hpp
/// k-SAT-style constraint systems for the Lovász Local Lemma resampling
/// process (core::LLLResampler). A ClauseSystem is a CSR-packed set of
/// clauses over boolean variables; each clause is a BAD EVENT that holds
/// (is violated) exactly when every one of its literals is false. The
/// Moser–Tardos algorithm walks the violated-clause set, resampling the
/// variables of violated clauses until none remain — its expected
/// resampling count is bounded whenever the system satisfies the LLL
/// condition (Moser & Tardos, JACM 2010; Harris & Srinivasan's partial
/// resampling sharpens the dependency accounting).
///
/// `dependency_graph` builds the clause-adjacency graph (clauses adjacent
/// iff they share a variable) through graph::GraphBuilder — that graph is
/// the state space the resampler's FrontierEngine chunks, and its
/// neighborhoods are exactly the "clauses whose status a resampling can
/// touch" sets.

namespace cobra::gen {

/// A conjunction of fixed-width-free clauses over `num_vars` boolean
/// variables, CSR-packed: clause c's literals are
/// (vars[offsets[c]..offsets[c+1]), negated[same range]). A literal with
/// negated == 0 is satisfied by assignment true; negated == 1 by false.
struct ClauseSystem {
  std::uint32_t num_vars = 0;
  std::vector<std::uint32_t> offsets{0};  ///< clause boundaries, size m + 1
  std::vector<std::uint32_t> vars;
  std::vector<std::uint8_t> negated;

  [[nodiscard]] std::uint32_t num_clauses() const noexcept {
    return static_cast<std::uint32_t>(offsets.size() - 1);
  }

  [[nodiscard]] std::span<const std::uint32_t> clause_vars(
      std::uint32_t c) const noexcept {
    return std::span<const std::uint32_t>(vars).subspan(
        offsets[c], offsets[c + 1] - offsets[c]);
  }

  [[nodiscard]] std::span<const std::uint8_t> clause_signs(
      std::uint32_t c) const noexcept {
    return std::span<const std::uint8_t>(negated).subspan(
        offsets[c], offsets[c + 1] - offsets[c]);
  }

  /// Is clause c satisfied under `assignment` (one 0/1 byte per variable)?
  [[nodiscard]] bool satisfied(std::uint32_t c,
                               std::span<const std::uint8_t> assignment) const {
    const auto xs = clause_vars(c);
    const auto signs = clause_signs(c);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (assignment[xs[i]] != signs[i]) return true;  // one true literal
    }
    return false;
  }

  /// Violated-clause count under `assignment` — the resampler's progress
  /// measure (O(total literals)).
  [[nodiscard]] std::uint32_t count_violated(
      std::span<const std::uint8_t> assignment) const {
    std::uint32_t violated = 0;
    for (std::uint32_t c = 0; c < num_clauses(); ++c) {
      violated += satisfied(c, assignment) ? 0u : 1u;
    }
    return violated;
  }
};

/// A uniformly random k-SAT system: `num_clauses` clauses, each over k
/// DISTINCT variables drawn uniformly with uniformly random polarities.
/// Clause c is a pure function of derive_seed(seed, c), so the system is
/// reproducible and thread-count-free like every gen:: family. Requires
/// 1 <= k <= num_vars and num_vars >= 1; throws std::invalid_argument
/// otherwise. Densities m/n well below the k-SAT LLL threshold (2^k /
/// (e * k) clauses per variable's neighborhood) keep the resampler's
/// round count logarithmic — the benches sweep m/n = 1.5 at k = 3.
[[nodiscard]] ClauseSystem random_ksat(std::uint32_t num_vars,
                                       std::uint32_t num_clauses,
                                       std::uint32_t k, std::uint64_t seed);

/// The clause dependency graph: one vertex per clause, an edge between two
/// distinct clauses iff they share a variable (duplicate pairs merged via
/// GraphBuilder::simplify). Isolated clauses are fine — they resample
/// alone.
[[nodiscard]] graph::Graph dependency_graph(const ClauseSystem& sys);

}  // namespace cobra::gen
