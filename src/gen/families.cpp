#include "gen/families.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parallel/monte_carlo.hpp"
#include "parallel/parallel_for.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::gen {

namespace {

using graph::EdgeIndex;
using graph::Graph;
using graph::Vertex;
using Edge = std::pair<Vertex, Vertex>;
using ChunkEngine = rng::Xoshiro256;

// Fixed chunk-granularity constants. These are part of the determinism
// contract (they fix the RNG-stream-to-work assignment), NOT tuning knobs:
// changing one changes the graph a given seed produces.
constexpr std::uint64_t kGnpEdgesPerChunk = 1u << 16;
constexpr std::uint64_t kGnpMaxChunks = 1u << 16;
constexpr std::uint64_t kGnmEdgesPerChunk = 1u << 16;
constexpr std::uint64_t kRmatEdgesPerChunk = 1u << 16;
constexpr std::uint64_t kWsVerticesPerChunk = 1u << 14;
constexpr std::uint64_t kBaEdgesPerChunk = 1u << 16;
constexpr std::uint64_t kGeoPointsPerChunk = 1u << 16;
constexpr std::uint64_t kGeoScanVerticesPerChunk = 1u << 14;

/// Run body(c) for every chunk, across the pool when one is usable. The
/// parallel and serial paths produce identical side effects because each
/// chunk writes only its own buffer/slice.
template <typename Body>
void run_chunks(const GenOptions& opts, std::size_t n_chunks, Body&& body) {
  par::ThreadPool* pool = nullptr;
  if (!opts.serial && n_chunks > 1) {
    pool = opts.pool != nullptr ? opts.pool : &par::global_pool();
    if (pool->size() <= 1 || pool->on_worker_thread()) pool = nullptr;
  }
  if (pool == nullptr) {
    for (std::size_t c = 0; c < n_chunks; ++c) body(c);
    return;
  }
  par::parallel_for_dynamic(*pool, 0, n_chunks, body);
}

/// Concatenate per-chunk edge buffers in chunk order and compile into CSR
/// (counting sort, then per-vertex adjacency sort — parallelized over
/// vertex ranges, which is safe because each vertex's sorted list is
/// independent of who sorts it). With `simplify`, self-loops and duplicate
/// undirected edges are removed first (canonicalize + sort + unique, a
/// deterministic function of the edge multiset).
Graph assemble(std::uint32_t n, std::vector<std::vector<Edge>>& chunks,
               bool simplify, const GenOptions& opts) {
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  std::vector<Edge> edges;
  edges.reserve(total);
  for (auto& chunk : chunks) {
    edges.insert(edges.end(), chunk.begin(), chunk.end());
    std::vector<Edge>().swap(chunk);
  }

  if (simplify) {
    std::erase_if(edges, [](const Edge& e) { return e.first == e.second; });
    for (auto& [u, v] : edges) {
      if (u > v) std::swap(u, v);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++offsets[static_cast<std::size_t>(u) + 1];
    ++offsets[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<Vertex> targets(offsets.back());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    targets[cursor[u]++] = v;
    targets[cursor[v]++] = u;
  }
  std::vector<Edge>().swap(edges);

  const std::size_t sort_chunks =
      (static_cast<std::size_t>(n) + kWsVerticesPerChunk - 1) /
      kWsVerticesPerChunk;
  run_chunks(opts, std::max<std::size_t>(sort_chunks, 1), [&](std::size_t c) {
    const std::size_t lo = c * kWsVerticesPerChunk;
    const std::size_t hi =
        std::min<std::size_t>(n, lo + kWsVerticesPerChunk);
    for (std::size_t v = lo; v < hi; ++v) {
      std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
                targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
    }
  });

  return Graph(n, std::move(offsets), std::move(targets));
}

/// Row of linear pair index t: the unique r >= 1 with
/// r(r-1)/2 <= t < r(r+1)/2. The double sqrt is a guess (its rounding
/// error at t ~ 2^60 is far below 1 after the division); the loops settle
/// the exact value.
std::uint64_t pair_row(std::uint64_t t) {
  auto r = static_cast<std::uint64_t>(
      (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(t))) / 2.0);
  if (r < 1) r = 1;
  while (r * (r - 1) / 2 > t) --r;
  while (r * (r + 1) / 2 <= t) ++r;
  return r;
}

/// Evenly split [0, total) into n_chunks ranges; boundary of chunk c.
std::uint64_t range_start(std::uint64_t total, std::uint64_t n_chunks,
                          std::uint64_t c) {
  __extension__ using u128 = unsigned __int128;
  return static_cast<std::uint64_t>(static_cast<u128>(total) * c / n_chunks);
}

}  // namespace

Graph gnp(std::uint32_t n, double p, std::uint64_t seed,
          const GenOptions& opts) {
  if (!(p >= 0.0) || p > 1.0) {
    throw std::invalid_argument("gnp: p in [0, 1]");
  }
  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(n) * (n > 0 ? n - 1 : 0) / 2;
  if (p <= 0.0 || total_pairs == 0) {
    std::vector<std::vector<Edge>> none;
    return assemble(n, none, false, opts);
  }

  const double expected_edges = static_cast<double>(total_pairs) * p;
  const auto n_chunks = static_cast<std::uint64_t>(std::clamp(
      std::ceil(expected_edges / static_cast<double>(kGnpEdgesPerChunk)), 1.0,
      static_cast<double>(kGnpMaxChunks)));

  std::vector<std::vector<Edge>> chunks(n_chunks);
  const double log_q = std::log1p(-p);  // -inf when p == 1
  run_chunks(opts, n_chunks, [&](std::size_t c) {
    const std::uint64_t s0 = range_start(total_pairs, n_chunks, c);
    const std::uint64_t s1 = range_start(total_pairs, n_chunks, c + 1);
    auto& out = chunks[c];
    out.reserve(static_cast<std::size_t>(
        expected_edges / static_cast<double>(n_chunks) * 1.2) + 16);
    auto emit = [&](std::uint64_t t) {
      const std::uint64_t r = pair_row(t);
      out.emplace_back(static_cast<Vertex>(r),
                       static_cast<Vertex>(t - r * (r - 1) / 2));
    };
    if (p >= 1.0) {
      for (std::uint64_t t = s0; t < s1; ++t) emit(t);
      return;
    }
    // Batagelj–Brandes geometric skipping over this chunk's pair range.
    ChunkEngine eng(rng::derive_seed(seed, c));
    std::uint64_t t = s0;
    for (;;) {
      const double u = rng::uniform_unit(eng);
      const double skip = std::floor(std::log1p(-u) / log_q);
      if (t >= s1 || skip >= static_cast<double>(s1 - t)) break;
      t += static_cast<std::uint64_t>(skip);
      emit(t);
      ++t;
    }
  });
  return assemble(n, chunks, false, opts);
}

Graph gnm(std::uint32_t n, std::uint64_t m, std::uint64_t seed,
          const GenOptions& opts) {
  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(n) * (n > 0 ? n - 1 : 0) / 2;
  if (m > total_pairs) {
    throw std::invalid_argument("gnm: m exceeds n*(n-1)/2");
  }
  if (m == 0) {
    std::vector<std::vector<Edge>> none;
    return assemble(n, none, false, opts);
  }

  // Keyed 4-round Feistel over 2*half_bits >= ceil(log2(total_pairs))
  // bits, cycle-walked into [0, total_pairs): a pseudorandom PERMUTATION
  // of the pair space, so slots 0..m-1 name m distinct pairs and every
  // slot resolves from hashes alone — the same property that makes ba's
  // copy model chunkable. The walk revisits the domain within the
  // permutation cycle of its seed value, so it terminates; the domain is
  // under 4x the pair count, so the expected walk length is < 4.
  const int half_bits = std::max(
      1, (static_cast<int>(std::bit_width(total_pairs - 1)) + 1) / 2);
  const std::uint64_t half_mask = (1ULL << half_bits) - 1;
  std::array<std::uint64_t, 4> round_key{};
  for (std::size_t r = 0; r < round_key.size(); ++r) {
    round_key[r] = rng::derive_seed(seed, 0xFE157E1ULL + r);
  }
  const auto permute = [&](std::uint64_t slot) {
    std::uint64_t x = slot;
    do {
      std::uint64_t left = x >> half_bits;
      std::uint64_t right = x & half_mask;
      for (const std::uint64_t key : round_key) {
        const std::uint64_t f = rng::splitmix64_mix(key ^ right) & half_mask;
        const std::uint64_t swapped = right;
        right = left ^ f;
        left = swapped;
      }
      x = (left << half_bits) | right;
    } while (x >= total_pairs);
    return x;
  };

  const std::uint64_t n_chunks =
      std::max<std::uint64_t>(1, (m + kGnmEdgesPerChunk - 1) /
                                     kGnmEdgesPerChunk);
  std::vector<std::vector<Edge>> chunks(n_chunks);
  run_chunks(opts, n_chunks, [&](std::size_t c) {
    const std::uint64_t lo = range_start(m, n_chunks, c);
    const std::uint64_t hi = range_start(m, n_chunks, c + 1);
    auto& out = chunks[c];
    out.reserve(static_cast<std::size_t>(hi - lo));
    for (std::uint64_t slot = lo; slot < hi; ++slot) {
      const std::uint64_t t = permute(slot);
      const std::uint64_t r = pair_row(t);
      out.emplace_back(static_cast<Vertex>(r),
                       static_cast<Vertex>(t - r * (r - 1) / 2));
    }
  });
  return assemble(n, chunks, false, opts);
}

Graph rmat(std::uint32_t levels, std::uint64_t num_edges, double a, double b,
           double c, std::uint64_t seed, const GenOptions& opts) {
  if (levels < 1 || levels > 31) {
    throw std::invalid_argument("rmat: 1 <= levels <= 31");
  }
  if (a < 0.0 || b < 0.0 || c < 0.0 || a + b + c > 1.0 + 1e-12) {
    throw std::invalid_argument("rmat: need a, b, c >= 0 and a + b + c <= 1");
  }
  const std::uint32_t n = 1u << levels;
  const std::uint64_t n_chunks =
      std::max<std::uint64_t>(1, (num_edges + kRmatEdgesPerChunk - 1) /
                                     kRmatEdgesPerChunk);
  const double t_ab = a + b;
  const double t_abc = a + b + c;

  std::vector<std::vector<Edge>> chunks(n_chunks);
  run_chunks(opts, n_chunks, [&](std::size_t chunk) {
    const std::uint64_t lo = range_start(num_edges, n_chunks, chunk);
    const std::uint64_t hi = range_start(num_edges, n_chunks, chunk + 1);
    ChunkEngine eng(rng::derive_seed(seed, chunk));
    auto& out = chunks[chunk];
    out.reserve(static_cast<std::size_t>(hi - lo));
    for (std::uint64_t e = lo; e < hi; ++e) {
      std::uint32_t row = 0, col = 0;
      for (std::uint32_t level = 0; level < levels; ++level) {
        const double u = rng::uniform_unit(eng);
        // Quadrant thresholds a | b | c | d; d = 1 - a - b - c.
        const std::uint32_t down = u >= t_ab ? 1u : 0u;
        const std::uint32_t right = (u >= a && u < t_ab) || u >= t_abc ? 1u : 0u;
        row = (row << 1) | down;
        col = (col << 1) | right;
      }
      out.emplace_back(static_cast<Vertex>(row), static_cast<Vertex>(col));
    }
  });
  return assemble(n, chunks, true, opts);
}

Graph watts_strogatz(std::uint32_t n, std::uint32_t k, double beta,
                     std::uint64_t seed, const GenOptions& opts) {
  if (n < 3) throw std::invalid_argument("watts_strogatz: n >= 3");
  if (k < 2 || k % 2 != 0 || k >= n) {
    throw std::invalid_argument("watts_strogatz: k even, 2 <= k < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("watts_strogatz: beta in [0, 1]");
  }
  const std::uint32_t half_k = k / 2;
  const std::uint64_t n_chunks =
      std::max<std::uint64_t>(1, (n + kWsVerticesPerChunk - 1) /
                                     kWsVerticesPerChunk);
  std::vector<std::vector<Edge>> chunks(n_chunks);
  run_chunks(opts, n_chunks, [&](std::size_t c) {
    const std::uint64_t lo = static_cast<std::uint64_t>(c) *
                             kWsVerticesPerChunk;
    const std::uint64_t hi =
        std::min<std::uint64_t>(n, lo + kWsVerticesPerChunk);
    ChunkEngine eng(rng::derive_seed(seed, c));
    auto& out = chunks[c];
    out.reserve(static_cast<std::size_t>((hi - lo) * half_k));
    for (std::uint64_t u = lo; u < hi; ++u) {
      // Each vertex owns its half_k forward lattice edges, so every lattice
      // edge has exactly one owner and one rewiring decision.
      for (std::uint32_t j = 1; j <= half_k; ++j) {
        Vertex target = static_cast<Vertex>((u + j) % n);
        if (beta > 0.0 && rng::bernoulli(eng, beta)) {
          auto w = static_cast<Vertex>(rng::uniform_below(eng, n - 1));
          if (w >= u) ++w;  // uniform over all non-self endpoints
          target = w;
        }
        out.emplace_back(static_cast<Vertex>(u), target);
      }
    }
  });
  return assemble(n, chunks, true, opts);
}

Graph barabasi_albert(std::uint32_t n, std::uint32_t d, std::uint64_t seed,
                      const GenOptions& opts) {
  if (d < 1) throw std::invalid_argument("barabasi_albert: d >= 1");
  if (n < 2) throw std::invalid_argument("barabasi_albert: n >= 2");
  const std::uint64_t num_edges = static_cast<std::uint64_t>(n) * d;
  const std::uint64_t n_chunks =
      std::max<std::uint64_t>(1, (num_edges + kBaEdgesPerChunk - 1) /
                                     kBaEdgesPerChunk);

  // draw(j): the uniformly random earlier position edge j's target copies.
  // A pure hash of (seed, j), so any edge resolves without global state —
  // this is what makes the copy-model chunkable.
  const auto draw = [seed](std::uint64_t j) {
    rng::SplitMix64 sm(rng::derive_seed(seed, j));
    return rng::uniform_below(sm, 2 * j + 1);
  };
  std::vector<std::vector<Edge>> chunks(n_chunks);
  run_chunks(opts, n_chunks, [&](std::size_t chunk) {
    const std::uint64_t lo = range_start(num_edges, n_chunks, chunk);
    const std::uint64_t hi = range_start(num_edges, n_chunks, chunk + 1);
    auto& out = chunks[chunk];
    out.reserve(static_cast<std::size_t>(hi - lo));
    for (std::uint64_t e = lo; e < hi; ++e) {
      // Chase target slots (odd positions) until landing on a source slot
      // (even position 2j holds vertex j/d). Position indices strictly
      // decrease, so the chase terminates; expected length is O(1).
      std::uint64_t pos = draw(e);
      while (pos % 2 != 0) pos = draw(pos / 2);
      out.emplace_back(static_cast<Vertex>(e / d),
                       static_cast<Vertex>(pos / 2 / d));
    }
  });
  return assemble(n, chunks, true, opts);
}

Graph random_regular(std::uint32_t n, std::uint32_t d, std::uint64_t seed,
                     const GenOptions& opts, std::uint32_t max_passes) {
  if (d >= n) throw std::invalid_argument("random_regular: d < n");
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  const std::uint64_t num_stubs = static_cast<std::uint64_t>(n) * d;

  // Uniform stub permutation by sorting hashed keys: key generation is
  // chunk-parallel (a pure per-index hash), the sort is serial but
  // deterministic, and ties (astronomically unlikely) break by index.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> keyed(num_stubs);
  const std::uint64_t key_chunks =
      std::max<std::uint64_t>(1, (num_stubs + kBaEdgesPerChunk - 1) /
                                     kBaEdgesPerChunk);
  run_chunks(opts, key_chunks, [&](std::size_t c) {
    const std::uint64_t lo = range_start(num_stubs, key_chunks, c);
    const std::uint64_t hi = range_start(num_stubs, key_chunks, c + 1);
    for (std::uint64_t i = lo; i < hi; ++i) {
      keyed[i] = {rng::derive_seed(seed, i), i};
    }
  });
  std::sort(keyed.begin(), keyed.end());

  const std::size_t num_edges = num_stubs / 2;
  std::vector<Edge> edges(num_edges);
  std::set<Edge> present;
  std::vector<char> bad(num_edges, 0);
  auto canonical = [](Vertex a, Vertex b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  };
  std::vector<std::size_t> defective;
  for (std::size_t i = 0; i < num_edges; ++i) {
    edges[i] = {static_cast<Vertex>(keyed[2 * i].second / d),
                static_cast<Vertex>(keyed[2 * i + 1].second / d)};
    const auto [a, b] = edges[i];
    if (a == b || !present.insert(canonical(a, b)).second) {
      bad[i] = 1;
      defective.push_back(i);
    }
  }

  // Edge-swap repair: defective (u,v) + random clean (x,y) -> (u,x) +
  // (v,y), accepted when both results are loop-free and new. A raw
  // uniform stub pairing contains Θ(d^2) self-loops and parallel edges in
  // expectation, so retry-until-simple is hopeless beyond small d; the
  // double-swap preserves the degree sequence exactly and (by the
  // standard switching argument) leaves the distribution asymptotically
  // uniform over simple d-regular graphs. Serial by design — its work is
  // O(defects), and a serial pass with a derived seed keeps the result a
  // pure function of (n, d, seed).
  ChunkEngine repair_eng(rng::derive_seed(~seed, 0x5e9a1));
  for (std::uint32_t pass = 0; pass < max_passes && !defective.empty();
       ++pass) {
    std::vector<std::size_t> still_bad;
    for (const std::size_t i : defective) {
      const auto [u, v] = edges[i];
      const auto j =
          static_cast<std::size_t>(rng::uniform_below(repair_eng, num_edges));
      const auto [x, y] = edges[j];
      if (j == i || bad[j] != 0 || u == x || v == y ||
          canonical(u, x) == canonical(v, y) ||
          present.contains(canonical(u, x)) ||
          present.contains(canonical(v, y))) {
        still_bad.push_back(i);
        continue;
      }
      present.erase(canonical(x, y));
      present.insert(canonical(u, x));
      present.insert(canonical(v, y));
      edges[i] = {u, x};
      edges[j] = {v, y};
      bad[i] = 0;
    }
    defective.swap(still_bad);
  }
  if (!defective.empty()) {
    throw std::runtime_error(
        "random_regular: repair failed; degree too large for n?");
  }

  std::vector<std::vector<Edge>> chunks(1);
  chunks[0] = std::move(edges);
  return assemble(n, chunks, false, opts);
}

Graph random_geometric(std::uint32_t n, double radius, std::uint64_t seed,
                       const GenOptions& opts) {
  if (radius <= 0.0 || radius > 1.5) {
    throw std::invalid_argument("random_geometric: radius in (0, 1.5]");
  }
  std::vector<double> xs(n), ys(n);
  const std::uint64_t point_chunks =
      std::max<std::uint64_t>(1, (n + kGeoPointsPerChunk - 1) /
                                     kGeoPointsPerChunk);
  run_chunks(opts, point_chunks, [&](std::size_t c) {
    const std::uint64_t lo = static_cast<std::uint64_t>(c) *
                             kGeoPointsPerChunk;
    const std::uint64_t hi = std::min<std::uint64_t>(n, lo + kGeoPointsPerChunk);
    ChunkEngine eng(rng::derive_seed(seed, c));
    for (std::uint64_t i = lo; i < hi; ++i) {
      xs[i] = rng::uniform_unit(eng);
      ys[i] = rng::uniform_unit(eng);
    }
  });

  // Cell grid of side >= radius: only the 3x3 cell neighborhood of a point
  // can contain neighbors. Bucket fill is serial (by vertex id, so bucket
  // order is deterministic); the edge scan is chunk-parallel.
  const auto cells_per_axis =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(1.0 / radius));
  const double cell_width = 1.0 / cells_per_axis;
  std::vector<std::vector<Vertex>> cells(
      static_cast<std::size_t>(cells_per_axis) * cells_per_axis);
  auto cell_of = [&](std::uint32_t i) {
    auto cx = static_cast<std::uint32_t>(xs[i] / cell_width);
    auto cy = static_cast<std::uint32_t>(ys[i] / cell_width);
    cx = std::min(cx, cells_per_axis - 1);
    cy = std::min(cy, cells_per_axis - 1);
    return std::pair{cx, cy};
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto [cx, cy] = cell_of(i);
    cells[static_cast<std::size_t>(cy) * cells_per_axis + cx].push_back(i);
  }

  const double r2 = radius * radius;
  const std::uint64_t scan_chunks =
      std::max<std::uint64_t>(1, (n + kGeoScanVerticesPerChunk - 1) /
                                     kGeoScanVerticesPerChunk);
  std::vector<std::vector<Edge>> chunks(scan_chunks);
  run_chunks(opts, scan_chunks, [&](std::size_t c) {
    const std::uint64_t lo = static_cast<std::uint64_t>(c) *
                             kGeoScanVerticesPerChunk;
    const std::uint64_t hi =
        std::min<std::uint64_t>(n, lo + kGeoScanVerticesPerChunk);
    auto& out = chunks[c];
    for (std::uint64_t i = lo; i < hi; ++i) {
      const auto iv = static_cast<std::uint32_t>(i);
      const auto [cx, cy] = cell_of(iv);
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
          const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
          if (nx < 0 || ny < 0 || nx >= cells_per_axis ||
              ny >= cells_per_axis) {
            continue;
          }
          for (const Vertex j :
               cells[static_cast<std::size_t>(ny) * cells_per_axis +
                     static_cast<std::size_t>(nx)]) {
            if (j <= iv) continue;  // emit each pair once
            const double ddx = xs[i] - xs[j];
            const double ddy = ys[i] - ys[j];
            if (ddx * ddx + ddy * ddy <= r2) out.emplace_back(iv, j);
          }
        }
      }
    }
  });
  return assemble(n, chunks, false, opts);
}

}  // namespace cobra::gen
