#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"

/// \file families.hpp
/// Chunk-parallel, thread-count-invariant graph generators. Each generator
/// is a pure function of (parameters, seed): the work is split into chunks
/// of FIXED size (a compile-time constant per family, never derived from
/// the pool), chunk c draws from an engine seeded rng::derive_seed(seed, c)
/// into its own edge buffer, and buffers are concatenated in chunk order.
/// Thread count only decides which worker runs which chunk, so the emitted
/// edge list — and therefore the assembled CSR — is bit-identical across
/// 1, 2, ... N threads and identical to the in-line serial path. This is
/// the same determinism contract as core::FrontierEngine, applied to
/// KaGen-style graph generation.
///
/// The chunk-size constants are part of that contract: changing one changes
/// the graphs a given seed produces (a new RNG-to-work assignment), so they
/// are fixed here rather than exposed as knobs.
///
/// Families:
///   * gnp  — Erdős–Rényi G(n, p) via per-chunk Batagelj–Brandes geometric
///            edge skipping over a fixed partition of the pair space
///   * gnm  — Erdős–Rényi G(n, m) with an EXACT edge count: edge slot i
///            takes the pair whose linear index is perm(i) under a keyed
///            Feistel permutation of the pair space, so the m distinct
///            pairs resolve independently per slot (pure hash, no
///            rejection set, no serial state)
///   * rmat — recursive-matrix (Chakrabarti–Zhan–Faloutsos) edge sampling,
///            chunked over the edge index space
///   * ws   — Watts–Strogatz ring lattice with probabilistic rewiring,
///            chunked over vertices (each vertex owns its forward edges)
///   * ba   — Barabási–Albert preferential attachment via the chunked
///            copy-model (Sanders–Schulz): each edge slot's random choice is
///            a pure hash of (seed, slot), so any slot resolves independently
///   * rreg — random d-regular configuration model; the stub permutation is
///            sort-by-hashed-key (keys generated chunk-parallel), followed
///            by the serial edge-swap repair pass
///   * geo  — random geometric graph; points chunk-parallel, neighbor search
///            grid-bucketed, edge scan chunked over vertices

namespace cobra::gen {

/// Execution knobs. These affect SPEED only, never the generated graph.
struct GenOptions {
  /// Pool to spread chunks over; nullptr means par::global_pool().
  par::ThreadPool* pool = nullptr;
  /// Force the in-line serial path (never touches any pool — useful for
  /// tests and for callers generating from inside a pool worker).
  bool serial = false;
};

/// G(n, p). Each of the C(n,2) pairs appears independently with
/// probability p. p is clamped to [0, 1]; p = 1 yields the complete graph.
/// Simple by construction; not necessarily connected.
[[nodiscard]] graph::Graph gnp(std::uint32_t n, double p, std::uint64_t seed,
                               const GenOptions& opts = {});

/// G(n, m): a uniformly random simple graph with EXACTLY m edges, drawn as
/// the first m slots of a keyed pseudorandom permutation (4-round Feistel
/// with cycle-walking) of the C(n,2) pair space. Each edge is a pure
/// function of (seed, slot), so generation chunks over slots with no
/// dedup or rejection bookkeeping. Requires m <= n*(n-1)/2. Simple by
/// construction; not necessarily connected.
[[nodiscard]] graph::Graph gnm(std::uint32_t n, std::uint64_t m,
                               std::uint64_t seed, const GenOptions& opts = {});

/// R-MAT with `num_edges` undirected edge draws over 2^levels vertices and
/// quadrant probabilities (a, b, c, 1-a-b-c). Edges are canonicalized to
/// undirected form; self-loops and duplicates are removed, so the realized
/// edge count is slightly below num_edges. Requires 1 <= levels <= 31 and
/// a, b, c >= 0 with a + b + c <= 1.
[[nodiscard]] graph::Graph rmat(std::uint32_t levels, std::uint64_t num_edges,
                                double a, double b, double c,
                                std::uint64_t seed,
                                const GenOptions& opts = {});

/// Watts–Strogatz: ring lattice on n vertices, each joined to its k nearest
/// neighbors (k even, k < n), then every lattice edge is rewired with
/// probability beta to a uniform random non-self endpoint. Duplicates
/// created by rewiring are removed, so degrees are k in expectation but not
/// exactly. Requires n >= 3, k even, 2 <= k < n, beta in [0, 1].
[[nodiscard]] graph::Graph watts_strogatz(std::uint32_t n, std::uint32_t k,
                                          double beta, std::uint64_t seed,
                                          const GenOptions& opts = {});

/// Barabási–Albert via the chunked copy-model: edge e of vertex v = e/d
/// attaches to the endpoint occupying a uniformly random earlier position
/// of the conceptual edge array — equivalent to degree-proportional
/// attachment, and resolvable per-edge from hashes alone. The first
/// vertex's own edges are self-loops by construction and are removed, so
/// vertex 0's degree comes entirely from later attachments; the graph is
/// connected w.h.p. for d >= 2 but not guaranteed (pair with lcc).
/// Requires d >= 1, n >= 2.
[[nodiscard]] graph::Graph barabasi_albert(std::uint32_t n, std::uint32_t d,
                                           std::uint64_t seed,
                                           const GenOptions& opts = {});

/// Random d-regular simple graph: configuration-model pairing through a
/// sort-by-hashed-key stub permutation, then serial edge-swap repair (up
/// to `max_passes` passes). Requires n*d even, d < n; throws
/// std::runtime_error when repair fails (d too large for n).
/// graph::make_random_regular is a thin wrapper over this.
[[nodiscard]] graph::Graph random_regular(std::uint32_t n, std::uint32_t d,
                                          std::uint64_t seed,
                                          const GenOptions& opts = {},
                                          std::uint32_t max_passes = 200);

/// Random geometric graph: n points uniform in the unit square, edges at
/// Euclidean distance <= radius, found by grid-bucketed neighbor search in
/// O(n + m) expected. Requires radius in (0, 1.5].
[[nodiscard]] graph::Graph random_geometric(std::uint32_t n, double radius,
                                            std::uint64_t seed,
                                            const GenOptions& opts = {});

}  // namespace cobra::gen
