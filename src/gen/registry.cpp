#include "gen/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "rng/xoshiro256.hpp"
#include "util/fault.hpp"

namespace cobra::gen {

namespace {

using graph::Graph;

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("GraphSpec: " + message);
}

std::uint32_t as_u32(std::uint64_t value, const char* what) {
  if (value > 0xFFFFFFFFull) {
    fail(std::string(what) + " exceeds 2^32 - 1");
  }
  return static_cast<std::uint32_t>(value);
}

/// n for families whose size key is "n", failing when absent.
std::uint32_t spec_n(const GraphSpec& spec) {
  return as_u32(spec.require_uint("n"), "n");
}

std::uint64_t default_seed(const GraphSpec& spec) {
  return spec.get_uint("seed", 1);
}

/// Serial engine for the legacy (non-chunked) randomized generators wrapped
/// into the registry; seeded from the spec so the one-path contract holds.
rng::Xoshiro256 spec_engine(const GraphSpec& spec) {
  return rng::Xoshiro256(default_seed(spec));
}

std::uint32_t side_from_spec(const GraphSpec& spec, std::uint32_t dims) {
  if (spec.has("side")) return as_u32(spec.require_uint("side"), "side");
  // n sugar: the largest side with side^dims <= n (min 2), matching the
  // tree family's "largest complete tree <= n" semantics — never more
  // vertices than asked for.
  const std::uint64_t n = spec.require_uint("n");
  auto fits = [&](std::uint64_t side) {
    std::uint64_t volume = 1;
    for (std::uint32_t d = 0; d < dims; ++d) {
      if (volume > n / side) return false;
      volume *= side;
    }
    return volume <= n;
  };
  auto side = static_cast<std::uint64_t>(
      std::pow(static_cast<double>(n), 1.0 / dims));
  side = std::max<std::uint64_t>(side, 2);
  while (side > 2 && !fits(side)) --side;
  while (fits(side + 1)) ++side;
  return as_u32(side, "side");
}

Graph build_gnp(const GraphSpec& spec, const GenOptions& opts) {
  const std::uint32_t n = spec_n(spec);
  if (spec.has("p") == spec.has("avg_deg")) {
    fail("gnp needs exactly one of p=, avg_deg=");
  }
  const double p = spec.has("p")
                       ? spec.require_double("p")
                       : (n > 1 ? spec.require_double("avg_deg") / (n - 1) : 0.0);
  return gnp(n, p, default_seed(spec), opts);
}

Graph build_gnm(const GraphSpec& spec, const GenOptions& opts) {
  const std::uint32_t n = spec_n(spec);
  if (spec.has("m") == spec.has("avg_deg")) {
    fail("gnm needs exactly one of m=, avg_deg=");
  }
  const std::uint64_t m =
      spec.has("m") ? spec.require_uint("m")
                    : static_cast<std::uint64_t>(std::llround(
                          spec.require_double("avg_deg") * n / 2.0));
  return gnm(n, m, default_seed(spec), opts);
}

Graph build_rmat(const GraphSpec& spec, const GenOptions& opts) {
  const std::uint64_t requested_n = spec.require_uint("n");
  if (requested_n < 2) fail("rmat: n >= 2");
  std::uint32_t levels = 1;
  while ((1ull << levels) < requested_n && levels < 31) ++levels;
  if ((1ull << levels) < requested_n) fail("rmat: n exceeds 2^31");
  const std::uint64_t n = 1ull << levels;
  if (spec.has("deg") == spec.has("m")) {
    fail("rmat needs exactly one of deg=, m=");
  }
  const std::uint64_t m =
      spec.has("m") ? spec.require_uint("m")
                    : n * spec.require_uint("deg") / 2;
  // Graph500 defaults.
  const double a = spec.get_double("a", 0.57);
  const double b = spec.get_double("b", 0.19);
  const double c = spec.get_double("c", 0.19);
  return rmat(levels, m, a, b, c, default_seed(spec), opts);
}

Graph build_ws(const GraphSpec& spec, const GenOptions& opts) {
  return watts_strogatz(spec_n(spec), as_u32(spec.require_uint("k"), "k"),
                        spec.require_double("beta"), default_seed(spec), opts);
}

Graph build_ba(const GraphSpec& spec, const GenOptions& opts) {
  return barabasi_albert(spec_n(spec), as_u32(spec.require_uint("d"), "d"),
                         default_seed(spec), opts);
}

Graph build_rreg(const GraphSpec& spec, const GenOptions& opts) {
  return random_regular(spec_n(spec), as_u32(spec.require_uint("d"), "d"),
                        default_seed(spec), opts);
}

Graph build_geo(const GraphSpec& spec, const GenOptions& opts) {
  const std::uint32_t n = spec_n(spec);
  if (spec.has("radius") == spec.has("avg_deg")) {
    fail("geo needs exactly one of radius=, avg_deg=");
  }
  const double radius =
      spec.has("radius")
          ? spec.require_double("radius")
          : std::sqrt(spec.require_double("avg_deg") /
                      (3.14159265358979323846 * std::max(1u, n)));
  return random_geometric(n, radius, default_seed(spec), opts);
}

Graph build_chunglu(const GraphSpec& spec, const GenOptions&) {
  auto eng = spec_engine(spec);
  return graph::make_chung_lu_power_law(eng, spec_n(spec),
                                        spec.get_double("gamma", 2.5),
                                        spec.get_double("min_deg", 2.0));
}

Graph build_grid(const GraphSpec& spec, const GenOptions&, bool torus) {
  const auto dims = as_u32(spec.get_uint("dims", 2), "dims");
  if (dims < 1) fail("grid: dims >= 1");
  return graph::make_grid(dims, side_from_spec(spec, dims), torus);
}

Graph build_tree(const GraphSpec& spec, const GenOptions&) {
  const auto arity = as_u32(spec.get_uint("arity", 2), "arity");
  if (arity < 1) fail("tree: arity >= 1");
  std::uint32_t levels;
  if (spec.has("levels")) {
    levels = as_u32(spec.require_uint("levels"), "levels");
  } else {
    // Largest complete tree with <= n vertices.
    const std::uint64_t n = spec.require_uint("n");
    std::uint64_t total = 1, layer = 1;
    levels = 1;
    while (total + layer * arity <= n) {
      layer *= arity;
      total += layer;
      ++levels;
    }
  }
  return graph::make_kary_tree(arity, levels);
}

std::pair<std::uint32_t, std::uint32_t> clique_path_from_spec(
    const GraphSpec& spec) {
  if (spec.has("clique")) {
    return {as_u32(spec.require_uint("clique"), "clique"),
            as_u32(spec.get_uint("path", 0), "path")};
  }
  const auto n = as_u32(spec.require_uint("n"), "n");
  return {2 * n / 3, n / 3};  // the standard RW worst-case split
}

const std::vector<FamilyInfo>& registry() {
  static const std::vector<FamilyInfo> kFamilies = [] {
    std::vector<FamilyInfo> fams;
    const std::vector<std::string> rand_keys = {"seed", "lcc"};
    auto add = [&](FamilyInfo info, bool randomized) {
      if (randomized) {
        info.keys.insert(info.keys.end(), rand_keys.begin(), rand_keys.end());
      }
      fams.push_back(std::move(info));
    };

    add({"gnp", "gnp:n=<N>,{p=<P>|avg_deg=<D>}",
         "Erdos-Renyi G(n, p); chunk-parallel geometric edge skipping",
         {"n", "p", "avg_deg"},
         build_gnp},
        true);
    add({"gnm", "gnm:n=<N>,{m=<M>|avg_deg=<D>}",
         "Erdos-Renyi G(n, m), exactly m edges; Feistel-permuted pairs",
         {"n", "m", "avg_deg"},
         build_gnm},
        true);
    add({"rmat", "rmat:n=<N>,{deg=<D>|m=<M>}[,a=.57,b=.19,c=.19]",
         "R-MAT power-law digraph made undirected; n rounds up to 2^k",
         {"n", "deg", "m", "a", "b", "c"},
         build_rmat},
        true);
    add({"ws", "ws:n=<N>,k=<K>,beta=<B>",
         "Watts-Strogatz ring lattice (k even) with rewiring prob beta",
         {"n", "k", "beta"},
         build_ws},
        true);
    add({"ba", "ba:n=<N>,d=<D>",
         "Barabasi-Albert preferential attachment (chunked copy-model)",
         {"n", "d"},
         build_ba},
        true);
    add({"rreg", "rreg:n=<N>,d=<D>",
         "random d-regular simple graph (configuration model + repair)",
         {"n", "d"},
         build_rreg},
        true);
    add({"geo", "geo:n=<N>,{radius=<R>|avg_deg=<D>}",
         "random geometric graph in the unit square, grid-bucketed",
         {"n", "radius", "avg_deg"},
         build_geo},
        true);
    add({"chunglu", "chunglu:n=<N>[,gamma=2.5,min_deg=2]",
         "Chung-Lu expected power-law degrees (serial skip sampling)",
         {"n", "gamma", "min_deg"},
         build_chunglu},
        true);

    add({"ring", "ring:n=<N>", "cycle C_n",
         {"n"},
         [](const GraphSpec& s, const GenOptions&) {
           return graph::make_cycle(spec_n(s));
         }},
        false);
    add({"path", "path:n=<N>", "path P_n",
         {"n"},
         [](const GraphSpec& s, const GenOptions&) {
           return graph::make_path(spec_n(s));
         }},
        false);
    add({"complete", "complete:n=<N>", "complete graph K_n",
         {"n"},
         [](const GraphSpec& s, const GenOptions&) {
           return graph::make_complete(spec_n(s));
         }},
        false);
    add({"star", "star:n=<N>", "star S_n (vertex 0 is the hub)",
         {"n"},
         [](const GraphSpec& s, const GenOptions&) {
           return graph::make_star(spec_n(s));
         }},
        false);
    add({"grid", "grid:{side=<S>|n=<N>}[,dims=2][,torus=<0|1>]",
         "dims-dimensional grid, side points per axis; torus wraps",
         {"side", "n", "dims", "torus"},
         [](const GraphSpec& s, const GenOptions& o) {
           return build_grid(s, o, s.get_bool("torus", false));
         }},
        false);
    add({"torus", "torus:{side=<S>|n=<N>}[,dims=2]",
         "grid with every axis wrapped (2*dims-regular)",
         {"side", "n", "dims"},
         [](const GraphSpec& s, const GenOptions& o) {
           return build_grid(s, o, true);
         }},
        false);
    add({"hypercube", "hypercube:dims=<D>", "hypercube Q_d on 2^d vertices",
         {"dims"},
         [](const GraphSpec& s, const GenOptions&) {
           return graph::make_hypercube(as_u32(s.require_uint("dims"), "dims"));
         }},
        false);
    add({"tree", "tree:{levels=<L>|n=<N>}[,arity=2]",
         "complete arity-ary tree (vertex 0 is the root)",
         {"levels", "n", "arity"},
         build_tree},
        false);
    add({"lollipop", "lollipop:{n=<N>|clique=<C>[,path=<P>]}",
         "clique + hanging path (RW's Theta(n^3) witness at 2n/3 + n/3)",
         {"n", "clique", "path"},
         [](const GraphSpec& s, const GenOptions&) {
           const auto [clique, path] = clique_path_from_spec(s);
           return graph::make_lollipop(clique, path);
         }},
        false);
    add({"barbell", "barbell:{n=<N>|clique=<C>[,path=<P>]}",
         "two cliques joined by a path (n sugar: cliques n/3, path n/3)",
         {"n", "clique", "path"},
         [](const GraphSpec& s, const GenOptions&) {
           if (s.has("clique")) {
             return graph::make_barbell(
                 as_u32(s.require_uint("clique"), "clique"),
                 as_u32(s.get_uint("path", 0), "path"));
           }
           const auto n = as_u32(s.require_uint("n"), "n");
           return graph::make_barbell(n / 3, n / 3);
         }},
        false);
    add({"dclique", "dclique:{n=<N>|clique=<C>}",
         "two cliques sharing one cut vertex (low-conductance stress case)",
         {"n", "clique"},
         [](const GraphSpec& s, const GenOptions&) {
           const auto clique =
               s.has("clique") ? as_u32(s.require_uint("clique"), "clique")
                               : (as_u32(s.require_uint("n"), "n") + 1) / 2;
           return graph::make_double_clique(clique);
         }},
        false);

    std::sort(fams.begin(), fams.end(),
              [](const FamilyInfo& a, const FamilyInfo& b) {
                return a.name < b.name;
              });
    return fams;
  }();
  return kFamilies;
}

}  // namespace

const std::vector<FamilyInfo>& families() { return registry(); }

const FamilyInfo* find_family(std::string_view name) {
  for (const FamilyInfo& info : registry()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

Graph build_graph(const GraphSpec& spec, const GenOptions& opts) {
  const FamilyInfo* info = find_family(spec.family());
  if (info == nullptr) {
    fail("unknown family '" + spec.family() + "' (known: " + [] {
      std::string names;
      for (const FamilyInfo& f : registry()) {
        if (!names.empty()) names += ", ";
        names += f.name;
      }
      return names;
    }() + ")");
  }
  for (const auto& [key, value] : spec.params()) {
    if (std::find(info->keys.begin(), info->keys.end(), key) ==
        info->keys.end()) {
      std::string allowed;
      for (const std::string& k : info->keys) {
        if (!allowed.empty()) allowed += ", ";
        allowed += k;
      }
      fail("family '" + info->name + "' does not accept key '" + key +
           "' (allowed: " + allowed + ")");
    }
  }
  // Fault site `gen.alloc` (HARD): the family's CSR allocation fails.
  // Surfaces as std::bad_alloc exactly where a real OOM on a too-large
  // spec would — callers must fail loudly, never hand back a torso graph.
  if (util::fault::should_fail("gen.alloc")) throw std::bad_alloc();
  Graph g = [&] {
#if COBRA_OBS_LEVEL >= 1
    // Per-family build time ("gen.build.rreg", ...) plus a global count —
    // by-name lookup is fine here, graph construction dwarfs it.
    obs::ScopedTimer timed(obs::registry().timer("gen.build." + info->name));
    obs::count("gen.graphs_built");
#endif
    Graph built = info->factory(spec, opts);
    // Fault site `gen.build_graph` (HARD): the build dies mid-pipeline,
    // after the factory but before lcc/validate — the half-built graph
    // must be unwound, not returned.
    if (util::fault::should_fail("gen.build_graph")) {
      throw std::runtime_error(
          "build_graph('" + spec.family() +
          "'): injected fault at site gen.build_graph");
    }
    if (spec.get_bool("lcc", false)) {
      built = graph::largest_component(built).graph;
    }
    return built;
  }();
  // Post-build CSR audit (Graph::validate): on in debug builds, and
  // opt-in anywhere via COBRA_VALIDATE_GRAPH=1 — a generator bug that
  // emits an asymmetric CSR corrupts statistics silently, so the paranoid
  // lanes pay the O(m) check and release benches don't.
#ifdef NDEBUG
  const char* check = std::getenv("COBRA_VALIDATE_GRAPH");
  const bool audit = check != nullptr && *check != '\0' && *check != '0';
#else
  const bool audit = true;
#endif
  if (audit) {
    std::string why;
    if (!g.validate(&why)) {
      throw std::logic_error("build_graph('" + spec.family() +
                             "'): generator produced an invalid CSR: " + why);
    }
  }
  return g;
}

Graph build_graph(std::string_view spec_text, const GenOptions& opts) {
  return build_graph(GraphSpec::parse(spec_text), opts);
}

std::string grammar_help() {
  std::size_t width = 0;
  for (const FamilyInfo& info : registry()) {
    width = std::max(width, info.synopsis.size());
  }
  std::string out;
  for (const FamilyInfo& info : registry()) {
    out += "  " + info.synopsis;
    out.append(width - info.synopsis.size() + 2, ' ');
    out += info.description + "\n";
  }
  out +=
      "  shared keys on randomized families: seed=<S> (default 1), lcc=<0|1>\n"
      "  numbers accept 123, 2^20, and 1e6 spellings\n";
  return out;
}

}  // namespace cobra::gen
