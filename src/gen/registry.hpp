#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "gen/families.hpp"
#include "gen/spec.hpp"
#include "graph/graph.hpp"

/// \file registry.hpp
/// The GraphSpec registry: maps family names to generator factories and
/// validates spec keys against each family's declared key set (typos in
/// sweep scripts fail loudly, mirroring io::Args). This is the ONE path
/// through which benches, examples, and test fixtures construct graphs —
/// `build_graph("rreg:n=2^20,d=4,seed=7")` replaces per-binary hand-rolled
/// construction.
///
/// Shared keys, accepted by every randomized family:
///   seed=<S>   base RNG seed (default 1); the graph is a pure function of
///              (spec, seed), bit-identical across thread counts
///   lcc=<0|1>  keep only the largest connected component (default 0) —
///              walks need min degree >= 1, and sub-critical G(n,p) /
///              geometric / copy-model BA graphs are not always connected

namespace cobra::gen {

struct FamilyInfo {
  std::string name;
  /// One-line usage synopsis for --help output and the docs grammar table,
  /// e.g. "gnp:n=<N>,{p=<P>|avg_deg=<D>}".
  std::string synopsis;
  std::string description;
  /// Every key the family accepts (specs using others are rejected).
  std::vector<std::string> keys;
  std::function<graph::Graph(const GraphSpec&, const GenOptions&)> factory;
};

/// All registered families, sorted by name.
[[nodiscard]] const std::vector<FamilyInfo>& families();

/// Look up one family; nullptr when unknown.
[[nodiscard]] const FamilyInfo* find_family(std::string_view name);

/// Build the graph a spec names. Throws std::invalid_argument on an
/// unknown family, an unknown key, or invalid parameter values.
[[nodiscard]] graph::Graph build_graph(const GraphSpec& spec,
                                       const GenOptions& opts = {});
[[nodiscard]] graph::Graph build_graph(std::string_view spec_text,
                                       const GenOptions& opts = {});

/// The grammar table as aligned text lines (for --help and error output).
[[nodiscard]] std::string grammar_help();

}  // namespace cobra::gen
