#include "gen/spec.hpp"

#include <cctype>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cobra::gen {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("GraphSpec: " + message);
}

bool is_identifier(std::string_view text) {
  if (text.empty()) return false;
  if (std::isalpha(static_cast<unsigned char>(text[0])) == 0 && text[0] != '_') {
    return false;
  }
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

}  // namespace

GraphSpec GraphSpec::parse(std::string_view text) {
  GraphSpec spec;
  const auto colon = text.find(':');
  const std::string_view family =
      colon == std::string_view::npos ? text : text.substr(0, colon);
  if (!is_identifier(family)) {
    fail("bad family name '" + std::string(family) + "' in '" +
         std::string(text) + "'");
  }
  spec.family_ = std::string(family);
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  if (rest.empty()) fail("trailing ':' with no parameters in '" +
                         std::string(text) + "'");
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) {
      fail("parameter '" + std::string(pair) + "' is not key=value");
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (!is_identifier(key)) fail("bad key '" + std::string(key) + "'");
    if (value.empty()) fail("empty value for key '" + std::string(key) + "'");
    if (spec.has(key)) fail("duplicate key '" + std::string(key) + "'");
    spec.params_.emplace_back(std::string(key), std::string(value));
  }
  return spec;
}

std::string GraphSpec::to_string() const {
  std::string out = family_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params_[i].first;
    out += '=';
    out += params_[i].second;
  }
  return out;
}

const std::string* GraphSpec::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : params_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool GraphSpec::has(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

std::uint64_t GraphSpec::parse_uint(std::string_view value,
                                    std::string_view context) {
  const std::string text(value);
  const std::string where = "value '" + text + "' for '" +
                            std::string(context) + "'";
  // 2^k power form.
  const auto caret = text.find('^');
  if (caret != std::string::npos) {
    if (text.substr(0, caret) != "2") fail(where + ": only 2^k powers");
    std::size_t used = 0;
    unsigned long exp = 0;
    try {
      exp = std::stoul(text.substr(caret + 1), &used);
    } catch (const std::exception&) {
      fail(where + ": bad exponent");
    }
    if (used != text.size() - caret - 1) fail(where + ": bad exponent");
    if (exp > 63) fail(where + ": exponent too large");
    return 1ULL << exp;
  }
  // Scientific / decimal form: accepted when it is an exact integer.
  if (text.find_first_of("eE.") != std::string::npos) {
    const double d = parse_double(value, context);
    if (d < 0.0 || d > 9.007199254740992e15 || std::floor(d) != d) {
      fail(where + ": not a non-negative integer");
    }
    return static_cast<std::uint64_t>(d);
  }
  std::size_t used = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(text, &used);
  } catch (const std::exception&) {
    fail(where + ": not an integer");
  }
  if (used != text.size()) fail(where + ": trailing junk");
  if (!text.empty() && text[0] == '-') fail(where + ": must be non-negative");
  return parsed;
}

double GraphSpec::parse_double(std::string_view value,
                               std::string_view context) {
  const std::string text(value);
  const std::string where = "value '" + text + "' for '" +
                            std::string(context) + "'";
  if (text.find('^') != std::string::npos) {
    return static_cast<double>(parse_uint(value, context));
  }
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(text, &used);
  } catch (const std::exception&) {
    fail(where + ": not a number");
  }
  if (used != text.size()) fail(where + ": trailing junk");
  if (!std::isfinite(parsed)) fail(where + ": not finite");
  return parsed;
}

std::uint64_t GraphSpec::get_uint(std::string_view key,
                                  std::uint64_t fallback) const {
  const std::string* value = find(key);
  return value == nullptr ? fallback : parse_uint(*value, key);
}

std::uint64_t GraphSpec::require_uint(std::string_view key) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    fail("family '" + family_ + "' requires key '" + std::string(key) + "'");
  }
  return parse_uint(*value, key);
}

double GraphSpec::get_double(std::string_view key, double fallback) const {
  const std::string* value = find(key);
  return value == nullptr ? fallback : parse_double(*value, key);
}

double GraphSpec::require_double(std::string_view key) const {
  const std::string* value = find(key);
  if (value == nullptr) {
    fail("family '" + family_ + "' requires key '" + std::string(key) + "'");
  }
  return parse_double(*value, key);
}

bool GraphSpec::get_bool(std::string_view key, bool fallback) const {
  const std::string* value = find(key);
  if (value == nullptr) return fallback;
  if (*value == "1" || *value == "true" || *value == "yes") return true;
  if (*value == "0" || *value == "false" || *value == "no") return false;
  fail("value '" + *value + "' for '" + std::string(key) +
       "': not a boolean");
}

}  // namespace cobra::gen
