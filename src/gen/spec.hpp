#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file spec.hpp
/// The GraphSpec grammar — one string names one graph:
///
///   spec   := family [ ":" pair ( "," pair )* ]
///   pair   := key "=" value
///   family := [A-Za-z_][A-Za-z0-9_]*          (same charset for keys)
///   value  := any characters up to the next "," (never empty)
///
/// Numeric values accept three spellings, so specs read like the paper's
/// parameterizations: plain integers ("1048576"), power-of-two exponents
/// ("2^20"), and scientific notation ("1e6", accepted for integer keys only
/// when integral). Examples:
///
///   "rmat:n=2^20,deg=16,seed=7"
///   "gnp:n=1e6,avg_deg=8"
///   "ws:n=4096,k=6,beta=0.1"
///
/// GraphSpec is the *syntax* layer only: it parses, round-trips, and offers
/// typed getters. Which families exist and which keys each accepts is the
/// registry's job (registry.hpp) — that split keeps "is this a well-formed
/// spec" testable without dragging in every generator.

namespace cobra::gen {

class GraphSpec {
 public:
  /// Parse `text`. Throws std::invalid_argument on an empty family, a pair
  /// without "=", an empty key/value, a bad identifier, or a duplicate key.
  [[nodiscard]] static GraphSpec parse(std::string_view text);

  /// Canonical text form; parse(to_string()) reproduces this spec exactly
  /// (keys keep their original order and raw value spelling).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] const std::string& family() const noexcept { return family_; }

  [[nodiscard]] bool has(std::string_view key) const noexcept;

  /// Typed getters. The `get_*` forms return `fallback` when the key is
  /// absent; the `require_*` forms throw std::invalid_argument instead.
  /// All throw std::invalid_argument when the value does not parse.
  [[nodiscard]] std::uint64_t get_uint(std::string_view key,
                                       std::uint64_t fallback) const;
  [[nodiscard]] std::uint64_t require_uint(std::string_view key) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] double require_double(std::string_view key) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Raw key/value pairs in spec order (registry validation, tests).
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& params()
      const noexcept {
    return params_;
  }

  /// Parse one numeric value under the spec number grammar (exposed so the
  /// grammar itself is unit-testable): "123", "2^20", "1e6", "0.25".
  /// `context` names the key in error messages.
  [[nodiscard]] static std::uint64_t parse_uint(std::string_view value,
                                                std::string_view context);
  [[nodiscard]] static double parse_double(std::string_view value,
                                           std::string_view context);

 private:
  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;

  std::string family_;
  std::vector<std::pair<std::string, std::string>> params_;
};

}  // namespace cobra::gen
