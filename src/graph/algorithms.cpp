#include "graph/algorithms.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

namespace cobra::graph {

namespace {

/// Shared BFS core filling distances and optionally parents.
void bfs_core(const Graph& g, Vertex source, std::vector<std::uint32_t>& dist,
              std::vector<Vertex>* parents) {
  if (source >= g.num_vertices()) {
    throw std::out_of_range("bfs: source out of range");
  }
  dist.assign(g.num_vertices(), kUnreachable);
  if (parents != nullptr) parents->assign(g.num_vertices(), kUnreachable);

  std::vector<Vertex> frontier{source};
  std::vector<Vertex> next;
  dist[source] = 0;
  if (parents != nullptr) (*parents)[source] = source;

  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const Vertex v : frontier) {
      for (const Vertex u : g.neighbors(v)) {
        if (dist[u] == kUnreachable) {
          dist[u] = level;
          if (parents != nullptr) (*parents)[u] = v;
          next.push_back(u);
        }
      }
    }
    frontier.swap(next);
  }
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  std::vector<std::uint32_t> dist;
  bfs_core(g, source, dist, nullptr);
  return dist;
}

std::vector<Vertex> bfs_parents(const Graph& g, Vertex source) {
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> parents;
  bfs_core(g, source, dist, &parents);
  return parents;
}

std::vector<Vertex> shortest_path(const Graph& g, Vertex source, Vertex target) {
  const auto parents = bfs_parents(g, source);
  if (target >= g.num_vertices() || parents[target] == kUnreachable) return {};
  std::vector<Vertex> path{target};
  Vertex cur = target;
  while (cur != source) {
    cur = parents[cur];
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::vector<std::uint32_t> connected_components(const Graph& g) {
  std::vector<std::uint32_t> component(g.num_vertices(), kUnreachable);
  std::uint32_t next_id = 0;
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    if (component[start] != kUnreachable) continue;
    component[start] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const Vertex u : g.neighbors(v)) {
        if (component[u] == kUnreachable) {
          component[u] = next_id;
          stack.push_back(u);
        }
      }
    }
    ++next_id;
  }
  return component;
}

std::uint32_t num_components(const Graph& g) {
  const auto component = connected_components(g);
  std::uint32_t count = 0;
  for (const std::uint32_t c : component) count = std::max(count, c + 1);
  return g.num_vertices() == 0 ? 0 : count;
}

ComponentExtraction largest_component(const Graph& g) {
  const auto component = connected_components(g);
  std::uint32_t count = 0;
  for (const std::uint32_t c : component) count = std::max(count, c + 1);

  std::vector<std::uint32_t> sizes(count, 0);
  for (const std::uint32_t c : component) ++sizes[c];
  const std::uint32_t biggest = static_cast<std::uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  ComponentExtraction out;
  out.old_to_new.assign(g.num_vertices(), kUnreachable);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (component[v] == biggest) {
      out.old_to_new[v] = static_cast<Vertex>(out.new_to_old.size());
      out.new_to_old.push_back(v);
    }
  }
  GraphBuilder b(static_cast<std::uint32_t>(out.new_to_old.size()));
  for (const Vertex v : out.new_to_old) {
    std::uint32_t self_arcs = 0;
    for (const Vertex u : g.neighbors(v)) {
      if (u == v) {
        ++self_arcs;  // each self-loop is stored as two arcs
      } else if (u > v && component[u] == biggest) {
        b.add_edge(out.old_to_new[v], out.old_to_new[u]);
      }
    }
    for (std::uint32_t loop = 0; loop < self_arcs / 2; ++loop) {
      b.add_edge(out.old_to_new[v], out.old_to_new[v]);
    }
  }
  out.graph = b.build();
  return out;
}

std::uint32_t eccentricity(const Graph& g, Vertex v) {
  const auto dist = bfs_distances(g, v);
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t exact_diameter(const Graph& g) {
  std::uint32_t diameter = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t ecc = eccentricity(g, v);
    if (ecc == kUnreachable) return kUnreachable;
    diameter = std::max(diameter, ecc);
  }
  return diameter;
}

std::uint32_t double_sweep_diameter_lb(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  const auto dist0 = bfs_distances(g, 0);
  Vertex far = 0;
  std::uint32_t best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist0[v] != kUnreachable && dist0[v] > best) {
      best = dist0[v];
      far = v;
    }
  }
  // Second sweep from the farthest vertex; ignore unreachable vertices so
  // the heuristic still returns the component-local diameter bound.
  const auto dist1 = bfs_distances(g, far);
  std::uint32_t lb = 0;
  for (const std::uint32_t d : dist1) {
    if (d != kUnreachable) lb = std::max(lb, d);
  }
  return lb;
}

std::uint64_t path_degree_sum(const Graph& g, const std::vector<Vertex>& path) {
  std::uint64_t total = 0;
  for (const Vertex v : path) total += g.degree(v);
  return total;
}

}  // namespace cobra::graph
