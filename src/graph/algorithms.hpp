#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file algorithms.hpp
/// Deterministic graph algorithms supporting the experiments: BFS distances
/// feed the biased-walk controller (§5) and diameter normalization (E9);
/// connectivity guards every randomized generator; component extraction
/// cleans up sub-critical Erdős–Rényi / geometric graphs.

namespace cobra::graph {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFFu;

/// BFS hop distances from `source` (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       Vertex source);

/// BFS parent pointers from `source`; parent[source] = source, parent of an
/// unreached vertex = kUnreachable. Follows the lowest-id shortest path.
[[nodiscard]] std::vector<Vertex> bfs_parents(const Graph& g, Vertex source);

/// One shortest path from `source` to `target` (inclusive); empty when
/// unreachable.
[[nodiscard]] std::vector<Vertex> shortest_path(const Graph& g, Vertex source,
                                                Vertex target);

[[nodiscard]] bool is_connected(const Graph& g);

/// Component id per vertex (ids are dense, 0-based, in order of discovery).
[[nodiscard]] std::vector<std::uint32_t> connected_components(const Graph& g);

/// Number of connected components.
[[nodiscard]] std::uint32_t num_components(const Graph& g);

/// The subgraph induced by the largest connected component, along with the
/// mapping old-vertex -> new-vertex (kUnreachable for dropped vertices).
struct ComponentExtraction {
  Graph graph;
  std::vector<Vertex> old_to_new;
  std::vector<Vertex> new_to_old;
};
[[nodiscard]] ComponentExtraction largest_component(const Graph& g);

/// Eccentricity of `v` (max BFS distance; kUnreachable if g disconnected).
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, Vertex v);

/// Exact diameter via BFS from every vertex — O(n m), for n up to ~10^4.
[[nodiscard]] std::uint32_t exact_diameter(const Graph& g);

/// Lower bound on the diameter by the double-sweep heuristic (two BFS
/// passes); exact on trees, usually tight in practice, O(m).
[[nodiscard]] std::uint32_t double_sweep_diameter_lb(const Graph& g);

/// Sum of degrees along a path of vertices (the quantity bounded by 3n in
/// Lemma 19's shortest-path argument).
[[nodiscard]] std::uint64_t path_degree_sum(const Graph& g,
                                            const std::vector<Vertex>& path);

}  // namespace cobra::graph
