#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace cobra::graph {

GraphBuilder::GraphBuilder(std::uint32_t num_vertices) : n_(num_vertices) {}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u >= n_ || v >= n_) {
    throw std::invalid_argument("GraphBuilder: endpoint out of range");
  }
  edges_.emplace_back(u, v);
}

void GraphBuilder::reserve(std::size_t num_edges) { edges_.reserve(num_edges); }

std::size_t GraphBuilder::simplify() {
  const std::size_t before = edges_.size();
  // Canonicalize each edge as (min, max), drop loops, sort, unique.
  std::erase_if(edges_, [](const auto& e) { return e.first == e.second; });
  for (auto& [u, v] : edges_) {
    if (u > v) std::swap(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return before - edges_.size();
}

Graph GraphBuilder::build() const {
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n_) + 1, 0);

  // Counting pass: each endpoint gains one arc; self-loops gain two.
  for (const auto& [u, v] : edges_) {
    ++offsets[static_cast<std::size_t>(u) + 1];
    ++offsets[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<Vertex> targets(offsets.back());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    targets[cursor[u]++] = v;
    targets[cursor[v]++] = u;
  }

  // Sort each adjacency list: deterministic layout, better locality, and
  // enables binary-search adjacency checks downstream.
  for (std::uint32_t v = 0; v < n_; ++v) {
    std::sort(targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }

  return Graph(n_, std::move(offsets), std::move(targets));
}

}  // namespace cobra::graph
