#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

/// \file builder.hpp
/// Mutable edge-list accumulator that compiles into an immutable CSR Graph.
/// All generators funnel through this: they add undirected edges (each once)
/// and the builder materializes the symmetric arc arrays, optionally
/// deduplicating parallel edges and dropping self-loops (needed by the
/// configuration model, which produces both).

namespace cobra::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::uint32_t num_vertices);

  /// Record the undirected edge {u, v}. Self-loops (u == v) are allowed at
  /// this stage. Out-of-range endpoints throw std::invalid_argument.
  void add_edge(Vertex u, Vertex v);

  /// Reserve space for `num_edges` undirected edges.
  void reserve(std::size_t num_edges);

  [[nodiscard]] std::uint32_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Remove parallel edges and self-loops in place (the simplification step
  /// of the configuration model). Returns the number of edges removed.
  std::size_t simplify();

  /// Compile into a CSR Graph. Each undirected edge {u, v} becomes arcs
  /// u->v and v->u; a self-loop {v, v} becomes two arcs v->v (degree +2),
  /// matching the vol(V) = 2|E| convention. The builder remains usable.
  [[nodiscard]] Graph build() const;

  /// The raw undirected edge list (tests use this).
  [[nodiscard]] const std::vector<std::pair<Vertex, Vertex>>& edges() const noexcept {
    return edges_;
  }

 private:
  std::uint32_t n_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
};

}  // namespace cobra::graph
