#include "graph/digraph.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cobra::graph {

Digraph::Digraph(std::uint32_t num_vertices, const std::vector<Arc>& arcs)
    : n_(num_vertices) {
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const Arc& arc : arcs) {
    if (arc.source >= n_ || arc.target >= n_) {
      throw std::invalid_argument("Digraph: arc endpoint out of range");
    }
    if (!(arc.weight > 0.0)) {
      throw std::invalid_argument("Digraph: weights must be positive");
    }
    ++offsets_[static_cast<std::size_t>(arc.source) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  targets_.resize(arcs.size());
  weights_.resize(arcs.size());
  std::vector<EdgeIndex> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Arc& arc : arcs) {
    const EdgeIndex at = cursor[arc.source]++;
    targets_[at] = arc.target;
    weights_[at] = arc.weight;
  }

  // Precompute the row-stochastic weights once; they are read on every
  // distribution push and by the simulating pair walk.
  normalized_.resize(arcs.size());
  for (Vertex v = 0; v < n_; ++v) {
    double row = 0.0;
    for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) row += weights_[i];
    if (row > 0.0) {
      for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) {
        normalized_[i] = weights_[i] / row;
      }
    }
  }
}

double Digraph::out_weight_total(Vertex v) const {
  double total = 0.0;
  for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) total += weights_[i];
  return total;
}

std::vector<double> Digraph::in_weight_totals() const {
  std::vector<double> in(n_, 0.0);
  for (Vertex v = 0; v < n_; ++v) {
    for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      in[targets_[i]] += weights_[i];
    }
  }
  return in;
}

bool Digraph::is_weight_balanced(double tolerance) const {
  const auto in = in_weight_totals();
  for (Vertex v = 0; v < n_; ++v) {
    if (std::abs(in[v] - out_weight_total(v)) > tolerance) return false;
  }
  return true;
}

std::vector<double> Digraph::transition_probabilities() const {
  return normalized_;
}

void Digraph::push_distribution(std::span<const double> in,
                                std::span<double> out) const {
  if (in.size() != n_ || out.size() != n_) {
    throw std::invalid_argument("push_distribution: size mismatch");
  }
  std::fill(out.begin(), out.end(), 0.0);
  for (Vertex v = 0; v < n_; ++v) {
    const double mass = in[v];
    if (mass == 0.0) continue;
    for (EdgeIndex i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      out[targets_[i]] += mass * normalized_[i];
    }
  }
}

std::vector<double> Digraph::stationary_distribution(
    std::uint32_t max_iterations, double tolerance) const {
  std::vector<double> current(n_, n_ > 0 ? 1.0 / n_ : 0.0);
  std::vector<double> next(n_, 0.0);
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    push_distribution(current, next);
    const double tv = total_variation(current, next);
    current.swap(next);
    if (tv < tolerance) break;
  }
  return current;
}

double total_variation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("total_variation: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / 2.0;
}

}  // namespace cobra::graph
