#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

/// \file digraph.hpp
/// Weighted directed graphs — the substrate for §4's analysis machinery.
/// The paper converts the coupled two-pebble Walt walk on G into a random
/// walk on a weighted directed version D(G x G) of the tensor product,
/// then uses Chung's directed-Laplacian theory to bound its mixing. This
/// module provides exactly what that construction needs:
///
///   * a CSR weighted digraph with per-arc transition weights,
///   * row-stochastic normalization (a transition matrix view),
///   * the weighted in/out balance check behind "D(G x G) is Eulerian",
///   * stationary distribution via power iteration on P^T, and
///   * total-variation distance between distributions.

namespace cobra::graph {

class Digraph {
 public:
  Digraph() = default;

  /// Builder-free construction from arc lists: arcs[i] = (source, target,
  /// weight). Weights must be positive. Arcs are grouped by source into
  /// CSR. Parallel arcs are allowed (the D(G x G) construction uses them
  /// conceptually; numerically their weights just add).
  struct Arc {
    Vertex source;
    Vertex target;
    double weight;
  };
  Digraph(std::uint32_t num_vertices, const std::vector<Arc>& arcs);

  [[nodiscard]] std::uint32_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t num_arcs() const noexcept {
    return targets_.size();
  }

  [[nodiscard]] std::uint32_t out_degree(Vertex v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }
  [[nodiscard]] std::span<const Vertex> out_neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::span<const double> out_weights(Vertex v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Total outgoing weight of v (row sum before normalization).
  [[nodiscard]] double out_weight_total(Vertex v) const;
  /// Total incoming weight of v. O(m) per call; cached variants below.
  [[nodiscard]] std::vector<double> in_weight_totals() const;

  /// True when every vertex has equal in- and out-weight (the weighted
  /// Eulerian condition; for such chains the stationary distribution is
  /// out_weight(v) / total_weight, the fact §4 exploits).
  [[nodiscard]] bool is_weight_balanced(double tolerance = 1e-9) const;

  /// Row-normalized transition probability view: P(v, i-th arc) =
  /// weight_i / out_weight_total(v). Returned as a copy of the weights
  /// normalized per row.
  [[nodiscard]] std::vector<double> transition_probabilities() const;

  /// Stationary distribution of the (row-stochastic-normalized) chain by
  /// power iteration on P^T, with uniform start. The chain should be
  /// irreducible (and aperiodic or lazy) for convergence; `iterations`
  /// bounds work. Returns the distribution after convergence or the last
  /// iterate.
  [[nodiscard]] std::vector<double> stationary_distribution(
      std::uint32_t max_iterations = 100000, double tolerance = 1e-12) const;

  /// One distribution step: out = in * P (push each vertex's mass along
  /// its normalized arcs). Caller provides buffers of size n.
  void push_distribution(std::span<const double> in,
                         std::span<double> out) const;

 private:
  std::uint32_t n_ = 0;
  std::vector<EdgeIndex> offsets_ = {0};
  std::vector<Vertex> targets_;
  std::vector<double> weights_;
  std::vector<double> normalized_;  ///< row-stochastic weights, same layout
};

/// Total-variation distance (1/2) * sum |a_i - b_i|.
[[nodiscard]] double total_variation(std::span<const double> a,
                                     std::span<const double> b);

}  // namespace cobra::graph
