#include "graph/directed_cheeger.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "numeric/dense.hpp"

namespace cobra::graph {

namespace {

void check_pi(const Digraph& d, const std::vector<double>& pi) {
  if (pi.size() != d.num_vertices()) {
    throw std::invalid_argument("directed cheeger: pi size mismatch");
  }
}

/// Dense row-stochastic transition matrix of the digraph.
numeric::Matrix transition_matrix(const Digraph& d) {
  const std::uint32_t n = d.num_vertices();
  numeric::Matrix p(n);
  for (Vertex v = 0; v < n; ++v) {
    const auto targets = d.out_neighbors(v);
    const auto weights = d.out_weights(v);
    const double total = d.out_weight_total(v);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      p.at(v, targets[i]) += weights[i] / total;
    }
  }
  return p;
}

}  // namespace

std::vector<double> circulation_inflow(const Digraph& d,
                                       const std::vector<double>& pi) {
  check_pi(d, pi);
  std::vector<double> inflow(d.num_vertices(), 0.0);
  for (Vertex u = 0; u < d.num_vertices(); ++u) {
    const auto targets = d.out_neighbors(u);
    const auto weights = d.out_weights(u);
    const double total = d.out_weight_total(u);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      inflow[targets[i]] += pi[u] * weights[i] / total;
    }
  }
  return inflow;
}

double directed_cheeger_small(const Digraph& d, const std::vector<double>& pi) {
  check_pi(d, pi);
  const std::uint32_t n = d.num_vertices();
  if (n < 2 || n > 24) {
    throw std::invalid_argument("directed_cheeger_small: 2 <= n <= 24");
  }
  const auto inflow = circulation_inflow(d, pi);
  const double total_flow =
      std::accumulate(inflow.begin(), inflow.end(), 0.0);

  // Enumerate subsets containing vertex 0 (complement symmetry in the
  // denominator covers the rest); bits == subsets-1 would be the full set,
  // which has no boundary, so it is excluded.
  double best = std::numeric_limits<double>::infinity();
  const std::uint32_t subsets = 1u << (n - 1);  // vertex 0 fixed inside S
  for (std::uint32_t bits = 0; bits < subsets - 1; ++bits) {
    std::uint32_t mask = 1;
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      if ((bits >> i) & 1u) mask |= (1u << (i + 1));
    }

    double f_s = 0.0;
    double boundary = 0.0;
    for (Vertex u = 0; u < n; ++u) {
      const bool u_in = (mask >> u) & 1u;
      if (u_in) f_s += inflow[u];
      const auto targets = d.out_neighbors(u);
      const auto weights = d.out_weights(u);
      const double total = d.out_weight_total(u);
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const bool v_in = (mask >> targets[i]) & 1u;
        if (u_in && !v_in) boundary += pi[u] * weights[i] / total;
      }
    }
    const double denom = std::min(f_s, total_flow - f_s);
    if (denom <= 0.0) continue;
    best = std::min(best, boundary / denom);
  }
  return best;
}

double directed_laplacian_lambda2(const Digraph& d,
                                  const std::vector<double>& pi) {
  check_pi(d, pi);
  const std::uint32_t n = d.num_vertices();
  if (n > 512) {
    throw std::invalid_argument("directed_laplacian_lambda2: n too large");
  }
  for (const double p : pi) {
    if (!(p > 0.0)) {
      throw std::invalid_argument("directed_laplacian_lambda2: pi must be > 0");
    }
  }
  const numeric::Matrix p = transition_matrix(d);
  // L = I - (Pi^{1/2} P Pi^{-1/2} + transpose) / 2.
  numeric::Matrix l(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      const double sym =
          0.5 * (std::sqrt(pi[i] / pi[j]) * p.at(i, j) +
                 std::sqrt(pi[j] / pi[i]) * p.at(j, i));
      l.at(i, j) = (i == j ? 1.0 : 0.0) - sym;
    }
  }
  const auto eigenvalues = numeric::symmetric_eigenvalues(l);
  // Smallest is ~0 (the stationary direction); return the next one.
  return eigenvalues.size() > 1 ? eigenvalues[1] : 0.0;
}

DirectedCheegerReport directed_cheeger_report(const Digraph& d,
                                              const std::vector<double>& pi) {
  DirectedCheegerReport report;
  report.cheeger = directed_cheeger_small(d, pi);
  report.lambda2 = directed_laplacian_lambda2(d, pi);
  const double h = report.cheeger;
  report.sandwich_holds = (2.0 * h + 1e-9 >= report.lambda2) &&
                          (report.lambda2 + 1e-9 >= h * h / 2.0);
  return report;
}

}  // namespace cobra::graph
