#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

/// \file directed_cheeger.hpp
/// Chung's directed-graph Cheeger machinery, exactly as §4 of the paper
/// uses it (its equations (1)-(2), citing Chung, "Laplacians and the
/// Cheeger inequality for directed graphs", 2005):
///
///   * the circulation F_pi(u, v) = pi(u) P(u, v) of the stationary
///     distribution;
///   * the directed Cheeger constant
///       h(D) = min_S F(dS) / min(F(S), F(S_complement)),
///     with F(v) = sum of in-flow and F(S) the sum over S;
///   * the directed Laplacian
///       L = I - (Pi^{1/2} P Pi^{-1/2} + Pi^{-1/2} P^T Pi^{1/2}) / 2,
///     whose second-smallest eigenvalue lambda satisfies
///       2 h(D) >= lambda >= h(D)^2 / 2.
///
/// Exact computation (subset enumeration and dense eigensolve) is provided
/// for small chains — enough to validate the inequality chain the paper's
/// Theorem 8 rests on, including the h(D(G x G)) >= Phi / (4 d^2) step.

namespace cobra::graph {

/// Stationary circulation F(u, v) summed into per-vertex in-flows F(v),
/// given the chain's stationary distribution `pi` (must match the digraph's
/// vertex count and the transition structure). Returns F(v) per vertex.
[[nodiscard]] std::vector<double> circulation_inflow(
    const Digraph& d, const std::vector<double>& pi);

/// Exact directed Cheeger constant by subset enumeration; requires
/// 2 <= n <= 24. `pi` is the chain's stationary distribution.
[[nodiscard]] double directed_cheeger_small(const Digraph& d,
                                            const std::vector<double>& pi);

/// Second-smallest eigenvalue of Chung's directed Laplacian (dense
/// symmetric eigensolve; n <= ~512). `pi` must be strictly positive.
[[nodiscard]] double directed_laplacian_lambda2(const Digraph& d,
                                                const std::vector<double>& pi);

/// Convenience bundle: h, lambda, and whether Chung's sandwich
/// 2h >= lambda >= h^2/2 holds (it must, up to numerical slack).
struct DirectedCheegerReport {
  double cheeger = 0.0;
  double lambda2 = 0.0;
  bool sandwich_holds = false;
};
[[nodiscard]] DirectedCheegerReport directed_cheeger_report(
    const Digraph& d, const std::vector<double>& pi);

}  // namespace cobra::graph
