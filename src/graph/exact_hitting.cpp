#include "graph/exact_hitting.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "numeric/dense.hpp"

namespace cobra::graph {

std::vector<double> exact_rw_hitting_times(const Graph& g, Vertex target) {
  const std::uint32_t n = g.num_vertices();
  if (target >= n) throw std::out_of_range("exact_rw_hitting_times: target");
  if (n > 4096) {
    throw std::invalid_argument("exact_rw_hitting_times: n too large for dense");
  }
  if (n == 0) return {};
  if (g.min_degree() == 0 || !is_connected(g)) {
    throw std::invalid_argument("exact_rw_hitting_times: connected graph only");
  }
  if (n == 1) return {0.0};

  // Unknowns: h(x) for x != target, indexed by skipping the target.
  auto compact = [&](Vertex v) -> std::size_t {
    return v < target ? v : static_cast<std::size_t>(v) - 1;
  };
  const std::size_t m = n - 1;
  numeric::Matrix a(m);
  std::vector<double> b(m, 1.0);
  for (Vertex x = 0; x < n; ++x) {
    if (x == target) continue;
    const std::size_t row = compact(x);
    a.at(row, row) += 1.0;
    const double inv_deg = 1.0 / g.degree(x);
    for (const Vertex y : g.neighbors(x)) {
      if (y == target) continue;  // h(target) = 0 contributes nothing
      a.at(row, compact(y)) -= inv_deg;
    }
  }
  const std::vector<double> h = numeric::solve_linear(a, b);

  std::vector<double> full(n, 0.0);
  for (Vertex x = 0; x < n; ++x) {
    if (x != target) full[x] = h[compact(x)];
  }
  return full;
}

double exact_rw_return_time(const Graph& g, Vertex v) {
  if (v >= g.num_vertices()) throw std::out_of_range("exact_rw_return_time");
  if (g.degree(v) == 0) {
    throw std::invalid_argument("exact_rw_return_time: isolated vertex");
  }
  // pi(v) = d(v) / 2m  =>  R(v) = 1/pi(v) = 2m / d(v).
  return static_cast<double>(g.volume()) / static_cast<double>(g.degree(v));
}

double exact_rw_max_hitting_to(const Graph& g, Vertex target) {
  const auto h = exact_rw_hitting_times(g, target);
  double best = 0.0;
  for (const double value : h) best = std::max(best, value);
  return best;
}

ExactHmax exact_rw_hmax(const Graph& g) {
  ExactHmax result;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto h = exact_rw_hitting_times(g, v);
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      if (h[u] > result.hmax) {
        result.hmax = h[u];
        result.argmax_from = u;
        result.argmax_to = v;
      }
    }
  }
  return result;
}

double matthews_upper_bound(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  if (n < 2) return 0.0;
  double harmonic = 0.0;
  for (std::uint32_t k = 1; k < n; ++k) harmonic += 1.0 / k;
  return exact_rw_hmax(g).hmax * harmonic;
}

}  // namespace cobra::graph
