#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file exact_hitting.hpp
/// Exact expected hitting/return/cover quantities of the SIMPLE random
/// walk, by solving the linear system
///
///     h(v) = 0,   h(x) = 1 + (1/d(x)) * sum_{y ~ x} h(y)   for x != v
///
/// with dense LU. These are the library's ground-truth baselines: the
/// Monte-Carlo estimators in core/ are validated against them in tests,
/// and the Matthews-bound experiment (E6) can quote exact h_max instead of
/// a sampled lower estimate for small graphs. Cost is O(n^3) per target —
/// fine for the n <= ~1000 graphs where exactness matters.
///
/// Known closed forms used in tests:
///   cycle C_n:     H(0, k) = k (n - k)
///   complete K_n:  H(u, v) = n - 1
///   path P_n:      H(0, k) = k^2
///   return time:   R(v) = 2m / d(v)            (any connected graph)

namespace cobra::graph {

/// Expected hitting times to `target` from every vertex (0 at the target).
/// Requires a connected graph with n >= 1 and no isolated vertices;
/// n must be <= 4096 (dense solve).
[[nodiscard]] std::vector<double> exact_rw_hitting_times(const Graph& g,
                                                         Vertex target);

/// Expected return time to v: exact closed form 2m / d(v) (no solve).
[[nodiscard]] double exact_rw_return_time(const Graph& g, Vertex v);

/// max_{u} H(u, v) for a fixed target (one solve).
[[nodiscard]] double exact_rw_max_hitting_to(const Graph& g, Vertex target);

/// max_{u,v} H(u, v) over all ordered pairs (n solves; n <= ~512 advised).
struct ExactHmax {
  double hmax = 0.0;
  Vertex argmax_from = 0;
  Vertex argmax_to = 0;
};
[[nodiscard]] ExactHmax exact_rw_hmax(const Graph& g);

/// Matthews bounds on the RW cover time from exact hitting times:
/// lower = max_pair H * (harmonic lower form not implemented) — we expose
/// the classical upper bound  cover <= h_max * H_{n-1}  (harmonic number),
/// which tests compare against simulated cover times.
[[nodiscard]] double matthews_upper_bound(const Graph& g);

}  // namespace cobra::graph
