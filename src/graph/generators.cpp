#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gen/families.hpp"
#include "graph/builder.hpp"
#include "graph/grid_coords.hpp"
#include "rng/distributions.hpp"

namespace cobra::graph {

Graph make_path(std::uint32_t n) {
  if (n < 1) throw std::invalid_argument("make_path: n >= 1");
  GraphBuilder b(n);
  b.reserve(n - 1);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_cycle(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n >= 3");
  GraphBuilder b(n);
  b.reserve(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph make_complete(std::uint32_t n) {
  if (n < 1) throw std::invalid_argument("make_complete: n >= 1");
  GraphBuilder b(n);
  b.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph make_star(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("make_star: n >= 2");
  GraphBuilder b(n);
  b.reserve(n - 1);
  for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph make_grid(std::uint32_t dimensions, std::uint32_t side, bool torus) {
  if (dimensions < 1) throw std::invalid_argument("make_grid: dimensions >= 1");
  if (side < 2) throw std::invalid_argument("make_grid: side >= 2");
  const GridCoords coords(dimensions, side);
  const std::uint32_t n = coords.num_points();

  GraphBuilder b(n);
  b.reserve(static_cast<std::size_t>(n) * dimensions);
  std::vector<std::uint32_t> c(dimensions, 0);
  for (Vertex v = 0; v < n; ++v) {
    // Emit the +1 edge along every axis; the -1 edges are emitted by the
    // lower-coordinate endpoint, so each undirected edge appears once.
    for (std::uint32_t axis = 0; axis < dimensions; ++axis) {
      if (c[axis] + 1 < side) {
        b.add_edge(v, static_cast<Vertex>(v + coords.stride(axis)));
      } else if (torus && side > 2) {
        // Wrap edge from the last point back to coordinate 0. side == 2
        // is excluded: the wrap edge would duplicate the +1 edge.
        b.add_edge(v, static_cast<Vertex>(
                          v - (static_cast<std::uint64_t>(side) - 1) *
                                  coords.stride(axis)));
      }
    }
    // Increment mixed-radix counter (row-major: last axis fastest).
    for (std::uint32_t axis = dimensions; axis-- > 0;) {
      if (++c[axis] < side) break;
      c[axis] = 0;
    }
  }
  return b.build();
}

Graph make_hypercube(std::uint32_t dimensions) {
  if (dimensions < 1 || dimensions > 31) {
    throw std::invalid_argument("make_hypercube: 1 <= dimensions <= 31");
  }
  const std::uint32_t n = 1u << dimensions;
  GraphBuilder b(n);
  b.reserve(static_cast<std::size_t>(n) * dimensions / 2);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dimensions; ++bit) {
      const Vertex u = v ^ (1u << bit);
      if (v < u) b.add_edge(v, u);
    }
  }
  return b.build();
}

Graph make_kary_tree(std::uint32_t arity, std::uint32_t levels) {
  if (arity < 1) throw std::invalid_argument("make_kary_tree: arity >= 1");
  if (levels < 1) throw std::invalid_argument("make_kary_tree: levels >= 1");
  // n = 1 + k + k^2 + ... + k^(levels-1)
  std::uint64_t n = 0, layer = 1;
  for (std::uint32_t l = 0; l < levels; ++l) {
    n += layer;
    layer *= arity;
    if (n > (1ull << 32)) {
      throw std::invalid_argument("make_kary_tree: tree exceeds 2^32 vertices");
    }
  }
  const auto total = static_cast<std::uint32_t>(n);
  GraphBuilder b(total);
  b.reserve(total - 1);
  // In BFS order, the children of vertex v are arity*v + 1 ... arity*v + arity.
  for (Vertex v = 0; v < total; ++v) {
    for (std::uint32_t c = 1; c <= arity; ++c) {
      const std::uint64_t child = static_cast<std::uint64_t>(arity) * v + c;
      if (child >= total) break;
      b.add_edge(v, static_cast<Vertex>(child));
    }
  }
  return b.build();
}

Graph make_lollipop(std::uint32_t clique_size, std::uint32_t path_length) {
  if (clique_size < 2) throw std::invalid_argument("make_lollipop: clique >= 2");
  const std::uint32_t n = clique_size + path_length;
  GraphBuilder b(n);
  for (Vertex u = 0; u < clique_size; ++u) {
    for (Vertex v = u + 1; v < clique_size; ++v) b.add_edge(u, v);
  }
  // Path hangs off the last clique vertex.
  for (Vertex v = clique_size; v < n; ++v) b.add_edge(v - 1, v);
  return b.build();
}

Graph make_barbell(std::uint32_t clique_size, std::uint32_t path_length) {
  if (clique_size < 2) throw std::invalid_argument("make_barbell: clique >= 2");
  const std::uint32_t n = 2 * clique_size + path_length;
  GraphBuilder b(n);
  // Left clique on [0, clique_size), right clique on [clique_size + path,
  // n); the path occupies the middle ids.
  for (Vertex u = 0; u < clique_size; ++u) {
    for (Vertex v = u + 1; v < clique_size; ++v) b.add_edge(u, v);
  }
  const Vertex right_base = clique_size + path_length;
  for (Vertex u = right_base; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  // Chain: last left-clique vertex - path vertices - first right-clique vertex.
  Vertex prev = clique_size - 1;
  for (Vertex v = clique_size; v < right_base; ++v) {
    b.add_edge(prev, v);
    prev = v;
  }
  b.add_edge(prev, right_base);
  return b.build();
}

Graph make_random_regular(rng::Xoshiro256& gen, std::uint32_t n,
                          std::uint32_t degree, std::uint32_t max_attempts) {
  // Thin wrapper over gen::random_regular (hashed-key stub permutation +
  // edge-swap repair; see make_erdos_renyi above for the seed-drawing
  // rationale). max_attempts bounds the repair passes.
  gen::GenOptions opts;
  opts.serial = true;
  return gen::random_regular(n, degree, gen(), opts, max_attempts);
}

Graph make_erdos_renyi(rng::Xoshiro256& gen, std::uint32_t n, double p) {
  // Thin wrapper over the chunked skip-sampling generator in src/gen/: one
  // seed drawn from the caller's engine keeps the "deterministic function
  // of the passed engine state" contract, and the in-line path keeps this
  // signature pool-free (spec-built graphs get the parallel path).
  gen::GenOptions opts;
  opts.serial = true;
  return gen::gnp(n, p, gen(), opts);
}

Graph make_chung_lu_power_law(rng::Xoshiro256& gen, std::uint32_t n, double gamma,
                              double min_deg) {
  if (gamma <= 1.0) throw std::invalid_argument("make_chung_lu: gamma > 1");
  if (n < 2) throw std::invalid_argument("make_chung_lu: n >= 2");

  // Expected weights w_i = min_deg * (n / (i+1))^{1/(gamma-1)}, the standard
  // Chung-Lu power-law parameterization. Cap at sqrt(sum_w) so that
  // probabilities min(1, w_u w_v / W) stay proper.
  std::vector<double> weights(n);
  const double inv_exp = 1.0 / (gamma - 1.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    weights[i] = min_deg * std::pow(static_cast<double>(n) /
                                        static_cast<double>(i + 1),
                                    inv_exp);
  }
  double total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);
  const double cap = std::sqrt(total_weight);
  for (double& w : weights) w = std::min(w, cap);
  total_weight = std::accumulate(weights.begin(), weights.end(), 0.0);

  // Miller–Hagberg skip sampling (efficient Chung–Lu): weights are
  // non-increasing, so for fixed u the pair probability p(u, v) is
  // non-increasing in v. Walk v with geometric skips under the current
  // majorizer p, thinning each candidate by the exact ratio q/p.
  GraphBuilder b(n);
  for (std::uint32_t u = 0; u + 1 < n; ++u) {
    const double base = weights[u] / total_weight;
    std::uint32_t v = u + 1;
    double p = std::min(1.0, base * weights[v]);
    while (v < n && p > 0.0) {
      if (p < 1.0) {
        const double r = rng::uniform_unit(gen);
        const double skip = std::floor(std::log1p(-r) / std::log1p(-p));
        if (skip >= static_cast<double>(n)) break;
        v += static_cast<std::uint32_t>(skip);
      }
      if (v >= n) break;
      const double q = std::min(1.0, base * weights[v]);
      if (rng::uniform_unit(gen) < q / p) b.add_edge(u, v);
      p = q;
      ++v;
    }
  }
  b.simplify();
  return b.build();
}

Graph make_barabasi_albert(rng::Xoshiro256& gen, std::uint32_t n,
                           std::uint32_t attach_edges) {
  if (attach_edges < 1) throw std::invalid_argument("make_ba: attach_edges >= 1");
  if (n < attach_edges + 1) {
    throw std::invalid_argument("make_ba: n must exceed attach_edges");
  }
  GraphBuilder b(n);
  // Repeated-endpoint list: sampling a uniform element of `endpoints` is
  // exactly degree-proportional sampling.
  std::vector<Vertex> endpoints;
  endpoints.reserve(2ull * n * attach_edges);

  const std::uint32_t seed_size = attach_edges + 1;
  for (Vertex u = 0; u < seed_size; ++u) {
    for (Vertex v = u + 1; v < seed_size; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<Vertex> chosen;
  chosen.reserve(attach_edges);
  for (Vertex v = seed_size; v < n; ++v) {
    chosen.clear();
    // Sample distinct targets preferentially; rejection on duplicates.
    while (chosen.size() < attach_edges) {
      const Vertex candidate = endpoints[static_cast<std::size_t>(
          rng::uniform_below(gen, endpoints.size()))];
      if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
        chosen.push_back(candidate);
      }
    }
    for (const Vertex target : chosen) {
      b.add_edge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return b.build();
}

Graph make_random_geometric(rng::Xoshiro256& gen, std::uint32_t n, double radius) {
  // Thin wrapper over the grid-bucketed generator in src/gen/ (see
  // make_erdos_renyi above for the seed-drawing rationale).
  gen::GenOptions opts;
  opts.serial = true;
  return gen::random_geometric(n, radius, gen(), opts);
}

Graph make_double_clique(std::uint32_t clique_size) {
  if (clique_size < 2) throw std::invalid_argument("make_double_clique: size >= 2");
  const std::uint32_t n = 2 * clique_size - 1;  // shared cut vertex
  GraphBuilder b(n);
  const Vertex cut = clique_size - 1;
  for (Vertex u = 0; u <= cut; ++u) {
    for (Vertex v = u + 1; v <= cut; ++v) b.add_edge(u, v);
  }
  for (Vertex u = cut; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

}  // namespace cobra::graph
