#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "rng/xoshiro256.hpp"

/// \file generators.hpp
/// Every graph family the paper's claims touch, plus the standard extremal
/// examples used as baselines:
///
///   * grids [0, n]^d and tori            — Theorem 3 / Lemma 2 (E1)
///   * hypercube, random d-regular        — Theorem 8 / Corollary 9 (E2, E3)
///   * cycle, random delta-regular        — Theorem 15 hitting times (E4)
///   * lollipop, barbell                  — RW worst case Θ(n^3) (E5)
///   * k-ary trees, star                  — §3 remark / §6 (E9)
///   * Erdős–Rényi, Chung–Lu power-law,
///     Barabási–Albert, random geometric  — the graph classes §4 names as
///                                          beneficiaries of the conductance
///                                          bound (E10 and examples)
///   * path, complete                     — degenerate baselines for tests
///
/// All randomized generators are deterministic functions of the passed
/// engine state; callers seed via rng::derive_seed for reproducibility.
/// All generators return connected graphs unless noted.

namespace cobra::graph {

/// Path P_n: 0-1-2-...-(n-1). n >= 1.
[[nodiscard]] Graph make_path(std::uint32_t n);

/// Cycle C_n, the 2-regular graph. n >= 3.
[[nodiscard]] Graph make_cycle(std::uint32_t n);

/// Complete graph K_n. n >= 1.
[[nodiscard]] Graph make_complete(std::uint32_t n);

/// Star S_n: vertex 0 is the hub, 1..n-1 are leaves. n >= 2.
[[nodiscard]] Graph make_star(std::uint32_t n);

/// d-dimensional grid with `side` points per axis — the paper's [0, n]^d
/// has side = n + 1. `torus` wraps every axis (making it 2d-regular).
/// Requires dimensions >= 1, side >= 2, side^dimensions <= 2^32.
[[nodiscard]] Graph make_grid(std::uint32_t dimensions, std::uint32_t side,
                              bool torus = false);

/// Hypercube Q_d on 2^d vertices; d-regular with conductance Θ(1/d).
/// Requires 1 <= dimensions <= 31.
[[nodiscard]] Graph make_hypercube(std::uint32_t dimensions);

/// Complete k-ary tree with `levels` levels (a single root is levels = 1).
/// k >= 1. Vertex 0 is the root; vertices are in BFS order.
[[nodiscard]] Graph make_kary_tree(std::uint32_t arity, std::uint32_t levels);

/// Lollipop graph: a clique on `clique_size` vertices with a path of
/// `path_length` extra vertices hanging off vertex clique_size-1. With
/// clique_size = 2n/3 and path_length = n/3 this is the standard witness
/// that simple-random-walk cover time is Θ(n^3). clique_size >= 2.
[[nodiscard]] Graph make_lollipop(std::uint32_t clique_size,
                                  std::uint32_t path_length);

/// Barbell: two cliques of `clique_size` joined by a path of `path_length`
/// intermediate vertices (0 joins them directly). clique_size >= 2.
[[nodiscard]] Graph make_barbell(std::uint32_t clique_size,
                                 std::uint32_t path_length);

/// Random d-regular simple graph via the configuration model with
/// edge-swap repair (thin wrapper over gen::random_regular, seeded from
/// one draw of `gen`). Requires n*d even, d < n, and (for practical
/// repair budgets) d <= ~O(sqrt(n)); throws std::runtime_error if a
/// simple graph is not reached within max_attempts repair passes. W.h.p.
/// the result is connected and an expander for d >= 3.
[[nodiscard]] Graph make_random_regular(rng::Xoshiro256& gen, std::uint32_t n,
                                        std::uint32_t degree,
                                        std::uint32_t max_attempts = 200);

/// Erdős–Rényi G(n, p). Not necessarily connected; pair with
/// largest_component (algorithms.hpp) or choose p >= (1+eps) ln n / n.
/// Thin wrapper over gen::gnp (chunked Batagelj–Brandes skip sampling,
/// O(n + m)); seeds the generator from one draw of `gen`.
[[nodiscard]] Graph make_erdos_renyi(rng::Xoshiro256& gen, std::uint32_t n,
                                     double p);

/// Chung–Lu graph with expected power-law degree sequence of exponent
/// `gamma` (typically 2 < gamma < 3) and minimum expected degree `min_deg`.
/// Edge {u,v} appears with probability min(1, w_u w_v / sum_w).
[[nodiscard]] Graph make_chung_lu_power_law(rng::Xoshiro256& gen, std::uint32_t n,
                                            double gamma, double min_deg = 2.0);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach_edges + 1` vertices, each new vertex attaches `attach_edges`
/// edges preferentially. Connected by construction.
[[nodiscard]] Graph make_barabasi_albert(rng::Xoshiro256& gen, std::uint32_t n,
                                         std::uint32_t attach_edges);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs at Euclidean distance <= radius. Thin wrapper over
/// gen::random_geometric (grid-bucketed neighbor search, O(n + m));
/// seeds the generator from one draw of `gen`. Not necessarily connected;
/// the standard connectivity threshold is radius ~ sqrt(ln n / (pi n)).
[[nodiscard]] Graph make_random_geometric(rng::Xoshiro256& gen, std::uint32_t n,
                                          double radius);

/// Two cliques of size `clique_size` sharing a single cut vertex — a low
/// conductance, non-regular stress case for the general-graph bound.
[[nodiscard]] Graph make_double_clique(std::uint32_t clique_size);

}  // namespace cobra::graph
