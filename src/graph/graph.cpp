#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <map>
#include <unordered_set>

namespace cobra::graph {

Graph::Graph(std::uint32_t num_vertices, std::vector<EdgeIndex> offsets,
             std::vector<Vertex> targets)
    : n_(num_vertices), offsets_(std::move(offsets)), targets_(std::move(targets)) {
  if (offsets_.size() != static_cast<std::size_t>(n_) + 1) {
    throw std::invalid_argument("Graph: offsets size must be n + 1");
  }
  if (offsets_.front() != 0 || offsets_.back() != targets_.size()) {
    throw std::invalid_argument("Graph: offsets must span [0, targets.size()]");
  }
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i) {
    if (offsets_[i] > offsets_[i + 1]) {
      throw std::invalid_argument("Graph: offsets must be non-decreasing");
    }
  }
  for (const Vertex t : targets_) {
    if (t >= n_) throw std::invalid_argument("Graph: target vertex out of range");
  }
  // Undirectedness (arc symmetry) is enforced by GraphBuilder, which is the
  // only production path into this constructor; re-verifying here would be
  // O(m log m) on every build. Tests cover the builder's symmetry guarantee.
}

std::uint32_t Graph::min_degree() const noexcept {
  std::uint32_t best = n_ == 0 ? 0 : ~0U;
  for (Vertex v = 0; v < n_; ++v) best = std::min(best, degree(v));
  return best;
}

std::uint32_t Graph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (Vertex v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

double Graph::average_degree() const noexcept {
  if (n_ == 0) return 0.0;
  return static_cast<double>(targets_.size()) / static_cast<double>(n_);
}

bool Graph::is_regular() const noexcept {
  if (n_ == 0) return true;
  const std::uint32_t d = degree(0);
  for (Vertex v = 1; v < n_; ++v) {
    if (degree(v) != d) return false;
  }
  return true;
}

bool Graph::is_simple() const {
  for (Vertex v = 0; v < n_; ++v) {
    // cobra-lint: allow(D2-unordered) membership probe only — never
    // iterated, and the boolean result is insertion-order invariant.
    std::unordered_set<Vertex> seen;
    for (const Vertex u : neighbors(v)) {
      if (u == v) return false;                  // self-loop
      if (!seen.insert(u).second) return false;  // parallel edge
    }
  }
  return true;
}

bool Graph::validate(std::string* error) const {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (offsets_.size() != static_cast<std::size_t>(n_) + 1) {
    return fail("offsets size is " + std::to_string(offsets_.size()) +
                ", expected n + 1 = " + std::to_string(n_ + 1));
  }
  if (offsets_.front() != 0) return fail("offsets[0] != 0");
  if (offsets_.back() != targets_.size()) {
    return fail("offsets[n] = " + std::to_string(offsets_.back()) +
                " != num arcs " + std::to_string(targets_.size()));
  }
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i) {
    if (offsets_[i] > offsets_[i + 1]) {
      return fail("offsets decrease at vertex " + std::to_string(i));
    }
  }
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i] >= n_) {
      return fail("arc " + std::to_string(i) + " targets vertex " +
                  std::to_string(targets_[i]) + " >= n = " +
                  std::to_string(n_));
    }
  }
  // Arc symmetry with multiplicity: tally +1 for each arc (u, v) with
  // u < v and -1 for each (v, u); every key must net to zero. Self-loop
  // arcs (u, u) tally separately — a loop is stored as TWO arcs (it
  // contributes 2 to its endpoint's degree), so each vertex's loop-arc
  // count must be even. An ordered map so the FIRST defect reported is
  // the smallest (u, v) on every run/host — a hash map here made the
  // validate() diagnostic text iteration-order dependent.
  std::map<std::uint64_t, std::int64_t> balance;
  for (Vertex u = 0; u < n_; ++u) {
    for (const Vertex v : neighbors(u)) {
      if (u == v) {
        balance[(static_cast<std::uint64_t>(u) << 32) | u] += 1;
      } else if (u < v) {
        balance[(static_cast<std::uint64_t>(u) << 32) | v] += 1;
      } else {
        balance[(static_cast<std::uint64_t>(v) << 32) | u] -= 1;
      }
    }
  }
  for (const auto& [key, delta] : balance) {
    const auto u = static_cast<Vertex>(key >> 32);
    const auto v = static_cast<Vertex>(key & 0xFFFFFFFFu);
    if (u == v) {
      if (delta % 2 != 0) {
        return fail("odd self-loop arc count at vertex " + std::to_string(u));
      }
    } else if (delta != 0) {
      return fail("asymmetric edge {" + std::to_string(u) + ", " +
                  std::to_string(v) + "}: arc multiplicities differ by " +
                  std::to_string(delta < 0 ? -delta : delta));
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u >= n_ || v >= n_) return false;
  const auto nbrs = neighbors(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

}  // namespace cobra::graph
