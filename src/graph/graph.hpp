#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// \file graph.hpp
/// The immutable CSR (compressed sparse row) graph — the substrate every
/// process in this library walks on. Design constraints, in priority order:
///
///   1. Neighbor scans must be contiguous: `neighbors(v)` returns a span
///      into one flat array, so the cobra-walk hot loop touches exactly one
///      cache line stream per vertex.
///   2. Vertices are 32-bit ids. The paper's experiments top out around
///      10^6-10^7 vertices; 32-bit ids halve memory traffic vs 64-bit.
///   3. Graphs are undirected and static. Mutation happens in
///      `GraphBuilder` (builder.hpp); once built, a `Graph` never changes,
///      making it trivially shareable across Monte-Carlo worker threads.
///
/// Multi-edges are permitted (the configuration model produces them before
/// simplification); self-loops are permitted but every generator in
/// generators.hpp avoids them unless documented otherwise.

namespace cobra::graph {

using Vertex = std::uint32_t;
using EdgeIndex = std::uint64_t;

class Graph {
 public:
  /// An empty graph with zero vertices.
  Graph() = default;

  /// Construct directly from CSR arrays. `offsets` must have size
  /// `num_vertices + 1`, be non-decreasing, start at 0 and end at
  /// `targets.size()`; every target must be < num_vertices. Each undirected
  /// edge {u, v} appears twice: v in u's list and u in v's. Violations
  /// throw std::invalid_argument. Prefer GraphBuilder over calling this.
  Graph(std::uint32_t num_vertices, std::vector<EdgeIndex> offsets,
        std::vector<Vertex> targets);

  [[nodiscard]] std::uint32_t num_vertices() const noexcept { return n_; }

  /// Number of undirected edges (half the stored directed arcs). Self-loops
  /// count once and contribute 2 to their endpoint's degree, matching the
  /// standard convention vol(V) = 2|E|.
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return targets_.size() / 2;
  }

  /// Number of stored directed arcs (= 2 |E|).
  [[nodiscard]] std::uint64_t num_arcs() const noexcept { return targets_.size(); }

  [[nodiscard]] std::uint32_t degree(Vertex v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Contiguous view of v's neighbor list (with multiplicity for
  /// multi-edges). Never dangles while the Graph is alive.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// The i-th neighbor of v, 0 <= i < degree(v), unchecked in release.
  [[nodiscard]] Vertex neighbor(Vertex v, std::uint32_t i) const {
    return targets_[offsets_[v] + i];
  }

  [[nodiscard]] std::uint32_t min_degree() const noexcept;
  [[nodiscard]] std::uint32_t max_degree() const noexcept;
  [[nodiscard]] double average_degree() const noexcept;

  /// True when every vertex has the same degree; `regular_degree` returns
  /// that degree (0 for the empty graph, meaningless when not regular).
  [[nodiscard]] bool is_regular() const noexcept;

  /// True if no self-loops and no parallel edges.
  [[nodiscard]] bool is_simple() const;

  /// True if u and v are adjacent (O(deg) scan; fine for tests/assertions).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  /// Full CSR invariant check, INCLUDING the arc symmetry the constructor
  /// deliberately skips: offsets shape/monotonicity, targets in range, and
  /// every arc (u, v) matched by a (v, u) with equal multiplicity (checked
  /// via a sort-free +/-1 keyed-hash tally, O(m) expected). Returns false
  /// and describes the first violation in `*error` (when non-null). This
  /// is the debug-mode safety net behind every generator build (see
  /// gen/registry.cpp) — a generator bug that emits an asymmetric CSR
  /// would otherwise surface as a wrong STATISTIC, not a crash.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;

  /// Sum of degrees of all vertices (= num_arcs).
  [[nodiscard]] std::uint64_t volume() const noexcept { return targets_.size(); }

  /// Raw CSR access for algorithms that want to iterate arcs directly.
  [[nodiscard]] const std::vector<EdgeIndex>& offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] const std::vector<Vertex>& targets() const noexcept {
    return targets_;
  }

 private:
  std::uint32_t n_ = 0;
  std::vector<EdgeIndex> offsets_ = {0};
  std::vector<Vertex> targets_;
};

}  // namespace cobra::graph
