#include "graph/grid_coords.hpp"

#include <limits>
#include <stdexcept>

namespace cobra::graph {

GridCoords::GridCoords(std::vector<std::uint32_t> extents)
    : extents_(std::move(extents)) {
  if (extents_.empty()) {
    throw std::invalid_argument("GridCoords: needs >= 1 dimension");
  }
  std::uint64_t total = 1;
  strides_.resize(extents_.size());
  // Row-major: the last axis varies fastest.
  for (std::size_t i = extents_.size(); i-- > 0;) {
    if (extents_[i] == 0) {
      throw std::invalid_argument("GridCoords: zero extent");
    }
    strides_[i] = total;
    total *= extents_[i];
    if (total > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument("GridCoords: grid exceeds 2^32 points");
    }
  }
  total_ = static_cast<std::uint32_t>(total);
}

GridCoords::GridCoords(std::uint32_t dimensions, std::uint32_t side)
    : GridCoords(std::vector<std::uint32_t>(dimensions, side)) {}

std::vector<std::uint32_t> GridCoords::coords(Vertex id) const {
  if (id >= total_) throw std::out_of_range("GridCoords::coords: id out of range");
  std::vector<std::uint32_t> out(extents_.size());
  std::uint64_t rest = id;
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(rest / strides_[i]);
    rest %= strides_[i];
  }
  return out;
}

Vertex GridCoords::id(std::span<const std::uint32_t> coordinates) const {
  if (coordinates.size() != extents_.size()) {
    throw std::out_of_range("GridCoords::id: dimension mismatch");
  }
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < coordinates.size(); ++i) {
    if (coordinates[i] >= extents_[i]) {
      throw std::out_of_range("GridCoords::id: coordinate out of extent");
    }
    acc += static_cast<std::uint64_t>(coordinates[i]) * strides_[i];
  }
  return static_cast<Vertex>(acc);
}

std::uint64_t GridCoords::manhattan(Vertex a, Vertex b) const {
  const auto ca = coords(a);
  const auto cb = coords(b);
  std::uint64_t dist = 0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    dist += ca[i] > cb[i] ? ca[i] - cb[i] : cb[i] - ca[i];
  }
  return dist;
}

}  // namespace cobra::graph
