#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

/// \file grid_coords.hpp
/// Coordinate arithmetic for the d-dimensional grid [0, side-1]^d (the
/// paper's [0, n]^d with side = n + 1 points per axis). Vertices are stored
/// in row-major mixed-radix order; this header provides the bijection
/// between linear ids and coordinate vectors plus Manhattan distance, which
/// the grid experiments use to track the drift argument of Theorem 3.

namespace cobra::graph {

class GridCoords {
 public:
  /// A grid with `dims` axes, axis i having extent `extents[i]` points.
  /// Total vertex count is the product of extents; it must fit in 32 bits.
  explicit GridCoords(std::vector<std::uint32_t> extents);

  /// Uniform extent convenience: d axes of `side` points each.
  GridCoords(std::uint32_t dimensions, std::uint32_t side);

  [[nodiscard]] std::uint32_t dimensions() const noexcept {
    return static_cast<std::uint32_t>(extents_.size());
  }
  [[nodiscard]] std::uint32_t extent(std::uint32_t axis) const {
    return extents_.at(axis);
  }
  [[nodiscard]] std::uint32_t num_points() const noexcept { return total_; }

  /// Linear id -> coordinates.
  [[nodiscard]] std::vector<std::uint32_t> coords(Vertex id) const;

  /// Coordinates -> linear id. Size must match dimensions; each coordinate
  /// must be within its extent (throws std::out_of_range otherwise).
  [[nodiscard]] Vertex id(std::span<const std::uint32_t> coordinates) const;

  /// Manhattan (L1) distance between two vertices.
  [[nodiscard]] std::uint64_t manhattan(Vertex a, Vertex b) const;

  /// Per-axis stride of the row-major layout (tests and generators use it).
  [[nodiscard]] std::uint64_t stride(std::uint32_t axis) const {
    return strides_.at(axis);
  }

 private:
  std::vector<std::uint32_t> extents_;
  std::vector<std::uint64_t> strides_;
  std::uint32_t total_ = 0;
};

}  // namespace cobra::graph
