#include "graph/mixing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/digraph.hpp"  // total_variation

namespace cobra::graph {

void lazy_walk_step(const Graph& g, const std::vector<double>& in,
                    std::vector<double>& out) {
  const std::uint32_t n = g.num_vertices();
  if (in.size() != n || out.size() != n) {
    throw std::invalid_argument("lazy_walk_step: size mismatch");
  }
  for (Vertex v = 0; v < n; ++v) out[v] = 0.5 * in[v];
  for (Vertex v = 0; v < n; ++v) {
    const double push = 0.5 * in[v] / static_cast<double>(g.degree(v));
    if (push == 0.0) continue;
    for (const Vertex u : g.neighbors(v)) out[u] += push;
  }
}

std::vector<double> stationary_of(const Graph& g) {
  std::vector<double> pi(g.num_vertices());
  const double volume = static_cast<double>(g.volume());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    pi[v] = static_cast<double>(g.degree(v)) / volume;
  }
  return pi;
}

std::vector<double> lazy_walk_distribution(const Graph& g, Vertex source,
                                           std::uint64_t steps) {
  if (source >= g.num_vertices()) {
    throw std::out_of_range("lazy_walk_distribution: source");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("lazy_walk_distribution: isolated vertex");
  }
  std::vector<double> current(g.num_vertices(), 0.0);
  std::vector<double> next(g.num_vertices(), 0.0);
  current[source] = 1.0;
  for (std::uint64_t t = 0; t < steps; ++t) {
    lazy_walk_step(g, current, next);
    current.swap(next);
  }
  return current;
}

double tv_to_stationarity(const Graph& g, Vertex source, std::uint64_t steps) {
  const auto p = lazy_walk_distribution(g, source, steps);
  const auto pi = stationary_of(g);
  return total_variation(p, pi);
}

std::uint64_t lazy_mixing_time(const Graph& g, Vertex source, double epsilon,
                               std::uint64_t max_steps) {
  if (source >= g.num_vertices()) {
    throw std::out_of_range("lazy_mixing_time: source");
  }
  if (g.min_degree() == 0) {
    throw std::invalid_argument("lazy_mixing_time: isolated vertex");
  }
  std::vector<double> current(g.num_vertices(), 0.0);
  std::vector<double> next(g.num_vertices(), 0.0);
  current[source] = 1.0;
  const auto pi = stationary_of(g);
  for (std::uint64_t t = 0; t <= max_steps; ++t) {
    if (total_variation(current, pi) <= epsilon) return t;
    lazy_walk_step(g, current, next);
    current.swap(next);
  }
  return max_steps;
}

double max_coordinate_deviation(const Graph& g, Vertex source,
                                std::uint64_t steps) {
  const auto p = lazy_walk_distribution(g, source, steps);
  const auto pi = stationary_of(g);
  double worst = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    worst = std::max(worst, std::abs(p[i] - pi[i]));
  }
  return worst;
}

}  // namespace cobra::graph
