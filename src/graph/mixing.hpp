#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file mixing.hpp
/// Exact mixing diagnostics for the (lazy) simple random walk, by dense
/// distribution iteration. Theorem 8's proof needs that after
/// s = O(Phi^-2 log n) lazy steps the walk's distribution is within 1/2n
/// of stationarity in every coordinate (it cites the spectral bound
/// |p_t(v) - pi(v)| <= e^{-t Phi^2 / 2}); this module lets experiments
/// measure the true epoch length instead of assuming it. Cost per step is
/// O(m); total O(m * t_mix) — fine for the n <= ~10^4 graphs benches use.

namespace cobra::graph {

/// One lazy-walk step of a distribution: out = (in + in * P) / 2.
/// P is the simple-random-walk matrix of g. Buffers must have size n.
void lazy_walk_step(const Graph& g, const std::vector<double>& in,
                    std::vector<double>& out);

/// The degree-proportional stationary distribution pi(v) = d(v)/2m.
[[nodiscard]] std::vector<double> stationary_of(const Graph& g);

/// Distribution of a lazy walk started at `source` after `steps` steps.
[[nodiscard]] std::vector<double> lazy_walk_distribution(const Graph& g,
                                                         Vertex source,
                                                         std::uint64_t steps);

/// Total-variation distance to stationarity after `steps` lazy steps from
/// `source`.
[[nodiscard]] double tv_to_stationarity(const Graph& g, Vertex source,
                                        std::uint64_t steps);

/// First t with TV(P^t(source, .), pi) <= epsilon, capped at `max_steps`.
/// Returns max_steps if not reached.
[[nodiscard]] std::uint64_t lazy_mixing_time(const Graph& g, Vertex source,
                                             double epsilon,
                                             std::uint64_t max_steps);

/// Worst-coordinate deviation max_v |p_t(v) - pi(v)| after `steps` lazy
/// steps — the exact quantity the paper bounds by e^{-t Phi^2/2} in §4.
[[nodiscard]] double max_coordinate_deviation(const Graph& g, Vertex source,
                                              std::uint64_t steps);

}  // namespace cobra::graph
