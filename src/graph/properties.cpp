#include "graph/properties.hpp"

#include <algorithm>
#include <cmath>

namespace cobra::graph {

std::vector<std::uint64_t> degree_histogram(const Graph& g) {
  std::vector<std::uint64_t> histogram(g.max_degree() + 1, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) ++histogram[g.degree(v)];
  return histogram;
}

namespace {

/// Triangles through v, counted by intersecting sorted adjacency lists of
/// its neighbor pairs (each triangle through v counted once).
std::uint64_t triangles_through(const Graph& g, Vertex v) {
  const auto nbrs = g.neighbors(v);
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      // Adjacency lists are sorted: binary search.
      const auto list = g.neighbors(nbrs[i]);
      if (std::binary_search(list.begin(), list.end(), nbrs[j])) ++count;
    }
  }
  return count;
}

}  // namespace

double local_clustering(const Graph& g, Vertex v) {
  const std::uint64_t d = g.degree(v);
  if (d < 2) return 0.0;
  const double possible = static_cast<double>(d) * static_cast<double>(d - 1) / 2.0;
  return static_cast<double>(triangles_through(g, v)) / possible;
}

double average_clustering(const Graph& g) {
  if (g.num_vertices() == 0) return 0.0;
  double total = 0.0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) total += local_clustering(g, v);
  return total / g.num_vertices();
}

std::uint64_t triangle_count(const Graph& g) {
  std::uint64_t total = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) total += triangles_through(g, v);
  return total / 3;  // each triangle seen from its three corners
}

double global_clustering(const Graph& g) {
  std::uint64_t triples = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    triples += d * (d - 1) / 2;
  }
  if (triples == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) /
         static_cast<double>(triples);
}

double degree_assortativity(const Graph& g) {
  // Newman's formulation over directed arc endpoints (each undirected edge
  // contributes both orientations, which symmetrizes the correlation).
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  std::uint64_t arcs = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const double dv = g.degree(v);
    for (const Vertex u : g.neighbors(v)) {
      const double du = g.degree(u);
      sum_xy += dv * du;
      sum_x += dv;
      sum_x2 += dv * dv;
      ++arcs;
    }
  }
  if (arcs == 0) return 0.0;
  const double n = static_cast<double>(arcs);
  const double mean = sum_x / n;
  const double covariance = sum_xy / n - mean * mean;
  const double variance = sum_x2 / n - mean * mean;
  if (variance <= 1e-15) return 0.0;  // regular graph: undefined -> 0
  return covariance / variance;
}

double hill_tail_exponent(const Graph& g, std::uint32_t degree_min) {
  if (degree_min < 1) return 0.0;
  double log_sum = 0.0;
  std::uint64_t count = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = g.degree(v);
    if (d >= degree_min) {
      log_sum += std::log(static_cast<double>(d) / degree_min);
      ++count;
    }
  }
  if (count < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(count) / log_sum;
}

}  // namespace cobra::graph
