#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file properties.hpp
/// Structural analytics for characterizing generated networks — used by
/// the examples and tests to certify that each generator produces what it
/// claims (power-law tails, clustering of geometric graphs, etc.), and
/// exported for downstream users profiling their own edge lists.

namespace cobra::graph {

/// degree -> number of vertices with that degree (size = max_degree + 1).
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const Graph& g);

/// Local clustering coefficient of v: triangles through v divided by
/// C(d(v), 2); 0 for degree < 2. Requires a simple graph.
[[nodiscard]] double local_clustering(const Graph& g, Vertex v);

/// Average of local clustering over all vertices (Watts–Strogatz form).
[[nodiscard]] double average_clustering(const Graph& g);

/// Global clustering (transitivity): 3 * triangles / connected triples.
[[nodiscard]] double global_clustering(const Graph& g);

/// Number of triangles in the graph (each counted once).
[[nodiscard]] std::uint64_t triangle_count(const Graph& g);

/// Degree assortativity: the Pearson correlation of degrees across edges
/// (Newman). In [-1, 1]; negative for hub-and-spoke networks. Returns 0
/// for degree-regular graphs (zero variance).
[[nodiscard]] double degree_assortativity(const Graph& g);

/// Hill estimator of the power-law tail exponent gamma from the degrees
/// at or above `degree_min` (gamma = 1 + 1/mean(ln(d/d_min))). Returns 0
/// when fewer than 10 degrees qualify.
[[nodiscard]] double hill_tail_exponent(const Graph& g, std::uint32_t degree_min);

}  // namespace cobra::graph
