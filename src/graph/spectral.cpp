#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "rng/splitmix64.hpp"

namespace cobra::graph {

double cut_conductance(const Graph& g, const std::vector<bool>& in_set) {
  if (in_set.size() != g.num_vertices()) {
    throw std::invalid_argument("cut_conductance: mask size mismatch");
  }
  std::uint64_t vol_s = 0;
  std::uint64_t boundary = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!in_set[v]) continue;
    vol_s += g.degree(v);
    for (const Vertex u : g.neighbors(v)) {
      if (!in_set[u]) ++boundary;
    }
  }
  const std::uint64_t vol_rest = g.volume() - vol_s;
  const std::uint64_t vol_min = std::min(vol_s, vol_rest);
  if (vol_min == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(boundary) / static_cast<double>(vol_min);
}

double exact_conductance_small(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  if (n < 2 || n > 24) {
    throw std::invalid_argument("exact_conductance_small: 2 <= n <= 24");
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<bool> mask(n);
  // Enumerate subsets containing vertex 0 only (complement symmetry halves
  // the work); cut_conductance takes the min-volume side anyway.
  const std::uint32_t subsets = 1u << (n - 1);
  for (std::uint32_t bits = 1; bits < subsets; ++bits) {
    mask.assign(n, false);
    mask[0] = true;
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      if ((bits >> i) & 1u) mask[i + 1] = true;
    }
    best = std::min(best, cut_conductance(g, mask));
  }
  return best;
}

namespace {

/// y = W_s x where W_s = (I + D^{-1/2} A D^{-1/2}) / 2 is the symmetrized
/// lazy walk operator (same spectrum as the lazy walk matrix).
void apply_lazy_sym(const Graph& g, const std::vector<double>& inv_sqrt_deg,
                    const std::vector<double>& x, std::vector<double>& y) {
  const std::uint32_t n = g.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    double acc = 0.0;
    for (const Vertex u : g.neighbors(v)) {
      acc += x[u] * inv_sqrt_deg[u];
    }
    y[v] = 0.5 * x[v] + 0.5 * acc * inv_sqrt_deg[v];
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

SpectralResult lazy_walk_spectrum(const Graph& g, std::uint32_t max_iterations,
                                  double tolerance) {
  const std::uint32_t n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("lazy_walk_spectrum: n >= 2");
  if (g.min_degree() == 0) {
    throw std::invalid_argument("lazy_walk_spectrum: isolated vertex");
  }

  std::vector<double> inv_sqrt_deg(n);
  std::vector<double> top(n);  // top eigenvector of W_s: D^{1/2} 1, normalized
  for (Vertex v = 0; v < n; ++v) {
    const double d = g.degree(v);
    inv_sqrt_deg[v] = 1.0 / std::sqrt(d);
    top[v] = std::sqrt(d);
  }
  const double top_norm = norm(top);
  for (double& t : top) t /= top_norm;

  // Deterministic pseudo-random start vector, deflated against `top`.
  std::vector<double> x(n);
  std::uint64_t s = 0x5eeded5eeded5eedULL;
  for (Vertex v = 0; v < n; ++v) {
    x[v] = static_cast<double>(rng::splitmix64_next(s) >> 11) * 0x1.0p-53 - 0.5;
  }
  const double proj0 = dot(x, top);
  for (Vertex v = 0; v < n; ++v) x[v] -= proj0 * top[v];
  double x_norm = norm(x);
  if (x_norm == 0.0) {
    x[0] = 1.0;
    x_norm = 1.0;
  }
  for (double& e : x) e /= x_norm;

  SpectralResult result;
  std::vector<double> y(n);
  double prev_lambda = 2.0;
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    apply_lazy_sym(g, inv_sqrt_deg, x, y);
    // Re-deflate each iteration: roundoff reintroduces the top component.
    const double proj = dot(y, top);
    for (Vertex v = 0; v < n; ++v) y[v] -= proj * top[v];
    const double y_norm = norm(y);
    if (y_norm == 0.0) {
      // x was (numerically) in the top eigenspace only: gap is maximal.
      result.lambda2 = 0.0;
      result.converged = true;
      result.iterations = it + 1;
      break;
    }
    const double lambda = dot(x, y);  // Rayleigh quotient (x normalized)
    for (Vertex v = 0; v < n; ++v) x[v] = y[v] / y_norm;
    result.iterations = it + 1;
    result.lambda2 = lambda;
    if (std::abs(lambda - prev_lambda) < tolerance) {
      result.converged = true;
      break;
    }
    prev_lambda = lambda;
  }

  result.lambda2 = std::clamp(result.lambda2, 0.0, 1.0);
  result.spectral_gap = 1.0 - result.lambda2;
  // Fiedler vector of the walk: D^{-1/2} times the symmetric eigenvector.
  result.fiedler.resize(n);
  for (Vertex v = 0; v < n; ++v) result.fiedler[v] = x[v] * inv_sqrt_deg[v];
  return result;
}

double sweep_cut_conductance(const Graph& g, const std::vector<double>& vector) {
  const std::uint32_t n = g.num_vertices();
  if (vector.size() != n || n < 2) {
    throw std::invalid_argument("sweep_cut_conductance: bad input");
  }
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](Vertex a, Vertex b) { return vector[a] < vector[b]; });

  // Incremental sweep: maintain vol(S) and |∂S| as vertices join S.
  std::vector<bool> in_set(n, false);
  std::uint64_t vol_s = 0;
  std::int64_t boundary = 0;
  double best = std::numeric_limits<double>::infinity();
  const std::uint64_t vol_total = g.volume();
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    const Vertex v = order[i];
    in_set[v] = true;
    vol_s += g.degree(v);
    for (const Vertex u : g.neighbors(v)) {
      boundary += in_set[u] ? -1 : +1;  // edges to S stop being boundary
    }
    const std::uint64_t vol_min = std::min(vol_s, vol_total - vol_s);
    if (vol_min == 0) continue;
    best = std::min(best, static_cast<double>(boundary) /
                              static_cast<double>(vol_min));
  }
  return best;
}

ConductanceEstimate estimate_conductance(const Graph& g) {
  const SpectralResult spec = lazy_walk_spectrum(g);
  ConductanceEstimate est;
  // The Cheeger inequality for the *non-lazy* normalized Laplacian gap
  // lambda: lambda/2 <= Phi <= sqrt(2 lambda). The lazy gap is half the
  // non-lazy one, so lambda = 2 * spectral_gap(lazy).
  const double lambda = 2.0 * spec.spectral_gap;
  est.spectral_gap = spec.spectral_gap;
  est.cheeger_lower = lambda / 2.0;
  est.cheeger_upper = std::sqrt(2.0 * lambda);
  est.sweep_cut_upper = sweep_cut_conductance(g, spec.fiedler);
  return est;
}

double cycle_lazy_gap(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("cycle_lazy_gap: n >= 3");
  return (1.0 - std::cos(2.0 * std::numbers::pi / n)) / 2.0;
}

double hypercube_lazy_gap(std::uint32_t dimensions) {
  if (dimensions < 1) throw std::invalid_argument("hypercube_lazy_gap: d >= 1");
  return 1.0 / dimensions;
}

double complete_lazy_gap(std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("complete_lazy_gap: n >= 2");
  return static_cast<double>(n) / (2.0 * (n - 1));
}

}  // namespace cobra::graph
