#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

/// \file spectral.hpp
/// Spectral machinery for Theorem 8's conductance bound. The experiment
/// needs a *measured* conductance Φ_G for each graph; exact conductance is
/// NP-hard, so the library provides the standard sandwich:
///
///   λ/2  <=  Φ_G  <=  sqrt(2 λ)          (discrete Cheeger inequality)
///
/// where λ is the spectral gap of the lazy random-walk matrix, computed by
/// power iteration with deflation against the stationary vector. Two
/// complementary estimators tighten the upper side:
///   * `sweep_cut_conductance` — the conductance of the best sweep cut of
///     the approximate Fiedler vector (a genuine cut, hence a true upper
///     bound on Φ_G);
///   * `exact_conductance_small` — brute force over all subsets for n <= 24
///     (tests calibrate the estimators against it).
///
/// Conventions: conductance of S is |∂S| / vol(S) with vol(S) ≤ vol(V)/2,
/// exactly as the paper's §2 defines it.

namespace cobra::graph {

/// Conductance of the cut defined by `in_set` (true = inside S). Computes
/// |∂S| / min(vol(S), vol(V\S)). Degenerate cuts (empty/full) return +inf.
[[nodiscard]] double cut_conductance(const Graph& g,
                                     const std::vector<bool>& in_set);

/// Exact conductance by subset enumeration. Requires 2 <= n <= 24 (cost
/// 2^n); intended for calibrating the estimators in tests.
[[nodiscard]] double exact_conductance_small(const Graph& g);

/// Result of the power-iteration eigensolve on the lazy walk matrix
/// W = (I + D^{-1} A) / 2.
struct SpectralResult {
  double lambda2 = 0.0;       ///< second-largest eigenvalue of lazy W
  double spectral_gap = 0.0;  ///< 1 - lambda2  (of the lazy walk)
  std::vector<double> fiedler;  ///< approximate second eigenvector
  std::uint32_t iterations = 0;
  bool converged = false;
};

/// Power iteration with deflation against the stationary distribution
/// (pi_v proportional to deg(v)). Tolerance is on the eigenvalue estimate's
/// successive change. The graph must be connected and non-empty.
[[nodiscard]] SpectralResult lazy_walk_spectrum(const Graph& g,
                                                std::uint32_t max_iterations = 50000,
                                                double tolerance = 1e-10);

/// Cheeger-interval estimate of the conductance, plus a sweep-cut upper
/// bound (a true cut, so ub is always attainable).
struct ConductanceEstimate {
  double cheeger_lower = 0.0;  ///< gap / 2   <= Phi
  double cheeger_upper = 0.0;  ///< sqrt(2 gap) >= Phi
  double sweep_cut_upper = 0.0;  ///< Phi <= conductance of best sweep cut
  double spectral_gap = 0.0;

  /// The working point estimate used in experiment ratios: the sweep-cut
  /// value (an actual cut's conductance, the standard practice).
  [[nodiscard]] double point() const noexcept { return sweep_cut_upper; }
};

[[nodiscard]] ConductanceEstimate estimate_conductance(const Graph& g);

/// Conductance of the best sweep cut of `vector` (sorted by value, all n-1
/// prefixes tried). Requires a connected graph with >= 2 vertices.
[[nodiscard]] double sweep_cut_conductance(const Graph& g,
                                           const std::vector<double>& vector);

/// Closed-form reference gaps used by tests:
/// cycle C_n lazy gap = (1 - cos(2 pi / n)) / 2.
[[nodiscard]] double cycle_lazy_gap(std::uint32_t n);
/// hypercube Q_d lazy gap = 1 / d... (non-lazy gap 2/d, halved by laziness).
[[nodiscard]] double hypercube_lazy_gap(std::uint32_t dimensions);
/// complete K_n lazy gap = n / (2 (n-1)).
[[nodiscard]] double complete_lazy_gap(std::uint32_t n);

}  // namespace cobra::graph
