#include "graph/tensor_product.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"

namespace cobra::graph {

namespace {

void check_product_size(const Graph& g) {
  const std::uint64_t n = g.num_vertices();
  if (n < 2) throw std::invalid_argument("tensor product: n >= 2");
  if (n * n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("tensor product: n^2 exceeds 2^32");
  }
}

}  // namespace

Graph tensor_product(const Graph& g) {
  check_product_size(g);
  const std::uint32_t n = g.num_vertices();
  GraphBuilder b(n * n);
  // Each product edge {(u,u'), (v,v')} corresponds to the *ordered* pair of
  // G-edges; to emit each undirected product edge once, iterate arcs of G
  // for the first coordinate (u < v via arc dedup below) and all arcs for
  // the second. Simplest correct form: emit when the product ids are
  // ordered.
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : g.neighbors(u)) {
      for (Vertex up = 0; up < n; ++up) {
        for (const Vertex vp : g.neighbors(up)) {
          const Vertex a = tensor_id(u, up, n);
          const Vertex c = tensor_id(v, vp, n);
          if (a < c) b.add_edge(a, c);
        }
      }
    }
  }
  return b.build();
}

Digraph walt_pair_digraph(const Graph& g) {
  check_product_size(g);
  if (!g.is_regular()) {
    throw std::invalid_argument("walt_pair_digraph: graph must be regular");
  }
  if (!g.is_simple()) {
    throw std::invalid_argument("walt_pair_digraph: graph must be simple");
  }
  const std::uint32_t n = g.num_vertices();
  const double d = g.degree(0);

  std::vector<Digraph::Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(n) * n * static_cast<std::size_t>(d) *
               static_cast<std::size_t>(d));
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex up = 0; up < n; ++up) {
      const Vertex source = tensor_id(u, up, n);
      if (u == up) {
        // S1: lower pebble moves to v u.a.r.; higher copies with prob 1/2.
        // Arc weights (d+1) into S1, 1 into S2; total out weight 2d^2.
        for (const Vertex v : g.neighbors(u)) {
          arcs.push_back({source, tensor_id(v, v, n), d + 1.0});
          for (const Vertex vp : g.neighbors(u)) {
            if (vp == v) continue;
            arcs.push_back({source, tensor_id(v, vp, n), 1.0});
          }
        }
      } else {
        // S2: independent moves; weight 1 per (v, v') pair, total d^2.
        for (const Vertex v : g.neighbors(u)) {
          for (const Vertex vp : g.neighbors(up)) {
            arcs.push_back({source, tensor_id(v, vp, n), 1.0});
          }
        }
      }
    }
  }
  return Digraph(n * n, arcs);
}

WaltPairStationary walt_pair_stationary(std::uint32_t n) noexcept {
  const double denom = static_cast<double>(n) * n + n;
  return {2.0 / denom, 1.0 / denom};
}

}  // namespace cobra::graph
