#pragma once

#include <cstdint>

#include "graph/digraph.hpp"
#include "graph/graph.hpp"

/// \file tensor_product.hpp
/// The §4 tensor-product construction behind Lemma 11. The coupled walk of
/// two Walt pebbles i < j on a d-regular graph G is exactly a random walk
/// on a *weighted directed* version D(G x G) of the tensor product:
///
///   * vertices are ordered pairs (u, u'); S1 = the diagonal {(u, u)},
///     S2 = the off-diagonal pairs;
///   * from an S2 vertex both pebbles move independently: every arc
///     (u,u') -> (v,v') with v in N(u), v' in N(u') has weight 1
///     (probability 1/d^2);
///   * from an S1 vertex the lower-order pebble moves uniformly and the
///     higher-order one copies it with probability 1/2: arcs back into S1
///     carry weight d+1, arcs into S2 carry weight 1 (probabilities
///     (d+1)/2d^2 and 1/2d^2).
///
/// The resulting digraph is weight-balanced (Eulerian), so its stationary
/// distribution is closed-form: pi(S1 vertex) = 2/(n^2+n), pi(S2 vertex)
/// = 1/(n^2+n) — the numbers Lemma 11's collision bound comes from.

namespace cobra::graph {

/// Linear id of the pair (u, u') in the n^2-vertex product.
[[nodiscard]] constexpr Vertex tensor_id(Vertex u, Vertex u_prime,
                                         std::uint32_t n) noexcept {
  return static_cast<Vertex>(static_cast<std::uint64_t>(u) * n + u_prime);
}

/// Inverse of tensor_id.
[[nodiscard]] constexpr std::pair<Vertex, Vertex> tensor_pair(
    Vertex id, std::uint32_t n) noexcept {
  return {static_cast<Vertex>(id / n), static_cast<Vertex>(id % n)};
}

/// True when the product vertex lies on the diagonal S1.
[[nodiscard]] constexpr bool is_diagonal(Vertex id, std::uint32_t n) noexcept {
  return id / n == id % n;
}

/// The plain (undirected, unweighted) tensor product G x G: (u,u')~(v,v')
/// iff u~v and u'~v'. Self-loops arise from... they do not: u~v excludes
/// u==v in simple G, so the product of a simple graph is simple except for
/// possible parallel-free loops — none here. Requires n^2 <= 2^32 and a
/// simple G.
[[nodiscard]] Graph tensor_product(const Graph& g);

/// The paper's weighted directed D(G x G) for a d-regular simple G (the
/// coupled two-pebble Walt walk). Requires regularity (checked).
[[nodiscard]] Digraph walt_pair_digraph(const Graph& g);

/// Closed-form stationary values of walt_pair_digraph's walk.
struct WaltPairStationary {
  double diagonal;      ///< pi of each S1 vertex: 2 / (n^2 + n)
  double off_diagonal;  ///< pi of each S2 vertex: 1 / (n^2 + n)
};
[[nodiscard]] WaltPairStationary walt_pair_stationary(std::uint32_t n) noexcept;

}  // namespace cobra::graph
