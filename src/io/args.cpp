#include "io/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace cobra::io {

namespace {

bool parse_bool(const std::string& text) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") return true;
  if (text == "0" || text == "false" || text == "no" || text == "off") return false;
  throw std::invalid_argument("Args: not a boolean: " + text);
}

}  // namespace

Args::Args(int argc, const char* const* argv,
           const std::vector<std::string>& allowed) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";  // bare flag
    }
    if (name.empty()) throw std::invalid_argument("Args: empty flag name");
    if (!allowed.empty() &&
        std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      throw std::invalid_argument("Args: unknown flag --" + name);
    }
    flags_[name] = value;
  }
}

bool Args::has(const std::string& name) const { return flags_.contains(name); }

std::string Args::get(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t used = 0;
    const std::int64_t value = std::stoll(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + name + " is not an integer: " +
                                it->second);
  }
}

std::uint64_t Args::get_uint(const std::string& name, std::uint64_t fallback) const {
  const std::int64_t value = get_int(name, static_cast<std::int64_t>(fallback));
  if (value < 0) {
    throw std::invalid_argument("Args: --" + name + " must be non-negative");
  }
  return static_cast<std::uint64_t>(value);
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: --" + name + " is not a number: " +
                                it->second);
  }
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : parse_bool(it->second);
}

}  // namespace cobra::io
