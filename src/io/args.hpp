#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file args.hpp
/// A tiny `--flag=value` / `--flag value` command-line parser for the
/// examples and benches. Deliberately minimal: flags are strings, values
/// are parsed on demand with typed getters and defaults, unknown flags are
/// an error (catches typos in experiment scripts).

namespace cobra::io {

class Args {
 public:
  /// Parse argv. `allowed` lists the permitted flag names (without the
  /// leading dashes); an empty list disables the check. Throws
  /// std::invalid_argument on malformed or unknown flags.
  Args(int argc, const char* const* argv,
       const std::vector<std::string>& allowed = {});

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters with defaults. Throw std::invalid_argument when the
  /// value cannot be parsed as the requested type.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cobra::io
