#include "io/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace cobra::io {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_header(const std::vector<std::string>& names) {
  write_row(names);
}

void CsvWriter::write_values(const std::vector<double>& values) {
  std::ostringstream line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) line << ',';
    line << values[i];
  }
  out_ << line.str() << '\n';
}

}  // namespace cobra::io
