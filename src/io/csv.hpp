#pragma once

#include <fstream>
#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal RFC-4180-ish CSV writer so experiment sweeps can be exported for
/// external plotting. Cells containing commas, quotes, or newlines are
/// quoted; everything else is written verbatim.

namespace cobra::io {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure to open.
  explicit CsvWriter(const std::string& path);

  /// Writes one row. Each cell is escaped as needed.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: header row then rows of doubles.
  void write_header(const std::vector<std::string>& names);
  void write_values(const std::vector<double>& values);

  /// Escape a single cell per RFC 4180 (exposed for tests).
  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace cobra::io
