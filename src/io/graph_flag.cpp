#include "io/graph_flag.hpp"

#include <stdexcept>

#include "gen/registry.hpp"

namespace cobra::io {

std::string graph_spec_from_args(const Args& args,
                                 const std::string& fallback_spec) {
  return args.get(kGraphFlag, fallback_spec);
}

graph::Graph graph_from_args(const Args& args, const std::string& fallback_spec,
                             const gen::GenOptions& opts) {
  const std::string spec = graph_spec_from_args(args, fallback_spec);
  try {
    return gen::build_graph(spec, opts);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string(e.what()) +
                                "\nknown graph specs:\n" +
                                gen::grammar_help());
  }
}

}  // namespace cobra::io
