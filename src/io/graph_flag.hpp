#pragma once

#include <string>

#include "gen/families.hpp"
#include "graph/graph.hpp"
#include "io/args.hpp"

/// \file graph_flag.hpp
/// The shared `--graph <spec>` flag: every bench and example that takes a
/// graph accepts one GraphSpec string (gen/spec.hpp grammar) and builds it
/// through the registry — one construction path instead of per-binary
/// hand-rolled families. Binaries add "graph" to their allowed-flag list
/// and call graph_from_args with their default spec.

namespace cobra::io {

/// Name of the flag ("graph"), exported so allowed-lists stay in sync.
inline constexpr const char* kGraphFlag = "graph";

/// Build the graph named by --graph, or by `fallback_spec` when the flag is
/// absent. Throws std::invalid_argument (with the registry's grammar table
/// appended) on a malformed spec, so a typo'd sweep fails with usage text
/// instead of a bare message.
[[nodiscard]] graph::Graph graph_from_args(const Args& args,
                                           const std::string& fallback_spec,
                                           const gen::GenOptions& opts = {});

/// The spec string that graph_from_args would build (flag value or
/// fallback) — lets binaries echo the resolved spec into tables/JSON.
[[nodiscard]] std::string graph_spec_from_args(const Args& args,
                                               const std::string& fallback_spec);

}  // namespace cobra::io
