#include "io/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"

namespace cobra::io {

namespace {

/// Next content line (skipping comments/blank); false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;  // blank
    if (line[first] == '#') continue;          // comment
    return true;
  }
  return false;
}

}  // namespace

graph::Graph read_edge_list(std::istream& in) {
  std::string line;
  if (!next_content_line(in, line)) {
    throw std::invalid_argument("read_edge_list: missing header line");
  }
  std::istringstream header(line);
  std::int64_t n = -1;
  header >> n;
  std::string junk;
  if (header.fail() || n < 0 || (header >> junk)) {
    throw std::invalid_argument("read_edge_list: bad header: " + line);
  }

  graph::GraphBuilder builder(static_cast<std::uint32_t>(n));
  while (next_content_line(in, line)) {
    std::istringstream edge(line);
    std::int64_t u = -1, v = -1;
    edge >> u >> v;
    if (edge.fail() || (edge >> junk)) {
      throw std::invalid_argument("read_edge_list: bad edge line: " + line);
    }
    if (u < 0 || v < 0 || u >= n || v >= n) {
      throw std::invalid_argument("read_edge_list: endpoint out of range: " +
                                  line);
    }
    builder.add_edge(static_cast<graph::Vertex>(u),
                     static_cast<graph::Vertex>(v));
  }
  return builder.build();
}

graph::Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_edge_list: cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, const graph::Graph& g) {
  out << "# cobra edge list: <n> header, then one undirected edge per line\n";
  out << g.num_vertices() << "\n";
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t self_arcs = 0;
    for (const graph::Vertex u : g.neighbors(v)) {
      if (u == v) {
        ++self_arcs;  // stored as two arcs per loop
      } else if (v < u) {
        out << v << " " << u << "\n";
      }
    }
    for (std::uint32_t loop = 0; loop < self_arcs / 2; ++loop) {
      out << v << " " << v << "\n";
    }
  }
}

void save_edge_list(const std::string& path, const graph::Graph& g) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("save_edge_list: cannot open " + path);
  write_edge_list(out, g);
}

}  // namespace cobra::io
