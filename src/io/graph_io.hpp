#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

/// \file graph_io.hpp
/// Plain-text edge-list persistence so downstream users can run the
/// simulators on their own networks. Format, one record per line:
///
///     # comment (also: empty lines are skipped)
///     <num_vertices>            (header, first non-comment line)
///     <u> <v>                   (one undirected edge per line)
///
/// Vertices are 0-based integers below num_vertices. Parallel edges and
/// self-loops round-trip verbatim (the reader does not simplify; callers
/// wanting simple graphs pass the result through GraphBuilder::simplify
/// semantics by re-building).

namespace cobra::io {

/// Parse the edge-list format from a stream. Throws std::invalid_argument
/// on malformed input (bad header, out-of-range endpoints, trailing junk).
[[nodiscard]] graph::Graph read_edge_list(std::istream& in);

/// Read from a file path; std::runtime_error if it cannot be opened.
[[nodiscard]] graph::Graph load_edge_list(const std::string& path);

/// Serialize in the same format (each undirected edge emitted once, from
/// the lower endpoint; self-loops once).
void write_edge_list(std::ostream& out, const graph::Graph& g);

/// Write to a file path; std::runtime_error if it cannot be opened.
void save_edge_list(const std::string& path, const graph::Graph& g);

}  // namespace cobra::io
