#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace cobra::io {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  if (headers_.empty()) throw std::invalid_argument("Table: needs >= 1 column");
}

void Table::set_align(std::size_t column, Align align) {
  aligns_.at(column) = align;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::fmt_int(long long value) { return std::to_string(value); }

std::string Table::fmt_sci(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(precision);
  out << value;
  return out.str();
}

namespace {

std::string pad(const std::string& text, std::size_t width, Align align) {
  if (text.size() >= width) return text;
  const std::string fill(width - text.size(), ' ');
  return align == Align::Right ? fill + text : text + fill;
}

}  // namespace

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << "   ";
    out << pad(headers_[c], widths[c], aligns_[c]);
  }
  out << "\n";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out << "   ";
    out << std::string(widths[c], '-');
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out << "   ";
      out << pad(row[c], widths[c], aligns_[c]);
    }
    out << "\n";
  }
  return out.str();
}

std::string Table::render_markdown() const {
  std::ostringstream out;
  out << "|";
  for (const auto& h : headers_) out << " " << h << " |";
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (aligns_[c] == Align::Right ? " ---: |" : " :--- |");
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << "|";
    for (const auto& cell : row) out << " " << cell << " |";
    out << "\n";
  }
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.render();
}

}  // namespace cobra::io
