#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Aligned console tables — the experiment harness's output format. Every
/// bench binary prints one or more of these; EXPERIMENTS.md quotes them
/// verbatim, so formatting stability matters (fixed column order, explicit
/// alignment, no locale dependence).

namespace cobra::io {

/// Column alignment within a table.
enum class Align { Left, Right };

class Table {
 public:
  /// Creates a table with the given column headers, all right-aligned by
  /// default (numeric tables dominate).
  explicit Table(std::vector<std::string> headers);

  /// Override alignment for one column.
  void set_align(std::size_t column, Align align);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number formatting helpers used pervasively by the benches.
  static std::string fmt(double value, int precision = 2);
  static std::string fmt_int(long long value);
  static std::string fmt_sci(double value, int precision = 2);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Render with a header rule, e.g.
  ///   n      cover   ratio
  ///   ----   -----   -----
  ///   128      412    1.02
  [[nodiscard]] std::string render() const;

  /// Render as GitHub-flavored markdown (used to paste into EXPERIMENTS.md).
  [[nodiscard]] std::string render_markdown() const;

  /// Stream the plain rendering.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cobra::io
