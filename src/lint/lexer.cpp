#include "lint/lexer.hpp"

#include <cctype>

namespace cobra::lint {

namespace {

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Scanner state that survives newlines.
enum class Mode {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

}  // namespace

LexedFile lex(const std::string& text) {
  LexedFile out;
  out.code.emplace_back();
  out.comment.emplace_back();

  Mode mode = Mode::kCode;
  // Raw-string closer: ")delim\"" captured at the R"delim( opener.
  std::string raw_closer;

  std::size_t i = 0;
  const std::size_t n = text.size();
  auto code_line = [&]() -> std::string& { return out.code.back(); };
  auto comment_line = [&]() -> std::string& { return out.comment.back(); };
  auto newline = [&]() {
    out.code.emplace_back();
    out.comment.emplace_back();
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      // A `//` comment ends at the newline unless the previous character
      // continues the line; block comments, raw strings (and, formally,
      // ordinary literals — unterminated ones) continue.
      if (mode == Mode::kLineComment) {
        const bool continued = i > 0 && text[i - 1] == '\\';
        if (!continued) mode = Mode::kCode;
      } else if (mode == Mode::kString || mode == Mode::kChar) {
        // Unterminated literal: the compiler rejects this anyway; recover
        // at the newline so one bad line cannot blank the rest of the
        // file.
        mode = Mode::kCode;
      }
      newline();
      ++i;
      continue;
    }

    switch (mode) {
      case Mode::kCode: {
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
          code_line() += "  ";
          i += 2;
          mode = Mode::kLineComment;
          continue;
        }
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
          code_line() += "  ";
          i += 2;
          mode = Mode::kBlockComment;
          continue;
        }
        // R"delim( opener — only when the R is not the tail of a longer
        // identifier (LR"..." etc. are encoding prefixes; treat any
        // identifier character before R as part of the prefix and accept).
        if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
          std::size_t d = i + 2;
          std::string delim;
          while (d < n && text[d] != '(' && text[d] != '\n' &&
                 delim.size() <= 16) {
            delim += text[d];
            ++d;
          }
          if (d < n && text[d] == '(') {
            raw_closer = ")" + delim + "\"";
            code_line() += "R\"";
            code_line().append(delim.size() + 1, ' ');
            i = d + 1;
            mode = Mode::kRawString;
            continue;
          }
        }
        if (c == '"') {
          code_line() += '"';
          ++i;
          mode = Mode::kString;
          continue;
        }
        // A ' is a char literal only when it does not follow an
        // identifier character (C++14 digit separators: 1'000'000).
        if (c == '\'' &&
            (code_line().empty() || !ident_char(code_line().back()))) {
          code_line() += '\'';
          ++i;
          mode = Mode::kChar;
          continue;
        }
        code_line() += c;
        ++i;
        break;
      }
      case Mode::kLineComment:
        comment_line() += c;
        code_line() += ' ';
        ++i;
        break;
      case Mode::kBlockComment:
        if (c == '*' && i + 1 < n && text[i + 1] == '/') {
          code_line() += "  ";
          i += 2;
          mode = Mode::kCode;
          continue;
        }
        comment_line() += c;
        code_line() += ' ';
        ++i;
        break;
      case Mode::kString:
      case Mode::kChar: {
        const char close = mode == Mode::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n) {
          code_line() += "  ";
          i += 2;
          continue;
        }
        if (c == close) {
          code_line() += close;
          ++i;
          mode = Mode::kCode;
          continue;
        }
        code_line() += ' ';
        ++i;
        break;
      }
      case Mode::kRawString: {
        if (c == ')' && text.compare(i, raw_closer.size(), raw_closer) == 0) {
          code_line().append(raw_closer.size() - 1, ' ');
          code_line() += '"';
          i += raw_closer.size();
          mode = Mode::kCode;
          continue;
        }
        code_line() += ' ';
        ++i;
        break;
      }
    }
  }
  return out;
}

bool is_word_at(const std::string& code, std::size_t pos,
                const std::string& word) {
  if (pos + word.size() > code.size()) return false;
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < code.size() && ident_char(code[end])) return false;
  return true;
}

std::size_t find_word(const std::string& code, const std::string& word,
                      std::size_t from) {
  for (std::size_t pos = code.find(word, from); pos != std::string::npos;
       pos = code.find(word, pos + 1)) {
    if (is_word_at(code, pos, word)) return pos;
  }
  return std::string::npos;
}

}  // namespace cobra::lint
