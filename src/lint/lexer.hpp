#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file lexer.hpp
/// The cobra_lint scanner: a comment/string/raw-string aware pass over a
/// C++ translation unit that separates CODE from NON-CODE so every rule in
/// rules.hpp can match identifiers without tripping over `"std::rand"`
/// inside a string literal or a `// don't use time()` remark. This is the
/// property that makes the linter trustworthy enough to gate CI — a naive
/// grep would drown the real findings in quoted/commented mentions (the
/// repo's own documentation discusses the banned constructs constantly).
///
/// The scanner does NOT build a parse tree; it produces a line-aligned
/// "code view" in which the bodies of comments, string literals, char
/// literals, and raw strings are blanked with spaces (delimiters kept), so
///   * byte columns in the code view match the original file, and
///   * identifier/word matching on the code view can never fire inside
///     text the compiler treats as data.
/// Comment TEXT is preserved separately per line, because that is where
/// the `cobra-lint: allow(...)` suppression annotations live.
///
/// Handled forms: `//` line comments (with line-continuation `\`),
/// `/* ... */` block comments spanning lines, "..." and '...' literals
/// with escape sequences, and R"delim( ... )delim" raw strings spanning
/// lines. Preprocessor directives are ordinary code to the scanner
/// (rules.hpp reads `#include` paths straight from the code view).

namespace cobra::lint {

/// One file after scanning: `code[i]` and `comment[i]` are the code-only
/// and comment-only views of 0-based source line `i` (same length as the
/// original line for `code`; `comment` holds just the comment text with
/// its leading `//` / `/*` marker stripped).
struct LexedFile {
  std::vector<std::string> code;
  std::vector<std::string> comment;

  [[nodiscard]] std::size_t line_count() const noexcept { return code.size(); }
};

/// Scan `text` (full file contents). Never throws: an unterminated
/// string/comment simply blanks through to end-of-file, which is also
/// what the compiler would complain about.
[[nodiscard]] LexedFile lex(const std::string& text);

/// True when `code[pos..]` starts identifier `word` on a word boundary
/// (the character before `pos` and after the match are not identifier
/// characters). Helper shared by the rules.
[[nodiscard]] bool is_word_at(const std::string& code, std::size_t pos,
                              const std::string& word);

/// Find the next word-boundary occurrence of `word` in `code` at or after
/// `from`; npos when absent.
[[nodiscard]] std::size_t find_word(const std::string& code,
                                    const std::string& word,
                                    std::size_t from = 0);

}  // namespace cobra::lint
