#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "lint/lexer.hpp"

namespace cobra::lint {

namespace {

[[nodiscard]] std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Whitespace runs collapsed to one space — the baseline's line-number-
/// independent snippet normal form.
[[nodiscard]] std::string normalize_ws(const std::string& s) {
  std::string out;
  bool in_space = true;  // also strips leading whitespace
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

/// One parsed `cobra-lint: allow(...)` annotation.
struct Annotation {
  std::vector<std::string> rules;
  bool has_reason = false;
  bool malformed = false;  ///< marker present but the allow list unparsable
};

/// Parse the annotation out of one line's comment text (empty rules when
/// the comment carries no cobra-lint marker).
[[nodiscard]] Annotation parse_annotation(const std::string& comment) {
  Annotation ann;
  const std::size_t marker = comment.find("cobra-lint:");
  if (marker == std::string::npos) return ann;
  const std::size_t allow = comment.find("allow", marker);
  if (allow == std::string::npos) {
    ann.malformed = true;
    return ann;
  }
  const std::size_t open = comment.find('(', allow);
  const std::size_t close =
      open == std::string::npos ? std::string::npos : comment.find(')', open);
  if (close == std::string::npos) {
    ann.malformed = true;
    return ann;
  }
  std::string inside = comment.substr(open + 1, close - open - 1);
  std::size_t start = 0;
  while (start <= inside.size()) {
    std::size_t comma = inside.find(',', start);
    if (comma == std::string::npos) comma = inside.size();
    const std::string rule = trim(inside.substr(start, comma - start));
    if (!rule.empty()) ann.rules.push_back(rule);
    start = comma + 1;
  }
  if (ann.rules.empty()) {
    ann.malformed = true;
    return ann;
  }
  ann.has_reason = !trim(comment.substr(close + 1)).empty();
  return ann;
}

/// True when annotation rule `ann` covers finding rule `rule` — exact id
/// or family prefix ("D2" covers "D2-unordered").
[[nodiscard]] bool rule_covered(const std::string& ann,
                                const std::string& rule) {
  if (ann == rule) return true;
  return rule.size() > ann.size() && rule.compare(0, ann.size(), ann) == 0 &&
         rule[ann.size()] == '-';
}

[[nodiscard]] bool blank_code(const std::string& code_line) {
  return trim(code_line).empty();
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] std::string baseline_key(const Finding& f) {
  return f.rule + "|" + f.file + "|" + normalize_ws(f.snippet);
}

void render_one(std::ostringstream& os, const Finding& f, bool baselined) {
  os << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
     << f.line << ", \"rule\": \"" << json_escape(f.rule)
     << "\", \"severity\": \"" << json_escape(f.severity)
     << "\", \"message\": \"" << json_escape(f.message)
     << "\", \"snippet\": \"" << json_escape(f.snippet)
     << "\", \"baselined\": " << (baselined ? "true" : "false") << "}";
}

}  // namespace

std::vector<Finding> lint_text(const std::string& rel_path,
                               const std::string& text) {
  const std::vector<std::string> raw = split_lines(text);
  const LexedFile lexed = lex(text);
  std::vector<Finding> findings =
      run_rules(FileInfo{rel_path}, raw, lexed);

  // Parse annotations per line; a malformed or reason-less allow() is
  // itself a finding, so a suppression can never silently rot.
  std::vector<Annotation> anns(lexed.line_count());
  for (std::size_t i = 0; i < lexed.line_count(); ++i) {
    anns[i] = parse_annotation(lexed.comment[i]);
    if (anns[i].malformed) {
      Finding f;
      f.file = rel_path;
      f.line = static_cast<std::uint32_t>(i + 1);
      f.rule = "lint-annotation";
      f.message = "cobra-lint marker without a parsable allow(RULE[,...])";
      f.snippet = trim(raw[i]);
      findings.push_back(std::move(f));
    } else if (!anns[i].rules.empty() && !anns[i].has_reason) {
      Finding f;
      f.file = rel_path;
      f.line = static_cast<std::uint32_t>(i + 1);
      f.rule = "lint-annotation";
      f.message = "allow() without a justification — say why the site is ok";
      f.snippet = trim(raw[i]);
      findings.push_back(std::move(f));
    }
  }

  // A well-formed annotation suppresses matching findings on its own
  // line; a standalone comment BLOCK (consecutive code-free lines)
  // directly above a code line also covers it, so a justification too
  // long for one line stays one annotation.
  auto suppressed = [&](const Finding& f) {
    if (f.rule == "lint-annotation") return false;
    const std::size_t idx = f.line - 1;
    auto covers = [&](std::size_t a) {
      if (a >= anns.size() || anns[a].malformed || !anns[a].has_reason) {
        return false;
      }
      return std::any_of(anns[a].rules.begin(), anns[a].rules.end(),
                         [&](const std::string& r) {
                           return rule_covered(r, f.rule);
                         });
    };
    if (covers(idx)) return true;
    for (std::size_t a = idx; a >= 1 && blank_code(lexed.code[a - 1]); --a) {
      if (covers(a - 1)) return true;
    }
    return false;
  };
  std::erase_if(findings, suppressed);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_tree(const std::string& repo_root,
                               const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path base = fs::path(repo_root) / root;
    if (!fs::exists(base)) {
      throw std::runtime_error("lint root missing: " + base.string());
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
        continue;
      }
      files.push_back(
          fs::relative(entry.path(), repo_root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> all;
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(repo_root) / rel, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + rel);
    std::ostringstream os;
    os << in.rdbuf();
    std::vector<Finding> found = lint_text(rel, os.str());
    all.insert(all.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return all;
}

std::string render_baseline(const std::vector<Finding>& all) {
  std::vector<std::string> keys;
  keys.reserve(all.size());
  for (const Finding& f : all) keys.push_back(baseline_key(f));
  std::sort(keys.begin(), keys.end());
  std::string out =
      "# cobra_lint baseline — grandfathered findings, one per line:\n"
      "# rule|file|normalized snippet. Regenerate with --write-baseline;\n"
      "# prefer fixing or annotating the site over re-baselining it.\n";
  for (const std::string& k : keys) {
    out += k;
    out += '\n';
  }
  return out;
}

BaselineSplit apply_baseline(const std::vector<Finding>& all,
                             const std::string& baseline_text) {
  std::map<std::string, std::size_t> budget;
  for (const std::string& line : split_lines(baseline_text)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    ++budget[t];
  }
  BaselineSplit split;
  for (const Finding& f : all) {
    const auto it = budget.find(baseline_key(f));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      split.known.push_back(f);
    } else {
      split.fresh.push_back(f);
    }
  }
  return split;
}

std::string render_findings_json(const BaselineSplit& split) {
  std::ostringstream os;
  os << "{\n  \"findings\": [\n";
  bool first = true;
  for (const Finding& f : split.fresh) {
    if (!first) os << ",\n";
    first = false;
    render_one(os, f, false);
  }
  for (const Finding& f : split.known) {
    if (!first) os << ",\n";
    first = false;
    render_one(os, f, true);
  }
  os << "\n  ],\n  \"fresh\": " << split.fresh.size()
     << ",\n  \"baselined\": " << split.known.size() << "\n}\n";
  return os.str();
}

std::string render_findings_table(const BaselineSplit& split) {
  std::ostringstream os;
  auto row = [&](const Finding& f, const char* tag) {
    os << tag << "  " << f.file << ":" << f.line << "  [" << f.rule << "] "
       << f.message << "\n        " << f.snippet << "\n";
  };
  for (const Finding& f : split.fresh) row(f, "FRESH");
  for (const Finding& f : split.known) row(f, "known");
  os << split.fresh.size() << " fresh finding(s), " << split.known.size()
     << " baselined\n";
  return os.str();
}

}  // namespace cobra::lint
