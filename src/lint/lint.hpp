#pragma once

#include <string>
#include <vector>

#include "lint/rules.hpp"

/// \file lint.hpp
/// The cobra_lint driver: annotation suppression, baselines, tree
/// walking, and rendering — everything the tools/cobra_lint binary does,
/// split out so the tests can lint embedded snippets without touching the
/// filesystem (same library-behind-a-thin-binary pattern as bench/gate.hpp
/// and bench/chaos.hpp).
///
/// Suppression grammar (parsed out of comments, so it works inside the
/// code the rules scan):
///     // cobra-lint: allow(RULE[,RULE...]) justification
/// RULE is a rule id ("D2-unordered") or a family prefix ("D2"). The
/// annotation suppresses matching findings on its own line, or — when it
/// is a standalone comment line — on the next code line. A justification
/// is mandatory: an allow() without one produces a `lint-annotation`
/// finding, so grandfathered sites always carry their reason in-tree.
///
/// Baselines grandfather known findings without annotations (used for
/// third-party-shaped code where editing the line is worse than listing
/// it). One finding per line, `rule|file|normalized snippet`; matching is
/// multiset semantics on that triple, so line renumbering does not churn
/// the baseline but a NEW violation of the same rule in the same file
/// still fails.

namespace cobra::lint {

/// lint_text: the unit-test entry — run rules + annotation handling over
/// one in-memory file.
[[nodiscard]] std::vector<Finding> lint_text(const std::string& rel_path,
                                             const std::string& text);

/// Lint every *.hpp/*.cpp under `roots` (paths relative to `repo_root`),
/// in sorted path order. Throws std::runtime_error when a root is
/// missing/unreadable.
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::string& repo_root, const std::vector<std::string>& roots);

/// Split findings against a baseline: `fresh` are CI failures, `known`
/// matched a baseline line (and consumed it).
struct BaselineSplit {
  std::vector<Finding> fresh;
  std::vector<Finding> known;
};

[[nodiscard]] std::string render_baseline(const std::vector<Finding>& all);
[[nodiscard]] BaselineSplit apply_baseline(const std::vector<Finding>& all,
                                           const std::string& baseline_text);

/// Machine-readable findings: {"findings": [{file, line, rule, severity,
/// message, snippet, baselined}, ...], "fresh": N, "baselined": M}.
[[nodiscard]] std::string render_findings_json(const BaselineSplit& split);

/// The human table (one row per finding, fresh first).
[[nodiscard]] std::string render_findings_table(const BaselineSplit& split);

}  // namespace cobra::lint
