#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <string>
#include <string_view>

namespace cobra::lint {

namespace {

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// The code view joined with newlines, so call arguments spanning lines
/// scan as one string, plus the offset table mapping positions back to
/// 1-based source lines.
struct FlatCode {
  std::string text;
  std::vector<std::size_t> line_start;  ///< text offset of each 0-based line

  explicit FlatCode(const LexedFile& lexed) {
    for (const std::string& line : lexed.code) {
      line_start.push_back(text.size());
      text += line;
      text += '\n';
    }
  }

  [[nodiscard]] std::uint32_t line_of(std::size_t pos) const {
    const auto it =
        std::upper_bound(line_start.begin(), line_start.end(), pos);
    return static_cast<std::uint32_t>(it - line_start.begin());
  }
};

/// Path split: "src/core/foo.hpp" -> top "src", module "core". A file
/// directly in bench/ or tools/ has its top as the module ("bench").
struct PathParts {
  std::string top;
  std::string module;
};

[[nodiscard]] PathParts split_path(const std::string& rel_path) {
  PathParts parts;
  const std::size_t first = rel_path.find('/');
  if (first == std::string::npos) return parts;
  parts.top = rel_path.substr(0, first);
  if (parts.top == "src") {
    const std::size_t second = rel_path.find('/', first + 1);
    if (second != std::string::npos) {
      parts.module = rel_path.substr(first + 1, second - first - 1);
    }
  } else {
    parts.module = parts.top;
  }
  return parts;
}

[[nodiscard]] std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Skip whitespace (incl. newlines) in the flat code view.
[[nodiscard]] std::size_t skip_space(const std::string& text,
                                     std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// The balanced (...) or {...} argument text starting at the opener at
/// `open`; empty optional-ish "" + ok=false when unbalanced to EOF.
struct Balanced {
  std::string args;
  bool ok = false;
  std::size_t end = 0;  ///< position just past the closer
};

[[nodiscard]] Balanced balanced_args(const std::string& text,
                                     std::size_t open) {
  Balanced out;
  if (open >= text.size()) return out;
  const char opener = text[open];
  const char closer = opener == '(' ? ')' : '}';
  if (opener != '(' && opener != '{') return out;
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == opener) {
      ++depth;
      if (depth == 1) continue;
    } else if (c == closer) {
      --depth;
      if (depth == 0) {
        out.ok = true;
        out.end = i + 1;
        return out;
      }
    }
    if (depth >= 1) out.args += c;
  }
  return out;
}

[[nodiscard]] bool contains_word(const std::string& text,
                                 const std::string& word) {
  return find_word(text, word) != std::string::npos;
}

/// True when the word at `pos` is used as a call: next non-space char is
/// an opening paren.
[[nodiscard]] bool is_call(const std::string& text, std::size_t word_end) {
  const std::size_t next = skip_space(text, word_end);
  return next < text.size() && text[next] == '(';
}

class RuleRunner {
 public:
  RuleRunner(const FileInfo& info, const std::vector<std::string>& raw_lines,
             const LexedFile& lexed)
      : info_(info),
        raw_(raw_lines),
        flat_(lexed),
        parts_(split_path(info.rel_path)) {}

  [[nodiscard]] std::vector<Finding> run() {
    rule_rand();
    rule_random_device();
    rule_clock();
    rule_thread_id();
    rule_unordered();
    rule_rng_seed();
    rule_thread_key();
    rule_atomic_order();
    rule_layering();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(findings_);
  }

 private:
  void add(std::size_t pos, const std::string& rule,
           const std::string& message) {
    add_line(flat_.line_of(pos), rule, message);
  }

  void add_line(std::uint32_t line, const std::string& rule,
                const std::string& message) {
    Finding f;
    f.file = info_.rel_path;
    f.line = line;
    f.rule = rule;
    f.message = message;
    if (line >= 1 && line <= raw_.size()) f.snippet = trimmed(raw_[line - 1]);
    findings_.push_back(std::move(f));
  }

  void for_each_word(const std::string& word, auto&& fn) {
    for (std::size_t pos = find_word(flat_.text, word);
         pos != std::string::npos;
         pos = find_word(flat_.text, word, pos + 1)) {
      fn(pos);
    }
  }

  [[nodiscard]] bool in_src() const { return parts_.top == "src"; }
  [[nodiscard]] bool in_module(std::string_view m) const {
    return in_src() && parts_.module == m;
  }

  // D1-rand: the C RNG family is banned outright, everywhere — a seedable
  // global stream can never honor the (plan, seed) purity contract.
  void rule_rand() {
    for (const char* word : {"rand", "srand", "rand_r", "random_shuffle"}) {
      for_each_word(word, [&](std::size_t pos) {
        if (!is_call(flat_.text, pos + std::string_view(word).size())) return;
        add(pos, "D1-rand",
            std::string(word) + "() draws from process-global hidden state");
      });
    }
  }

  // D1-random-device: hardware entropy is the root-seed provider's
  // business (src/rng); anywhere else it injects nondeterminism.
  void rule_random_device() {
    if (in_module("rng")) return;
    for_each_word("random_device", [&](std::size_t pos) {
      add(pos, "D1-random-device",
          "std::random_device outside src/rng breaks (plan, seed) purity");
    });
  }

  // D1-clock: system_clock/time()/clock() are nondeterministic DATA and
  // are flagged everywhere under src/; monotonic clocks are legitimate
  // TIMING in src/obs and in bench/tools measurement code only.
  void rule_clock() {
    if (!in_src() && parts_.top != "bench" && parts_.top != "tools") return;
    for (const char* word : {"system_clock", "gettimeofday", "localtime",
                             "gmtime", "mktime", "ctime"}) {
      for_each_word(word, [&](std::size_t pos) {
        add(pos, "D1-clock",
            std::string(word) + " reads the wall clock (nondeterministic)");
      });
    }
    for (const char* word : {"time", "clock"}) {
      for_each_word(word, [&](std::size_t pos) {
        if (!is_call(flat_.text, pos + std::string_view(word).size())) return;
        add(pos, "D1-clock",
            std::string(word) + "() reads the wall clock (nondeterministic)");
      });
    }
    if (in_src() && !in_module("obs")) {
      for (const char* word : {"steady_clock", "high_resolution_clock"}) {
        for_each_word(word, [&](std::size_t pos) {
          add(pos, "D1-clock",
              std::string(word) +
                  " outside src/obs — timing belongs to the obs layer");
        });
      }
    }
  }

  // D1-thread-id: a thread id reaching any computation makes the result a
  // function of the scheduler, which is the exact failure mode the
  // bit-identical-across-thread-counts tests exist to catch.
  void rule_thread_id() {
    for_each_word("get_id", [&](std::size_t pos) {
      add(pos, "D1-thread-id",
          "this_thread::get_id() is scheduler-dependent data");
    });
    for_each_word("thread", [&](std::size_t pos) {
      const std::size_t after = pos + 6;
      if (flat_.text.compare(after, 4, "::id") != 0) return;
      if (after + 4 < flat_.text.size() && ident_char(flat_.text[after + 4])) {
        return;
      }
      add(pos, "D1-thread-id", "std::thread::id is scheduler-dependent data");
    });
  }

  // D2-unordered: hash-container iteration order is load-factor and
  // implementation dependent; one order-dependent use feeding output
  // breaks cross-host reproducibility. Membership-only sites annotate.
  void rule_unordered() {
    if (!in_src()) return;
    for (const char* word :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
      for_each_word(word, [&](std::size_t pos) {
        // The #include line is not the hazard — the use sites are, and
        // each of those is flagged (and individually annotatable).
        const std::uint32_t line = flat_.line_of(pos);
        if (line >= 1 && line <= raw_.size() &&
            trimmed(raw_[line - 1]).compare(0, 8, "#include") == 0) {
          return;
        }
        add(pos, "D2-unordered",
            std::string("std::") + word +
                " iteration order is not deterministic");
      });
    }
  }

  // D3-rng-seed: every per-chunk/per-round stream in src/core must be
  // keyed through rng::derive_seed, or two call sites can correlate.
  void rule_rng_seed() {
    if (!in_module("core")) return;
    for (const char* word : {"Engine", "Xoshiro256"}) {
      for_each_word(word, [&](std::size_t pos) {
        std::size_t next = skip_space(flat_.text, pos + std::string_view(word).size());
        if (next >= flat_.text.size()) return;
        // `Engine name(args)` / `Engine name{args}` declarations: hop over
        // one identifier to the initializer.
        if (ident_char(flat_.text[next])) {
          std::size_t e = next;
          while (e < flat_.text.size() && ident_char(flat_.text[e])) ++e;
          next = skip_space(flat_.text, e);
        }
        if (next >= flat_.text.size()) return;
        const char c = flat_.text[next];
        if (c != '(' && c != '{') return;  // reference/alias/template use
        const Balanced args = balanced_args(flat_.text, next);
        if (!args.ok || trimmed(args.args).empty()) return;
        // A forwarded engine (`Engine(gen)`-style copy) or a reference
        // parameter list is not a seed construction; only flag argument
        // lists that look like seed material without derive_seed.
        if (contains_word(args.args, "derive_seed")) return;
        if (contains_word(args.args, "Engine") ||
            contains_word(args.args, "gen")) {
          return;  // copy/move of an existing stream
        }
        // A lone identifier naming a generator (gen, parent_gen, rng_) is
        // also a copy, not seed material.
        const std::string t = trimmed(args.args);
        if (!t.empty() &&
            std::all_of(t.begin(), t.end(),
                        [](char ch) { return ident_char(ch); }) &&
            (t.find("gen") != std::string::npos ||
             t.find("rng") != std::string::npos)) {
          return;
        }
        add(pos, "D3-rng-seed",
            std::string(word) +
                " constructed without derive_seed — streams may correlate");
      });
    }
  }

  // D3-thread-key: derive_seed keys must identify WORK (chunk, round,
  // vertex), never the WORKER that happened to execute it.
  void rule_thread_key() {
    if (!in_src()) return;
    for_each_word("derive_seed", [&](std::size_t pos) {
      const std::size_t open = skip_space(flat_.text, pos + 11);
      if (open >= flat_.text.size() || flat_.text[open] != '(') return;
      const Balanced args = balanced_args(flat_.text, open);
      if (!args.ok) return;
      for (const char* bad :
           {"worker", "worker_id", "worker_index", "thread_id",
            "thread_index", "thread_rank", "tid", "get_id"}) {
        if (contains_word(args.args, bad)) {
          add(pos, "D3-thread-key",
              std::string("derive_seed keyed by '") + bad +
                  "' — schedules must not depend on which thread ran");
          return;
        }
      }
    });
  }

  // D4-atomic-order: seq_cst-by-default either hides a needed ordering
  // decision or pays for fences a hot path cannot afford; both are bugs
  // worth a compile-time nudge.
  void rule_atomic_order() {
    if (!in_src()) return;
    for (const char* word : {"load", "store", "fetch_add", "fetch_sub",
                             "fetch_or", "fetch_and", "fetch_xor",
                             "exchange"}) {
      for_each_word(word, [&](std::size_t pos) {
        // Member access only: `.load(` / `->load(`.
        if (pos == 0) return;
        const char prev = flat_.text[pos - 1];
        if (prev != '.' &&
            !(prev == '>' && pos >= 2 && flat_.text[pos - 2] == '-')) {
          return;
        }
        const std::size_t open =
            skip_space(flat_.text, pos + std::string_view(word).size());
        if (open >= flat_.text.size() || flat_.text[open] != '(') return;
        const Balanced args = balanced_args(flat_.text, open);
        if (!args.ok) return;
        // Substring, not word: the argument is memory_order_relaxed /
        // std::memory_order::acquire / a local alias containing the name.
        if (args.args.find("memory_order") != std::string::npos) return;
        add(pos, "D4-atomic-order",
            std::string(".") + word +
                "() without an explicit std::memory_order");
      });
    }
  }

  // D5-layering: includes may only point down the README layer diagram.
  void rule_layering() {
    const int own = layer_tier(info_.rel_path);
    if (own < 0) return;
    for (std::size_t i = 0; i < raw_.size(); ++i) {
      const std::string line = trimmed(raw_[i]);
      if (line.empty() || line[0] != '#') continue;
      std::size_t p = 1;
      while (p < line.size() &&
             std::isspace(static_cast<unsigned char>(line[p])) != 0) {
        ++p;
      }
      if (line.compare(p, 7, "include") != 0) continue;
      const std::size_t q1 = line.find('"', p + 7);
      if (q1 == std::string::npos) continue;  // <system> include
      const std::size_t q2 = line.find('"', q1 + 1);
      if (q2 == std::string::npos) continue;
      const std::string target = line.substr(q1 + 1, q2 - q1 - 1);
      if (target.find('/') == std::string::npos) continue;  // same-dir
      // Quoted project includes resolve against src/ (the one include
      // root) except inside bench/, where "gate.hpp"-style same-dir
      // includes were already skipped above.
      const int target_tier = layer_tier("src/" + target);
      if (target_tier < 0) continue;
      if (target_tier > own) {
        add_line(static_cast<std::uint32_t>(i + 1), "D5-layering",
                 "include of '" + target +
                     "' climbs the layer diagram (see README Layout)");
      }
    }
  }

  const FileInfo& info_;
  const std::vector<std::string>& raw_;
  FlatCode flat_;
  PathParts parts_;
  std::vector<Finding> findings_;
};

}  // namespace

int layer_tier(const std::string& rel_path) {
  static const std::map<std::string, int, std::less<>> kTier = {
      {"util", 0},  {"rng", 0},      {"obs", 0},  {"numeric", 0},
      {"parallel", 1}, {"stats", 1}, {"graph", 2}, {"gen", 2},
      {"io", 3},    {"lint", 3},     {"core", 4}, {"sim", 5},
      {"bench", 6}, {"tools", 7},
  };
  const PathParts parts = split_path(rel_path);
  const auto it = kTier.find(parts.module);
  return it == kTier.end() ? -1 : it->second;
}

std::vector<Finding> run_rules(const FileInfo& info,
                               const std::vector<std::string>& raw_lines,
                               const LexedFile& lexed) {
  return RuleRunner(info, raw_lines, lexed).run();
}

}  // namespace cobra::lint
