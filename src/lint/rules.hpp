#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

/// \file rules.hpp
/// The determinism & concurrency rule catalog cobra_lint enforces. Every
/// guarantee this reproduction makes — trajectories bit-identical across
/// 1/2/8 threads and sparse/dense representations, schedules that are pure
/// functions of (plan, seed) — is only as strong as the absence of the
/// constructs below, so they are checked statically here instead of
/// waiting for a test or the chaos fuzzer to catch the symptom.
///
/// Rule families (ids are `family-detail`, annotations may name either):
///
///   D1  nondeterminism sources
///       D1-rand           std::rand / srand / random_shuffle anywhere
///       D1-random-device  std::random_device outside src/rng
///       D1-clock          wall/monotonic clock reads outside src/obs and
///                         bench/tools timing code (system_clock and
///                         time()/clock()/localtime are flagged everywhere
///                         in src — wall-clock values are nondeterministic
///                         DATA, not just timing)
///       D1-thread-id      this_thread::get_id / std::thread::id used in
///                         code (a thread id in any computation breaks
///                         run-to-run determinism)
///   D2  iteration-order hazards
///       D2-unordered      std::unordered_{map,set,multimap,multiset}
///                         anywhere in src/ — iteration order is
///                         implementation- and run-dependent; sorted
///                         containers or annotated membership-only sites
///                         are required
///   D3  RNG discipline
///       D3-rng-seed       constructing Engine/Xoshiro256 in src/core from
///                         anything that does not flow through derive_seed
///       D3-thread-key     derive_seed keys mixing in worker/thread
///                         identity (worker, worker_id, thread_id, tid, …)
///                         — a schedule keyed by who ran it is the exact
///                         bug the thread-count-invariance contract bans
///   D4  concurrency hygiene
///       D4-atomic-order   atomic .load()/.store()/.fetch_*()/.exchange()
///                         without an explicit std::memory_order in src/
///                         (seq_cst-by-default hides the author's intent
///                         and costs fences the hot paths cannot afford)
///   D5  layering
///       D5-layering       an #include that climbs the layer diagram in
///                         README (core/ must not include sim/ or bench/,
///                         nothing in src/ may include bench/ or tools/, …)
///
/// A finding is suppressed by annotating the offending line (or the line
/// above, as a standalone comment) with
///     // cobra-lint: allow(RULE[,RULE...]) justification text
/// where RULE is a rule id (`D2-unordered`) or family (`D2`). The
/// justification is mandatory; an allow() without one is itself a finding
/// (`lint-annotation`).

namespace cobra::lint {

/// One rule violation (or annotation defect) at a source line.
struct Finding {
  std::string file;     ///< repo-relative path, forward slashes
  std::uint32_t line = 0;  ///< 1-based
  std::string rule;     ///< e.g. "D2-unordered"
  std::string severity = "error";  ///< "error" | "warn"
  std::string message;
  std::string snippet;  ///< the trimmed source line
};

/// Identity of the file being linted; `rel_path` drives the per-directory
/// scoping (src/core vs bench vs …).
struct FileInfo {
  std::string rel_path;
};

/// Layer tier of a repo-relative path under the README layer diagram;
/// higher tiers may include lower ones, never the reverse. Returns -1 for
/// paths outside the diagram (tests/, examples/ — not linted, and their
/// includes of src are unconstrained).
[[nodiscard]] int layer_tier(const std::string& rel_path);

/// Run every rule over one lexed file. `raw_lines` are the original
/// source lines (the code view blanks string bodies, and D5 needs the
/// #include path text). Annotation suppression is NOT applied here —
/// lint.cpp owns that — so rule unit tests see every raw firing.
[[nodiscard]] std::vector<Finding> run_rules(
    const FileInfo& info, const std::vector<std::string>& raw_lines,
    const LexedFile& lexed);

}  // namespace cobra::lint
