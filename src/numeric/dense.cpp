#include "numeric/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cobra::numeric {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (other.n_ != n_) throw std::invalid_argument("max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::is_symmetric(double tolerance) const {
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (std::abs(at(i, j) - at(j, i)) > tolerance) return false;
    }
  }
  return true;
}

std::vector<double> solve_linear(const Matrix& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("solve_linear: size mismatch");

  // Working copies: augmented LU with partial pivoting.
  Matrix lu = a;
  std::vector<double> x = b;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Pivot: largest magnitude in the column at or below the diagonal.
    std::size_t pivot = col;
    double best = std::abs(lu.at(col, col));
    for (std::size_t row = col + 1; row < n; ++row) {
      const double candidate = std::abs(lu.at(row, col));
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-14) throw std::runtime_error("solve_linear: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(lu.at(col, j), lu.at(pivot, j));
      }
      std::swap(x[col], x[pivot]);
    }
    // Eliminate below.
    const double diag = lu.at(col, col);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = lu.at(row, col) / diag;
      if (factor == 0.0) continue;
      lu.at(row, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) {
        lu.at(row, j) -= factor * lu.at(col, j);
      }
      x[row] -= factor * x[col];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= lu.at(i, j) * x[j];
    x[i] = acc / lu.at(i, i);
  }
  return x;
}

std::vector<double> symmetric_eigenvalues(const Matrix& a, double tolerance,
                                          std::size_t max_sweeps) {
  if (!a.is_symmetric(1e-9)) {
    throw std::invalid_argument("symmetric_eigenvalues: matrix not symmetric");
  }
  const std::size_t n = a.size();
  Matrix m = a;

  auto off_diagonal_norm = [&] {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        total += m.at(i, j) * m.at(i, j);
      }
    }
    return std::sqrt(total);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() < tolerance) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m.at(p, q);
        if (std::abs(apq) < tolerance / (static_cast<double>(n) * static_cast<double>(n))) continue;
        const double app = m.at(p, p);
        const double aqq = m.at(q, q);
        // Jacobi rotation annihilating (p, q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m.at(k, p);
          const double mkq = m.at(k, q);
          m.at(k, p) = c * mkp - s * mkq;
          m.at(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m.at(p, k);
          const double mqk = m.at(q, k);
          m.at(p, k) = c * mpk - s * mqk;
          m.at(q, k) = s * mpk + c * mqk;
        }
      }
    }
  }

  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = m.at(i, i);
  std::sort(eigenvalues.begin(), eigenvalues.end());
  return eigenvalues;
}

}  // namespace cobra::numeric
