#pragma once

#include <cstddef>
#include <vector>

/// \file dense.hpp
/// A small dense linear-algebra kernel for the library's *exact* baselines:
/// solving hitting-time systems (graph/exact_hitting.hpp) and computing
/// directed-Laplacian spectra (graph/directed_cheeger.hpp). Scope is
/// deliberately minimal — row-major square matrices up to a few thousand —
/// with numerically standard algorithms: partially-pivoted LU and the
/// cyclic Jacobi eigenvalue method for symmetric matrices. No BLAS
/// dependency; these run in test/bench setup paths, not simulation loops.

namespace cobra::numeric {

/// Row-major square matrix.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t n, double fill = 0.0)
      : n_(n), data_(n * n, fill) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double& at(std::size_t row, std::size_t col) {
    return data_[row * n_ + col];
  }
  [[nodiscard]] double at(std::size_t row, std::size_t col) const {
    return data_[row * n_ + col];
  }
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  /// Identity matrix of order n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// max |A_ij - B_ij| (used by tests); sizes must match.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// True if |A_ij - A_ji| <= tolerance for all i, j.
  [[nodiscard]] bool is_symmetric(double tolerance = 1e-12) const;

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b by LU with partial pivoting. Throws std::invalid_argument
/// on size mismatch and std::runtime_error on (numerical) singularity.
/// A is copied; O(n^3).
[[nodiscard]] std::vector<double> solve_linear(const Matrix& a,
                                               const std::vector<double>& b);

/// All eigenvalues of a symmetric matrix by the cyclic Jacobi method,
/// returned ascending. Throws std::invalid_argument if not symmetric.
/// O(n^3) per sweep, typically < 15 sweeps.
[[nodiscard]] std::vector<double> symmetric_eigenvalues(
    const Matrix& a, double tolerance = 1e-12, std::size_t max_sweeps = 64);

}  // namespace cobra::numeric
