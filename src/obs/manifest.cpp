#include "obs/manifest.hpp"

#include <thread>

// Configure-time facts; src/CMakeLists.txt defines both, but keep the
// fallbacks so the file still compiles standalone (e.g. in a test rig).
#ifndef COBRA_GIT_SHA
#define COBRA_GIT_SHA "unknown"
#endif
#ifndef COBRA_BUILD_TYPE
#define COBRA_BUILD_TYPE "unknown"
#endif

namespace cobra::obs {

Manifest current_manifest() {
  Manifest m;
  m.git_sha = COBRA_GIT_SHA;
  m.build_type = COBRA_BUILD_TYPE;
  m.hardware_concurrency = std::thread::hardware_concurrency();
  return m;
}

std::string Manifest::render_json(const std::string& indent) const {
  std::string out;
  out += "{\n";
  out += indent + "  \"git_sha\": \"" + git_sha + "\",\n";
  out += indent + "  \"build_type\": \"" + build_type + "\",\n";
  out += indent + "  \"hardware_concurrency\": " +
         std::to_string(hardware_concurrency) + "\n";
  out += indent + "}";
  return out;
}

}  // namespace cobra::obs
