#pragma once

#include <string>

/// \file manifest.hpp
/// The run manifest: who/what/where facts stamped into every bench and
/// sweep JSON so a record can never again be read without knowing it came
/// from a 1-core container, a Debug build, or a stale commit. The git sha
/// and build type are baked in at configure time (COBRA_GIT_SHA /
/// COBRA_BUILD_TYPE compile definitions, "unknown" when git is absent);
/// hardware_concurrency is read at process start. Run-shaped fields
/// (graph spec, seed, thread count) are stamped by the bench harness
/// itself, which owns them.

namespace cobra::obs {

struct Manifest {
  std::string git_sha;        ///< short sha at configure time, or "unknown"
  std::string build_type;     ///< CMAKE_BUILD_TYPE, or "unknown"
  unsigned hardware_concurrency = 0;

  /// Render as a JSON object, each line indented by `indent` beyond the
  /// opening brace (the same hanging style JsonReporter uses).
  [[nodiscard]] std::string render_json(const std::string& indent) const;
};

/// The manifest for this process.
[[nodiscard]] Manifest current_manifest();

}  // namespace cobra::obs
