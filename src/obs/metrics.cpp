#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/manifest.hpp"

namespace cobra::obs {

// ------------------------------------------------------------- Timer -----

namespace {

/// Stable per-thread slot index: hash the thread id once, cache it.
std::size_t this_thread_slot() noexcept {
  thread_local const std::size_t slot =
      // cobra-lint: allow(D1-thread-id) contention-striping only: the slot
      // spreads timer updates across cache lines, and every reader SUMS
      // all slots, so no reported value depends on which thread hit which.
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % Timer::kSlots;
  return slot;
}

}  // namespace

void Timer::add(std::uint64_t ns, std::uint64_t count) noexcept {
  Slot& s = slots_[this_thread_slot()];
  s.ns.fetch_add(ns, std::memory_order_relaxed);
  s.count.fetch_add(count, std::memory_order_relaxed);
}

std::uint64_t Timer::total_ns() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) total += s.ns.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Timer::count() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

void Timer::reset() noexcept {
  for (Slot& s : slots_) {
    s.ns.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------- Registry -----

/// Storage lives in deques so references handed out by counter()/gauge()/
/// timer() stay valid as the registry grows; the maps only index into them.
struct Registry::Impl {
  mutable std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Timer> timers;
  // string (not string_view) keys: the registry owns the names.
  // cobra-lint: allow(D2-unordered) name->slot lookup only; every
  // consumer that ENUMERATES goes through snapshot(), which sorts.
  std::unordered_map<std::string, Counter*> counter_by_name;
  // cobra-lint: allow(D2-unordered) lookup only (see counter_by_name).
  std::unordered_map<std::string, Gauge*> gauge_by_name;
  // cobra-lint: allow(D2-unordered) lookup only (see counter_by_name).
  std::unordered_map<std::string, Timer*> timer_by_name;
};

Registry::Impl& Registry::impl() const {
  // One process-global Impl: Registry itself is stateless, so obs::registry()
  // can hand out Registry by value-semantics-free reference without an
  // initialization order dance.
  static Impl instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.counter_by_name.find(std::string(name));
  if (it != im.counter_by_name.end()) return *it->second;
  Counter& c = im.counters.emplace_back();
  im.counter_by_name.emplace(std::string(name), &c);
  return c;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.gauge_by_name.find(std::string(name));
  if (it != im.gauge_by_name.end()) return *it->second;
  Gauge& g = im.gauges.emplace_back();
  im.gauge_by_name.emplace(std::string(name), &g);
  return g;
}

Timer& Registry::timer(std::string_view name) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.timer_by_name.find(std::string(name));
  if (it != im.timer_by_name.end()) return *it->second;
  Timer& t = im.timers.emplace_back();
  im.timer_by_name.emplace(std::string(name), &t);
  return t;
}

std::vector<Sample> Registry::snapshot() const {
  Impl& im = impl();
  std::vector<Sample> out;
  {
    std::lock_guard lock(im.mu);
    out.reserve(im.counter_by_name.size() + im.gauge_by_name.size() +
                im.timer_by_name.size());
    for (const auto& [name, c] : im.counter_by_name)
      out.push_back({name, "counter", static_cast<double>(c->value()), 0});
    for (const auto& [name, g] : im.gauge_by_name)
      out.push_back({name, "gauge", g->value(), 0});
    for (const auto& [name, t] : im.timer_by_name)
      out.push_back({name, "timer", static_cast<double>(t->total_ns()) * 1e-9,
                     t->count()});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  for (Counter& c : im.counters) c.set(0);
  for (Gauge& g : im.gauges) g.set(0.0);
  for (Timer& t : im.timers) t.reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

// ---------------------------------------------------------- snapshot -----

std::string render_metrics_json() {
  const Manifest m = current_manifest();
  std::string out;
  out += "{\n";
  out += "  \"manifest\": " + m.render_json("  ") + ",\n";
  out += "  \"metrics\": [\n";
  const std::vector<Sample> samples = registry().snapshot();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", s.value);
    out += "    {\"name\": \"" + s.name + "\", \"kind\": \"" + s.kind +
           "\", \"value\": " + buf;
    if (s.kind == "timer")
      out += ", \"count\": " + std::to_string(s.count);
    out += "}";
    if (i + 1 < samples.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

bool write_metrics_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open metrics file '%s'\n", path.c_str());
    return false;
  }
  const std::string body = render_metrics_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok)
    std::fprintf(stderr, "obs: short write to metrics file '%s'\n",
                 path.c_str());
  return ok;
}

}  // namespace cobra::obs
