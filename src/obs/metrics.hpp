#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.hpp
/// The process-global metrics registry — named counters, gauges, and phase
/// timers that any layer (engine, runner, generators, checkpoint I/O,
/// fault registry) bumps and that `--metrics <path>` snapshots into a JSON
/// file next to every bench's records.
///
/// Design constraints, in priority order:
///
///   1. NEVER perturb results. Metrics read wall clocks and bump atomics;
///      they must not touch any RNG stream. Collection on vs off yields
///      bit-identical trajectories (pinned by tests/obs/test_inert.cpp).
///   2. Cheap on hot paths. Instrumented call sites cache a reference
///      (`static obs::Counter& c = obs::registry().counter("x")`), so the
///      steady-state cost is one relaxed fetch_add; the by-name lookup
///      happens once. Timers accumulate into thread-striped, cache-line
///      padded slots so concurrent pool workers do not ping-pong one line.
///   3. Compile-out-able. Building with -DCOBRA_OBS_LEVEL=0 turns the
///      *instrumentation helpers* (obs::count / obs::set_gauge /
///      obs::ScopedTimer / the trace layer) into no-ops that fold away.
///      The primitive types themselves (Counter/Gauge/Timer/Registry)
///      stay functional at every level, because subsystems with semantic
///      counting needs (the fault registry's `after = k` arming) build on
///      them — telemetry disappears, behavior does not.
///
/// Registration is by name: `registry().counter("frontier.dense_fallbacks")`
/// returns a stable reference (entries live in deques and are never
/// removed), `snapshot()` reads everything, `reset()` zeroes values while
/// keeping registrations — so cached references stay valid across resets.

#ifndef COBRA_OBS_LEVEL
#define COBRA_OBS_LEVEL 1
#endif

namespace cobra::obs {

/// Compile-time instrumentation level (see file comment). 0 compiles the
/// helpers and the trace layer out; >= 1 enables them.
inline constexpr int kLevel = COBRA_OBS_LEVEL;

/// Monotonic event count (relaxed atomics; safe from pool workers).
class Counter {
 public:
  /// Add `d`, returning the PREVIOUS value (fetch_add semantics — the
  /// fault registry's "fail from the k-th hit" arming needs the old
  /// count atomically with the bump).
  std::uint64_t add(std::uint64_t d = 1) noexcept {
    return v_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void set(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value (e.g. "current frontier size", "bytes resident").
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Accumulated phase time. Workers land on one of kSlots cache-line
/// padded slots (hashed from the thread id), so N pool threads timing the
/// same phase do not serialize on a single line; totals are summed at
/// snapshot time.
class Timer {
 public:
  static constexpr std::size_t kSlots = 16;

  void add(std::uint64_t ns, std::uint64_t count = 1) noexcept;

  [[nodiscard]] std::uint64_t total_ns() const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> count{0};
  };
  Slot slots_[kSlots];
};

/// One snapshot row; `value` is the counter value, gauge value, or the
/// timer's total seconds; `count` is nonzero for timers only.
struct Sample {
  std::string name;
  std::string kind;  ///< "counter" | "gauge" | "timer"
  double value = 0.0;
  std::uint64_t count = 0;
};

class Registry {
 public:
  /// By-name lookup-or-create; the returned reference is stable for the
  /// registry's lifetime (cache it at the call site).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  /// Every registered metric, sorted by name (deterministic output).
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Zero every value; registrations (and cached references) survive.
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-global registry.
Registry& registry();

/// Render `registry().snapshot()` plus the run manifest as a standalone
/// JSON document — what `--metrics <path>` writes.
[[nodiscard]] std::string render_metrics_json();

/// Write render_metrics_json() to `path`; reports failure on stderr and
/// returns false instead of silently losing the snapshot.
bool write_metrics_json(const std::string& path);

// ---------------------------------------------------------- helpers -----
// The compiled-out-able instrumentation layer: call sites use these, and
// at COBRA_OBS_LEVEL=0 they fold to nothing.

/// Bump the named counter by `d` (by-name lookup: fine on cold paths;
/// hot paths cache `registry().counter(...)` themselves).
inline void count(std::string_view name, std::uint64_t d = 1) {
  if constexpr (kLevel >= 1) registry().counter(name).add(d);
}

inline void set_gauge(std::string_view name, double v) {
  if constexpr (kLevel >= 1) registry().gauge(name).set(v);
}

/// RAII phase timer: accumulates the scope's wall time into `t` on exit.
/// A no-op (no clock call) at COBRA_OBS_LEVEL=0.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& t) noexcept : t_(&t) {
    if constexpr (kLevel >= 1) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if constexpr (kLevel >= 1) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      t_->add(static_cast<std::uint64_t>(ns));
    }
  }

 private:
  Timer* t_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace cobra::obs
