#pragma once

#include "obs/metrics.hpp"

/// \file metrics_observer.hpp
/// A sim::Runner observer that feeds the global metrics registry: one
/// counter bump + gauge store per observed round. Opt-in by construction —
/// the zero-observer Runner path compiles to the bare step loop, so
/// attaching this (or not) is exactly the "metrics on/off" toggle the
/// inertness tests exercise. Reads process state only; never touches the
/// RNG stream.

namespace cobra::obs {

class MetricsObserver {
 public:
  MetricsObserver()
      : rounds_(registry().counter("sim.observed_rounds")),
        runs_(registry().counter("sim.observed_runs")),
        active_(registry().gauge("sim.active_size")),
        peak_(registry().gauge("sim.peak_active_size")) {}

  template <class P>
  void start(const P& p) {
    runs_.add(1);
    active_.set(static_cast<double>(p.active().size()));
  }

  template <class P>
  void observe(const P& p) {
    rounds_.add(1);
    const double size = static_cast<double>(p.active().size());
    active_.set(size);
    if (size > peak_.value()) peak_.set(size);
  }

 private:
  Counter& rounds_;
  Counter& runs_;
  Gauge& active_;
  Gauge& peak_;
};

}  // namespace cobra::obs
