#include "obs/trace.hpp"

#include <cstdio>
#include <mutex>

#include "util/fault.hpp"

namespace cobra::obs {

namespace {

std::mutex g_mu;
std::FILE* g_file = nullptr;                 // guarded by g_mu
std::atomic<std::uint64_t> g_next_id{1};

}  // namespace

bool open_global_trace(const std::string& path) {
  std::lock_guard lock(g_mu);
  if (g_file != nullptr) {
    std::fclose(g_file);
    g_file = nullptr;
    detail::trace_armed.store(false, std::memory_order_relaxed);
  }
  g_file = std::fopen(path.c_str(), "wb");
  if (g_file == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace file '%s'\n", path.c_str());
    return false;
  }
  detail::trace_armed.store(true, std::memory_order_relaxed);
  return true;
}

void close_global_trace() {
  std::lock_guard lock(g_mu);
  // Disarm first: an engine racing past trace_enabled() into trace_round()
  // still takes g_mu, so it either lands before the close or finds g_file
  // null and drops the line — never a write to a closed stream.
  detail::trace_armed.store(false, std::memory_order_relaxed);
  if (g_file != nullptr) {
    std::fclose(g_file);
    g_file = nullptr;
  }
}

void trace_round(const RoundTrace& t) {
  // Fault site `trace.write` (GRACEFUL): a failed telemetry write drops
  // the line and counts it — it must never affect the simulation. Checked
  // before g_mu so the fault registry lock and the sink lock never nest
  // in this direction.
  if (util::fault::should_fail("trace.write")) {
    registry().counter("trace.lines_dropped").add(1);
    return;
  }
  char line[512];
  const int len = std::snprintf(
      line, sizeof(line),
      "{\"trace\": %llu, \"round\": %llu, \"frontier\": %llu, "
      "\"produced\": %llu, \"mode\": \"%s\", \"path\": \"%s\", "
      "\"switch\": \"%s\", \"chunks\": %llu, \"max_chunk\": %llu, "
      "\"mean_chunk\": %.6g, \"rng_blocks\": %llu, \"seconds\": %.6g}\n",
      static_cast<unsigned long long>(t.trace_id),
      static_cast<unsigned long long>(t.round),
      static_cast<unsigned long long>(t.frontier),
      static_cast<unsigned long long>(t.produced), t.mode, t.path,
      t.switch_reason, static_cast<unsigned long long>(t.chunks),
      static_cast<unsigned long long>(t.max_chunk), t.mean_chunk,
      static_cast<unsigned long long>(t.rng_blocks), t.seconds);
  if (len <= 0) return;
  std::lock_guard lock(g_mu);
  if (g_file == nullptr) return;  // closed between the gate check and here
  std::fwrite(line, 1, static_cast<std::size_t>(len), g_file);
}

void trace_fault(std::string_view site, std::uint64_t hit,
                 std::uint64_t fire, std::uint64_t round) {
  char line[256];
  const int len = std::snprintf(
      line, sizeof(line),
      "{\"fault\": \"%.*s\", \"hit\": %llu, \"fire\": %llu, "
      "\"round\": %llu}\n",
      static_cast<int>(site.size()), site.data(),
      static_cast<unsigned long long>(hit),
      static_cast<unsigned long long>(fire),
      static_cast<unsigned long long>(round));
  if (len <= 0) return;
  std::lock_guard lock(g_mu);
  if (g_file == nullptr) return;
  std::fwrite(line, 1, static_cast<std::size_t>(len), g_file);
}

std::uint64_t next_trace_id() noexcept {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace cobra::obs
