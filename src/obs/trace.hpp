#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"  // COBRA_OBS_LEVEL / kLevel

/// \file trace.hpp
/// Per-round JSONL trace sink. When armed with `--trace <path>` (any
/// bench) the FrontierEngine appends one JSON line per expand() call:
///
///   {"trace": 1, "round": 12, "frontier": 4096, "produced": 11890,
///    "mode": "dense", "path": "parallel", "switch": "auto-grow",
///    "chunks": 32, "max_chunk": 201, "mean_chunk": 128.0,
///    "rng_blocks": 96, "seconds": 0.0013}
///
///   trace      engine instance id (several engines can share one file —
///              replicate() trials, multi-process sweeps via O_APPEND)
///   round      0-based expand() count for that engine
///   frontier   |input frontier|
///   produced   |output frontier| (post-coalescing)
///   mode       representation used this round: "sparse" | "dense"
///   path       execution path: "serial" | "parallel"
///   switch     why the mode is what it is: "" (no change), "auto-grow",
///              "auto-shrink", "forced-sparse", "forced-dense",
///              "dense-alloc-fallback"
///   chunks     OCCUPIED vertex-id chunks (chunk_size granularity) the
///              input frontier spanned — the units the parallel path
///              spreads over workers, reported on both paths
///   max_chunk / mean_chunk
///              input-frontier occupancy of the fullest occupied chunk
///              and the mean — the load-imbalance proxy
///   rng_blocks batched-RNG refills drawn during the step
///   seconds    expand() wall time
///
/// The disarmed cost is a single relaxed atomic load per expand() (the
/// same pattern as util::fault's global gate); at COBRA_OBS_LEVEL=0 the
/// gate is constexpr-false and every trace call folds away. Writing is
/// mutex-serialized per line, and lines are appended with one fwrite so
/// concurrent engines never interleave partial lines.

namespace cobra::obs {

/// One expand() observation; field meanings above.
struct RoundTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t round = 0;
  std::uint64_t frontier = 0;
  std::uint64_t produced = 0;
  const char* mode = "sparse";
  const char* path = "serial";
  const char* switch_reason = "";
  std::uint64_t chunks = 1;
  std::uint64_t max_chunk = 0;
  double mean_chunk = 0.0;
  std::uint64_t rng_blocks = 0;
  double seconds = 0.0;
};

/// Wall-time measurement for the trace's `seconds` field. Clock reads are
/// the obs layer's business — engine code holds a Stopwatch instead of
/// touching std::chrono, so cobra_lint's D1-clock rule can keep every
/// clock out of src/core (timing is telemetry, never trajectory data).
class Stopwatch {
 public:
  void start() noexcept { t0_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_{};
};

namespace detail {
inline std::atomic<bool> trace_armed{false};
}

/// True when a trace file is open; ONE relaxed load on the hot path.
inline bool trace_enabled() noexcept {
  if constexpr (kLevel >= 1)
    return detail::trace_armed.load(std::memory_order_relaxed);
  else
    return false;
}

/// Open `path` (truncating) as the process-global trace sink; returns
/// false (with a stderr note) if the file cannot be opened. Arms
/// trace_enabled().
bool open_global_trace(const std::string& path);

/// Flush and close the sink; disarms trace_enabled(). Safe when not open.
void close_global_trace();

/// Append one JSONL line. Call sites must check trace_enabled() first —
/// everything expensive (occupancy scan, clock reads) belongs behind
/// that check, not in here.
void trace_round(const RoundTrace& t);

/// Append one fault-event JSONL line:
///
///   {"fault": "checkpoint.write", "hit": 3, "fire": 1, "round": 12}
///
/// Emitted by util::fault on every firing when the sink is armed, so a
/// chaotic run's schedule is replayable from its trace artifact. This
/// writer deliberately BYPASSES the `trace.write` fault site — the fault
/// log must never be suppressed by the faults it is logging. Call sites
/// must check trace_enabled() first.
void trace_fault(std::string_view site, std::uint64_t hit,
                 std::uint64_t fire, std::uint64_t round);

/// Process-unique engine ids for the "trace" field, starting at 1.
std::uint64_t next_trace_id() noexcept;

}  // namespace cobra::obs
