#include "parallel/monte_carlo.hpp"

namespace cobra::par {

ThreadPool& global_pool() {
  static ThreadPool pool;  // hardware concurrency
  return pool;
}

}  // namespace cobra::par
