#include "parallel/monte_carlo.hpp"

#include <atomic>

namespace cobra::par {

namespace {

// 0 = hardware concurrency; set by request_global_pool_threads before the
// pool's first use (mains apply the --threads flag while still
// single-threaded, during argument parsing). The exists flag is atomic
// because global_pool() is also reached from pool worker threads (a
// frontier step inside a Monte-Carlo trial resolves the default pool).
std::size_t& requested_global_threads() {
  static std::size_t count = 0;
  return count;
}

std::atomic<bool>& global_pool_exists() {
  static std::atomic<bool> exists{false};
  return exists;
}

}  // namespace

bool request_global_pool_threads(std::size_t num_threads) {
  if (global_pool_exists().load(std::memory_order_acquire)) return false;
  requested_global_threads() = num_threads;
  return true;
}

ThreadPool& global_pool() {
  static ThreadPool pool(requested_global_threads());
  global_pool_exists().store(true, std::memory_order_release);
  return pool;
}

}  // namespace cobra::par
