#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

/// \file monte_carlo.hpp
/// The Monte-Carlo trial driver — the bridge between the paper's
/// "expected cover time" statements and measurable numbers. A *trial* is a
/// function from an independent RNG to a real-valued observation (e.g. the
/// step at which a cobra walk covered the graph). The driver runs `trials`
/// of them across a thread pool and returns the observations in trial-index
/// order.
///
/// Determinism contract: trial i always receives an engine seeded with
/// derive_seed(base_seed, i). Results are therefore bit-identical across
/// runs and across any thread count, which is what makes EXPERIMENTS.md
/// reproducible.

namespace cobra::par {

struct MonteCarloOptions {
  std::uint64_t base_seed = 0xC0BA5EEDULL;
  std::uint32_t trials = 100;
  /// Dynamic scheduling by default: cover-time trials have heavy-tailed
  /// duration, so static chunking would leave workers idle.
  bool dynamic_schedule = true;
};

/// Runs `opts.trials` independent trials of `trial` on `pool` and returns
/// the observations indexed by trial number.
///
/// `trial` must be callable as double(rng::Xoshiro256&, std::uint32_t) —
/// the second argument is the trial index (handy for stratified designs) —
/// and must be thread-safe across distinct calls (i.e. not mutate shared
/// state without synchronization).
template <typename Trial>
std::vector<double> run_trials(ThreadPool& pool, const MonteCarloOptions& opts,
                               Trial&& trial) {
  std::vector<double> results(opts.trials, 0.0);
  auto body = [&](std::size_t i) {
    rng::Xoshiro256 engine(rng::derive_seed(opts.base_seed, i));
    results[i] = trial(engine, static_cast<std::uint32_t>(i));
  };
  if (opts.dynamic_schedule) {
    parallel_for_dynamic(pool, 0, opts.trials, body);
  } else {
    parallel_for(pool, 0, opts.trials, body);
  }
  return results;
}

/// Serial fallback with the same determinism contract; used by tests to
/// verify schedule-independence and by callers that already parallelize at
/// an outer level.
template <typename Trial>
std::vector<double> run_trials_serial(const MonteCarloOptions& opts, Trial&& trial) {
  std::vector<double> results(opts.trials, 0.0);
  for (std::uint32_t i = 0; i < opts.trials; ++i) {
    rng::Xoshiro256 engine(rng::derive_seed(opts.base_seed, i));
    results[i] = trial(engine, i);
  }
  return results;
}

/// Shared process-wide pool, constructed on first use. Experiments and
/// examples route through this so the process never oversubscribes.
ThreadPool& global_pool();

/// Request the worker count for the lazily-created global pool (0 means
/// hardware concurrency, the default). Effective only before the first
/// global_pool() call: returns false and changes nothing once the pool
/// exists. The benches' shared --threads flag routes through this.
bool request_global_pool_threads(std::size_t num_threads);

}  // namespace cobra::par
