#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>

#include "parallel/thread_pool.hpp"

/// \file parallel_for.hpp
/// Chunked parallel loops over index ranges, layered on ThreadPool.
/// Three schedules are provided:
///   * parallel_for        — static chunking; best when iterations are uniform
///   * parallel_for_dynamic — atomic work-stealing counter; best when
///     iteration cost varies wildly (e.g. cover-time trials whose length is
///     itself the random variable under study).
///   * parallel_for_chunks — dynamic claiming with stable worker ids; best
///     when workers carry reusable scratch (buffers, decode space) across
///     the chunks they claim — the FrontierEngine's range-chunk schedule.
///
/// Exceptions thrown by the body are captured and rethrown (first one wins)
/// on the calling thread, so callers see normal C++ error flow.

namespace cobra::par {

namespace detail {

/// Captures the first exception thrown by any worker.
class ExceptionCollector {
 public:
  void capture() noexcept {
    if (!armed_.exchange(true, std::memory_order_acq_rel)) {
      exception_ = std::current_exception();
    }
  }

  void rethrow_if_any() {
    if (armed_.load(std::memory_order_acquire) && exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::atomic<bool> armed_{false};
  std::exception_ptr exception_;
};

}  // namespace detail

/// Apply body(i) for i in [begin, end) using static chunking over `pool`.
/// body must be invocable as void(std::size_t) and thread-safe across
/// distinct indices.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, pool.size() * 4);  // mild oversubscription
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  detail::ExceptionCollector errors;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    pool.submit([lo, hi, &body, &errors] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        errors.capture();
      }
    });
  }
  pool.wait_idle();
  errors.rethrow_if_any();
}

/// Apply body(i) for i in [begin, end) with dynamic (self-scheduling)
/// distribution: each worker repeatedly claims the next index from an atomic
/// counter. Use when per-iteration cost is highly variable.
template <typename Body>
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          Body&& body) {
  if (begin >= end) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  detail::ExceptionCollector errors;
  const std::size_t workers = std::min(pool.size(), end - begin);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([next, end, &body, &errors] {
      try {
        for (;;) {
          const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
          if (i >= end) return;
          body(i);
        }
      } catch (...) {
        errors.capture();
      }
    });
  }
  pool.wait_idle();
  errors.rethrow_if_any();
}

/// Apply body(worker, chunk) for chunk in [0, n_chunks), claimed
/// dynamically by `workers` tasks with STABLE worker ids in [0, workers)
/// (clamped to pool.size() and n_chunks). The worker id lets callers keep
/// reusable per-worker scratch without allocation inside the loop, while
/// the chunk id stays the deterministic unit of work (callers key
/// per-chunk RNG streams off it, so results never depend on which worker
/// ran which chunk). With 0 or 1 effective workers the chunks run in-line
/// on the calling thread.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t n_chunks,
                         std::size_t workers, Body&& body) {
  if (n_chunks == 0) return;
  workers = std::min({workers, pool.size(), n_chunks});
  if (workers <= 1) {
    for (std::size_t c = 0; c < n_chunks; ++c) body(std::size_t{0}, c);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  detail::ExceptionCollector errors;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([w, next, n_chunks, &body, &errors] {
      try {
        for (;;) {
          const std::size_t c = next->fetch_add(1, std::memory_order_relaxed);
          if (c >= n_chunks) return;
          body(w, c);
        }
      } catch (...) {
        errors.capture();
      }
    });
  }
  pool.wait_idle();
  errors.rethrow_if_any();
}

}  // namespace cobra::par
