#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>

#include "parallel/thread_pool.hpp"

/// \file parallel_for.hpp
/// Chunked parallel loops over index ranges, layered on ThreadPool.
/// Two schedules are provided:
///   * parallel_for        — static chunking; best when iterations are uniform
///   * parallel_for_dynamic — atomic work-stealing counter; best when
///     iteration cost varies wildly (e.g. cover-time trials whose length is
///     itself the random variable under study).
///
/// Exceptions thrown by the body are captured and rethrown (first one wins)
/// on the calling thread, so callers see normal C++ error flow.

namespace cobra::par {

namespace detail {

/// Captures the first exception thrown by any worker.
class ExceptionCollector {
 public:
  void capture() noexcept {
    if (!armed_.exchange(true, std::memory_order_acq_rel)) {
      exception_ = std::current_exception();
    }
  }

  void rethrow_if_any() {
    if (armed_.load(std::memory_order_acquire) && exception_) {
      std::rethrow_exception(exception_);
    }
  }

 private:
  std::atomic<bool> armed_{false};
  std::exception_ptr exception_;
};

}  // namespace detail

/// Apply body(i) for i in [begin, end) using static chunking over `pool`.
/// body must be invocable as void(std::size_t) and thread-safe across
/// distinct indices.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, pool.size() * 4);  // mild oversubscription
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  detail::ExceptionCollector errors;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    pool.submit([lo, hi, &body, &errors] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        errors.capture();
      }
    });
  }
  pool.wait_idle();
  errors.rethrow_if_any();
}

/// Apply body(i) for i in [begin, end) with dynamic (self-scheduling)
/// distribution: each worker repeatedly claims the next index from an atomic
/// counter. Use when per-iteration cost is highly variable.
template <typename Body>
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          Body&& body) {
  if (begin >= end) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  detail::ExceptionCollector errors;
  const std::size_t workers = std::min(pool.size(), end - begin);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([next, end, &body, &errors] {
      try {
        for (;;) {
          const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
          if (i >= end) return;
          body(i);
        }
      } catch (...) {
        errors.capture();
      }
    });
  }
  pool.wait_idle();
  errors.rethrow_if_any();
}

}  // namespace cobra::par
