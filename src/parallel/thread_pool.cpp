#include "parallel/thread_pool.hpp"

#include <utility>

#include "util/fault.hpp"

namespace cobra::par {

namespace {
// Which pool (if any) owns the current thread. Workers set this on entry to
// worker_loop; everything else sees nullptr.
thread_local const ThreadPool* t_owning_pool = nullptr;
}  // namespace

bool ThreadPool::on_worker_thread() const noexcept {
  return t_owning_pool == this;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    // Fault site `pool.thread_spawn` (GRACEFUL): a worker fails to start
    // (real std::thread ctors throw resource_unavailable_try_again under
    // thread-limit pressure). The pool comes up smaller instead of dying,
    // but always keeps at least one worker so submitted tasks make
    // progress. The engine's results are thread-count-invariant by
    // contract, so a shrunken pool must not change any trajectory.
    if (i > 0 && util::fault::should_fail("pool.thread_spawn")) continue;
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    // Drain outstanding work before tearing down so submitted tasks always
    // run exactly once (tasks may hold references to caller state).
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::queued() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // run without the lock; exceptions would terminate — tasks are
             // required to be noexcept in spirit (Monte-Carlo driver wraps).
    {
      const std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cobra::par
