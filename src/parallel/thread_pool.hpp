#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// A fixed-size worker pool for CPU-bound simulation work. Design goals,
/// in order: correctness under exceptions, deterministic shutdown, and low
/// coordination overhead for coarse-grained tasks (a "task" here is tens of
/// milliseconds of simulation, so a mutex-guarded deque is entirely
/// adequate; no lock-free heroics are warranted).
///
/// The pool is the single shared parallel resource in the library; the
/// Monte-Carlo driver and parallel_for both layer on top of it.

namespace cobra::par {

class ThreadPool {
 public:
  /// Spins up `num_threads` workers (0 means hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers; pending tasks are drained before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Thread-safe. Tasks may themselves submit tasks, but
  /// must not block waiting on tasks that have not yet been scheduled
  /// (classic pool deadlock); use wait_idle from the *submitting* thread.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Callable only from
  /// outside the pool's worker threads.
  void wait_idle();

  /// True iff the calling thread is one of THIS pool's workers. Lets nested
  /// parallel constructs (e.g. a frontier step inside a Monte-Carlo trial)
  /// detect that they are already on the pool and fall back to serial
  /// execution instead of deadlocking in wait_idle.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Number of tasks currently queued (not including running ones).
  [[nodiscard]] std::size_t queued() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
};

}  // namespace cobra::par
