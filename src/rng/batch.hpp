#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/fault.hpp"

/// \file batch.hpp
/// Batched RNG buffering: wrap an engine and refill a block of raw 64-bit
/// outputs at a time (ramping geometrically from a small first block up to
/// N). The frontier engine hands each chunk a `Batched` view so the hot
/// sampling loop reads from a hot cache-resident array instead of spinning
/// the full engine state machine per draw; the engine call overhead (and
/// the occasional Lemire rejection re-draw) is amortized over the block,
/// while a chunk that needs only a handful of draws never pays for N.
///
/// Ordering guarantee: `operator()` returns the underlying engine's outputs
/// in generation order, so `Batched<E>` is stream-equivalent to `E` — the
/// buffering is invisible to any consumer of the values. The one exception
/// is `inner()`, which hands out the wrapped engine directly for callers
/// that need an `Engine&` (e.g. user-supplied branching schedules): draws
/// from `inner()` skip ahead of any still-buffered values. That reordering
/// is deterministic (consumption order is fixed by the caller's code path),
/// each output is still used at most once, and the two consumers see
/// disjoint subsequences, so reproducibility and statistical quality are
/// both preserved.

namespace cobra::rng {

template <typename Engine, std::size_t N = 256>
class Batched {
 public:
  using result_type = std::uint64_t;

  static_assert(N >= 1, "Batched: block size must be positive");

  explicit Batched(Engine engine) noexcept : engine_(std::move(engine)) {}

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    if (pos_ == filled_) refill();
    return buffer_[pos_++];
  }

  /// Direct access to the wrapped engine (see the ordering caveat above).
  [[nodiscard]] Engine& inner() noexcept { return engine_; }

  /// Raw values still buffered (exposed for tests).
  [[nodiscard]] std::size_t buffered() const noexcept { return filled_ - pos_; }

  /// Blocks drawn from the engine so far — the trace layer's "rng_blocks"
  /// field. Pure bookkeeping on the (already amortized) refill path; the
  /// value stream is untouched.
  [[nodiscard]] std::uint64_t refills() const noexcept { return refills_; }

 private:
  void refill() noexcept {
    // Geometric ramp-up: the first block is small so a consumer that only
    // needs a couple of draws (tiny frontier chunk, lone surviving walker)
    // doesn't pay for N; sustained consumers double up to the full block
    // and get the amortization. Any refill size keeps the stream
    // generation-ordered, so this is invisible to the values produced.
    next_fill_ = std::min(N, next_fill_);
    // Fault site `rng.block_refill` (GRACEFUL): model a refill that cannot
    // get its full block (the future SIMD/device refill path can fail
    // partway) by degrading THIS refill to a single draw. The ordering
    // guarantee above makes the degradation invisible to the value
    // stream — only the block count changes — which is exactly the
    // contract cobra_chaos verifies.
    std::size_t fill = next_fill_;
    if (util::fault::should_fail("rng.block_refill")) fill = 1;
    for (std::size_t i = 0; i < fill; ++i) buffer_[i] = engine_();
    filled_ = fill;
    pos_ = 0;
    next_fill_ = std::min(N, fill * 2);
    ++refills_;
  }

  static constexpr std::size_t kInitialFill = N < 8 ? N : 8;

  Engine engine_;
  std::array<std::uint64_t, N> buffer_;  // filled before read; no zero-init
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;  // empty until first refill
  std::size_t next_fill_ = kInitialFill;
  std::uint64_t refills_ = 0;
};

}  // namespace cobra::rng
