#include "rng/distributions.hpp"

#include "rng/pcg32.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace cobra::rng {

namespace {

// The concept must admit the full-range engines and reject the bare 32-bit one.
static_assert(Uint64Generator<SplitMix64>);
static_assert(Uint64Generator<Xoshiro256>);
static_assert(Uint64Generator<Pcg32x64>);
static_assert(!Uint64Generator<Pcg32>,
              "bare Pcg32 must not satisfy the full-range concept");

}  // namespace

}  // namespace cobra::rng
