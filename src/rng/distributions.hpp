#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>

/// \file distributions.hpp
/// Unbiased, allocation-free sampling primitives used by every simulator
/// hot loop. The key routine is `uniform_below` (Lemire's nearly-divisionless
/// bounded sampling): choosing a uniform random neighbor is the single most
/// executed operation in a cobra walk, so it must be branch-light and free of
/// modulo bias — bias in neighbor choice would silently skew drift estimates
/// that the paper's theorems are about.

namespace cobra::rng {

/// Any engine producing uniformly distributed uint64 over the FULL 64-bit
/// range. The full-range requirement is load-bearing: `uniform_below` uses a
/// 128-bit multiply-shift that silently degenerates for narrower engines
/// (wrap a 32-bit engine, e.g. with Pcg32x64, before using it here).
template <typename G>
concept Uint64Generator = requires(G g) {
  { g() } -> std::convertible_to<std::uint64_t>;
  requires G::min() == 0;
  requires G::max() == std::numeric_limits<std::uint64_t>::max();
};

/// Uniform integer in [0, bound) with no modulo bias (Lemire 2018).
/// Precondition: bound >= 1.
template <Uint64Generator G>
[[nodiscard]] std::uint64_t uniform_below(G& gen, std::uint64_t bound) {
  // Fast path via 128-bit multiply; rejection only in the rare biased zone.
  // __int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic quiet.
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = gen();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = gen();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform integer in the closed interval [lo, hi]. Precondition: lo <= hi.
template <Uint64Generator G>
[[nodiscard]] std::uint64_t uniform_range(G& gen, std::uint64_t lo, std::uint64_t hi) {
  return lo + uniform_below(gen, hi - lo + 1);
}

/// Uniform double in [0, 1) with 53 bits of precision.
template <Uint64Generator G>
[[nodiscard]] double uniform_unit(G& gen) {
  return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Bernoulli(p) trial. p outside [0,1] clamps to the nearer endpoint.
template <Uint64Generator G>
[[nodiscard]] bool bernoulli(G& gen, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_unit(gen) < p;
}

/// Fair coin using a single bit of entropy from the top of the word (the
/// highest bits of xoshiro256++/PCG output are the strongest).
template <Uint64Generator G>
[[nodiscard]] bool coin_flip(G& gen) {
  return (gen() >> 63) != 0;
}

/// Uniformly random element of a non-empty span.
template <Uint64Generator G, typename T>
[[nodiscard]] const T& pick(G& gen, std::span<const T> items) {
  return items[static_cast<std::size_t>(uniform_below(gen, items.size()))];
}

/// Geometric(p): number of failures before the first success, support {0,1,...}.
/// Sampled by inversion; p must lie in (0, 1].
template <Uint64Generator G>
[[nodiscard]] std::uint64_t geometric(G& gen, double p) {
  if (p >= 1.0) return 0;
  const double u = uniform_unit(gen);
  // inversion: floor(log(1-u) / log(1-p)); 1-u in (0,1] avoids log(0)
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

/// Standard exponential with rate lambda > 0.
template <Uint64Generator G>
[[nodiscard]] double exponential(G& gen, double lambda) {
  const double u = uniform_unit(gen);
  return -std::log1p(-u) / lambda;
}

/// Unordered pair {i, j}, i != j, uniform over all pairs from [0, n), n >= 2.
template <Uint64Generator G>
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> distinct_pair(G& gen,
                                                                    std::uint64_t n) {
  const std::uint64_t i = uniform_below(gen, n);
  std::uint64_t j = uniform_below(gen, n - 1);
  if (j >= i) ++j;
  return {i, j};
}

/// In-place Fisher–Yates shuffle.
template <Uint64Generator G, typename T>
void shuffle(G& gen, std::span<T> items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_below(gen, i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Reservoir-sample k indices uniformly without replacement from [0, n)
/// into `out` (out.size() == k <= n). Order of the output is unspecified.
template <Uint64Generator G>
void sample_without_replacement(G& gen, std::uint64_t n, std::span<std::uint64_t> out) {
  const std::size_t k = out.size();
  for (std::size_t i = 0; i < k; ++i) out[i] = i;
  for (std::uint64_t i = k; i < n; ++i) {
    const std::uint64_t j = uniform_below(gen, i + 1);
    if (j < k) out[static_cast<std::size_t>(j)] = i;
  }
}

}  // namespace cobra::rng
