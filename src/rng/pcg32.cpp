#include "rng/pcg32.hpp"

namespace cobra::rng {

namespace {

// Streams must be independent: same seed on different streams diverges.
static_assert([] {
  Pcg32 a(5, 1), b(5, 2);
  return a() != b();
}(), "pcg32 streams do not separate");

// advance(k) must agree with stepping k times.
static_assert([] {
  Pcg32 a(99, 7), b(99, 7);
  for (int i = 0; i < 13; ++i) (void)a();
  b.advance(13);
  return a == b;
}(), "pcg32 advance() disagrees with sequential stepping");

}  // namespace

}  // namespace cobra::rng
