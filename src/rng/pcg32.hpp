#pragma once

#include <cstdint>

/// \file pcg32.hpp
/// PCG32 (XSH-RR variant, 64-bit state / 32-bit output) — an alternative
/// engine with explicit multi-stream support. The cobra simulators default
/// to Xoshiro256; PCG32 exists so that statistical results can be
/// cross-checked under a structurally different generator (the classic
/// "two-RNG" hygiene test for Monte-Carlo code), and because its 32-bit
/// output is a natural fit for 32-bit vertex ids.
///
/// Reference: M.E. O'Neill, "PCG: A Family of Simple Fast Space-Efficient
/// Statistically Good Algorithms for Random Number Generation" (2014).

namespace cobra::rng {

class Pcg32 {
 public:
  using result_type = std::uint32_t;

  /// \param seed    initial state contribution
  /// \param stream  selects one of 2^63 independent sequences
  constexpr explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                           std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
      : state_(0), inc_((stream << 1) | 1ULL) {
    (*this)();
    state_ += seed;
    (*this)();
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0U; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t old = state_;
    state_ = old * kMultiplier + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<std::uint32_t>(old >> 59);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Advance the state by `delta` steps in O(log delta) time (Brown's
  /// jump-ahead via modular exponentiation of the LCG transition).
  constexpr void advance(std::uint64_t delta) noexcept {
    std::uint64_t cur_mult = kMultiplier;
    std::uint64_t cur_plus = inc_;
    std::uint64_t acc_mult = 1;
    std::uint64_t acc_plus = 0;
    while (delta > 0) {
      if ((delta & 1) != 0) {
        acc_mult *= cur_mult;
        acc_plus = acc_plus * cur_mult + cur_plus;
      }
      cur_plus = (cur_mult + 1) * cur_plus;
      cur_mult *= cur_mult;
      delta >>= 1;
    }
    state_ = acc_mult * state_ + acc_plus;
  }

  [[nodiscard]] constexpr std::uint64_t state() const noexcept { return state_; }
  [[nodiscard]] constexpr std::uint64_t stream() const noexcept { return inc_ >> 1; }

  friend constexpr bool operator==(const Pcg32&, const Pcg32&) = default;

 private:
  static constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;

  std::uint64_t state_;
  std::uint64_t inc_;  // must be odd; enforced by construction
};

/// Widens Pcg32 to a full-range 64-bit generator by concatenating two
/// consecutive 32-bit outputs. This is what makes PCG usable with the
/// full-range samplers in distributions.hpp.
class Pcg32x64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Pcg32x64(std::uint64_t seed = 0x853c49e6748fea9bULL,
                              std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept
      : base_(seed, stream) {}

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t hi = base_();
    const std::uint64_t lo = base_();
    return (hi << 32) | lo;
  }

  [[nodiscard]] constexpr Pcg32& base() noexcept { return base_; }

 private:
  Pcg32 base_;
};

}  // namespace cobra::rng
