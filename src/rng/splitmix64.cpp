#include "rng/splitmix64.hpp"

// splitmix64 is fully constexpr in the header; this translation unit pins
// compile-time sanity checks so a silent edit to the mixing constants that
// degenerates the generator is caught at build time.

namespace cobra::rng {

namespace {

// The first few outputs from a fixed seed must be pairwise distinct and
// nonzero — a classic symptom of a broken finalizer is collapsing to 0.
static_assert([] {
  std::uint64_t s = 0;
  const std::uint64_t a = splitmix64_next(s);
  const std::uint64_t b = splitmix64_next(s);
  const std::uint64_t c = splitmix64_next(s);
  return a != 0 && b != 0 && c != 0 && a != b && b != c && a != c;
}(), "splitmix64 produced degenerate outputs");

// Derived seeds for different stream indices must differ.
static_assert(derive_seed(42, 0) != derive_seed(42, 1),
              "derive_seed does not separate streams");
static_assert(derive_seed(42, 0) != derive_seed(43, 0),
              "derive_seed does not separate base seeds");

}  // namespace

}  // namespace cobra::rng
