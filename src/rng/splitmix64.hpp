#pragma once

#include <cstdint>

/// \file splitmix64.hpp
/// SplitMix64: a tiny, fast, well-distributed 64-bit PRNG used here for two
/// purposes: (1) seeding the larger xoshiro/PCG state from a single 64-bit
/// seed, and (2) deriving independent per-trial seeds for Monte-Carlo runs
/// (`derive_seed`), which keeps parallel trials reproducible regardless of
/// thread scheduling.
///
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014. Constants are the standard Murmur3-derived
/// finalizer constants.

namespace cobra::rng {

/// One step of the splitmix64 sequence. Advances `state` by the golden-ratio
/// increment and returns a finalized 64-bit output.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix: hash a single 64-bit value through the splitmix64
/// finalizer. Useful for turning (seed, index) pairs into stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

/// Derive the seed for sub-stream `stream_index` of a base seed. Two distinct
/// (base_seed, stream_index) pairs map to distinct, statistically independent
/// seeds with overwhelming probability. This is the sole seeding mechanism
/// used by the Monte-Carlo driver, making every trial reproducible.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                                  std::uint64_t stream_index) noexcept {
  // Feed the pair through two dependent rounds so that streams of adjacent
  // indices do not share low-bit structure.
  std::uint64_t s = base_seed ^ (0x9e3779b97f4a7c15ULL * (stream_index + 1));
  const std::uint64_t a = splitmix64_next(s);
  const std::uint64_t b = splitmix64_next(s);
  return a ^ (b >> 1);
}

/// A minimal UniformRandomBitGenerator wrapper around splitmix64, usable
/// where a full engine is overkill (e.g. cheap tests).
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed = 0) noexcept : state_(seed) {}

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept { return splitmix64_next(state_); }

  /// Current internal state (for checkpointing in tests).
  [[nodiscard]] constexpr std::uint64_t state() const noexcept { return state_; }

 private:
  std::uint64_t state_;
};

}  // namespace cobra::rng
