#include "rng/xoshiro256.hpp"

namespace cobra::rng {

namespace {

// Build-time sanity: seeding never yields the all-zero fixed point, two
// different seeds diverge, and jump() changes the state.
static_assert([] {
  Xoshiro256 g(0);
  const auto s = g.state();
  return (s[0] | s[1] | s[2] | s[3]) != 0;
}(), "xoshiro256++ seeded into the all-zero fixed point");

static_assert([] {
  Xoshiro256 a(1), b(2);
  return a() != b();
}(), "xoshiro256++ seeds do not separate streams");

static_assert([] {
  Xoshiro256 a(7), b(7);
  b.jump();
  return a.state() != b.state();
}(), "xoshiro256++ jump() is a no-op");

}  // namespace

}  // namespace cobra::rng
