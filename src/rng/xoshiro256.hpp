#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.hpp"

/// \file xoshiro256.hpp
/// xoshiro256++ — the library's default random engine. It is the
/// all-purpose generator recommended by Blackman & Vigna ("Scrambled linear
/// pseudorandom number generators", TOMS 2021): 256 bits of state, period
/// 2^256 - 1, excellent statistical quality, and ~1ns per output — the hot
/// loop of a cobra-walk step is dominated by memory traffic, not by this.
///
/// The engine satisfies the C++ UniformRandomBitGenerator requirements, so
/// it composes with <random> distributions, but the simulators use the
/// faster unbiased samplers in distributions.hpp.

namespace cobra::rng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64, as
  /// the xoshiro authors prescribe (never seed the state directly: an
  /// all-zero state is a fixed point).
  constexpr explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advance 2^128 steps. Partitions the period into 2^128 non-overlapping
  /// subsequences; an alternative to derive_seed for long-lived streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (const std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if ((word & (1ULL << bit)) != 0) {
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

  /// Internal state snapshot, exposed for tests and checkpointing.
  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

  /// Restore a snapshotted state verbatim (checkpoint resume). The only
  /// legitimate source of `state` is a prior `state()` call — an arbitrary
  /// value risks the all-zero fixed point, which this rejects by falling
  /// back to reseeding from the first word.
  constexpr void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
      *this = Xoshiro256(0);
      return;
    }
    state_ = state;
  }

  friend constexpr bool operator==(const Xoshiro256&, const Xoshiro256&) = default;

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cobra::rng
