#include "sim/checkpoint.hpp"

#include <cstdio>
#include <filesystem>

#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace cobra::sim {

namespace {

/// RAII stdio handle — snapshot files are small and written whole, so
/// plain fread/fwrite beats iostream ceremony and gives exact error codes.
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path, const char* mode)
      : f(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

void append_header(util::CheckpointWriter& w,
                   const std::vector<std::uint8_t>& payload) {
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u64(payload.size());
  w.u64(util::fnv1a64(payload));
}

}  // namespace

void write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& payload) {
  if (util::fault::should_fail("checkpoint.write")) {
    throw util::CheckpointError("injected fault at checkpoint.write");
  }
  util::CheckpointWriter header;
  {
#if COBRA_OBS_LEVEL >= 1
    static obs::Timer& timer = obs::registry().timer("checkpoint.checksum");
    obs::ScopedTimer timed(timer);
#endif
    append_header(header, payload);  // includes the fnv1a64 pass
  }
  obs::count("checkpoint.bytes_written", header.buffer().size() + payload.size());

  // Write to a sibling temp file and rename over the target: rename(2) is
  // atomic on POSIX, so a crash at any point leaves either the previous
  // snapshot or the new one — never a torn file.
  const std::string tmp = path + ".tmp";
  {
    File out(tmp, "wb");
    if (out.f == nullptr) {
      throw util::CheckpointError("cannot open '" + tmp + "' for writing");
    }
    const auto& head = header.buffer();
    if (std::fwrite(head.data(), 1, head.size(), out.f) != head.size() ||
        (!payload.empty() &&
         std::fwrite(payload.data(), 1, payload.size(), out.f) !=
             payload.size()) ||
        std::fflush(out.f) != 0) {
      throw util::CheckpointError("short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw util::CheckpointError("rename '" + tmp + "' -> '" + path +
                                "' failed: " + ec.message());
  }
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path) {
  if (util::fault::should_fail("checkpoint.read")) {
    throw util::CheckpointError("injected fault at checkpoint.read");
  }
  File in(path, "rb");
  if (in.f == nullptr) {
    throw util::CheckpointError("cannot open snapshot '" + path + "'");
  }
  constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;
  std::vector<std::uint8_t> head(kHeaderSize);
  if (std::fread(head.data(), 1, kHeaderSize, in.f) != kHeaderSize) {
    throw util::CheckpointError("snapshot '" + path +
                                "' is shorter than its header");
  }
  util::CheckpointReader r(head);
  const std::uint32_t magic = r.u32();
  if (magic != kSnapshotMagic) {
    throw util::CheckpointError("'" + path + "' is not a snapshot file");
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw util::CheckpointError("snapshot '" + path + "' has version " +
                                std::to_string(version) + ", expected " +
                                std::to_string(kSnapshotVersion));
  }
  const std::uint64_t size = r.u64();
  const std::uint64_t crc = r.u64();
  // Guard the allocation: a corrupt size field must not turn into a
  // multi-gigabyte allocation attempt before the checksum can reject it.
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec || file_size < kHeaderSize ||
      size != file_size - kHeaderSize) {
    throw util::CheckpointError("snapshot '" + path +
                                "' payload size mismatch (truncated?)");
  }
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(size));
  if (!payload.empty() &&
      std::fread(payload.data(), 1, payload.size(), in.f) != payload.size()) {
    throw util::CheckpointError("snapshot '" + path + "' payload truncated");
  }
  {
#if COBRA_OBS_LEVEL >= 1
    static obs::Timer& timer = obs::registry().timer("checkpoint.checksum");
    obs::ScopedTimer timed(timer);
#endif
    if (util::fnv1a64(payload) != crc) {
      throw util::CheckpointError("snapshot '" + path + "' checksum mismatch");
    }
  }
  obs::count("checkpoint.bytes_read", kHeaderSize + payload.size());
  return payload;
}

bool snapshot_valid(const std::string& path) noexcept {
  try {
    (void)read_snapshot_file(path);
    return true;
  } catch (...) {
    return false;
  }
}

namespace detail {

void save_engine(util::CheckpointWriter& w, const core::Engine& gen) {
  for (const std::uint64_t word : gen.state()) w.u64(word);
}

void restore_engine(util::CheckpointReader& r, core::Engine& gen) {
  std::array<std::uint64_t, 4> state{};
  for (auto& word : state) word = r.u64();
  gen.set_state(state);
}

}  // namespace detail

}  // namespace cobra::sim
