#include "sim/checkpoint.hpp"

#include <cstdio>
#include <filesystem>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace cobra::sim {

namespace {

/// RAII stdio handle — snapshot files are small and written whole, so
/// plain fread/fwrite beats iostream ceremony and gives exact error codes.
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path, const char* mode)
      : f(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

void append_header(util::CheckpointWriter& w,
                   const std::vector<std::uint8_t>& payload) {
  const obs::Manifest& m = obs::current_manifest();
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.str(m.git_sha);     // manifest stamp: which build wrote this file
  w.str(m.build_type);
  w.u64(payload.size());
  // The checksum chains over every byte that precedes it PLUS the payload,
  // so a flipped bit anywhere in the file — manifest strings included — is
  // rejected, not just payload corruption.
  const std::uint64_t head_hash = util::fnv1a64(w.buffer());
  w.u64(util::fnv1a64(payload, head_hash));
}

}  // namespace

void write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& payload) {
  if (util::fault::should_fail("checkpoint.write")) {
    throw util::CheckpointError("injected fault at checkpoint.write");
  }
  util::CheckpointWriter header;
  {
#if COBRA_OBS_LEVEL >= 1
    static obs::Timer& timer = obs::registry().timer("checkpoint.checksum");
    obs::ScopedTimer timed(timer);
#endif
    append_header(header, payload);  // includes the fnv1a64 pass
  }
  obs::count("checkpoint.bytes_written", header.buffer().size() + payload.size());

  // Fault site `checkpoint.torn_write` (HARD, delayed detection): the
  // payload write dies halfway, the header still claims the full size,
  // and — unlike any real crash under the tmp+rename protocol — the torn
  // file LANDS on the target path and the writer reports success. This is
  // the worst-case storage lie (a kernel/firmware write-through bug), and
  // it exists so tests can prove the READ path rejects such a file via
  // its size/checksum checks rather than deserializing garbage.
  const bool torn = util::fault::should_fail("checkpoint.torn_write");

  // Write to a sibling temp file and rename over the target: rename(2) is
  // atomic on POSIX, so a crash at any point leaves either the previous
  // snapshot or the new one — never a torn file.
  const std::string tmp = path + ".tmp";
  {
    File out(tmp, "wb");
    if (out.f == nullptr) {
      throw util::CheckpointError("cannot open '" + tmp + "' for writing");
    }
    const auto& head = header.buffer();
    const std::size_t payload_bytes = torn ? payload.size() / 2 : payload.size();
    if (std::fwrite(head.data(), 1, head.size(), out.f) != head.size() ||
        (payload_bytes != 0 &&
         std::fwrite(payload.data(), 1, payload_bytes, out.f) !=
             payload_bytes) ||
        std::fflush(out.f) != 0) {
      throw util::CheckpointError("short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw util::CheckpointError("rename '" + tmp + "' -> '" + path +
                                "' failed: " + ec.message());
  }
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path,
                                             SnapshotInfo* info) {
  if (util::fault::should_fail("checkpoint.read")) {
    throw util::CheckpointError("injected fault at checkpoint.read");
  }
  File in(path, "rb");
  if (in.f == nullptr) {
    throw util::CheckpointError("cannot open snapshot '" + path + "'");
  }
  // The v2 header is variable-length (manifest strings), so read the whole
  // file and let the bounds-checked reader parse it. The allocation is the
  // on-disk size — real bytes, not a corruption-controlled length prefix —
  // so the old size-field-vs-allocation guard is subsumed.
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw util::CheckpointError("cannot stat snapshot '" + path + "'");
  }
  std::vector<std::uint8_t> file_bytes(static_cast<std::size_t>(file_size));
  if (!file_bytes.empty() &&
      std::fread(file_bytes.data(), 1, file_bytes.size(), in.f) !=
          file_bytes.size()) {
    throw util::CheckpointError("cannot read snapshot '" + path + "'");
  }
  util::CheckpointReader r(file_bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  try {
    magic = r.u32();
    if (magic == kSnapshotMagic) version = r.u32();
  } catch (const util::CheckpointError&) {
    throw util::CheckpointError("snapshot '" + path +
                                "' is shorter than its header");
  }
  if (magic != kSnapshotMagic) {
    throw util::CheckpointError("'" + path + "' is not a snapshot file");
  }
  if (version != kSnapshotVersion) {
    throw util::CheckpointError("snapshot '" + path + "' has version " +
                                std::to_string(version) + ", expected " +
                                std::to_string(kSnapshotVersion));
  }
  std::uint64_t size = 0;
  std::uint64_t crc = 0;
  SnapshotInfo parsed;
  parsed.version = version;
  std::size_t crc_offset = 0;
  try {
    parsed.git_sha = r.str();
    parsed.build_type = r.str();
    size = r.u64();
    crc_offset = file_bytes.size() - r.remaining();
    crc = r.u64();
  } catch (const util::CheckpointError&) {
    throw util::CheckpointError("snapshot '" + path +
                                "' is shorter than its header");
  }
  if (size != r.remaining()) {
    throw util::CheckpointError("snapshot '" + path +
                                "' payload size mismatch (truncated?)");
  }
  std::vector<std::uint8_t> payload(
      file_bytes.end() - static_cast<std::ptrdiff_t>(r.remaining()),
      file_bytes.end());
  {
#if COBRA_OBS_LEVEL >= 1
    static obs::Timer& timer = obs::registry().timer("checkpoint.checksum");
    obs::ScopedTimer timed(timer);
#endif
    const std::uint64_t head_hash =
        util::fnv1a64(std::span(file_bytes.data(), crc_offset));
    if (util::fnv1a64(payload, head_hash) != crc) {
      throw util::CheckpointError("snapshot '" + path + "' checksum mismatch");
    }
  }
  obs::count("checkpoint.bytes_read", file_bytes.size());
  if (info != nullptr) *info = parsed;
  return payload;
}

bool snapshot_valid(const std::string& path) noexcept {
  try {
    (void)read_snapshot_file(path);
    return true;
  } catch (...) {
    return false;
  }
}

namespace detail {

void save_engine(util::CheckpointWriter& w, const core::Engine& gen) {
  for (const std::uint64_t word : gen.state()) w.u64(word);
}

void restore_engine(util::CheckpointReader& r, core::Engine& gen) {
  std::array<std::uint64_t, 4> state{};
  for (auto& word : state) word = r.u64();
  gen.set_state(state);
}

}  // namespace detail

}  // namespace cobra::sim
