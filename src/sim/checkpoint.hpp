#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/process.hpp"
#include "util/checkpoint_io.hpp"

/// \file checkpoint.hpp
/// Durable snapshots of a running simulation — the checkpoint/resume half
/// of the resilience layer. A multi-hour COBRA or resampling run killed at
/// round 10^7 must continue from its last snapshot with the EXACT
/// trajectory an uninterrupted run would have produced, at any thread
/// count. Three pieces make that hold:
///
///   1. The per-round randomness is a pure function of the caller engine's
///      one round_seed draw (the frontier engine's determinism contract),
///      so snapshotting the 256-bit engine state replays the identical
///      seed stream.
///   2. Process state is serialized in CANONICAL form — the frontier as
///      its sorted ascending vertex list — so the snapshot is independent
///      of the sparse/dense representation the engine happened to be in.
///      A resumed run may re-enter the representation hysteresis from the
///      sparse side; by the engine contract that can change speed, never
///      results.
///   3. The Runner's own progress (rounds completed, against the same
///      budget) rides in the snapshot, together with the optional state of
///      stop rules and observers (CoverStop's coverage set, FirstVisitTimes'
///      table), restored through the same structural-hook mechanism the
///      Runner already uses for start/observe.
///
/// File format (little-endian), version 2:
///
///   header: magic "CBCK" (u32) | version (u32)
///           | git_sha (u64 length + bytes) | build_type (u64 length + bytes)
///           | payload_size (u64) | fnv1a64 (u64)
///   payload: the CheckpointWriter byte stream (process state, engine
///            state, rounds, stop/observer state — in Runner order)
///
/// The fnv1a64 digest chains over every header byte that precedes it and
/// then the payload, so single-bit corruption ANYWHERE in the file — the
/// manifest strings included — fails the read, not just payload damage.
///
/// The git_sha / build_type fields stamp the run manifest (obs/manifest)
/// of the WRITING build into the file, so a snapshot resumed under a
/// different binary is detectable: `Runner::resume_from` compares them to
/// the current manifest and warns on mismatch (the resume proceeds — the
/// payload is version-gated, and cross-build resume is legitimate in
/// recovery scenarios — but it is never silent).
///
/// Writes are atomic (temp file + rename), so a crash mid-snapshot leaves
/// the previous snapshot intact, never a torn file; reads verify magic,
/// version, size, and checksum and throw util::CheckpointError on any
/// mismatch, so a truncated file is a clean failure, not UB. Snapshot I/O
/// carries the "checkpoint.write" / "checkpoint.read" fault-injection
/// sites (util/fault.hpp): periodic snapshot failures inside the Runner
/// degrade to a warning (the run continues, the previous snapshot
/// survives); resume failures throw. A third site, "checkpoint.torn_write",
/// models the failure the atomic rename exists to prevent ever REACHING
/// the target path: it truncates the payload mid-write while the header
/// still claims the full size, and lets the rename land — the read path
/// must reject the result via the size/checksum checks (and does; the
/// chaos tests pin it).

namespace cobra::sim {

inline constexpr std::uint32_t kSnapshotMagic = 0x4B434243u;  // "CBCK"
inline constexpr std::uint32_t kSnapshotVersion = 2;  // v2: manifest stamp

/// Header facts of a snapshot file (everything before the payload).
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::string git_sha;     ///< manifest of the build that WROTE the file
  std::string build_type;
};

/// A process that can round-trip its state through the checkpoint byte
/// stream. Contract: `restore_state` must leave the process exactly as the
/// saved one was (active set, round counter, auxiliary counters), given
/// that the process was CONSTRUCTED with the same arguments (graph, start,
/// branching/schedule/mode) — construction parameters are the caller's to
/// reproduce, the snapshot holds only evolving state.
template <typename P>
concept Checkpointable =
    Process<P> && requires(P p, const P cp, util::CheckpointWriter& w,
                           util::CheckpointReader& r) {
      cp.save_state(w);
      p.restore_state(r);
    };

/// Serialize `payload` to `path` atomically (temp + rename). Throws
/// util::CheckpointError on I/O failure or an armed "checkpoint.write"
/// fault.
void write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& payload);

/// Read and verify a snapshot file; returns the payload. Throws
/// util::CheckpointError on a missing/truncated/corrupt file, a magic or
/// version mismatch, or an armed "checkpoint.read" fault. When `info` is
/// non-null it receives the header facts (version, manifest stamp).
[[nodiscard]] std::vector<std::uint8_t> read_snapshot_file(
    const std::string& path, SnapshotInfo* info = nullptr);

/// True when `path` holds a readable, checksum-valid snapshot (the cheap
/// "can I resume?" probe; never throws).
[[nodiscard]] bool snapshot_valid(const std::string& path) noexcept;

namespace detail {

/// Engine (xoshiro256++) state to/from the payload.
void save_engine(util::CheckpointWriter& w, const core::Engine& gen);
void restore_engine(util::CheckpointReader& r, core::Engine& gen);

}  // namespace detail

}  // namespace cobra::sim
