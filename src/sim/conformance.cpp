// Anchor TU for the conformance ledger: building the cobra library
// evaluates every static_assert in conformance.hpp, so concept drift is a
// library-build error, not a latent mismatch discovered at a use site.
#include "sim/conformance.hpp"
