#pragma once

#include "core/biased_walk.hpp"
#include "core/coalescing_walk.hpp"
#include "core/cobra_walk.hpp"
#include "core/generalized_cobra.hpp"
#include "core/gossip.hpp"
#include "core/greedy_mis.hpp"
#include "core/lll_resampler.hpp"
#include "core/metropolis_walk.hpp"
#include "core/pair_walk.hpp"
#include "core/parallel_walks.hpp"
#include "core/random_walk.hpp"
#include "core/sis_epidemic.hpp"
#include "core/walt.hpp"
#include "sim/checkpoint.hpp"
#include "sim/process.hpp"

/// \file conformance.hpp
/// Compile-time conformance ledger: every process type in the repo,
/// asserted against the concept it claims to model. Concepts fail SILENTLY
/// — a signature drift (say `round()` losing const) doesn't error where
/// the process is defined; it just stops the type from matching
/// `sim::Process`, and the first symptom is a cryptic overload-resolution
/// failure (or worse, a Runner call compiling against a different branch)
/// far from the edit. This header turns that drift into an immediate,
/// named compile error in the library build: src/sim/conformance.cpp
/// includes it, so `cmake --build` is the test.
///
/// When you add a process: add its static_assert here (and one in the
/// Checkpointable block if it implements save_state/restore_state). See
/// CONTRIBUTING.md.

namespace cobra::sim {

// ----------------------------------------------------- sim::Process -----
// "Advance one round, read the active set" — the shape sim::Runner drives.

static_assert(Process<core::RandomWalk>);
static_assert(Process<core::BiasedWalk>);
static_assert(Process<core::MetropolisWalk>);
static_assert(Process<core::PairWalk>);
static_assert(Process<core::CobraWalk>);
static_assert(Process<core::GeneralizedCobraWalk>);
static_assert(Process<core::CoalescingWalks>);
static_assert(Process<core::ParallelWalks>);
static_assert(Process<core::Walt>);
static_assert(Process<core::Gossip>);
static_assert(Process<core::SisEpidemic>);
static_assert(Process<core::GreedyMIS>);
static_assert(Process<core::LLLResampler>);
static_assert(Process<GridDriftProcess>);

// Deliberate NON-members, pinned so a refactor that accidentally makes
// them model Process (or starts relying on them doing so) is flagged:
// GridDriftWalk is a chain on per-dimension distances with no vertex
// active set — GridDriftProcess is its adapter.
static_assert(!Process<core::GridDriftWalk>);

// ---------------------------------------------- sim::Checkpointable -----
// Process + save_state/restore_state round-tripping through the durable
// snapshot layer. Only the long-horizon paper processes implement it.

static_assert(Checkpointable<core::CobraWalk>);
static_assert(Checkpointable<core::GeneralizedCobraWalk>);
static_assert(Checkpointable<core::Gossip>);

// Processes that are Process-only today; flip to Checkpointable<> when
// they grow snapshot support so the ledger stays exhaustive.
static_assert(!Checkpointable<core::RandomWalk>);
static_assert(!Checkpointable<core::CoalescingWalks>);
static_assert(!Checkpointable<core::Walt>);

}  // namespace cobra::sim
