#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sim/process.hpp"
#include "stats/histogram.hpp"
#include "util/checkpoint_io.hpp"

/// \file observers.hpp
/// Observers for sim::Runner — the "recording" half of every experiment.
/// An observer is any type providing
///
///   void observe(const P&)   — required; called after every step
///   void start(const P&)     — optional; called once with the round-0 state
///
/// detected structurally by the Runner. Observers are plain values the
/// caller owns and reads after the run; a run with no observers compiles to
/// the bare step loop (the hooks fold away), so measurement never taxes a
/// run that doesn't want it.
///
/// History-accumulating observers (GrowthCurve, FirstVisitTimes) also
/// provide save_state/restore_state so their records survive the Runner's
/// checkpoint/resume — a resumed run's curve/visit table equals the
/// uninterrupted run's.

namespace cobra::sim {

/// |S_t| for every round of the run: sizes()[t] is the active-set size
/// after t rounds (index 0 = the initial state). The growth-curve figure
/// (bench_active_growth) reads checkpoints out of this. O(1) per round via
/// active_size — no dense-frontier materialization.
class GrowthCurve {
 public:
  template <Process P>
  void start(const P& p) {
    sizes_.clear();
    sizes_.push_back(active_size(p));
  }

  template <Process P>
  void observe(const P& p) {
    sizes_.push_back(active_size(p));
  }

  [[nodiscard]] const std::vector<std::size_t>& sizes() const noexcept {
    return sizes_;
  }
  /// |S_t| after `t` rounds, clamped to the last recorded round.
  [[nodiscard]] std::size_t at(std::uint64_t t) const {
    if (sizes_.empty()) return 0;
    return sizes_[std::min<std::uint64_t>(t, sizes_.size() - 1)];
  }
  [[nodiscard]] std::size_t peak() const {
    return sizes_.empty() ? 0
                          : *std::max_element(sizes_.begin(), sizes_.end());
  }

  void save_state(util::CheckpointWriter& w) const {
    w.u64(sizes_.size());
    for (const std::size_t s : sizes_) w.u64(s);
  }
  void restore_state(util::CheckpointReader& r) {
    const std::uint64_t count = r.u64();
    sizes_.clear();
    sizes_.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      sizes_.push_back(static_cast<std::size_t>(r.u64()));
    }
  }

 private:
  std::vector<std::size_t> sizes_;
};

/// First round each vertex became active (kNever for vertices the run
/// never reached). The per-vertex refinement of cover time: the max over
/// visited vertices is the cover round, the entry at a target is its
/// hitting time — one run yields every hitting time at once.
class FirstVisitTimes {
 public:
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  template <Process P>
  void start(const P& p) {
    first_.assign(p.n(), kNever);
    rounds_ = 0;
    absorb(p);
  }

  template <Process P>
  void observe(const P& p) {
    ++rounds_;
    absorb(p);
  }

  [[nodiscard]] const std::vector<std::uint64_t>& times() const noexcept {
    return first_;
  }
  [[nodiscard]] std::uint64_t time_of(core::Vertex v) const {
    return first_.at(v);
  }
  [[nodiscard]] bool visited(core::Vertex v) const {
    return first_.at(v) != kNever;
  }
  /// Max first-visit round over visited vertices (the cover round when
  /// every vertex was visited).
  [[nodiscard]] std::uint64_t last_first_visit() const {
    std::uint64_t last = 0;
    for (const std::uint64_t t : first_) {
      if (t != kNever) last = std::max(last, t);
    }
    return last;
  }

  void save_state(util::CheckpointWriter& w) const {
    w.u64(rounds_);
    w.u64_span(first_);
  }
  void restore_state(util::CheckpointReader& r) {
    rounds_ = r.u64();
    first_ = r.u64_span();
  }

 private:
  template <Process P>
  void absorb(const P& p) {
    for (const core::Vertex v : p.active()) {
      if (first_[v] == kNever) first_[v] = rounds_;
    }
  }

  std::vector<std::uint64_t> first_;
  std::uint64_t rounds_ = 0;
};

/// Per-round active-set sizes collected for a histogram — the "round
/// histogram" view of a process's size distribution (e.g. the occupancy
/// profile of a long SIS run).
class SizeHistogram {
 public:
  template <Process P>
  void start(const P& p) {
    samples_.clear();
    samples_.push_back(static_cast<double>(active_size(p)));
  }

  template <Process P>
  void observe(const P& p) {
    samples_.push_back(static_cast<double>(active_size(p)));
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] stats::Histogram histogram(std::size_t bins) const {
    return stats::Histogram::of(samples_, bins);
  }

 private:
  std::vector<double> samples_;
};

/// Detects rounds where the active set SHRANK — a collision (coalescence
/// beat branching). Records the first such round and the cumulative
/// population loss; the coalescing-walk merge count is total_losses().
class CollisionDetector {
 public:
  static constexpr std::uint64_t kNone =
      std::numeric_limits<std::uint64_t>::max();

  template <Process P>
  void start(const P& p) {
    prev_ = active_size(p);
    rounds_ = 0;
    first_ = kNone;
    losses_ = 0;
  }

  template <Process P>
  void observe(const P& p) {
    ++rounds_;
    const std::size_t size = active_size(p);
    if (size < prev_) {
      losses_ += prev_ - size;
      if (first_ == kNone) first_ = rounds_;
    }
    prev_ = size;
  }

  [[nodiscard]] bool collided() const noexcept { return first_ != kNone; }
  [[nodiscard]] std::uint64_t first_collision_round() const noexcept {
    return first_;
  }
  [[nodiscard]] std::uint64_t total_losses() const noexcept { return losses_; }

 private:
  std::size_t prev_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t first_ = kNone;
  std::uint64_t losses_ = 0;
};

/// Fraction of (post-step) rounds in which `target` was active — the
/// empirical occupancy a stationary-distribution bound is checked against
/// (Theorem 13's epsilon-biased occupancy). The round-0 state is excluded:
/// occupancy is a long-run average over steps, and the caller typically
/// burns in before attaching this observer.
class OccupancyCounter {
 public:
  explicit OccupancyCounter(core::Vertex target) : target_(target) {}

  template <Process P>
  void start(const P&) {
    rounds_ = 0;
    hits_ = 0;
  }

  template <Process P>
  void observe(const P& p) {
    ++rounds_;
    const auto active = p.active();
    if (std::find(active.begin(), active.end(), target_) != active.end()) {
      ++hits_;
    }
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] double fraction() const noexcept {
    return rounds_ == 0 ? 0.0
                        : static_cast<double>(hits_) /
                              static_cast<double>(rounds_);
  }

 private:
  core::Vertex target_;
  std::uint64_t rounds_ = 0;
  std::uint64_t hits_ = 0;
};

/// Generic per-round statistic recorder: values()[t] = fn(process) after
/// t rounds. The ad-hoc-observer escape hatch.
template <typename F>
class Record {
 public:
  explicit Record(F fn) : fn_(std::move(fn)) {}

  template <Process P>
  void start(const P& p) {
    values_.clear();
    values_.push_back(fn_(p));
  }

  template <Process P>
  void observe(const P& p) {
    values_.push_back(fn_(p));
  }

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  F fn_;
  std::vector<double> values_;
};

template <typename F>
[[nodiscard]] Record<F> record_of(F fn) {
  return Record<F>(std::move(fn));
}

}  // namespace cobra::sim
