#pragma once

#include <cstdint>
#include <span>

#include "core/grid_drift.hpp"
#include "core/types.hpp"

/// \file process.hpp
/// The `sim::Process` concept — the one shape every experiment in this
/// repo instantiates: "advance a discrete-time vertex process one round at
/// a time, reading its active set". The paper's cobra walk, its §4 Walt
/// surrogate, the §1.2 gossip/parallel-walk baselines, the §5 biased and
/// Metropolis walks, and the SIS reading all model it, which is what lets
/// ONE driver (`sim::Runner`) replace the per-process step loops the
/// benches and examples used to hand-roll.
///
/// Requirements:
///   * `step(Engine&)`   — advance one round (any return type; SIS returns
///                         its round record, GridDrift its step event);
///   * `active()`        — the current active set as a vertex span
///                         (singleton for single-walker processes);
///   * `round()`         — rounds since construction/reset;
///   * `n()`             — the state-space size: number of graph vertices
///                         (what "cover" and first-visit arrays range over).
/// `reset(...)` is deliberately NOT part of the concept: restart signatures
/// differ per process (single start vertex, start span, pebble budget), and
/// the Runner never restarts a process — replicated experiments construct a
/// fresh process per trial inside `Runner::replicate`.
///
/// Processes that maintain a dual-representation core::Frontier also expose
/// `frontier()` with an O(1) `size()`; `active_size()` below routes through
/// it so stop rules and growth observers never pay for materializing the
/// sorted vertex list after a dense round.

namespace cobra::sim {

template <typename P>
concept Process = requires(P p, const P cp, core::Engine& gen) {
  p.step(gen);
  { cp.active() } -> std::convertible_to<std::span<const core::Vertex>>;
  { cp.round() } -> std::convertible_to<std::uint64_t>;
  { cp.n() } -> std::convertible_to<std::uint32_t>;
};

/// |active set| without materializing it: O(1) via the native frontier
/// when the process exposes one, `active().size()` otherwise.
template <typename P>
[[nodiscard]] std::size_t active_size(const P& p) {
  if constexpr (requires { p.frontier().size(); }) {
    return p.frontier().size();
  } else {
    return p.active().size();
  }
}

/// The §3 grid-drift coupling as a sim:: process. GridDriftWalk is a chain
/// on per-dimension distances, not on graph vertices, so the adapter maps
/// its state to the scalar total distance: `active()` is the singleton
/// {total distance} and `n()` is the largest reachable total + 1. Under
/// that reading, `HitTarget(0)` is exactly `run_to_origin`, and the drift
/// bench's Lemma 5 measurement becomes a stock Runner call.
class GridDriftProcess {
 public:
  GridDriftProcess(std::uint32_t dimensions, std::uint32_t distance,
                   std::uint32_t extent)
      : walk_(dimensions, distance, extent),
        n_(dimensions * extent + 1),
        state_(clamped_distance()) {}

  void step(core::Engine& gen) {
    walk_.step(gen);
    state_ = clamped_distance();
  }

  [[nodiscard]] std::span<const core::Vertex> active() const noexcept {
    return {&state_, 1};
  }
  [[nodiscard]] std::uint64_t round() const noexcept { return walk_.round(); }
  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

  /// The wrapped chain, for per-dimension queries (distances, events).
  [[nodiscard]] core::GridDriftWalk& walk() noexcept { return walk_; }
  [[nodiscard]] const core::GridDriftWalk& walk() const noexcept {
    return walk_;
  }

 private:
  [[nodiscard]] core::Vertex clamped_distance() const noexcept {
    const std::uint64_t total = walk_.total_distance();
    return static_cast<core::Vertex>(
        total < n_ ? total : static_cast<std::uint64_t>(n_) - 1);
  }

  core::GridDriftWalk walk_;
  std::uint32_t n_;
  core::Vertex state_;  ///< cached total distance (span target)
};

}  // namespace cobra::sim
