#include "sim/runner.hpp"

#include "parallel/monte_carlo.hpp"

namespace cobra::sim {

stats::Summary Runner::replicate(
    std::uint32_t trials, std::uint64_t seed,
    const std::function<double(core::Engine&)>& trial) const {
  par::MonteCarloOptions opts;
  opts.base_seed = seed;
  opts.trials = trials;
  const auto samples = par::run_trials(
      par::global_pool(), opts,
      [&](core::Engine& gen, std::uint32_t) { return trial(gen); });
  return stats::summarize(samples);
}

stats::Summary replicate(std::uint32_t trials, std::uint64_t seed,
                         const std::function<double(core::Engine&)>& trial) {
  return Runner().replicate(trials, seed, trial);
}

}  // namespace cobra::sim
