#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <utility>

#include "core/cover_time.hpp"
#include "core/types.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "sim/checkpoint.hpp"
#include "sim/observers.hpp"
#include "sim/process.hpp"
#include "sim/stop.hpp"
#include "stats/summary.hpp"

/// \file runner.hpp
/// sim::Runner — THE step loop. Every experiment in the paper is "run a
/// process on a graph until a stopping condition, recording a statistic";
/// the Runner is that sentence as one reusable function:
///
///   core::CobraWalk walk(g, 0, 2);
///   sim::CoverStop cover;
///   const auto r = sim::Runner().run(walk, gen, cover);
///   // r.rounds = cover time, r.stopped = covered within budget
///
/// with observers riding along:
///
///   sim::GrowthCurve curve;
///   sim::FirstVisitTimes visits;
///   sim::Runner().run(walk, gen, cover, curve, visits);
///
/// Hooks are resolved structurally at compile time (if constexpr), so a
/// zero-observer run compiles to the bare while-step loop — measurement is
/// opt-in, never a tax. The stop rule receives each round before the
/// observers do.
///
/// Budget: every run carries a max-round budget (explicit, or
/// core::default_step_budget(p.n()) when constructed with 0) so a bugged
/// stop condition terminates instead of spinning; `stopped == false` means
/// the budget ran out, mirroring core::CoverResult::covered.
///
/// Replication: `Runner::replicate` is the repetition + CI aggregation the
/// benches used to copy around — `trials` independent trials on the global
/// pool under the par::monte_carlo determinism contract (trial i's engine
/// is seeded derive_seed(seed, i), bit-identical at any thread count),
/// summarized to a stats::Summary. `bench::measure` is now a thin wrapper
/// over it.

namespace cobra::sim {

/// Outcome of one run.
struct RunResult {
  std::uint64_t rounds = 0;  ///< steps taken in this run
  bool stopped = false;      ///< stop rule fired (false = budget exhausted)
};

/// Where and how often `Runner::run_snapshotting` persists progress.
/// `every = k` snapshots after rounds k, 2k, 3k, ...; 0 never snapshots
/// periodically (useful with `Runner::save_snapshot` for explicit saves).
struct SnapshotPolicy {
  std::string path;
  std::uint64_t every = 0;
};

class Runner {
 public:
  /// `max_rounds` = 0 derives the budget per run from the process size
  /// (core::default_step_budget), generous enough that hitting it signals
  /// a real bug or an impossible stop condition.
  constexpr Runner() = default;
  constexpr explicit Runner(std::uint64_t max_rounds)
      : max_rounds_(max_rounds) {}

  /// Drive `p` until `stop` fires or the budget runs out, feeding every
  /// round (including the initial state) to the stop rule and observers.
  /// `run` is const and keeps all mutable state in its arguments, so one
  /// Runner value is safely shared across replicate's pool workers.
  template <Process P, typename Stop, typename... Obs>
  RunResult run(P& p, core::Engine& gen, Stop&& stop, Obs&&... obs) const {
    const std::uint64_t budget =
        max_rounds_ != 0
            ? max_rounds_
            : core::default_step_budget(static_cast<std::uint32_t>(p.n()));
    start_hook(stop, p);
    (start_hook(obs, p), ...);
    RunResult result;
    while (!stop.done(p)) {
      if (result.rounds >= budget) {  // stopped stays false
        record_run(result);
        return result;
      }
      p.step(gen);
      ++result.rounds;
      observe_hook(stop, p);
      (observe_hook(obs, p), ...);
    }
    result.stopped = true;
    // Metrics land AFTER the loop (per run, not per round) so the loop
    // body stays the bare step loop the zero-observer contract promises.
    record_run(result);
    return result;
  }

  /// `run` with periodic durable snapshots: after rounds `every`,
  /// 2*`every`, ... the full run state (process, engine, round count,
  /// stop/observer state) is written atomically to `policy.path`. A failed
  /// periodic snapshot warns on stderr and the run continues — losing a
  /// checkpoint must not kill the computation it protects; the previous
  /// snapshot on disk stays valid.
  template <typename P, typename Stop, typename... Obs>
    requires Checkpointable<P>
  RunResult run_snapshotting(P& p, core::Engine& gen,
                             const SnapshotPolicy& policy, Stop&& stop,
                             Obs&&... obs) const {
    start_hook(stop, p);
    (start_hook(obs, p), ...);
    return loop(p, gen, 0, policy, stop, obs...);
  }

  /// Continue a run from the snapshot at `policy.path`: restores `p`,
  /// `gen`, the round count, and stop/observer state, then resumes the
  /// step loop (still snapshotting per `policy`). `p` must be constructed
  /// with the same arguments as the snapshotted process, and the
  /// stop/observer pack must match the one that wrote the snapshot —
  /// leftover or missing payload bytes throw util::CheckpointError.
  /// The resumed trajectory is bit-identical to the uninterrupted run at
  /// any thread count (pinned by tests); the returned `rounds` counts the
  /// whole run, pre- and post-resume, and the budget applies to that
  /// total, so interrupting never extends a run's allowance.
  template <typename P, typename Stop, typename... Obs>
    requires Checkpointable<P>
  RunResult resume_from(P& p, core::Engine& gen, const SnapshotPolicy& policy,
                        Stop&& stop, Obs&&... obs) const {
    SnapshotInfo snap_info;
    const std::vector<std::uint8_t> payload =
        read_snapshot_file(policy.path, &snap_info);
    // A snapshot resumed under a different binary is legitimate (crash
    // recovery after a redeploy) but must never be silent: trajectory
    // equivalence is only guaranteed when the code is the same.
    const obs::Manifest& manifest = obs::current_manifest();
    if (snap_info.git_sha != manifest.git_sha ||
        snap_info.build_type != manifest.build_type) {
      std::fprintf(stderr,
                   "[runner] WARNING: snapshot '%s' was written by build "
                   "%s/%s but this binary is %s/%s — resumed trajectories "
                   "may diverge from the uninterrupted run\n",
                   policy.path.c_str(), snap_info.git_sha.c_str(),
                   snap_info.build_type.c_str(), manifest.git_sha.c_str(),
                   manifest.build_type.c_str());
    }
    util::CheckpointReader r(payload);
    p.restore_state(r);
    detail::restore_engine(r, gen);
    const std::uint64_t rounds_done = r.u64();
    restore_hook(stop, r, p);
    (restore_hook(obs, r, p), ...);
    if (!r.exhausted()) {
      throw util::CheckpointError(
          "snapshot has trailing bytes (stop/observer pack mismatch?)");
    }
    obs::count("sim.snapshots_restored");
    return loop(p, gen, rounds_done, policy, stop, obs...);
  }

  /// Explicitly snapshot a run's state to `path` (what the periodic hook
  /// calls; public so callers can save at their own boundaries). Throws
  /// util::CheckpointError on I/O failure or an armed checkpoint.write
  /// fault.
  template <typename P, typename Stop, typename... Obs>
    requires Checkpointable<P>
  static void save_snapshot(const P& p, const core::Engine& gen,
                            std::uint64_t rounds, const std::string& path,
                            const Stop& stop, const Obs&... obs) {
    util::CheckpointWriter w;
    p.save_state(w);
    detail::save_engine(w, gen);
    w.u64(rounds);
    save_hook(stop, w);
    (save_hook(obs, w), ...);
    write_snapshot_file(path, w.buffer());
  }

  /// Run `trial` `trials` times on the global pool (deterministic seeding
  /// per the monte_carlo contract) and summarize mean/CI/quantiles.
  [[nodiscard]] stats::Summary replicate(
      std::uint32_t trials, std::uint64_t seed,
      const std::function<double(core::Engine&)>& trial) const;

  [[nodiscard]] std::uint64_t max_rounds() const noexcept {
    return max_rounds_;
  }

 private:
  template <typename Hook, Process P>
  static void start_hook(Hook& h, const P& p) {
    if constexpr (requires { h.start(p); }) h.start(p);
  }
  template <typename Hook, Process P>
  static void observe_hook(Hook& h, const P& p) {
    if constexpr (requires { h.observe(p); }) h.observe(p);
  }
  /// Stop/observer serialization hooks, structural like start/observe.
  /// A hook without save/restore contributes zero bytes; on restore it
  /// falls back to `start(p)` so stateless hooks (Extinction, FixedRounds
  /// re-anchored below) come up initialized. save/restore must be paired
  /// per type or the payload misaligns — caught by the exhausted() check.
  template <typename Hook>
  static void save_hook(const Hook& h, util::CheckpointWriter& w) {
    if constexpr (requires { h.save_state(w); }) h.save_state(w);
  }
  template <typename Hook, Process P>
  static void restore_hook(Hook& h, util::CheckpointReader& r, const P& p) {
    if constexpr (requires { h.restore_state(r); }) {
      h.restore_state(r);
    } else {
      start_hook(h, p);
    }
  }

  /// Shared tail of run_snapshotting/resume_from: the run() step loop with
  /// `rounds_done` already on the clock and periodic snapshotting.
  template <typename P, typename Stop, typename... Obs>
    requires Checkpointable<P>
  RunResult loop(P& p, core::Engine& gen, std::uint64_t rounds_done,
                 const SnapshotPolicy& policy, Stop& stop,
                 Obs&... obs) const {
    const std::uint64_t budget =
        max_rounds_ != 0
            ? max_rounds_
            : core::default_step_budget(static_cast<std::uint32_t>(p.n()));
    RunResult result;
    result.rounds = rounds_done;
    while (!stop.done(p)) {
      if (result.rounds >= budget) {  // stopped stays false
        record_run(result);
        return result;
      }
      p.step(gen);
      ++result.rounds;
      observe_hook(stop, p);
      (observe_hook(obs, p), ...);
      if (policy.every != 0 && result.rounds % policy.every == 0) {
        try {
          save_snapshot(p, gen, result.rounds, policy.path, stop, obs...);
          obs::count("sim.snapshots_saved");
        } catch (const util::CheckpointError& e) {
          obs::count("sim.snapshot_failures");
          std::cerr << "[sim] WARNING: snapshot failed at round "
                    << result.rounds << ": " << e.what()
                    << " (run continues)\n";
        }
      }
    }
    result.stopped = true;
    record_run(result);
    return result;
  }

  /// Per-run registry bumps — rounds driven, runs finished, stop-rule
  /// firings vs budget exhaustions. Called once per run, outside the loop.
  static void record_run(const RunResult& result) {
    obs::count("sim.runs");
    obs::count("sim.rounds", result.rounds);
    if (result.stopped) obs::count("sim.stops_fired");
  }

  std::uint64_t max_rounds_ = 0;
};

/// Free-function twin of Runner::replicate for call sites that don't need
/// a budget (the common bench pattern).
[[nodiscard]] stats::Summary replicate(
    std::uint32_t trials, std::uint64_t seed,
    const std::function<double(core::Engine&)>& trial);

/// One-shot: run to cover, default budget when `max_rounds` == 0. The
/// generic replacement for the per-process core::*_cover one-shots.
template <Process P>
RunResult run_cover(P& p, core::Engine& gen, std::uint64_t max_rounds = 0) {
  CoverStop cover;
  return Runner(max_rounds).run(p, gen, cover);
}

/// One-shot: run until `target` is active, default budget when
/// `max_rounds` == 0.
template <Process P>
RunResult run_hit(P& p, core::Vertex target, core::Engine& gen,
                  std::uint64_t max_rounds = 0) {
  HitTarget hit(target);
  return Runner(max_rounds).run(p, gen, hit);
}

/// Construct a fresh `P` from `args` and run it to cover — the dominant
/// replicate-trial body across the benches, shared here so every bench
/// doesn't re-spell the same two-line lambda:
///
///   sim::replicate(trials, seed, [&](core::Engine& gen) {
///     return sim::cover_rounds<core::CobraWalk>(gen, g, 0, 2);
///   });
template <typename P, typename... Args>
  requires Process<P>
double cover_rounds(core::Engine& gen, Args&&... args) {
  P process(std::forward<Args>(args)...);
  return static_cast<double>(run_cover(process, gen).rounds);
}

/// Construct-and-run twin for hitting times (`target` first, then the
/// process's constructor arguments).
template <typename P, typename... Args>
  requires Process<P>
double hit_rounds(core::Engine& gen, core::Vertex target, Args&&... args) {
  P process(std::forward<Args>(args)...);
  return static_cast<double>(run_hit(process, target, gen).rounds);
}

}  // namespace cobra::sim
