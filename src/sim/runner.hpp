#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "core/cover_time.hpp"
#include "core/types.hpp"
#include "sim/observers.hpp"
#include "sim/process.hpp"
#include "sim/stop.hpp"
#include "stats/summary.hpp"

/// \file runner.hpp
/// sim::Runner — THE step loop. Every experiment in the paper is "run a
/// process on a graph until a stopping condition, recording a statistic";
/// the Runner is that sentence as one reusable function:
///
///   core::CobraWalk walk(g, 0, 2);
///   sim::CoverStop cover;
///   const auto r = sim::Runner().run(walk, gen, cover);
///   // r.rounds = cover time, r.stopped = covered within budget
///
/// with observers riding along:
///
///   sim::GrowthCurve curve;
///   sim::FirstVisitTimes visits;
///   sim::Runner().run(walk, gen, cover, curve, visits);
///
/// Hooks are resolved structurally at compile time (if constexpr), so a
/// zero-observer run compiles to the bare while-step loop — measurement is
/// opt-in, never a tax. The stop rule receives each round before the
/// observers do.
///
/// Budget: every run carries a max-round budget (explicit, or
/// core::default_step_budget(p.n()) when constructed with 0) so a bugged
/// stop condition terminates instead of spinning; `stopped == false` means
/// the budget ran out, mirroring core::CoverResult::covered.
///
/// Replication: `Runner::replicate` is the repetition + CI aggregation the
/// benches used to copy around — `trials` independent trials on the global
/// pool under the par::monte_carlo determinism contract (trial i's engine
/// is seeded derive_seed(seed, i), bit-identical at any thread count),
/// summarized to a stats::Summary. `bench::measure` is now a thin wrapper
/// over it.

namespace cobra::sim {

/// Outcome of one run.
struct RunResult {
  std::uint64_t rounds = 0;  ///< steps taken in this run
  bool stopped = false;      ///< stop rule fired (false = budget exhausted)
};

class Runner {
 public:
  /// `max_rounds` = 0 derives the budget per run from the process size
  /// (core::default_step_budget), generous enough that hitting it signals
  /// a real bug or an impossible stop condition.
  constexpr Runner() = default;
  constexpr explicit Runner(std::uint64_t max_rounds)
      : max_rounds_(max_rounds) {}

  /// Drive `p` until `stop` fires or the budget runs out, feeding every
  /// round (including the initial state) to the stop rule and observers.
  /// `run` is const and keeps all mutable state in its arguments, so one
  /// Runner value is safely shared across replicate's pool workers.
  template <Process P, typename Stop, typename... Obs>
  RunResult run(P& p, core::Engine& gen, Stop&& stop, Obs&&... obs) const {
    const std::uint64_t budget =
        max_rounds_ != 0
            ? max_rounds_
            : core::default_step_budget(static_cast<std::uint32_t>(p.n()));
    start_hook(stop, p);
    (start_hook(obs, p), ...);
    RunResult result;
    while (!stop.done(p)) {
      if (result.rounds >= budget) return result;  // stopped stays false
      p.step(gen);
      ++result.rounds;
      observe_hook(stop, p);
      (observe_hook(obs, p), ...);
    }
    result.stopped = true;
    return result;
  }

  /// Run `trial` `trials` times on the global pool (deterministic seeding
  /// per the monte_carlo contract) and summarize mean/CI/quantiles.
  [[nodiscard]] stats::Summary replicate(
      std::uint32_t trials, std::uint64_t seed,
      const std::function<double(core::Engine&)>& trial) const;

  [[nodiscard]] std::uint64_t max_rounds() const noexcept {
    return max_rounds_;
  }

 private:
  template <typename Hook, Process P>
  static void start_hook(Hook& h, const P& p) {
    if constexpr (requires { h.start(p); }) h.start(p);
  }
  template <typename Hook, Process P>
  static void observe_hook(Hook& h, const P& p) {
    if constexpr (requires { h.observe(p); }) h.observe(p);
  }

  std::uint64_t max_rounds_ = 0;
};

/// Free-function twin of Runner::replicate for call sites that don't need
/// a budget (the common bench pattern).
[[nodiscard]] stats::Summary replicate(
    std::uint32_t trials, std::uint64_t seed,
    const std::function<double(core::Engine&)>& trial);

/// One-shot: run to cover, default budget when `max_rounds` == 0. The
/// generic replacement for the per-process core::*_cover one-shots.
template <Process P>
RunResult run_cover(P& p, core::Engine& gen, std::uint64_t max_rounds = 0) {
  CoverStop cover;
  return Runner(max_rounds).run(p, gen, cover);
}

/// One-shot: run until `target` is active, default budget when
/// `max_rounds` == 0.
template <Process P>
RunResult run_hit(P& p, core::Vertex target, core::Engine& gen,
                  std::uint64_t max_rounds = 0) {
  HitTarget hit(target);
  return Runner(max_rounds).run(p, gen, hit);
}

/// Construct a fresh `P` from `args` and run it to cover — the dominant
/// replicate-trial body across the benches, shared here so every bench
/// doesn't re-spell the same two-line lambda:
///
///   sim::replicate(trials, seed, [&](core::Engine& gen) {
///     return sim::cover_rounds<core::CobraWalk>(gen, g, 0, 2);
///   });
template <typename P, typename... Args>
  requires Process<P>
double cover_rounds(core::Engine& gen, Args&&... args) {
  P process(std::forward<Args>(args)...);
  return static_cast<double>(run_cover(process, gen).rounds);
}

/// Construct-and-run twin for hitting times (`target` first, then the
/// process's constructor arguments).
template <typename P, typename... Args>
  requires Process<P>
double hit_rounds(core::Engine& gen, core::Vertex target, Args&&... args) {
  P process(std::forward<Args>(args)...);
  return static_cast<double>(run_hit(process, target, gen).rounds);
}

}  // namespace cobra::sim
