#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <tuple>
#include <utility>

#include "core/cover_time.hpp"
#include "core/types.hpp"
#include "sim/process.hpp"
#include "util/checkpoint_io.hpp"

/// \file stop.hpp
/// Stop rules for sim::Runner — the "until" half of every experiment
/// ("run until covered / until the target is hit / for T rounds / until
/// extinction"). A stop rule is any type providing
///
///   bool done(const P&)      — required; true ends the run
///   void start(const P&)     — optional; called once with the round-0 state
///   void observe(const P&)   — optional; called after every step
///
/// detected structurally by the Runner (no virtual dispatch, nothing paid
/// for hooks a rule doesn't declare). Rules are plain values the caller
/// owns, so a bench can interrogate them after the run (covered count, hit
/// round, ...). Compose with `any_of(a, b, ...)`.
///
/// Rules whose verdict depends on run HISTORY (not just the current
/// process state) additionally provide save_state/restore_state for the
/// Runner's checkpointing: CoverStop's coverage set, HitTarget's latch,
/// FixedRounds' anchor round. Stateless rules (Extinction, Until) need
/// nothing — the Runner's restore falls back to start().

namespace cobra::sim {

/// Stop when every vertex of the graph has been active at least once —
/// the paper's cover time. Owns the CoverageTracker (sized lazily from
/// `p.n()` at start, so one rule value works for any process).
class CoverStop {
 public:
  template <Process P>
  void start(const P& p) {
    tracker_.emplace(static_cast<std::uint32_t>(p.n()));
    tracker_->absorb(p.active());
  }

  template <Process P>
  void observe(const P& p) {
    tracker_->absorb(p.active());
  }

  template <Process P>
  [[nodiscard]] bool done(const P&) const {
    return tracker_->complete();
  }

  [[nodiscard]] std::uint32_t covered_count() const {
    return tracker_ ? tracker_->covered_count() : 0;
  }
  [[nodiscard]] bool complete() const {
    return tracker_ && tracker_->complete();
  }
  [[nodiscard]] double fraction() const {
    return tracker_ ? tracker_->fraction() : 0.0;
  }

  /// Coverage is history, not derivable from the frontier — it must ride
  /// in every snapshot. The byte count doubles as the vertex count on
  /// restore, so no process handle is needed.
  void save_state(util::CheckpointWriter& w) const {
    w.u8(tracker_.has_value() ? 1 : 0);
    if (tracker_) w.bytes(tracker_->raw());
  }
  void restore_state(util::CheckpointReader& r) {
    if (r.u8() == 0) {
      tracker_.reset();
      return;
    }
    const std::vector<std::uint8_t> raw = r.bytes();
    tracker_.emplace(static_cast<std::uint32_t>(raw.size()));
    tracker_->restore_raw(raw);
  }

 private:
  std::optional<core::CoverageTracker> tracker_;
};

/// Stop when `target` first appears in the active set (a target active at
/// round 0 stops immediately with 0 rounds — the hitting-time convention).
class HitTarget {
 public:
  explicit HitTarget(core::Vertex target) : target_(target) {}

  template <Process P>
  void start(const P& p) {
    hit_ = false;
    scan(p);
  }

  template <Process P>
  void observe(const P& p) {
    if (!hit_) scan(p);
  }

  template <Process P>
  [[nodiscard]] bool done(const P&) const noexcept {
    return hit_;
  }

  [[nodiscard]] core::Vertex target() const noexcept { return target_; }
  [[nodiscard]] bool hit() const noexcept { return hit_; }

  /// The latch is history (the target may have left the active set since).
  void save_state(util::CheckpointWriter& w) const { w.u8(hit_ ? 1 : 0); }
  void restore_state(util::CheckpointReader& r) { hit_ = r.u8() != 0; }

 private:
  template <Process P>
  void scan(const P& p) {
    const auto active = p.active();
    hit_ = std::find(active.begin(), active.end(), target_) != active.end();
  }

  core::Vertex target_;
  bool hit_ = false;
};

/// Stop after exactly `rounds` steps (counted from the start of THIS run,
/// not from the process's construction) — the fixed-horizon schedule of
/// growth-curve and occupancy measurements.
class FixedRounds {
 public:
  explicit FixedRounds(std::uint64_t rounds) : rounds_(rounds) {}

  template <Process P>
  void start(const P& p) {
    start_round_ = p.round();
  }

  template <Process P>
  [[nodiscard]] bool done(const P& p) const noexcept {
    return p.round() - start_round_ >= rounds_;
  }

  /// Without the anchor, a resumed run would re-anchor at the snapshot
  /// round and run `rounds_` MORE steps instead of finishing the horizon.
  void save_state(util::CheckpointWriter& w) const { w.u64(start_round_); }
  void restore_state(util::CheckpointReader& r) { start_round_ = r.u64(); }

 private:
  std::uint64_t rounds_;
  std::uint64_t start_round_ = 0;
};

/// Stop after `excursions` completed returns to `home`: an excursion ends
/// at every round (>= 1) in which home is active — a process that holds
/// still at home completes length-1 excursions, the E_v[T_v+] convention
/// (the round-0 state never counts). Total rounds / completed() is the
/// stationary-ratio return-time estimator of Theorem 15 / Corollary 17;
/// the metropolis_return bench runs it through sim::Runner and the
/// crosscheck suite pins it step-for-step against
/// MetropolisWalk::measure_return_time's internal accounting.
class ExcursionStop {
 public:
  ExcursionStop(core::Vertex home, std::uint64_t excursions)
      : home_(home), target_(excursions) {}

  template <Process P>
  void start(const P&) {
    completed_ = 0;
  }

  template <Process P>
  void observe(const P& p) {
    const auto active = p.active();
    if (std::find(active.begin(), active.end(), home_) != active.end()) {
      ++completed_;
    }
  }

  template <Process P>
  [[nodiscard]] bool done(const P&) const noexcept {
    return completed_ >= target_;
  }

  [[nodiscard]] core::Vertex home() const noexcept { return home_; }
  [[nodiscard]] std::uint64_t target() const noexcept { return target_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

  /// The tally is history (home may have left the active set since).
  void save_state(util::CheckpointWriter& w) const { w.u64(completed_); }
  void restore_state(util::CheckpointReader& r) { completed_ = r.u64(); }

 private:
  core::Vertex home_;
  std::uint64_t target_;
  std::uint64_t completed_ = 0;
};

/// Stop when the active set is empty — extinction, reachable only for
/// processes that can lose their whole population (faulty branching
/// schedules, coalescing walks never reach 0). O(1) per round via
/// active_size.
class Extinction {
 public:
  template <Process P>
  [[nodiscard]] bool done(const P& p) const {
    return active_size(p) == 0;
  }
};

/// Stop when `fn(process)` holds — the escape hatch for process-specific
/// conditions (SIS "everyone exposed", walker count thresholds, ...).
template <typename F>
class Until {
 public:
  explicit Until(F fn) : fn_(std::move(fn)) {}

  template <Process P>
  [[nodiscard]] bool done(const P& p) const {
    return fn_(p);
  }

 private:
  F fn_;
};

template <typename F>
[[nodiscard]] Until<F> until(F fn) {
  return Until<F>(std::move(fn));
}

/// Disjunction of stop rules, held by reference: the run ends when ANY
/// member rule fires, and the caller can still interrogate each rule
/// afterwards (e.g. CoverStop::complete() distinguishes "covered" from
/// "went extinct first"). All members receive start/observe hooks.
template <typename... Rules>
class AnyOf {
 public:
  explicit AnyOf(Rules&... rules) : rules_(rules...) {}

  template <Process P>
  void start(const P& p) {
    std::apply([&](Rules&... r) { (detail_start(r, p), ...); }, rules_);
  }

  template <Process P>
  void observe(const P& p) {
    std::apply([&](Rules&... r) { (detail_observe(r, p), ...); }, rules_);
  }

  template <Process P>
  [[nodiscard]] bool done(const P& p) const {
    return std::apply([&](const Rules&... r) { return (r.done(p) || ...); },
                      rules_);
  }

  /// Checkpoint pass-through: members serialize in pack order, stateless
  /// members contribute zero bytes (mirroring the Runner's own hooks).
  void save_state(util::CheckpointWriter& w) const {
    std::apply([&](const Rules&... r) { (detail_save(r, w), ...); }, rules_);
  }
  void restore_state(util::CheckpointReader& rd) {
    std::apply([&](Rules&... r) { (detail_restore(r, rd), ...); }, rules_);
  }

 private:
  template <typename R, Process P>
  static void detail_start(R& rule, const P& p) {
    if constexpr (requires { rule.start(p); }) rule.start(p);
  }
  template <typename R, Process P>
  static void detail_observe(R& rule, const P& p) {
    if constexpr (requires { rule.observe(p); }) rule.observe(p);
  }
  template <typename R>
  static void detail_save(const R& rule, util::CheckpointWriter& w) {
    if constexpr (requires { rule.save_state(w); }) rule.save_state(w);
  }
  template <typename R>
  static void detail_restore(R& rule, util::CheckpointReader& rd) {
    if constexpr (requires { rule.restore_state(rd); }) rule.restore_state(rd);
  }

  std::tuple<Rules&...> rules_;
};

template <typename... Rules>
[[nodiscard]] AnyOf<Rules...> any_of(Rules&... rules) {
  return AnyOf<Rules...>(rules...);
}

}  // namespace cobra::sim
