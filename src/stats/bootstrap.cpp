#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/summary.hpp"

namespace cobra::stats {

BootstrapCI bootstrap_ci(std::span<const double> sample, const Statistic& statistic,
                         double level, std::uint32_t resamples, std::uint64_t seed) {
  BootstrapCI ci;
  if (sample.empty()) return ci;
  ci.point = statistic(sample);
  if (sample.size() == 1 || resamples == 0) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }

  rng::Xoshiro256 gen(seed);
  std::vector<double> resample(sample.size());
  std::vector<double> replicates;
  replicates.reserve(resamples);
  for (std::uint32_t r = 0; r < resamples; ++r) {
    for (double& slot : resample) {
      slot = sample[static_cast<std::size_t>(
          rng::uniform_below(gen, sample.size()))];
    }
    replicates.push_back(statistic(resample));
  }
  std::sort(replicates.begin(), replicates.end());
  const double alpha = (1.0 - level) / 2.0;
  ci.lo = quantile_sorted(replicates, alpha);
  ci.hi = quantile_sorted(replicates, 1.0 - alpha);
  return ci;
}

BootstrapCI bootstrap_mean_ci(std::span<const double> sample, double level,
                              std::uint32_t resamples, std::uint64_t seed) {
  return bootstrap_ci(sample, [](std::span<const double> s) { return mean_of(s); },
                      level, resamples, seed);
}

BootstrapCI bootstrap_median_ci(std::span<const double> sample, double level,
                                std::uint32_t resamples, std::uint64_t seed) {
  return bootstrap_ci(
      sample,
      [](std::span<const double> s) {
        std::vector<double> sorted(s.begin(), s.end());
        std::sort(sorted.begin(), sorted.end());
        return quantile_sorted(sorted, 0.5);
      },
      level, resamples, seed);
}

}  // namespace cobra::stats
