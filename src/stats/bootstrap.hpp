#pragma once

#include <cstdint>
#include <functional>
#include <span>

/// \file bootstrap.hpp
/// Nonparametric bootstrap confidence intervals. Cover-time distributions
/// are right-skewed (occasionally a walk dawdles), so the normal-theory CI
/// in summary.hpp can be optimistic for small trial counts; the percentile
/// bootstrap gives a distribution-free cross-check used by the experiment
/// harness whenever a claim rides on a CI.

namespace cobra::stats {

struct BootstrapCI {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  ///< statistic evaluated on the original sample
};

/// Statistic maps a resampled vector to a scalar (mean, median, ...).
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap CI at confidence `level` (e.g. 0.95) using
/// `resamples` bootstrap replicates. Deterministic given `seed`.
[[nodiscard]] BootstrapCI bootstrap_ci(std::span<const double> sample,
                                       const Statistic& statistic,
                                       double level = 0.95,
                                       std::uint32_t resamples = 2000,
                                       std::uint64_t seed = 0xB0075EEDULL);

/// Convenience wrappers for the two most common statistics.
[[nodiscard]] BootstrapCI bootstrap_mean_ci(std::span<const double> sample,
                                            double level = 0.95,
                                            std::uint32_t resamples = 2000,
                                            std::uint64_t seed = 0xB0075EEDULL);
[[nodiscard]] BootstrapCI bootstrap_median_ci(std::span<const double> sample,
                                              double level = 0.95,
                                              std::uint32_t resamples = 2000,
                                              std::uint64_t seed = 0xB0075EEDULL);

}  // namespace cobra::stats
