#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cobra::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: requires hi > lo");
  inv_width_ = static_cast<double>(bins) / (hi - lo);
}

Histogram Histogram::of(std::span<const double> sample, std::size_t bins) {
  double lo = 0.0, hi = 1.0;
  if (!sample.empty()) {
    const auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
    lo = *mn;
    hi = *mx;
    if (hi <= lo) hi = lo + 1.0;  // degenerate sample: widen artificially
  }
  Histogram h(lo, hi + (hi - lo) * 1e-9, bins);  // nudge so max lands inside
  h.add_all(sample);
  return h;
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) * inv_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard float roundoff at hi_
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) / inv_width_;
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::size_t Histogram::mode_bin() const noexcept {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return it == counts_.end() ? 0
                             : static_cast<std::size_t>(it - counts_.begin());
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  const std::size_t peak = counts_.empty() ? 0 : counts_[mode_bin()];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / peak;
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  if (underflow_ > 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

}  // namespace cobra::stats
