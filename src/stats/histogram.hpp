#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

/// \file histogram.hpp
/// Fixed-bin histogram for visualizing trial distributions (cover-time
/// spread, active-set sizes) in terminal output. Cheap, allocation-once,
/// and renderable as an ASCII bar chart — the library's stand-in for the
/// figures a plotting stack would produce.

namespace cobra::stats {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are counted in under/over
  /// flow. Requires bins >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: bins spanning the min/max of `sample`, then adds it all.
  static Histogram of(std::span<const double> sample, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Index of the fullest bin (0 if empty histogram).
  [[nodiscard]] std::size_t mode_bin() const noexcept;

  /// Render as an ASCII bar chart, `width` characters for the largest bar.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double inv_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace cobra::stats
