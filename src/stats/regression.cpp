#include "stats/regression.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

namespace cobra::stats {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return fit;

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;

  fit.count = n;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - fit.predict(xs[i]);
    ss_res += r * r;
  }
  fit.r_squared = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;
  if (n > 2) {
    const double mse = ss_res / static_cast<double>(n - 2);
    fit.slope_stderr = std::sqrt(mse / sxx);
  }
  return fit;
}

double PowerLawFit::predict(double x) const noexcept {
  return prefactor * std::pow(x, exponent);
}

PowerLawFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx, ly;
  const std::size_t n = std::min(xs.size(), ys.size());
  lx.reserve(n);
  ly.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] > 0.0 && ys[i] > 0.0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerLawFit fit;
  fit.exponent = lin.slope;
  fit.prefactor = std::exp(lin.intercept);
  fit.r_squared = lin.r_squared;
  fit.exponent_stderr = lin.slope_stderr;
  fit.count = lin.count;
  return fit;
}

PowerLawFit fit_polylog(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> logx;
  std::vector<double> yy;
  const std::size_t n = std::min(xs.size(), ys.size());
  logx.reserve(n);
  yy.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] > 1.0) {
      logx.push_back(std::log(xs[i]));
      yy.push_back(ys[i]);
    }
  }
  return fit_power_law(logx, yy);
}

}  // namespace cobra::stats
