#pragma once

#include <cstddef>
#include <span>

/// \file regression.hpp
/// Least-squares fits used to turn cover-time sweeps into growth exponents.
/// The central tool of the experiment suite is `fit_power_law`: given
/// (n, T(n)) pairs it fits T = a * n^c by ordinary least squares in log-log
/// space and reports the exponent c with its standard error and R^2. Every
/// theorem of the paper is checked by comparing a fitted exponent (or a
/// fitted ratio) against the theorem's predicted exponent.

namespace cobra::stats {

/// Result of a simple linear regression y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  double slope_stderr = 0.0;  ///< standard error of the slope estimate
  std::size_t count = 0;

  [[nodiscard]] double predict(double x) const noexcept {
    return intercept + slope * x;
  }
};

/// Ordinary least squares over (x[i], y[i]). Requires xs.size() == ys.size().
/// Fewer than two points, or zero x-variance, yields a zero fit with
/// r_squared = 0.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs,
                                   std::span<const double> ys);

/// Power-law fit y = a * x^c via log-log OLS. All inputs must be positive;
/// nonpositive pairs are skipped. `exponent` is c, `prefactor` is a.
struct PowerLawFit {
  double exponent = 0.0;
  double prefactor = 0.0;
  double r_squared = 0.0;
  double exponent_stderr = 0.0;
  std::size_t count = 0;

  [[nodiscard]] double predict(double x) const noexcept;
};

[[nodiscard]] PowerLawFit fit_power_law(std::span<const double> xs,
                                        std::span<const double> ys);

/// Fit y = a * (log x)^c — used for the polylogarithmic cover-time claims
/// (Cor 9: expanders cover in O(log^2 n)). Implemented as a power-law fit
/// in the transformed variable log(x). Points with x <= 1 are skipped.
[[nodiscard]] PowerLawFit fit_polylog(std::span<const double> xs,
                                      std::span<const double> ys);

}  // namespace cobra::stats
