#include "stats/sequential.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "rng/splitmix64.hpp"

namespace cobra::stats {

SequentialResult run_until_precise(
    par::ThreadPool& pool, const SequentialOptions& options,
    const std::function<double(cobra::rng::Xoshiro256&, std::uint32_t)>& trial) {
  SequentialResult result;
  std::vector<double> samples;
  samples.reserve(options.initial_trials);

  auto extend_to = [&](std::uint32_t target) {
    const auto begin = static_cast<std::uint32_t>(samples.size());
    samples.resize(target, 0.0);
    par::parallel_for_dynamic(pool, begin, target, [&](std::size_t i) {
      rng::Xoshiro256 engine(rng::derive_seed(options.base_seed, i));
      samples[i] = trial(engine, static_cast<std::uint32_t>(i));
    });
  };

  auto precise_enough = [&](const Summary& s) {
    if (s.count < 2) return false;
    if (options.absolute_tolerance > 0.0 &&
        s.ci95_half <= options.absolute_tolerance) {
      return true;
    }
    return s.ci95_half <= options.relative_tolerance * std::abs(s.mean);
  };

  std::uint32_t target = std::max(2u, options.initial_trials);
  for (;;) {
    target = std::min(target, options.max_trials);
    extend_to(target);
    result.summary = summarize(samples);
    result.trials_used = static_cast<std::uint32_t>(samples.size());
    if (precise_enough(result.summary)) {
      result.converged = true;
      return result;
    }
    if (result.trials_used >= options.max_trials) {
      result.converged = false;
      return result;
    }
    target = result.trials_used + std::max(1u, options.batch_size);
  }
}

}  // namespace cobra::stats
