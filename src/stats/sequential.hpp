#pragma once

#include <cstdint>
#include <functional>

#include "parallel/monte_carlo.hpp"
#include "stats/summary.hpp"

/// \file sequential.hpp
/// Adaptive trial counts: run Monte-Carlo batches until the 95% CI
/// half-width drops below a relative tolerance of the mean (or an
/// absolute floor), then stop. The fixed-trial benches in bench/ choose
/// counts by hand; this runner is the production-quality alternative for
/// users who want "estimate the cover time to ±2%" without tuning —
/// and it keeps the determinism contract (trial i is seeded by
/// derive_seed(base_seed, i) regardless of batching).

namespace cobra::stats {

struct SequentialOptions {
  std::uint64_t base_seed = 0xC0BA5EEDULL;
  std::uint32_t initial_trials = 32;   ///< first batch (also the minimum)
  std::uint32_t batch_size = 32;       ///< growth per round
  std::uint32_t max_trials = 100000;   ///< hard cap
  double relative_tolerance = 0.05;    ///< stop when ci95_half <= rel * |mean|
  double absolute_tolerance = 0.0;     ///< ... or ci95_half <= abs
};

struct SequentialResult {
  Summary summary;
  std::uint32_t trials_used = 0;
  bool converged = false;  ///< false = hit max_trials first
};

/// Runs trial(engine, index) in growing batches on `pool` until the CI
/// criterion is met. The full sample (all batches) feeds the final summary.
SequentialResult run_until_precise(
    par::ThreadPool& pool, const SequentialOptions& options,
    const std::function<double(cobra::rng::Xoshiro256&, std::uint32_t)>& trial);

}  // namespace cobra::stats
