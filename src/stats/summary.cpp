#include "stats/summary.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace cobra::stats {

void Welford::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double t_critical_975(std::size_t dof) noexcept {
  // Standard two-sided 95% t-table; values beyond 30 dof are within 2% of
  // the normal limit, so we interpolate coarsely and then clamp to 1.96.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (dof == 0) return kTable[1];  // degenerate; be conservative
  if (dof < kTable.size()) return kTable[dof];
  if (dof < 60) return 2.00;
  if (dof < 120) return 1.98;
  return 1.96;
}

Summary summarize(std::span<const double> sample) {
  Summary s;
  if (sample.empty()) return s;

  Welford acc;
  for (const double x : sample) acc.add(x);

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.sem = s.count > 1 ? s.stddev / std::sqrt(static_cast<double>(s.count)) : 0.0;
  s.ci95_half = s.count > 1 ? t_critical_975(s.count - 1) * s.sem : 0.0;
  s.min = sorted.front();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  s.max = sorted.back();
  return s;
}

double mean_of(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (const double x : sample) total += x;
  return total / static_cast<double>(sample.size());
}

}  // namespace cobra::stats
