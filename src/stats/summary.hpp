#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file summary.hpp
/// Descriptive statistics for Monte-Carlo observations. Two layers:
///   * Welford — a streaming accumulator (numerically stable one-pass mean
///     and variance) for use inside loops;
///   * Summary — a full descriptive snapshot (mean, CI, quantiles) computed
///     from a sample vector, used in every experiment table.
///
/// Confidence intervals use the normal approximation with Student-t
/// widening for small samples; experiments run >= 30 trials so this is in
/// the regime where the approximation is sound.

namespace cobra::stats {

/// Streaming mean/variance accumulator (Welford 1962).
class Welford {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const Welford& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Full descriptive summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;     ///< unbiased sample standard deviation
  double sem = 0.0;        ///< standard error of the mean
  double ci95_half = 0.0;  ///< half-width of the 95% CI on the mean
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;

  [[nodiscard]] double ci_lo() const noexcept { return mean - ci95_half; }
  [[nodiscard]] double ci_hi() const noexcept { return mean + ci95_half; }
};

/// Computes the summary of `sample` (copied internally for sorting).
/// An empty sample yields an all-zero summary.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Linear-interpolation quantile of a *sorted* sample, q in [0, 1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Two-sided Student-t critical value at 97.5% for `dof` degrees of freedom
/// (i.e. the multiplier for a 95% CI). Exact table for small dof, normal
/// limit 1.96 beyond.
[[nodiscard]] double t_critical_975(std::size_t dof) noexcept;

/// Mean of a span (0 if empty) — convenience for quick reductions.
[[nodiscard]] double mean_of(std::span<const double> sample) noexcept;

}  // namespace cobra::stats
