#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file checkpoint_io.hpp
/// The byte-stream layer of the checkpoint format: a little-endian,
/// bounds-checked writer/reader pair over a flat byte buffer, plus the
/// payload checksum. It lives in util (not sim) so core processes can
/// implement `save_state` / `restore_state` without the core -> sim
/// dependency inversion; sim/checkpoint.{hpp,cpp} owns the snapshot
/// *file* format (header, versioning, atomic write) on top of this.
///
/// Robustness contract: CheckpointReader never reads past the buffer —
/// every primitive read checks remaining bytes and throws CheckpointError
/// on underrun, so a truncated or corrupted payload surfaces as one typed
/// exception, not UB. Writers are append-only; the encoding is the
/// field order the save_state implementations choose (no tags), which the
/// matching restore_state must mirror exactly — the cross-check tests pin
/// each pair by round-tripping real process state.

namespace cobra::util {

/// Typed failure of checkpoint serialization or deserialization.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

/// FNV-1a 64-bit over `bytes` — the payload checksum. Not cryptographic;
/// it exists to reject torn/truncated snapshot files, and 64 bits of
/// mixing is plenty for that. Passing a previous result as `hash` chains
/// the digest across buffers (hash of A then B == hash of A ++ B), which
/// is how the snapshot checksum covers header bytes and payload without
/// concatenating them.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::span<const std::uint8_t> bytes,
    std::uint64_t hash = 0xcbf29ce484222325ULL) noexcept {
  for (const std::uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Append-only little-endian encoder.
class CheckpointWriter {
 public:
  void u8(std::uint8_t value) { bytes_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  /// Length-prefixed u32 span (the frontier/vertex-list encoding).
  void u32_span(std::span<const std::uint32_t> values) {
    u64(values.size());
    for (const std::uint32_t v : values) u32(v);
  }

  /// Length-prefixed u64 span.
  void u64_span(std::span<const std::uint64_t> values) {
    u64(values.size());
    for (const std::uint64_t v : values) u64(v);
  }

  /// Length-prefixed raw bytes (opaque per-process blobs).
  void bytes(std::span<const std::uint8_t> data) {
    u64(data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Length-prefixed UTF-8/ASCII string (manifest stamps, labels).
  void str(std::string_view value) {
    u64(value.size());
    bytes_.insert(bytes_.end(), value.begin(), value.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1, "u8");
    return bytes_[pos_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return value;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return value;
  }

  [[nodiscard]] std::vector<std::uint32_t> u32_span() {
    const std::uint64_t count = u64();
    need(checked_mul(count, 4), "u32 span body");
    std::vector<std::uint32_t> values;
    values.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) values.push_back(u32());
    return values;
  }

  [[nodiscard]] std::vector<std::uint64_t> u64_span() {
    const std::uint64_t count = u64();
    need(checked_mul(count, 8), "u64 span body");
    std::vector<std::uint64_t> values;
    values.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) values.push_back(u64());
    return values;
  }

  [[nodiscard]] std::vector<std::uint8_t> bytes() {
    const std::uint64_t count = u64();
    need(count, "byte span body");
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += static_cast<std::size_t>(count);
    return out;
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t count = u64();
    need(count, "string body");
    std::string out(reinterpret_cast<const char*>(bytes_.data()) + pos_,
                    static_cast<std::size_t>(count));
    pos_ += static_cast<std::size_t>(count);
    return out;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  /// A length prefix read from the payload is attacker/corruption
  /// controlled; multiply with an overflow check before comparing
  /// against remaining().
  [[nodiscard]] static std::uint64_t checked_mul(std::uint64_t count,
                                                 std::uint64_t width) {
    if (width != 0 && count > UINT64_MAX / width) {
      throw CheckpointError("length prefix overflows");
    }
    return count * width;
  }

  void need(std::uint64_t n, const char* what) const {
    if (n > remaining()) {
      throw CheckpointError(std::string("truncated payload reading ") + what);
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Validate a deserialized vertex list against the canonical frontier
/// form: strictly ascending (sorted, duplicate-free) with every id < `n`.
/// Every process restore_state runs its lists through this, so a corrupt
/// payload that survives the file checksum still cannot smuggle an
/// out-of-range vertex into a CSR-indexed hot loop.
inline void require_canonical_vertices(std::span<const std::uint32_t> verts,
                                       std::uint32_t n, const char* what) {
  for (std::size_t i = 0; i < verts.size(); ++i) {
    if (verts[i] >= n) {
      throw CheckpointError(std::string(what) + ": vertex " +
                            std::to_string(verts[i]) + " out of range (n=" +
                            std::to_string(n) + ")");
    }
    if (i > 0 && verts[i] <= verts[i - 1]) {
      throw CheckpointError(std::string(what) +
                            ": vertex list not strictly ascending");
    }
  }
}

}  // namespace cobra::util
