#include "util/fault.hpp"

#include <cstdlib>
#include <iostream>
#include <deque>
#include <mutex>

#include "obs/metrics.hpp"

namespace cobra::util::fault {

namespace detail {
std::atomic<bool> any_armed{false};
}  // namespace detail

namespace {

struct Site {
  std::string name;
  std::uint64_t after = 0;
  /// Hit bookkeeping lives in the metrics registry ("fault.<site>.hits"),
  /// so armed-site hit counts show up in --metrics snapshots for free;
  /// Counter::add has the same fetch_add semantics the inline atomic had,
  /// so the after-k arming stays exact. The obs primitives are functional
  /// at every COBRA_OBS_LEVEL — this is semantic counting, not telemetry.
  obs::Counter* hits;

  Site(std::string n, std::uint64_t a)
      : name(std::move(n)),
        after(a),
        hits(&obs::registry().counter("fault." + name + ".hits")) {}
};

/// Registry storage. Sites are appended under the lock and never removed
/// while armed (disarm_all clears wholesale), so the lock-free query path
/// only needs a stable snapshot of the vector — which a mutex-guarded
/// read provides; the query takes the lock too, but only AFTER the
/// any_armed gate, i.e. never in a fault-free run.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::deque<Site>& registry() {
  static std::deque<Site> sites;
  return sites;
}

}  // namespace

void arm(std::string_view site, std::uint64_t after) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& sites = registry();
  for (Site& s : sites) {
    if (s.name == site) {
      s.after = after;
      s.hits->store(0);
      detail::any_armed.store(true, std::memory_order_relaxed);
      return;
    }
  }
  sites.emplace_back(std::string(site), after);
  // The obs counter outlives disarm_all (metrics registrations persist),
  // so a re-created site must start its count fresh.
  sites.back().hits->store(0);
  detail::any_armed.store(true, std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().clear();
  detail::any_armed.store(false, std::memory_order_relaxed);
}

bool should_fail_slow(std::string_view site) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (Site& s : registry()) {
    if (s.name == site) {
      const std::uint64_t hit = s.hits->add(1);  // returns the PREVIOUS count
      return hit >= s.after;
    }
  }
  return false;
}

std::uint64_t hits(std::string_view site) noexcept {
  std::lock_guard<std::mutex> lock(registry_mutex());
  // Thin wrapper over the registry-backed counter — the pre-obs accessor,
  // kept so call sites and tests don't care where the count lives.
  for (const Site& s : registry()) {
    if (s.name == site) return s.hits->value();
  }
  return 0;
}

std::size_t arm_from_env() {
  const char* env = std::getenv("COBRA_FAULT");
  if (env == nullptr || *env == '\0') return 0;
  std::size_t armed = 0;
  const std::string text(env);
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string entry = text.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    const std::string name = entry.substr(0, at);
    std::uint64_t after = 0;
    bool ok = !name.empty();
    if (ok && at != std::string::npos) {
      const std::string count = entry.substr(at + 1);
      std::size_t consumed = 0;
      try {
        after = std::stoull(count, &consumed);
      } catch (const std::exception&) {
        ok = false;
      }
      if (consumed != count.size()) ok = false;
    }
    if (!ok) {
      std::cerr << "[fault] WARNING: ignoring malformed COBRA_FAULT entry '"
                << entry << "' (want site[@after])\n";
      continue;
    }
    arm(name, after);
    ++armed;
  }
  return armed;
}

std::vector<std::string> armed_sites() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const Site& s : registry()) {
    out.push_back(s.name + "@" + std::to_string(s.after));
  }
  return out;
}

}  // namespace cobra::util::fault
